// Diagnosis round-trip on one ECU's CUT: run a STUMPS BIST session with an
// injected stuck-at fault, collect the fail data (failing strong-window
// signatures — exactly what the collection task b^R stores at the gateway),
// and run signature-based logic diagnosis to locate the fault.
//
// Build & run:  ./build/examples/diagnosis_roundtrip [fault-index]
#include <cstdio>
#include <cstdlib>

#include "bist/diagnosis.hpp"
#include "casestudy/casestudy.hpp"
#include "netlist/random_circuit.hpp"
#include "sim/fault.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  auto cut_spec = casestudy::ScaledCutSpec(7);
  cut_spec.num_gates = 1200;  // a small CUT keeps the example instant
  cut_spec.num_flops = 96;
  const auto cut = netlist::GenerateRandomCircuit(cut_spec);
  const auto faults = sim::CollapsedFaults(cut);
  std::printf("CUT: %zu gates, %zu collapsed faults\n",
              cut.CombinationalGateCount(), faults.size());

  const std::size_t fault_index =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) % faults.size()
               : faults.size() / 3;
  const sim::StuckAtFault injected = faults[fault_index];
  std::printf("injected defect: %s\n\n", sim::ToString(cut, injected).c_str());

  bist::StumpsConfig config = casestudy::PaperStumpsConfig();
  config.signature_window = 16;
  bist::StumpsSession session(cut, config);

  const std::uint64_t num_random = 1024;
  const auto result = session.Run(num_random, {}, injected);
  std::printf("BIST session: %llu patterns, %zu windows, %s\n",
              static_cast<unsigned long long>(result.total_patterns),
              result.window_signatures.size(),
              result.pass ? "PASS" : "FAIL");
  if (result.pass) {
    std::printf("fault escaped this session; try another fault index\n");
    return 0;
  }
  std::printf("fail data (%zu entries, first 5):\n", result.fail_data.size());
  for (std::size_t i = 0; i < result.fail_data.size() && i < 5; ++i) {
    const auto& fd = result.fail_data[i];
    std::printf("  window %3u: observed %08llx expected %08llx\n",
                fd.window_index,
                static_cast<unsigned long long>(fd.observed_signature),
                static_cast<unsigned long long>(fd.expected_signature));
  }

  bist::SignatureDiagnosis diagnosis(cut, config, num_random, {});
  const auto ranked = diagnosis.Diagnose(result.fail_data, faults, 5);
  std::printf("\ntop diagnosis candidates:\n");
  bool hit = false;
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const bool is_injected = ranked[i].fault == injected;
    hit |= is_injected;
    std::printf("  %zu. %-18s score %.3f%s\n", i + 1,
                sim::ToString(cut, ranked[i].fault).c_str(), ranked[i].score,
                is_injected ? "   <-- injected defect" : "");
  }
  std::printf("\n%s\n", hit ? "diagnosis SUCCESS: defect in the top candidates"
                            : "diagnosis MISS (equivalent fault likely ranked "
                              "instead)");
  return hit ? 0 : 1;
}
