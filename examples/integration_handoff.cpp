// Integration hand-off: the workflow an E/E team would actually run.
//
//   1. Load a subnet description from a .spec file.
//   2. Explore in parallel islands.
//   3. Pick the cheapest design above a quality bar.
//   4. Emit the artifacts: the Pareto front (CSV), the chosen binding
//      (.impl), and per-ECU BIST session timelines.
//
// Build & run:  ./build/examples/integration_handoff [spec-file]
#include <cstdio>
#include <fstream>

#include "dse/parallel.hpp"
#include "dse/report.hpp"
#include "dse/session_plan.hpp"
#include "model/spec_io.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  const std::string spec_path =
      argc > 1 ? argv[1] : "examples/specs/tiny_subnet.spec";
  std::printf("loading %s ...\n", spec_path.c_str());
  auto parsed = model::ParseSpecFile(spec_path);
  const auto augmentation = parsed.Augment();

  dse::ExplorationConfig config;
  config.evaluations = 3000;
  config.population_size = 32;
  config.seed = 1;
  const auto merged =
      dse::ExploreParallel(parsed.spec, augmentation, config, 4);
  std::printf("4 islands x %zu evaluations in %.2f s -> %zu merged "
              "Pareto-optimal designs\n",
              config.evaluations, merged.wall_seconds, merged.pareto.size());

  // Artifact 1: the front as CSV.
  {
    dse::ExplorationResult as_result;
    as_result.pareto = merged.pareto;
    std::ofstream csv("front.csv");
    dse::WriteFrontCsv(as_result, csv);
    std::printf("wrote front.csv (%zu rows)\n", merged.pareto.size());
  }

  // Pick: cheapest design with >= 90 % test quality.
  const dse::ExplorationEntry* chosen = nullptr;
  for (const auto& entry : merged.pareto) {
    if (entry.objectives.test_quality_percent < 90.0) continue;
    if (!chosen ||
        entry.objectives.monetary_cost < chosen->objectives.monetary_cost) {
      chosen = &entry;
    }
  }
  if (!chosen) {
    std::printf("no design reaches 90 %% quality; inspect front.csv\n");
    return 1;
  }
  std::printf("\nchosen: %.1f %% quality, cost %.1f, shut-off %.1f s\n",
              chosen->objectives.test_quality_percent,
              chosen->objectives.monetary_cost,
              chosen->objectives.shutoff_time_ms / 1e3);

  // Artifact 2: the binding.
  {
    std::ofstream impl_out("chosen.impl");
    model::WriteImplementation(parsed.spec, chosen->implementation, impl_out);
    std::printf("wrote chosen.impl\n");
  }

  // Artifact 3: per-ECU session timelines.
  std::printf("\nBIST session timelines:\n");
  const auto plans =
      dse::PlanSessions(parsed.spec, augmentation, chosen->implementation);
  for (const auto& plan : plans) {
    std::printf("%s", dse::FormatSessionPlan(parsed.spec, plan).c_str());
  }
  return 0;
}
