// Quickstart: model a minimal E/E subnet, add BIST profiles, explore the
// design space, and print the resulting trade-off front.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "dse/exploration.hpp"
#include "model/specification.hpp"

using namespace bistdse;

int main() {
  // --- 1. architecture: two ECUs and a sensor/actuator pair on one CAN bus,
  //        plus the central gateway that hosts the fail-data collector.
  model::Specification spec;
  auto& arch = spec.Architecture();
  const auto gateway =
      arch.AddResource({"gateway", model::ResourceKind::Gateway, 20.0, 1e-6, 0});
  const auto bus =
      arch.AddResource({"can0", model::ResourceKind::Bus, 1.0, 0, 500e3});
  const auto ecu1 =
      arch.AddResource({"ecu1", model::ResourceKind::Ecu, 10.0, 2e-5, 0});
  const auto ecu2 =
      arch.AddResource({"ecu2", model::ResourceKind::Ecu, 14.0, 2e-5, 0});
  const auto sensor =
      arch.AddResource({"sensor", model::ResourceKind::Sensor, 2.0, 0, 0});
  const auto act =
      arch.AddResource({"act", model::ResourceKind::Actuator, 3.0, 0, 0});
  for (auto r : {gateway, ecu1, ecu2, sensor, act}) arch.AddLink(r, bus);

  // --- 2. application: sense -> control -> actuate.
  auto& app = spec.Application();
  model::Task sense_task;
  sense_task.name = "sense";
  const auto t_sense = app.AddTask(sense_task);
  model::Task ctrl_task;
  ctrl_task.name = "control";
  const auto t_ctrl = app.AddTask(ctrl_task);
  model::Task act_task;
  act_task.name = "actuate";
  const auto t_act = app.AddTask(act_task);

  model::Message m1;
  m1.name = "speed";
  m1.sender = t_sense;
  m1.receivers = {t_ctrl};
  m1.payload_bytes = 2;
  m1.period_ms = 10;
  app.AddMessage(m1);
  model::Message m2;
  m2.name = "torque";
  m2.sender = t_ctrl;
  m2.receivers = {t_act};
  m2.payload_bytes = 4;
  m2.period_ms = 10;
  app.AddMessage(m2);

  spec.AddMapping(t_sense, sensor);
  spec.AddMapping(t_ctrl, ecu1);  // the controller may run on either ECU
  spec.AddMapping(t_ctrl, ecu2);
  spec.AddMapping(t_act, act);

  // --- 3. BIST profiles: two options per ECU (fast/cheap vs thorough).
  bist::BistProfile thorough;
  thorough.profile_number = 1;
  thorough.num_random_patterns = 500;
  thorough.fault_coverage_percent = 99.8;
  thorough.runtime_ms = 4.9;
  thorough.data_bytes = 2400000;
  bist::BistProfile lean = thorough;
  lean.profile_number = 2;
  lean.fault_coverage_percent = 95.7;
  lean.runtime_ms = 1.7;
  lean.data_bytes = 455000;

  std::map<model::ResourceId, std::vector<bist::BistProfile>> profiles;
  profiles[ecu1] = {thorough, lean};
  profiles[ecu2] = {thorough, lean};
  const auto augmentation = model::AugmentWithBist(spec, profiles);
  spec.Validate();

  // --- 4. explore: NSGA-II over SAT-decoding genotypes.
  dse::ExplorationConfig config;
  config.evaluations = 2000;
  config.population_size = 32;
  config.validate_each_decode = true;
  dse::Explorer explorer(spec, augmentation, config);
  const auto result = explorer.Run();

  std::printf("evaluated %zu implementations in %.2f s (%.0f/s)\n",
              result.evaluations, result.wall_seconds, result.Throughput());
  std::printf("%zu Pareto-optimal implementations:\n\n", result.pareto.size());
  std::printf("   cost  | quality  | shut-off   | pattern storage\n");
  std::printf("  -------+----------+------------+----------------\n");
  for (const auto& entry : result.pareto) {
    const auto& o = entry.objectives;
    std::printf("  %6.1f | %6.2f %% | %7.1f ms | gw %7lu B, local %7lu B\n",
                o.monetary_cost, o.test_quality_percent, o.shutoff_time_ms,
                static_cast<unsigned long>(o.gateway_memory_bytes),
                static_cast<unsigned long>(o.distributed_memory_bytes));
  }
  return 0;
}
