// Regenerates a BIST profile table (the paper's Table I pipeline) for a
// synthetic full-scan CUT: pseudo-random fault simulation with dropping,
// PODEM top-up of random-resistant faults, LFSR-reseeding encoding, and the
// runtime/storage model of the STUMPS session.
//
// Build & run:  ./build/examples/bist_profile_generation [seed]
#include <cstdio>
#include <cstdlib>

#include "bist/profile_generator.hpp"
#include "casestudy/casestudy.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  const auto cut_spec = casestudy::ScaledCutSpec(seed);
  std::printf("generating synthetic CUT (seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  const auto cut = netlist::GenerateRandomCircuit(cut_spec);
  std::printf("  %zu gates, %zu flops, %zu PIs, %zu POs\n",
              cut.CombinationalGateCount(), cut.Flops().size(),
              cut.PrimaryInputs().size(), cut.PrimaryOutputs().size());

  bist::ProfileGeneratorConfig config;
  config.stumps = casestudy::PaperStumpsConfig();
  // A reduced PRP sweep keeps the example snappy; bench_table1 runs the full
  // Table-I matrix.
  config.prp_counts = {500, 2000, 8000};
  config.coverage_targets_percent = {100.0, 98.0, 95.0};
  config.fill_seeds = {11, 11, 11};

  bist::ProfileGenerator generator(cut, config);
  const auto profiles = generator.GenerateAll();
  const auto& stats = generator.Stats();

  std::printf("\ncollapsed faults: %zu (paper CUT: %llu)\n",
              stats.total_collapsed_faults,
              static_cast<unsigned long long>(casestudy::kPaperCollapsedFaults));
  std::printf("random-detectable at max PRPs: %zu, untestable: %zu, "
              "ATPG-aborted: %zu\n\n",
              stats.random_detected_at_max_prps, stats.untestable,
              stats.aborted);
  std::printf("%s\n", bist::FormatProfileTable(profiles).c_str());
  std::printf(
      "(s(b) shrinks as #PRPs grows: random patterns absorb the easy faults\n"
      " and fewer encoded deterministic patterns remain — Table I's shape.)\n");
  return 0;
}
