// Partial networking (paper §I): with AUTOSAR partial networking an ECU
// powers down individually, so its BIST session must fit the window before
// real power-down. This example explores the case study under per-ECU
// deadlines and contrasts the designs that survive a strict 100 ms budget
// (local pattern storage only) with those allowed a 1 h window.
//
// Build & run:  ./build/examples/partial_networking [evaluations]
#include <cstdio>
#include <cstdlib>

#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/partial_networking.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  const std::size_t evals =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8000;

  auto cs = casestudy::BuildCaseStudy();
  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 64;
  config.seed = 21;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();
  std::printf("explored %zu implementations, front size %zu\n\n",
              result.evaluations, result.pareto.size());

  const double deadlines_ms[] = {500.0, 60.0 * 60e3};
  for (double deadline : deadlines_ms) {
    std::size_t feasible = 0;
    const dse::ExplorationEntry* best = nullptr;
    for (const auto& entry : result.pareto) {
      const auto report = dse::AnalyzePartialNetworking(
          cs.spec, cs.augmentation, entry.implementation, {}, deadline);
      if (!report.AllDeadlinesMet()) continue;
      ++feasible;
      if (entry.objectives.ecus_with_bist == 0) continue;
      if (!best || entry.objectives.test_quality_percent >
                       best->objectives.test_quality_percent) {
        best = &entry;
      }
    }
    std::printf("power-down deadline %.0f ms: %zu of %zu front designs "
                "feasible\n",
                deadline, feasible, result.pareto.size());
    if (best) {
      const auto& o = best->objectives;
      std::printf("  best feasible: quality %.1f %%, cost %.1f, gateway %lu B,"
                  " local %lu B\n",
                  o.test_quality_percent, o.monetary_cost,
                  static_cast<unsigned long>(o.gateway_memory_bytes),
                  static_cast<unsigned long>(o.distributed_memory_bytes));
      std::printf("  -> %s\n\n",
                  o.gateway_memory_bytes == 0
                      ? "strict windows force local pattern storage"
                      : "a generous window admits central storage");
    } else {
      std::printf("  (no BIST-carrying front design fits this window — "
                  "raise evaluations so all-local designs appear)\n\n");
    }
  }
  return 0;
}
