// Frame-accurate session execution (paper §III): the analytical layer
// (dse::PlanSessions, Eq. 1) promises a diagnostic-session timeline; the
// net::SessionExecutor replays those sessions on a discrete-event model of
// the routed bus network — mirrored slots, gateway store-and-forward,
// segmented transport with flow control — and cross-checks every number.
//
// The example runs the case-study subnet twice: once on lossless buses,
// where the simulated download must land within 5 % of the analytical
// q(b^T), and once with 1 % injected frame loss, where every session must
// still complete via the transport's bounded retries.
//
// Build & run:  ./build/examples/session_execution [trace.jsonl]
#include <cstdio>
#include <fstream>

#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "net/session_executor.hpp"

using namespace bistdse;

namespace {

/// Every ECU selects Table-I profile 4 with gateway (remote) pattern
/// storage, so all 15 sessions exercise the mirrored download path.
model::Implementation RemoteStorageImpl(const casestudy::CaseStudy& cs,
                                        dse::SatDecoder& decoder) {
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto& mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[3];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool remote = mappings[m].resource != ecu;
      g.phases[m] = remote ? 1 : 0;
      g.priorities[m] = remote ? 0.8 : 0.1;
    }
  }
  return *decoder.Decode(g);
}

void PrintReport(const char* label, const net::SessionExecutionReport& r) {
  std::printf("%s: %zu sessions, %s, max download error %.2f %%, "
              "%llu retransmissions, %llu frames dropped\n",
              label, r.sessions.size(),
              r.all_completed ? "all completed" : "INCOMPLETE",
              100.0 * r.max_download_rel_error,
              static_cast<unsigned long long>(r.total_retransmissions),
              static_cast<unsigned long long>(r.total_frames_dropped));
}

}  // namespace

int main(int argc, char** argv) {
  // Table-I profiles with pattern data scaled 1/256 keep the 15-ECU sweep
  // fast; the simulated-vs-analytical comparison is scale-free.
  auto cs = casestudy::BuildCaseStudy(casestudy::ScaledTableI(1.0 / 256, 4));
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = RemoteStorageImpl(cs, decoder);

  // Pass 1: lossless buses — the operational cross-check of Eq. 1.
  net::SessionExecutor exact(cs.spec, cs.augmentation);
  const auto clean = exact.Execute(impl);
  PrintReport("zero loss", clean);
  for (const auto& s : clean.sessions) {
    std::printf("%s", net::FormatSessionExecution(cs.spec, s).c_str());
  }

  // Pass 2: 1 % frame loss — sessions complete via transport retries.
  net::SessionExecutorOptions options;
  options.faults.drop_rate = 0.01;
  options.faults.seed = 7;
  net::SessionExecutor lossy(cs.spec, cs.augmentation, options);
  net::EventTrace trace;
  const auto noisy = lossy.Execute(impl, &trace);
  PrintReport("1 % loss ", noisy);

  if (argc > 1) {
    std::ofstream out(argv[1]);
    trace.WriteJsonl(out);
    std::printf("event trace (%zu events) written to %s\n",
                trace.Events().size(), argv[1]);
  }

  const bool ok = clean.all_completed && clean.all_wcrt_dominated &&
                  clean.max_download_rel_error <= 0.05 && noisy.all_completed;
  std::printf("%s\n", ok ? "operational validation PASSED"
                         : "operational validation FAILED");
  return ok ? 0 : 1;
}
