// Full paper case study: explore BIST integration into the 15-ECU / 3-bus
// automotive subnet with the 36 Table-I profiles, then inspect one selected
// implementation in detail (which profile each ECU runs and where its
// patterns live).
//
// Build & run:  ./build/examples/ee_architecture_dse [evaluations]
#include <cstdio>
#include <cstdlib>

#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  const std::size_t evals =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;

  auto cs = casestudy::BuildCaseStudy();
  std::printf("case study: %zu tasks / %zu messages functional, "
              "%zu ECUs x %zu BIST profiles\n",
              cs.functional_task_count, cs.functional_message_count,
              cs.ecus.size(),
              cs.augmentation.programs_by_ecu.begin()->second.size());

  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 100;
  config.seed = 1;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();
  std::printf("explored %zu implementations in %.1f s -> %zu Pareto-optimal\n\n",
              result.evaluations, result.wall_seconds, result.pareto.size());

  // Pick the cheapest implementation with >= 80 % test quality (the paper's
  // headline point).
  const dse::ExplorationEntry* chosen = nullptr;
  for (const auto& entry : result.pareto) {
    if (entry.objectives.test_quality_percent < 80.0) continue;
    if (!chosen ||
        entry.objectives.monetary_cost < chosen->objectives.monetary_cost) {
      chosen = &entry;
    }
  }
  if (!chosen) {
    std::printf("no implementation reached 80 %% quality — raise evaluations\n");
    return 1;
  }

  const auto& o = chosen->objectives;
  std::printf("selected implementation:\n");
  std::printf("  test quality  : %.1f %%\n", o.test_quality_percent);
  std::printf("  shut-off time : %.1f s\n", o.shutoff_time_ms / 1e3);
  std::printf("  monetary cost : %.1f (gateway memory %lu B, distributed %lu B)\n\n",
              o.monetary_cost,
              static_cast<unsigned long>(o.gateway_memory_bytes),
              static_cast<unsigned long>(o.distributed_memory_bytes));

  std::printf("per-ECU BIST configuration:\n");
  const auto& app = cs.spec.Application();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& ecu_name = cs.spec.Architecture().GetResource(ecu).name;
    bool any = false;
    for (const auto& prog : programs) {
      if (!chosen->implementation.IsBound(cs.spec, prog.test_task)) continue;
      const auto data_at =
          chosen->implementation.BoundResource(cs.spec, prog.data_task);
      const auto& test = app.GetTask(prog.test_task);
      std::printf("  %-6s profile %2u  c=%.2f %%  l=%.2f ms  patterns %s\n",
                  ecu_name.c_str(), prog.profile_index + 1,
                  test.fault_coverage_percent, test.runtime_ms,
                  data_at == ecu ? "local" : "at gateway");
      any = true;
    }
    if (!any) std::printf("  %-6s no BIST selected\n", ecu_name.c_str());
  }
  return 0;
}
