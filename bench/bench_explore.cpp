// Exploration-throughput benchmark over the shared EvaluationEngine: runs
// the case-study DSE at 1 island and at N islands (one shared engine, one
// shared objective memo) and reports evaluations per second, the memo
// hit rate, and the island speedup to BENCH_explore.json.
//
// Env: BISTDSE_EXPLORE_EVALS (default 4000) per-island evaluation budget,
//      BISTDSE_EXPLORE_ISLANDS (default 8) island count of the second row.
// Arg: output path (default BENCH_explore.json).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/parallel.hpp"

using namespace bistdse;

namespace {

struct Row {
  std::size_t islands;
  std::size_t evaluations;
  std::size_t cache_hits;
  std::size_t front;
  double wall_seconds;
  double throughput;

  double HitRate() const {
    return evaluations > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(evaluations)
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_explore.json";
  bench::PrintHeader(
      "Exploration throughput — shared EvaluationEngine at 1 and N islands",
      "Case-study NSGA-II exploration through the shared evaluation engine.\n"
      "Islands share one implementation-signature memo, so the hit rate at\n"
      "N islands includes cross-island hits the per-island caches missed.");

  const auto evals = bench::EnvU64("BISTDSE_EXPLORE_EVALS", 4000);
  const auto islands = bench::EnvU64("BISTDSE_EXPLORE_ISLANDS", 8);
  auto cs = casestudy::BuildCaseStudy();

  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 100;
  config.seed = 1;

  std::vector<Row> rows;
  for (const std::size_t n : {std::size_t{1}, static_cast<std::size_t>(islands)}) {
    const auto result = dse::ExploreParallel(cs.spec, cs.augmentation, config, n);
    rows.push_back({n, result.evaluations, result.eval_cache_hits,
                    result.pareto.size(), result.wall_seconds,
                    result.Throughput()});
    std::printf(
        "%zu island(s): %zu evaluations (%.1f %% memoized) in %.2f s -> "
        "%.0f evals/s, front %zu\n",
        n, result.evaluations, 100.0 * rows.back().HitRate(),
        result.wall_seconds, result.Throughput(), result.pareto.size());
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"explore_throughput\",\n"
               "  \"evaluations_per_island\": %llu,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(evals));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"islands\": %zu, \"evaluations\": %zu, "
                 "\"evals_per_second\": %.1f, \"cache_hit_rate\": %.4f, "
                 "\"front_size\": %zu, \"wall_seconds\": %.3f}%s\n",
                 r.islands, r.evaluations, r.throughput, r.HitRate(), r.front,
                 r.wall_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("exploration benchmark written to %s\n", path);

  // CI acceptance gate: every run must spend its full budget and produce a
  // non-trivial front, and memoization must be doing real work.
  for (const Row& r : rows) {
    if (r.evaluations != r.islands * evals) return 1;
    if (r.front < 4) return 1;
    if (r.cache_hits == 0) return 1;
  }
  return 0;
}
