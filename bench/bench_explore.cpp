// Exploration-throughput benchmark over the shared EvaluationEngine: runs
// the case-study DSE at 1 island and at N islands (one shared engine, one
// shared objective memo) and reports evaluations per second, the memo
// hit rate, the island speedup, and the SAT-decode telemetry (search /
// propagation / inprocessing counters) to BENCH_explore.json.
//
// Two inprocessing ablations ride along:
//   * the 1-island exploration is repeated with SolverConfig::BitIdentity()
//     (all inprocessing transforms off) — the Pareto front must be
//     bit-identical, which is the canonicity gate for the production config;
//   * a fixed genotype set is decoded through the routed encoding (the large
//     instance where probing/SCC/subsumption pay off) with inprocessing on
//     and off, and both per-decode times land in the JSON.
//
// Env: BISTDSE_EXPLORE_EVALS (default 4000) per-island evaluation budget,
//      BISTDSE_EXPLORE_ISLANDS (default 8) island count of the second row,
//      BISTDSE_EXPLORE_ROUTED_DECODES (default 40) routed-ablation decodes.
// Arg: output path (default BENCH_explore.json).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/parallel.hpp"
#include "dse/routing_encoding.hpp"
#include "util/rng.hpp"

using namespace bistdse;

namespace {

struct Row {
  std::size_t islands;
  std::size_t evaluations;
  std::size_t cache_hits;
  std::size_t front;
  double wall_seconds;
  double throughput;
  std::uint64_t front_hash;
  dse::DecoderStats decode;

  double HitRate() const {
    return evaluations > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(evaluations)
               : 0.0;
  }
};

struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void Bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof v); }
  void D(double v) { Bytes(&v, sizeof v); }
};

std::uint64_t FrontHash(const std::vector<dse::ExplorationEntry>& pareto) {
  Fnv f;
  f.U64(pareto.size());
  for (const auto& e : pareto) {
    const auto v = e.objectives.ToMinimizationVector();
    f.U64(v.size());
    for (double d : v) f.D(d);
    f.U64(e.implementation.binding.size());
    for (std::size_t m : e.implementation.binding) f.U64(m);
  }
  return f.h;
}

void PrintDecodeJson(std::FILE* out, const dse::DecoderStats& d,
                     const char* indent) {
  const auto& s = d.solver;
  const double us_per_decode =
      d.decodes > 0 ? 1e6 * d.decode_seconds / static_cast<double>(d.decodes)
                    : 0.0;
  std::fprintf(
      out,
      "{\n"
      "%s  \"decodes\": %llu, \"infeasible\": %llu,\n"
      "%s  \"decode_seconds\": %.3f, \"us_per_decode\": %.1f,\n"
      "%s  \"decisions\": %llu, \"conflicts\": %llu, \"restarts\": %llu,\n"
      "%s  \"learned_clauses\": %llu, \"reduced_clauses\": %llu,\n"
      "%s  \"propagations\": %llu, \"binary_propagations\": %llu, "
      "\"pb_propagations\": %llu,\n"
      "%s  \"inprocess_runs\": %llu, \"probes\": %llu, "
      "\"probed_literals\": %llu,\n"
      "%s  \"eliminated_equivalences\": %llu, \"subsumed_clauses\": %llu, "
      "\"strengthened_clauses\": %llu\n"
      "%s}",
      indent, static_cast<unsigned long long>(d.decodes),
      static_cast<unsigned long long>(d.infeasible), indent, d.decode_seconds,
      us_per_decode, indent, static_cast<unsigned long long>(s.decisions),
      static_cast<unsigned long long>(s.conflicts),
      static_cast<unsigned long long>(s.restarts), indent,
      static_cast<unsigned long long>(s.learned_clauses),
      static_cast<unsigned long long>(s.reduced_clauses), indent,
      static_cast<unsigned long long>(s.propagations),
      static_cast<unsigned long long>(s.binary_propagations),
      static_cast<unsigned long long>(s.pb_propagations), indent,
      static_cast<unsigned long long>(s.inprocess_runs),
      static_cast<unsigned long long>(s.probes),
      static_cast<unsigned long long>(s.probed_literals), indent,
      static_cast<unsigned long long>(s.eliminated_equivalences),
      static_cast<unsigned long long>(s.subsumed_clauses),
      static_cast<unsigned long long>(s.strengthened_clauses), indent);
}

/// Decodes `count` genotypes from a fixed seed through the routed encoding
/// and returns the decoder stats plus a hash of every decoded implementation.
/// Uses the two-profile case study (~260k SAT variables): big enough that
/// the inprocessing transforms pay for themselves within a few decodes.
dse::DecoderStats RoutedDecodeSweep(const casestudy::CaseStudy& cs,
                                    const sat::SolverConfig& solver_config,
                                    std::size_t count, std::uint64_t* hash) {
  dse::RoutedSatDecoder decoder(cs.spec, cs.augmentation, 5, solver_config);
  util::SplitMix64 rng(3);
  Fnv f;
  for (std::size_t i = 0; i < count; ++i) {
    const auto genotype =
        moea::RandomGenotypeBiased(decoder.GenotypeSize(), 0.2, rng);
    const auto impl = decoder.Decode(genotype);
    if (!impl) continue;
    f.U64(impl->binding.size());
    for (std::size_t m : impl->binding) f.U64(m);
    f.U64(impl->routing.size());
    for (const auto& [c, path] : impl->routing) {
      f.U64(c);
      f.U64(path.size());
      for (auto r : path) f.U64(r);
    }
  }
  *hash = f.h;
  return decoder.Stats();
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_explore.json";
  bench::PrintHeader(
      "Exploration throughput — shared EvaluationEngine at 1 and N islands",
      "Case-study NSGA-II exploration through the shared evaluation engine.\n"
      "Islands share one implementation-signature memo, so the hit rate at\n"
      "N islands includes cross-island hits the per-island caches missed.\n"
      "Rows carry SAT-decode telemetry; inprocessing ablations follow.");

  const auto evals = bench::EnvU64("BISTDSE_EXPLORE_EVALS", 4000);
  const auto islands = bench::EnvU64("BISTDSE_EXPLORE_ISLANDS", 8);
  const auto routed_decodes =
      bench::EnvU64("BISTDSE_EXPLORE_ROUTED_DECODES", 40);
  auto cs = casestudy::BuildCaseStudy();

  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 100;
  config.seed = 1;

  std::vector<Row> rows;
  const auto run = [&](std::size_t n) {
    const auto result = dse::ExploreParallel(cs.spec, cs.augmentation, config, n);
    rows.push_back({n, result.evaluations, result.eval_cache_hits,
                    result.pareto.size(), result.wall_seconds,
                    result.Throughput(), FrontHash(result.pareto),
                    result.decoder_stats});
    const Row& r = rows.back();
    std::printf(
        "%zu island(s): %zu evaluations (%.1f %% memoized) in %.2f s -> "
        "%.0f evals/s, front %zu, decode %.1f us/eval\n",
        n, r.evaluations, 100.0 * r.HitRate(), r.wall_seconds, r.throughput,
        r.front,
        r.decode.decodes > 0 ? 1e6 * r.decode.decode_seconds /
                                   static_cast<double>(r.decode.decodes)
                             : 0.0);
  };
  run(1);
  run(islands);

  // Ablation 1 — canonicity gate: the same exploration with every
  // inprocessing transform off must reproduce the front bit-identically
  // (pinned decision order makes the decoded model unique; see sat/).
  const dse::ExplorationConfig default_config = config;
  config.solver = sat::SolverConfig::BitIdentity();
  run(1);
  config = default_config;
  const bool front_identical = rows[2].front_hash == rows[0].front_hash;
  std::printf("inprocessing off: front %s (hash 0x%016llx vs 0x%016llx)\n",
              front_identical ? "bit-identical" : "DIFFERS",
              static_cast<unsigned long long>(rows[2].front_hash),
              static_cast<unsigned long long>(rows[0].front_hash));

  // Ablation 2 — the routed encoding (two orders of magnitude more
  // variables per decode) with inprocessing on vs off, same genotypes.
  auto routed_profiles = casestudy::PaperTableI();
  routed_profiles.resize(2);
  const auto routed_cs = casestudy::BuildCaseStudy(routed_profiles, 42);
  std::uint64_t routed_on_hash = 0, routed_off_hash = 0;
  const auto routed_on = RoutedDecodeSweep(routed_cs, sat::SolverConfig{},
                                           routed_decodes, &routed_on_hash);
  const auto routed_off = RoutedDecodeSweep(
      routed_cs, sat::SolverConfig::BitIdentity(), routed_decodes,
      &routed_off_hash);
  const auto per_decode = [](const dse::DecoderStats& d) {
    return d.decodes > 0
               ? 1e6 * d.decode_seconds / static_cast<double>(d.decodes)
               : 0.0;
  };
  std::printf(
      "routed decode: inprocess on %.0f us/decode, off %.0f us/decode, "
      "models %s\n",
      per_decode(routed_on), per_decode(routed_off),
      routed_on_hash == routed_off_hash ? "bit-identical" : "DIFFER");

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"explore_throughput\",\n"
               "  \"evaluations_per_island\": %llu,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(evals));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"islands\": %zu, \"inprocess\": %s, "
                 "\"evaluations\": %zu, "
                 "\"evals_per_second\": %.1f, \"cache_hit_rate\": %.4f, "
                 "\"front_size\": %zu, \"front_hash\": \"0x%016llx\", "
                 "\"wall_seconds\": %.3f,\n     \"decode\": ",
                 r.islands, i == 2 ? "false" : "true", r.evaluations,
                 r.throughput, r.HitRate(), r.front,
                 static_cast<unsigned long long>(r.front_hash),
                 r.wall_seconds);
    PrintDecodeJson(out, r.decode, "     ");
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"routed_ablation\": {\n"
               "    \"decodes\": %llu,\n"
               "    \"models_identical\": %s,\n"
               "    \"inprocess_on\": ",
               static_cast<unsigned long long>(routed_decodes),
               routed_on_hash == routed_off_hash ? "true" : "false");
  PrintDecodeJson(out, routed_on, "    ");
  std::fprintf(out, ",\n    \"inprocess_off\": ");
  PrintDecodeJson(out, routed_off, "    ");
  std::fprintf(out, "\n  }\n}\n");
  std::fclose(out);
  std::printf("exploration benchmark written to %s\n", path);

  // CI acceptance gates: every run must spend its full budget and produce a
  // non-trivial front, memoization must be doing real work, the
  // inprocessing-off front must be bit-identical (canonicity), and the
  // routed ablation must decode the same models with inprocessing no slower
  // than 1.05x the transform-free solver (measured ~0.8x; generous slop for
  // noisy CI machines).
  for (const Row& r : rows) {
    if (r.evaluations != r.islands * evals) return 1;
    if (r.front < 4) return 1;
    if (r.cache_hits == 0) return 1;
  }
  if (!front_identical) return 1;
  if (routed_on_hash != routed_off_hash) return 1;
  if (routed_on.decodes != routed_off.decodes) return 1;
  if (per_decode(routed_on) > 1.05 * per_decode(routed_off)) return 1;
  return 0;
}
