// Extension study: BIST integration into a forward-looking heterogeneous
// subnet — 20 ECUs of two silicon generations on 4 buses (one high-speed
// backbone). Gateway pattern memory is shared only within a generation, so
// the central-storage economics of the paper's homogeneous case study
// weaken exactly by the number of CUT types.
//
// Env: BISTDSE_FUT_EVALS (default 30000).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/exploration.hpp"

using namespace bistdse;

namespace {

/// Forced all-gateway design with profile `p` everywhere; returns gateway
/// memory bytes.
std::uint64_t ForcedGatewayBytes(const casestudy::CaseStudy& cs,
                                 std::uint32_t profile_index) {
  dse::SatDecoder decoder(cs.spec, cs.augmentation, true);
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[profile_index];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_gw = mappings[m].resource == cs.gateway;
      g.phases[m] = is_gw ? 1 : 0;
      g.priorities[m] = is_gw ? 0.8 : 0.1;
    }
  }
  const auto impl = decoder.Decode(g);
  return dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl)
      .gateway_memory_bytes;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension — heterogeneous fleet (two CUT generations, 4 buses)",
      "Gateway pattern memory is shared per generation only; the exploration\n"
      "balances per-generation profiles, storage and shut-off.");

  auto cs = casestudy::BuildFutureCaseStudy();
  std::printf("\nsubnet: %zu ECUs (2 generations), %zu sensors, %zu actuators,"
              " %zu buses; %zu tasks / %zu messages functional\n",
              cs.ecus.size(), cs.sensors.size(), cs.actuators.size(),
              cs.buses.size(), cs.functional_task_count,
              cs.functional_message_count);

  // Sharing economics: same profile 4 at the gateway costs exactly two
  // copies here (one per generation) vs one in the homogeneous case study.
  auto homogeneous = casestudy::BuildCaseStudy();
  const auto gw_hetero = ForcedGatewayBytes(cs, 3);
  const auto gw_homo = ForcedGatewayBytes(homogeneous, 3);
  std::printf("\nall-gateway, profile 4 everywhere:\n");
  std::printf("  homogeneous 15-ECU subnet: %llu B (one shared copy)\n",
              static_cast<unsigned long long>(gw_homo));
  std::printf("  heterogeneous 20-ECU subnet: %llu B (one copy per "
              "generation; gen1 die is 3x)\n",
              static_cast<unsigned long long>(gw_hetero));

  const auto evals = bench::EnvU64("BISTDSE_FUT_EVALS", 30000);
  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 120;
  config.seed = 2;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();

  std::printf("\nexplored %zu implementations in %.1f s -> %zu on the front\n",
              result.evaluations, result.wall_seconds, result.pareto.size());

  const dse::ExplorationEntry* headline = nullptr;
  for (const auto& e : result.pareto) {
    if (e.objectives.test_quality_percent < 80.0) continue;
    if (!headline ||
        e.objectives.monetary_cost < headline->objectives.monetary_cost) {
      headline = &e;
    }
  }
  bool ok = headline != nullptr;
  if (headline) {
    const auto& o = headline->objectives;
    const double base = o.monetary_cost - o.pattern_memory_cost;
    std::printf("\nheadline: %.1f %% quality at +%.2f %% cost (gw %llu B, "
                "local %llu B)\n",
                o.test_quality_percent,
                100.0 * o.pattern_memory_cost / base,
                static_cast<unsigned long long>(o.gateway_memory_bytes),
                static_cast<unsigned long long>(o.distributed_memory_bytes));
    ok &= o.pattern_memory_cost / base < 0.15;
  }

  std::printf("\nshape checks:\n");
  std::printf("  per-generation sharing doubles+ the gateway footprint vs "
              "homogeneous ... %s\n",
              gw_hetero >= 3 * gw_homo ? "OK" : "VIOLATED");
  std::printf("  heterogeneous headline stays low-overhead ... %s\n",
              ok ? "OK" : "VIOLATED");
  return (gw_hetero >= 3 * gw_homo && ok) ? 0 : 1;
}
