// Campaign-kernel benchmark: throughput of the streaming sim::CampaignRunner
// across its three heaviest consumers — the PRPG drop campaign behind
// profile coverage curves, the batched STUMPS signature pass, and the fault
// dictionary build — at serial / wide / wide+threaded configurations.
// Bit-identity between configurations is a hard gate: the run fails if any
// parallel or wide configuration deviates from the serial reference.
// Speedups are reported but only informational (CI machines may expose a
// pool with zero workers). Results go to BENCH_campaign.json.
//
// Env: BISTDSE_CAMPAIGN_PATTERNS (default 4096) patterns per campaign,
//      BISTDSE_CAMPAIGN_FAULTS   (default 96)   faults in the STUMPS batch.
// Arg: output path (default BENCH_campaign.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bist/campaign_sources.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/stumps.hpp"
#include "casestudy/casestudy.hpp"
#include "netlist/random_circuit.hpp"
#include "sim/campaign.hpp"
#include "sim/fault_sim.hpp"
#include "sim/wide_word_simd.hpp"
#include "util/thread_pool.hpp"

using namespace bistdse;

namespace {

struct Row {
  std::string campaign;
  std::size_t block_width;
  std::size_t threads;  // 0 = full pool width
  bool shortcuts;
  double wall_seconds;
  double patterns_per_second;
  double speedup_vs_serial;
  bool bit_identical;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_campaign.json";
  bench::PrintHeader(
      "Streaming campaign kernel — patterns/s per consumer",
      "One CampaignRunner serves every BIST campaign; this measures the\n"
      "PRPG drop campaign, the batched STUMPS signature pass and the fault\n"
      "dictionary build at serial, wide, and wide+threaded configurations.\n"
      "Parallel and wide results must be bit-identical to the serial run.");

  const std::uint64_t num_patterns =
      bench::EnvU64("BISTDSE_CAMPAIGN_PATTERNS", 4096);
  const std::size_t num_batch_faults =
      static_cast<std::size_t>(bench::EnvU64("BISTDSE_CAMPAIGN_FAULTS", 96));
  const std::size_t workers = util::ThreadPool::Global().WorkerCount();
  std::printf("pool workers: %zu, patterns: %llu, batch faults: %zu\n\n",
              workers, static_cast<unsigned long long>(num_patterns),
              num_batch_faults);

  const auto cut =
      netlist::GenerateRandomCircuit(casestudy::ScaledCutSpec(1));
  const auto faults = sim::CollapsedFaults(cut);
  const bist::StumpsConfig stumps_config = casestudy::PaperStumpsConfig();

  struct Config {
    std::size_t width, threads;
    bool shortcuts;
  };
  // First row is the PR-5-equivalent baseline: serial, W=1, full event
  // propagation. The rest ablate block width, structural shortcuts and
  // threading independently.
  const Config configs[] = {{1, 1, false}, {4, 1, false}, {4, 1, true},
                            {16, 1, true}, {4, 0, true},  {16, 0, true}};
  std::vector<Row> rows;
  bool all_identical = true;

  // --- PRPG drop campaign (profile coverage curves) -----------------------
  {
    std::vector<std::uint64_t> reference;
    double serial_wall = 0.0;
    for (const Config& c : configs) {
      // Wide configs run the narrow warm-up the profile generator uses: the
      // drop-heavy head drains faster at W = 1, the sparse survivor tail
      // then sweeps W times fewer. Results stay bit-identical either way.
      sim::CampaignRunner runner(cut, {.block_width = c.width,
                                       .threads = c.threads,
                                       .narrow_warmup_patterns = 512,
                                       .structural_shortcuts = c.shortcuts});
      bist::PrpgSource source(stumps_config, cut.CoreInputs().size());
      std::vector<std::uint64_t> first_detect(faults.size(), UINT64_MAX);
      sim::FirstDetectSink sink(first_detect);
      const auto stats = runner.Run(source, sink,
                                    {.max_patterns = num_patterns,
                                     .track = faults,
                                     .drop_detected = true,
                                     .warmup = true});
      if (reference.empty()) {
        reference = first_detect;
        serial_wall = stats.wall_seconds;
      }
      const bool identical = first_detect == reference;
      all_identical &= identical;
      rows.push_back({"prpg_drop", c.width, c.threads, c.shortcuts,
                      stats.wall_seconds, stats.PatternsPerSecond(),
                      serial_wall / stats.wall_seconds, identical});
    }
  }

  // --- Batched STUMPS signature pass --------------------------------------
  {
    std::vector<sim::StuckAtFault> batch;
    const std::size_t stride =
        std::max<std::size_t>(1, faults.size() / num_batch_faults);
    for (std::size_t i = 0; i < faults.size() && batch.size() < num_batch_faults;
         i += stride) {
      batch.push_back(faults[i]);
    }

    std::vector<bist::SessionResult> reference;
    double serial_wall = 0.0;
    for (const Config& c : configs) {
      bist::StumpsConfig config = stumps_config;
      config.sim_block_width = c.width;
      config.sim_threads = c.threads;
      config.structural_shortcuts = c.shortcuts;
      bist::StumpsSession session(cut, config);
      session.GoldenSignatures(num_patterns, {});  // prime outside the timer
      const auto t0 = std::chrono::steady_clock::now();
      const auto results = session.RunBatch(num_patterns, {}, batch);
      const double wall = Seconds(t0);

      bool identical = true;
      if (reference.empty()) {
        reference = results;
        serial_wall = wall;
      } else {
        for (std::size_t i = 0; i < results.size(); ++i) {
          identical &=
              results[i].window_signatures == reference[i].window_signatures;
        }
      }
      all_identical &= identical;
      // Throughput counts session-patterns: every fault replays the stream.
      const double session_patterns =
          static_cast<double>(num_patterns) * static_cast<double>(batch.size());
      rows.push_back({"stumps_batch", c.width, c.threads, c.shortcuts, wall,
                      session_patterns / wall, serial_wall / wall, identical});
    }
  }

  // --- Fault dictionary build ---------------------------------------------
  {
    std::vector<sim::StuckAtFault> dict_faults = faults;
    if (dict_faults.size() > 256) dict_faults.resize(256);
    const std::uint64_t dict_patterns = std::min<std::uint64_t>(
        num_patterns, 1024);  // windows x two passes — keep the build bounded

    std::unique_ptr<bist::FaultDictionary> reference;
    double serial_wall = 0.0;
    for (const Config& c : configs) {
      bist::StumpsConfig dict_config = stumps_config;
      dict_config.structural_shortcuts = c.shortcuts;
      const auto t0 = std::chrono::steady_clock::now();
      bist::FaultDictionary dict(cut, dict_config, dict_patterns, {},
                                 dict_faults, c.threads, c.width);
      const double wall = Seconds(t0);

      bool identical = true;
      if (!reference) {
        reference = std::make_unique<bist::FaultDictionary>(std::move(dict));
        serial_wall = wall;
      } else {
        for (std::size_t f = 0; f < dict_faults.size() && identical; ++f) {
          const auto rows_f = dict.WindowsOf(f);
          const auto ref_f = reference->WindowsOf(f);
          for (std::size_t w = 0; w < rows_f.size(); ++w) {
            identical &= rows_f[w] == ref_f[w];
          }
        }
      }
      all_identical &= identical;
      rows.push_back({"dictionary", c.width, c.threads, c.shortcuts, wall,
                      static_cast<double>(dict_patterns) / wall,
                      serial_wall / wall, identical});
    }
  }

  for (const Row& r : rows) {
    std::printf("%-12s W=%-2zu threads=%zu shortcuts=%-3s: %8.3f s, "
                "%12.0f patterns/s, speedup %.2fx%s\n",
                r.campaign.c_str(), r.block_width, r.threads,
                r.shortcuts ? "on" : "off", r.wall_seconds,
                r.patterns_per_second, r.speedup_vs_serial,
                r.bit_identical ? "" : "  [MISMATCH]");
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"campaign\",\n"
               "  \"cpu\": \"%s\",\n"
               "  \"simd_backend\": \"%s\",\n"
               "  \"pool_workers\": %zu,\n"
               "  \"patterns\": %llu,\n"
               "  \"results\": [\n",
               sim::simd::CpuFeatureString().c_str(), sim::simd::SimdBackendName(),
               workers, static_cast<unsigned long long>(num_patterns));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"campaign\": \"%s\", \"block_width\": %zu, "
                 "\"threads\": %zu, \"shortcuts\": %s, "
                 "\"wall_seconds\": %.6f, "
                 "\"patterns_per_second\": %.1f, \"speedup_vs_serial\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 r.campaign.c_str(), r.block_width, r.threads,
                 r.shortcuts ? "true" : "false", r.wall_seconds,
                 r.patterns_per_second, r.speedup_vs_serial,
                 r.bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("campaign benchmark written to %s\n", path);

  // Hard gate: bit-identity across every configuration. Speedups stay
  // informational — a zero-worker pool legitimately runs everything inline.
  return all_identical ? 0 : 1;
}
