// Diagnosis accuracy of the collected fail data (extension study): injects
// sampled stuck-at defects, runs the BIST session, diagnoses from the
// failing strong-window signatures, and reports how often the true defect
// is recovered — quantifying the paper's claim that a few signatures
// suffice for chip-level diagnosis, and ablating the strong-window design
// (per-window MISR reset, Cook et al. ETS'12) against a plain MISR chain.
//
// Env: BISTDSE_DIAG_PATTERNS (default 512), BISTDSE_DIAG_SAMPLES (default 80).
#include <cstdio>

#include "bench_util.hpp"
#include "bist/diagnosis_eval.hpp"
#include "casestudy/casestudy.hpp"
#include "netlist/random_circuit.hpp"

using namespace bistdse;

int main() {
  bench::PrintHeader(
      "Diagnosis accuracy — fail data -> defect localization",
      "Inject faults, run BIST, diagnose from failing window signatures.\n"
      "Ablation: window granularity and strong windows vs plain MISR.");

  auto spec = casestudy::ScaledCutSpec(3);
  spec.num_gates = 1500;
  spec.num_flops = 128;
  const auto cut = netlist::GenerateRandomCircuit(spec);

  bist::DiagnosisEvalOptions options;
  options.num_random_patterns = bench::EnvU64("BISTDSE_DIAG_PATTERNS", 384);
  options.top_k = 5;
  const auto samples = bench::EnvU64("BISTDSE_DIAG_SAMPLES", 30);
  options.max_samples = samples;

  const auto faults = sim::CollapsedFaults(cut);
  options.sample_stride = std::max<std::size_t>(1, faults.size() / samples);

  std::printf("\nCUT: %zu gates, %zu collapsed faults; session: %llu random "
              "patterns\n\n",
              cut.CombinationalGateCount(), faults.size(),
              static_cast<unsigned long long>(options.num_random_patterns));

  std::printf("  window | MISR mode | injected | escaped | tied1 | top-5 | "
              "mean rank\n");
  // "tied1" counts the true fault tying the best score — with a plain MISR
  // chain nearly all candidates tie, so compare top-5 and mean rank there.
  std::printf("  -------+-----------+----------+---------+-------+-------+"
              "----------\n");

  double strong32_top5 = 0.0, plain32_top5 = 0.0;
  for (const std::uint32_t window : {8u, 32u}) {
    for (const bool strong : {true, false}) {
      if (window == 8 && !strong) continue;  // redundant with window 32
      bist::StumpsConfig config = casestudy::PaperStumpsConfig();
      config.signature_window = window;
      config.reset_misr_per_window = strong;
      const auto acc = bist::EvaluateDiagnosisAccuracy(cut, config, options);
      std::printf("  %6u | %-9s | %8zu | %7zu | %4.0f%% | %4.0f%% | %8.1f\n",
                  window, strong ? "strong" : "plain", acc.injected,
                  acc.escaped, 100.0 * acc.Top1Rate(), 100.0 * acc.TopkRate(),
                  acc.mean_rank);
      if (window == 32 && strong) strong32_top5 = acc.TopkRate();
      if (window == 32 && !strong) plain32_top5 = acc.TopkRate();
    }
  }

  std::printf("\nshape checks:\n");
  const bool ok = strong32_top5 >= plain32_top5 && strong32_top5 >= 0.7;
  std::printf("  strong windows >= plain MISR at window 32 and top-5 >= 70 %% "
              "... %s\n",
              ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
