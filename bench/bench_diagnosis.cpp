// Diagnosis accuracy and fleet-scale serving throughput.
//
// Part 1 (accuracy, extension study): injects sampled stuck-at defects, runs
// the BIST session, diagnoses from the failing strong-window signatures, and
// reports how often the true defect is recovered — quantifying the paper's
// claim that a few signatures suffice for chip-level diagnosis, and ablating
// the strong-window design (per-window MISR reset, Cook et al. ETS'12)
// against a plain MISR chain.
//
// Part 2 (fleet load): the serving path many field returns take — one
// precomputed fault dictionary artifact, reopened per process (owned Load vs
// zero-copy mmap, open time reported separately from first-query time),
// sharded into a DictionaryStore, and hit with query batches across thread
// counts. Baseline is per-query SignatureDiagnosis re-simulation; the run
// gates on the dictionary batch path clearing 10x its queries/s. Campaign
// memoization is measured by two profile generators sharing a CampaignMemo:
// the second generator's random phase must be a cache hit.
//
// Env: BISTDSE_DIAG_PATTERNS (default 384), BISTDSE_DIAG_SAMPLES (default 30),
//      BISTDSE_DICT_FAULTS (default 400), BISTDSE_DICT_QUERIES (default 512),
//      BISTDSE_DICT_RESIM_QUERIES (default 3), BISTDSE_DICT_SHARDS (default 4).
// Arg: output path (default BENCH_diagnosis.json).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "bist/diagnosis.hpp"
#include "bist/diagnosis_eval.hpp"
#include "bist/dictionary_store.hpp"
#include "bist/profile_generator.hpp"
#include "casestudy/casestudy.hpp"
#include "netlist/random_circuit.hpp"
#include "sim/campaign_memo.hpp"
#include "sim/wide_word_simd.hpp"
#include "util/thread_pool.hpp"

using namespace bistdse;

namespace {

struct AccuracyRow {
  std::uint32_t window;
  bool strong;
  std::size_t injected, escaped;
  double top1, top5, mean_rank;
};

struct BatchRow {
  std::size_t shards, threads, queries;
  double wall_seconds, queries_per_second, speedup_vs_resim;
};

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size > 0 ? static_cast<std::uint64_t>(size) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_diagnosis.json";
  bench::PrintHeader(
      "Diagnosis — accuracy and fleet-scale serving throughput",
      "Inject faults, run BIST, diagnose from failing window signatures;\n"
      "then serve dictionary query batches (load vs mmap, sharded store)\n"
      "against the per-query re-simulation baseline.");

  auto spec = casestudy::ScaledCutSpec(3);
  spec.num_gates = 1500;
  spec.num_flops = 128;
  const auto cut = netlist::GenerateRandomCircuit(spec);

  bist::DiagnosisEvalOptions options;
  options.num_random_patterns = bench::EnvU64("BISTDSE_DIAG_PATTERNS", 384);
  options.top_k = 5;
  const auto samples = bench::EnvU64("BISTDSE_DIAG_SAMPLES", 30);
  options.max_samples = samples;

  const auto faults = sim::CollapsedFaults(cut);
  options.sample_stride = std::max<std::size_t>(1, faults.size() / samples);

  std::printf("\nCUT: %zu gates, %zu collapsed faults; session: %llu random "
              "patterns\n\n",
              cut.CombinationalGateCount(), faults.size(),
              static_cast<unsigned long long>(options.num_random_patterns));

  // --- Part 1: accuracy ablation ------------------------------------------
  std::printf("  window | MISR mode | injected | escaped | tied1 | top-5 | "
              "mean rank\n");
  // "tied1" counts the true fault tying the best score — with a plain MISR
  // chain nearly all candidates tie, so compare top-5 and mean rank there.
  std::printf("  -------+-----------+----------+---------+-------+-------+"
              "----------\n");

  std::vector<AccuracyRow> accuracy;
  double strong32_top5 = 0.0, plain32_top5 = 0.0;
  for (const std::uint32_t window : {8u, 32u}) {
    for (const bool strong : {true, false}) {
      if (window == 8 && !strong) continue;  // redundant with window 32
      bist::StumpsConfig config = casestudy::PaperStumpsConfig();
      config.signature_window = window;
      config.reset_misr_per_window = strong;
      const auto acc = bist::EvaluateDiagnosisAccuracy(cut, config, options);
      std::printf("  %6u | %-9s | %8zu | %7zu | %4.0f%% | %4.0f%% | %8.1f\n",
                  window, strong ? "strong" : "plain", acc.injected,
                  acc.escaped, 100.0 * acc.Top1Rate(), 100.0 * acc.TopkRate(),
                  acc.mean_rank);
      accuracy.push_back({window, strong, acc.injected, acc.escaped,
                          acc.Top1Rate(), acc.TopkRate(), acc.mean_rank});
      if (window == 32 && strong) strong32_top5 = acc.TopkRate();
      if (window == 32 && !strong) plain32_top5 = acc.TopkRate();
    }
  }

  // --- Part 2: fleet-scale dictionary serving -----------------------------
  const std::size_t workers = util::ThreadPool::Global().WorkerCount();
  bist::StumpsConfig dict_config = casestudy::PaperStumpsConfig();
  const std::uint64_t dict_patterns = options.num_random_patterns;

  std::vector<sim::StuckAtFault> dict_faults;
  {
    const std::size_t want = std::max<std::uint64_t>(
        1, bench::EnvU64("BISTDSE_DICT_FAULTS", 400));
    const std::size_t stride = std::max<std::size_t>(1, faults.size() / want);
    for (std::size_t f = 0; f < faults.size() && dict_faults.size() < want;
         f += stride) {
      dict_faults.push_back(faults[f]);
    }
  }

  std::printf("\nfleet serving: %zu dictionary faults, %zu pool workers\n",
              dict_faults.size(), workers);

  const auto t_build = std::chrono::steady_clock::now();
  bist::FaultDictionary built(cut, dict_config, dict_patterns, {},
                              dict_faults);
  const double build_s = Seconds(t_build);
  const std::string artifact = "bench_diagnosis.fdict";
  built.Save(artifact);
  const std::uint64_t artifact_bytes = FileBytes(artifact);
  std::printf("  build: %.3f s (%u windows), artifact %llu bytes\n", build_s,
              built.WindowCount(),
              static_cast<unsigned long long>(artifact_bytes));

  // Open paths: owned copy vs zero-copy mapping. Map's open time excludes
  // the payload by construction — the first query is what faults pages in,
  // so it is timed separately.
  const auto t_load = std::chrono::steady_clock::now();
  const auto loaded = bist::FaultDictionary::Load(artifact);
  const double load_s = Seconds(t_load);
  const auto t_map = std::chrono::steady_clock::now();
  const auto mapped = bist::FaultDictionary::Map(artifact);
  const double map_s = Seconds(t_map);

  // Query mix: fail data of sampled injected faults.
  std::vector<std::vector<bist::FailDatum>> fail_sets;
  {
    bist::StumpsSession session(cut, dict_config);
    for (std::size_t f = 0; f < dict_faults.size() && fail_sets.size() < 16;
         f += std::max<std::size_t>(1, dict_faults.size() / 16)) {
      auto result = session.Run(dict_patterns, {}, dict_faults[f]);
      if (!result.fail_data.empty()) {
        fail_sets.push_back(std::move(result.fail_data));
      }
    }
  }
  if (fail_sets.empty()) {
    std::fprintf(stderr, "no failing sessions — cannot benchmark serving\n");
    return 1;
  }

  const auto t_first = std::chrono::steady_clock::now();
  (void)mapped.Diagnose(fail_sets.front(), 5);
  const double map_first_query_s = Seconds(t_first);
  std::printf("  open: load %.3f ms (copy), map %.3f ms + first query "
              "%.3f ms (zero-copy)\n",
              1e3 * load_s, 1e3 * map_s, 1e3 * map_first_query_s);

  // Baseline: per-query SignatureDiagnosis re-simulates the whole session
  // per candidate set — the pre-dictionary serving cost.
  const std::size_t resim_queries = std::max<std::uint64_t>(
      1, bench::EnvU64("BISTDSE_DICT_RESIM_QUERIES", 3));
  bist::SignatureDiagnosis resim(cut, dict_config, dict_patterns, {});
  const auto t_resim = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < resim_queries; ++q) {
    (void)resim.Diagnose(fail_sets[q % fail_sets.size()], dict_faults, 5);
  }
  const double resim_s = Seconds(t_resim);
  const double resim_qps = static_cast<double>(resim_queries) / resim_s;
  std::printf("  re-simulation baseline: %zu queries in %.3f s "
              "(%.1f queries/s)\n",
              resim_queries, resim_s, resim_qps);

  // Sharded batch serving across thread counts.
  const std::size_t num_shards =
      std::max<std::uint64_t>(1, bench::EnvU64("BISTDSE_DICT_SHARDS", 4));
  const std::size_t num_queries =
      std::max<std::uint64_t>(1, bench::EnvU64("BISTDSE_DICT_QUERIES", 512));
  bist::DictionaryStore store;
  for (std::size_t s = 0; s < num_shards; ++s) {
    store.AddFromFile({"ecu-" + std::to_string(s), "p1"}, artifact,
                      /*mapped=*/true);
  }
  std::vector<bist::DictQuery> queries;
  queries.reserve(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    queries.push_back({{"ecu-" + std::to_string(q % num_shards), "p1"},
                       fail_sets[q % fail_sets.size()]});
  }

  std::vector<BatchRow> batches;
  double best_qps = 0.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto results = store.DiagnoseBatch(queries, 5, threads);
    const double wall = Seconds(t0);
    const double qps = static_cast<double>(results.size()) / wall;
    best_qps = std::max(best_qps, qps);
    batches.push_back({num_shards, threads, results.size(), wall, qps,
                       qps / resim_qps});
    std::printf("  batch: %zu shards, threads=%zu: %zu queries in %.3f s "
                "(%.0f queries/s, %.0fx vs re-sim)\n",
                num_shards, threads, results.size(), wall, qps,
                qps / resim_qps);
  }

  // Campaign memoization: a second profile generator over the same
  // (netlist, PRPG stream, faults) serves its random phase from the memo.
  sim::CampaignMemo memo;
  bist::ProfileGeneratorConfig pg_config;
  pg_config.stumps = dict_config;
  pg_config.prp_counts = {dict_patterns};
  pg_config.coverage_targets_percent = {10.0};  // random phase suffices
  pg_config.fill_seeds = {11};
  pg_config.memo = &memo;
  const auto t_cold = std::chrono::steady_clock::now();
  bist::ProfileGenerator cold(cut, pg_config);
  (void)cold.GenerateAll();
  const double cold_s = Seconds(t_cold);
  const auto t_warm = std::chrono::steady_clock::now();
  bist::ProfileGenerator warm(cut, pg_config);
  (void)warm.GenerateAll();
  const double warm_s = Seconds(t_warm);
  std::printf("  memoized campaign: cold %.3f s, warm %.3f s, hit rate "
              "%.0f %% (%llu/%llu)\n",
              cold_s, warm_s, 100.0 * memo.HitRate(),
              static_cast<unsigned long long>(memo.Hits()),
              static_cast<unsigned long long>(memo.Hits() + memo.Misses()));

  // --- gates ---------------------------------------------------------------
  const bool accuracy_ok = strong32_top5 >= plain32_top5 &&
                           strong32_top5 >= 0.7;
  const bool speedup_ok = best_qps >= 10.0 * resim_qps;
  const bool memo_ok = memo.HitRate() > 0.0;
  std::printf("\nshape checks:\n");
  std::printf("  strong windows >= plain MISR at window 32 and top-5 >= 70 %% "
              "... %s\n",
              accuracy_ok ? "OK" : "VIOLATED");
  std::printf("  dictionary batch >= 10x re-simulation queries/s "
              "(%.0f vs %.1f) ... %s\n",
              best_qps, resim_qps, speedup_ok ? "OK" : "VIOLATED");
  std::printf("  campaign memo hit rate > 0 ... %s\n",
              memo_ok ? "OK" : "VIOLATED");

  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"diagnosis\",\n"
               "  \"cpu\": \"%s\",\n"
               "  \"simd_backend\": \"%s\",\n"
               "  \"pool_workers\": %zu,\n"
               "  \"patterns\": %llu,\n"
               "  \"accuracy\": [\n",
               sim::simd::CpuFeatureString().c_str(),
               sim::simd::SimdBackendName(), workers,
               static_cast<unsigned long long>(options.num_random_patterns));
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyRow& r = accuracy[i];
    std::fprintf(out,
                 "    {\"window\": %u, \"strong\": %s, \"injected\": %zu, "
                 "\"escaped\": %zu, \"top1\": %.4f, \"top5\": %.4f, "
                 "\"mean_rank\": %.2f}%s\n",
                 r.window, r.strong ? "true" : "false", r.injected, r.escaped,
                 r.top1, r.top5, r.mean_rank,
                 i + 1 < accuracy.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"fleet\": {\n"
               "    \"dict_faults\": %zu,\n"
               "    \"windows\": %u,\n"
               "    \"build_seconds\": %.6f,\n"
               "    \"artifact_bytes\": %llu,\n"
               "    \"load_seconds\": %.6f,\n"
               "    \"map_seconds\": %.6f,\n"
               "    \"map_first_query_seconds\": %.6f,\n"
               "    \"resim_queries_per_second\": %.3f,\n"
               "    \"batch\": [\n",
               dict_faults.size(), built.WindowCount(), build_s,
               static_cast<unsigned long long>(artifact_bytes), load_s, map_s,
               map_first_query_s, resim_qps);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const BatchRow& b = batches[i];
    std::fprintf(out,
                 "      {\"shards\": %zu, \"threads\": %zu, \"queries\": %zu, "
                 "\"wall_seconds\": %.6f, \"queries_per_second\": %.1f, "
                 "\"speedup_vs_resim\": %.1f}%s\n",
                 b.shards, b.threads, b.queries, b.wall_seconds,
                 b.queries_per_second, b.speedup_vs_resim,
                 i + 1 < batches.size() ? "," : "");
  }
  std::fprintf(out,
               "    ],\n"
               "    \"memo\": {\"hits\": %llu, \"misses\": %llu, "
               "\"hit_rate\": %.4f, \"cold_seconds\": %.6f, "
               "\"warm_seconds\": %.6f}\n"
               "  },\n"
               "  \"gates\": {\"accuracy_ok\": %s, \"speedup_ok\": %s, "
               "\"memo_ok\": %s}\n"
               "}\n",
               static_cast<unsigned long long>(memo.Hits()),
               static_cast<unsigned long long>(memo.Misses()), memo.HitRate(),
               cold_s, warm_s, accuracy_ok ? "true" : "false",
               speedup_ok ? "true" : "false", memo_ok ? "true" : "false");
  std::fclose(out);
  std::printf("diagnosis benchmark written to %s\n", out_path);
  std::remove(artifact.c_str());

  return accuracy_ok && speedup_ok && memo_ok ? 0 : 1;
}
