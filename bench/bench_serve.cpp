// Diagnosis-server benchmark: fleet fail-data uploads over the simulated
// diagnostic bus, batched DiagnoseBatch fan-out, segmented replies. Reports
// end-to-end request latency percentiles (simulated ms, admission to
// answer) and throughput at 0 %, 1 %, and 5 % injected frame loss, plus a
// mid-run dictionary rollover at the 5 % point, and writes them to
// BENCH_serve.json.
//
// Env: BISTDSE_SERVE_QUERIES (default 96) requests per loss rate.
// Arg: output path (default BENCH_serve.json).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "bist/stumps.hpp"
#include "netlist/random_circuit.hpp"
#include "serve/server.hpp"
#include "sim/fault.hpp"

using namespace bistdse;

namespace {

netlist::Netlist BenchCut() {
  netlist::RandomCircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 8;
  spec.num_flops = 24;
  spec.num_gates = 260;
  spec.num_hard_blocks = 2;
  spec.hard_block_width = 6;
  spec.seed = 71;
  return netlist::GenerateRandomCircuit(spec);
}

bist::StumpsConfig BenchConfig() {
  bist::StumpsConfig config;
  config.signature_window = 16;
  config.prpg_seed = 0x51;
  return config;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

struct Row {
  double loss_rate;
  std::uint64_t submitted, answered, rejected, failures;
  std::uint64_t retransmissions;
  std::uint32_t generation;
  double p50_ms, p95_ms, p99_ms;
  double simulated_ms;
  double wall_seconds;
};

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_serve.json";
  bench::PrintHeader(
      "Diagnosis server — fleet uploads over the lossy diagnostic bus",
      "Field-return fail data travels as segmented uploads through the\n"
      "deterministic fault injector, is diagnosed in DiagnoseBatch batches\n"
      "against the current dictionary generation, and the top-k ranking\n"
      "returns as a segmented reply. Every request must be answered at\n"
      "every loss rate; the 5 % point also rolls the dictionary over\n"
      "mid-run (zero dropped requests across the reload).");

  const std::uint64_t num_queries = bench::EnvU64("BISTDSE_SERVE_QUERIES", 96);
  const auto cut = BenchCut();
  const auto config = BenchConfig();
  const auto faults = sim::CollapsedFaults(cut);
  constexpr std::uint64_t kPatterns = 256;

  // Fail data of sampled injected faults — the fleet's upload payloads.
  std::vector<std::vector<bist::FailDatum>> payloads;
  {
    bist::StumpsSession session(cut, config);
    for (std::size_t fi = 0; fi < faults.size() && payloads.size() < 12;
         fi += 67) {
      auto result = session.Run(kPatterns, {}, faults[fi]);
      if (!result.fail_data.empty()) payloads.push_back(std::move(result.fail_data));
    }
  }
  if (payloads.empty()) {
    std::fprintf(stderr, "no failing sessions to serve\n");
    return 1;
  }

  const std::size_t kShards = 3;
  auto make_store = [&] {
    bist::DictionaryStore store;
    for (std::size_t s = 0; s < kShards; ++s) {
      store.Add({"ecu-" + std::to_string(s), "p1"},
                bist::FaultDictionary(cut, config, kPatterns, {}, faults));
    }
    return store;
  };

  std::vector<Row> rows;
  for (const double loss : {0.0, 0.01, 0.05}) {
    serve::DiagnosisServerConfig server_config;
    server_config.threads = 0;
    server_config.faults.drop_rate = loss;
    server_config.faults.corrupt_rate = loss / 5.0;
    server_config.faults.reorder_rate = loss / 5.0;
    server_config.faults.seed = 7;
    serve::DiagnosisServer server(make_store(), server_config);

    // Pace each ECU's offered load to its carrier (25 % retry headroom).
    std::vector<double> next_release(kShards, 0.0);
    for (std::uint64_t q = 0; q < num_queries; ++q) {
      const std::size_t s = q % kShards;
      const std::uint64_t id = server.Submit(
          {{"ecu-" + std::to_string(s), "p1"}, payloads[q % payloads.size()]},
          next_release[s]);
      const double frames = static_cast<double>(
          (server.Outcome(id).upload_bytes + server_config.payload_bytes - 1) /
          server_config.payload_bytes);
      next_release[s] += 1.25 * frames * server_config.slot_period_ms + 5.0;
    }

    const bool reload_mid_run = loss >= 0.05;
    const auto t0 = std::chrono::steady_clock::now();
    if (reload_mid_run) {
      while (server.Stats().answered < num_queries / 2 && !server.AllDone()) {
        server.Run(server.NowMs() + 50.0);
      }
      server.Store().Reload(make_store());
    }
    server.Run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const serve::ServerStats& stats = server.Stats();
    std::vector<double> latencies;
    std::uint64_t retransmissions = 0;
    for (std::uint64_t q = 0; q < num_queries; ++q) {
      const serve::RequestOutcome& outcome = server.Outcome(q);
      retransmissions += outcome.upload.retransmissions +
                         outcome.response.retransmissions;
      if (outcome.status == serve::RequestStatus::Answered) {
        latencies.push_back(outcome.answered_ms - outcome.admitted_ms);
      }
    }
    Row row{loss,
            stats.submitted,
            stats.answered,
            stats.rejected_busy,
            stats.upload_failures + stats.response_failures,
            retransmissions,
            server.Store().Version(),
            Percentile(latencies, 0.50),
            Percentile(latencies, 0.95),
            Percentile(latencies, 0.99),
            server.NowMs(),
            wall};
    rows.push_back(row);

    std::printf(
        "loss %.0f %%: %llu/%llu answered in %.0f simulated ms (%.3f s "
        "wall, %.0f req/simulated-s) — latency p50 %.1f / p95 %.1f / "
        "p99 %.1f ms, %llu retransmissions, generation v%u\n",
        100.0 * loss, static_cast<unsigned long long>(row.answered),
        static_cast<unsigned long long>(row.submitted), row.simulated_ms,
        wall, 1e3 * static_cast<double>(row.answered) / row.simulated_ms,
        row.p50_ms, row.p95_ms, row.p99_ms,
        static_cast<unsigned long long>(row.retransmissions), row.generation);
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"diagnosis_server\",\n"
               "  \"queries\": %llu,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(num_queries));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"frame_loss\": %.4f, \"submitted\": %llu, \"answered\": "
        "%llu, \"rejected_busy\": %llu, \"transfer_failures\": %llu, "
        "\"retransmissions\": %llu, \"generation\": %u, \"latency_p50_ms\": "
        "%.3f, \"latency_p95_ms\": %.3f, \"latency_p99_ms\": %.3f, "
        "\"simulated_ms\": %.1f, \"requests_per_simulated_second\": %.2f, "
        "\"wall_seconds\": %.4f}%s\n",
        r.loss_rate, static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.answered),
        static_cast<unsigned long long>(r.rejected),
        static_cast<unsigned long long>(r.failures),
        static_cast<unsigned long long>(r.retransmissions), r.generation,
        r.p50_ms, r.p95_ms, r.p99_ms, r.simulated_ms,
        1e3 * static_cast<double>(r.answered) / r.simulated_ms,
        r.wall_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("serve benchmark written to %s\n", path);

  // Acceptance gate for CI: every request answered at every loss rate, the
  // rollover applied, and loss must cost latency, not correctness.
  for (const Row& r : rows) {
    if (r.answered != r.submitted || r.rejected != 0 || r.failures != 0) {
      return 1;
    }
    if (r.loss_rate >= 0.05 && r.generation != 1) return 1;
  }
  return 0;
}
