// Reproduces Fig. 6: gateway vs. distributed pattern memory and shut-off
// time (log scale) for seven representative implementations of the Fig. 5
// front. The paper picks implementations 1, 3, 7 with nearly identical test
// quality (trading shut-off time against memory cost) and implementations
// 2, 4, 5, 6 with higher test quality, where the gateway share drops because
// the mirrored transfer cannot move the data in reasonable time for some
// ECUs.
//
// Env: BISTDSE_EVALS (default 60000), BISTDSE_SEED (default 1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"

using namespace bistdse;

namespace {

void PrintBar(const char* label, double value, double max_value, int width) {
  const int n = max_value > 0
                    ? static_cast<int>(value / max_value * width + 0.5)
                    : 0;
  std::printf("    %-10s |", label);
  for (int i = 0; i < n; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Fig. 6 — gateway vs. distributed diagnosis memory, shut-off (log s)",
      "Seven representatives: three of (nearly) equal test quality trading\n"
      "memory cost against shut-off time, four of higher quality with a\n"
      "lower gateway share (communication demands cap central storage).");

  const auto evals = bench::EnvU64("BISTDSE_EVALS", 60000);
  const auto seed = bench::EnvU64("BISTDSE_SEED", 1);

  auto cs = casestudy::BuildCaseStudy();
  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 150;
  config.mutation_rate = 3.0 / 2236.0;
  config.seed = seed;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();
  std::printf("\n(front of %zu implementations from %zu evaluations)\n\n",
              result.pareto.size(), result.evaluations);

  // Selection: bucket the front by quality; from the densest quality band
  // pick 3 spanning the gateway-share spectrum; from higher-quality bands
  // pick 4 more.
  std::vector<const dse::ExplorationEntry*> front;
  for (const auto& e : result.pareto) {
    if (e.objectives.ecus_with_bist > 0) front.push_back(&e);
  }
  if (front.size() < 7) {
    std::printf("front too small, raise BISTDSE_EVALS\n");
    return 1;
  }
  std::sort(front.begin(), front.end(), [](const auto* a, const auto* b) {
    return a->objectives.test_quality_percent <
           b->objectives.test_quality_percent;
  });
  const double q_median =
      front[front.size() / 2]->objectives.test_quality_percent;

  // Iso-quality band around the median.
  std::vector<const dse::ExplorationEntry*> band;
  for (const auto* e : front) {
    if (std::abs(e->objectives.test_quality_percent - q_median) < 0.35) {
      band.push_back(e);
    }
  }
  std::sort(band.begin(), band.end(), [](const auto* a, const auto* b) {
    return a->objectives.gateway_memory_bytes <
           b->objectives.gateway_memory_bytes;
  });
  std::vector<const dse::ExplorationEntry*> chosen;
  if (band.size() >= 3) {
    chosen.push_back(band.front());
    chosen.push_back(band[band.size() / 2]);
    chosen.push_back(band.back());
  } else {
    chosen.assign(front.begin(), front.begin() + 3);
  }
  // Four higher-quality picks, spread over the top quartile.
  const std::size_t top_begin = front.size() * 3 / 4;
  for (int k = 0; k < 4; ++k) {
    const std::size_t idx =
        top_begin + k * (front.size() - 1 - top_begin) / 3;
    chosen.push_back(front[idx]);
  }

  double max_mem = 0;
  for (const auto* e : chosen) {
    max_mem = std::max(max_mem,
                       static_cast<double>(e->objectives.gateway_memory_bytes +
                                           e->objectives.distributed_memory_bytes));
  }

  std::printf("  impl | quality  |   cost  | shut-off [s] | gateway [B] | "
              "distributed [B] | gw share\n");
  std::printf("  -----+----------+---------+--------------+-------------+"
              "-----------------+---------\n");
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& o = chosen[i]->objectives;
    const double total = static_cast<double>(o.gateway_memory_bytes +
                                             o.distributed_memory_bytes);
    std::printf("  %4zu | %6.2f %% | %7.1f | %12.2f | %11llu | %15llu | "
                "%6.1f %%\n",
                i + 1, o.test_quality_percent, o.monetary_cost,
                o.shutoff_time_ms / 1e3,
                static_cast<unsigned long long>(o.gateway_memory_bytes),
                static_cast<unsigned long long>(o.distributed_memory_bytes),
                total > 0 ? 100.0 * o.gateway_memory_bytes / total : 0.0);
  }

  std::printf("\n  memory bars (gw = gateway, dist = distributed):\n");
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto& o = chosen[i]->objectives;
    std::printf("  impl %zu  (shut-off 10^%.1f s)\n", i + 1,
                o.shutoff_time_ms > 0 ? std::log10(o.shutoff_time_ms / 1e3)
                                      : -3.0);
    PrintBar("gateway", static_cast<double>(o.gateway_memory_bytes), max_mem,
             50);
    PrintBar("distrib", static_cast<double>(o.distributed_memory_bytes),
             max_mem, 50);
  }

  // The paper's qualitative claims for this figure.
  std::printf("\nshape checks:\n");
  const auto& a = chosen[0]->objectives;  // iso-quality, lowest gw share
  const auto& c = chosen[2]->objectives;  // iso-quality, highest gw share
  const bool tradeoff = a.monetary_cost >= c.monetary_cost &&
                        a.shutoff_time_ms <= c.shutoff_time_ms;
  std::printf("  within the iso-quality trio, more gateway storage => lower "
              "cost, higher shut-off ... %s\n",
              tradeoff ? "OK" : "VIOLATED");
  return tradeoff ? 0 : 1;
}
