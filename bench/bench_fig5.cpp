// Reproduces Fig. 5: the Pareto front of monetary costs versus test quality
// for the 15-ECU case study, with implementations split at a shut-off time
// of 20 seconds (the paper marks <= 20 s with a filled circle and > 20 s
// with a triangle). Also reports the paper's headline metrics: number of
// non-dominated implementations and the cheapest implementation with
// >= 80 % test quality relative to a diagnosis-free design.
//
// Env: BISTDSE_EVALS (default 60000), BISTDSE_SEED (default 1),
//      BISTDSE_POP (default 150).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/refine.hpp"

using namespace bistdse;

int main() {
  bench::PrintHeader(
      "Fig. 5 — monetary costs vs. test quality, split at 20 s shut-off",
      "Paper: 176 non-dominated implementations out of 100,000 evaluated;\n"
      "80.7 % test quality at < 3.7 % additional cost (patterns stored\n"
      "centrally at the gateway -> shut-off > 20 s).");

  const auto evals = bench::EnvU64("BISTDSE_EVALS", 60000);
  const auto seed = bench::EnvU64("BISTDSE_SEED", 1);
  const auto pop = bench::EnvU64("BISTDSE_POP", 150);

  auto cs = casestudy::BuildCaseStudy();
  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = pop;
  config.mutation_rate = 3.0 / 2236.0;
  config.seed = seed;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();

  std::printf("\nevaluated %zu implementations in %.1f s (%.0f/s); "
              "%zu non-dominated (paper: 176 of 100,000 in 29 min)\n\n",
              result.evaluations, result.wall_seconds, result.Throughput(),
              result.pareto.size());

  std::vector<const dse::ExplorationEntry*> front;
  for (const auto& e : result.pareto) front.push_back(&e);
  std::sort(front.begin(), front.end(), [](const auto* a, const auto* b) {
    return a->objectives.monetary_cost < b->objectives.monetary_cost;
  });

  int fast = 0, slow = 0;
  for (const auto* e : front) {
    (e->objectives.shutoff_time_ms <= 20000 ? fast : slow)++;
  }
  std::printf("shut-off <= 20 s (o): %d   shut-off > 20 s (^): %d\n\n", fast,
              slow);

  std::printf("  cost    | quality  | mark | shut-off [s] | gw mem [B] | "
              "local mem [B]\n");
  std::printf("----------+----------+------+--------------+------------+"
              "--------------\n");
  const std::size_t stride = std::max<std::size_t>(1, front.size() / 40);
  for (std::size_t i = 0; i < front.size(); i += stride) {
    const auto& o = front[i]->objectives;
    std::printf("  %7.1f | %6.2f %% |  %s   | %12.1f | %10llu | %12llu\n",
                o.monetary_cost, o.test_quality_percent,
                o.shutoff_time_ms <= 20000 ? "o" : "^",
                o.shutoff_time_ms / 1e3,
                static_cast<unsigned long long>(o.gateway_memory_bytes),
                static_cast<unsigned long long>(o.distributed_memory_bytes));
  }

  // Headline (paper §IV.B wording): an implementation with >= 80 % test
  // quality whose *additional* (diagnosis-induced) costs — the pattern
  // memory — are smallest relative to the same design without structural
  // tests.
  const dse::ExplorationEntry* headline = nullptr;
  double headline_rel = 0.0;
  for (const auto* e : front) {
    const auto& o = e->objectives;
    if (o.test_quality_percent < 80.0) continue;
    const double rel =
        o.pattern_memory_cost / (o.monetary_cost - o.pattern_memory_cost);
    if (!headline || rel < headline_rel) {
      headline = e;
      headline_rel = rel;
    }
  }
  if (headline) {
    const auto& o = headline->objectives;
    const double mem_cost = o.pattern_memory_cost;
    const double base = o.monetary_cost - mem_cost;
    std::printf("\nheadline: %.1f %% test quality at +%.2f %% cost over the "
                "diagnosis-free design\n          (paper: 80.7 %% at "
                "< 3.7 %%)\n",
                o.test_quality_percent, 100.0 * mem_cost / base);
    std::printf("          shut-off %.1f s (pattern data at the gateway: "
                "%llu B vs %llu B local)\n",
                o.shutoff_time_ms / 1e3,
                static_cast<unsigned long long>(o.gateway_memory_bytes),
                static_cast<unsigned long long>(o.distributed_memory_bytes));
  } else {
    std::printf("\nheadline: no implementation with >= 80 %% quality found — "
                "raise BISTDSE_EVALS\n");
  }

  // Optional memetic polish (extension over the paper's flow): local moves
  // on the front often shave the last distinct gateway profiles.
  const auto refine_evals = bench::EnvU64("BISTDSE_REFINE", 15000);
  if (refine_evals > 0) {
    dse::RefineOptions opts;
    opts.max_evaluations = refine_evals;
    opts.seed = seed;
    const auto refined =
        dse::RefineFront(cs.spec, cs.augmentation, result.pareto, opts);
    const dse::ExplorationEntry* best = nullptr;
    double best_rel = 0.0;
    for (const auto& e : refined.pareto) {
      const auto& o = e.objectives;
      if (o.test_quality_percent < 80.0) continue;
      const double rel =
          o.pattern_memory_cost / (o.monetary_cost - o.pattern_memory_cost);
      if (!best || rel < best_rel) {
        best = &e;
        best_rel = rel;
      }
    }
    if (best) {
      const auto& o = best->objectives;
      const double base = o.monetary_cost - o.pattern_memory_cost;
      std::printf("\nafter memetic refinement (%zu neighbor evals, %zu "
                  "improvements):\n",
                  refined.evaluations, refined.improvements);
      std::printf("          %.1f %% quality at +%.2f %% cost; front size "
                  "%zu\n",
                  o.test_quality_percent,
                  100.0 * o.pattern_memory_cost / base, refined.pareto.size());
    }
  }
  return 0;
}
