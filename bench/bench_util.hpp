// Shared helpers for the reproduction benches.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace bistdse::bench {

/// Reads an unsigned environment override, e.g. BISTDSE_EVALS=100000.
inline std::uint64_t EnvU64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (!value || !*value) return fallback;
  return std::strtoull(value, nullptr, 10);
}

inline void PrintHeader(const char* artifact, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", artifact, description);
  std::printf("==============================================================\n");
}

}  // namespace bistdse::bench
