// Ablation studies for the design choices the paper motivates:
//
//  (a) Pattern storage policy — forced all-local vs. forced all-gateway vs.
//      free (explored) placement of the BIST data tasks b^D. The free
//      policy must dominate both forced corners in the cost/shut-off plane.
//  (b) Test-data transfer — mirrored messages (paper §III-B, Eq. 1) vs. a
//      naive lowest-priority burst: the burst is faster on the wire but
//      perturbs the certified schedule (non-intrusiveness check fails).
//  (c) Download technology — classic CAN slots vs. CAN FD payloads in the
//      same slots (the paper's "extensible to other automotive field
//      buses" direction).
//
// Env: BISTDSE_ABL_EVALS (default 20000).
#include <cstdio>

#include "bench_util.hpp"
#include "can/mirroring.hpp"
#include "can/simulator.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/exploration.hpp"

using namespace bistdse;

namespace {

/// Decodes a policy-forced implementation: every ECU runs `profile_index`,
/// with its pattern data local or at the gateway.
dse::Objectives ForcedPolicy(const casestudy::CaseStudy& cs,
                             std::uint32_t profile_index, bool local) {
  dse::SatDecoder decoder(cs.spec, cs.augmentation, true);
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[profile_index];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_local = mappings[m].resource == ecu;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  const auto impl = decoder.Decode(g);
  return dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl);
}

void PrintRow(const char* policy, const dse::Objectives& o) {
  std::printf("  %-22s | %6.2f %% | %8.1f | %12.2f | %9llu | %11llu\n",
              policy, o.test_quality_percent, o.monetary_cost,
              o.shutoff_time_ms / 1e3,
              static_cast<unsigned long long>(o.gateway_memory_bytes),
              static_cast<unsigned long long>(o.distributed_memory_bytes));
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — storage policy and transfer mechanism",
      "(a) all-local vs. all-gateway vs. freely explored b^D placement;\n"
      "(b) mirrored transfer (Eq. 1) vs. naive lowest-priority burst.");

  auto cs = casestudy::BuildCaseStudy();

  // --- (a) storage policy -------------------------------------------------
  std::printf("\n(a) storage policy, profile 4 (95.7 %%, 455 kB) on every "
              "ECU:\n\n");
  std::printf("  policy                 | quality  |   cost   | shut-off [s] "
              "|  gw [B]   |  local [B]\n");
  std::printf("  -----------------------+----------+----------+--------------"
              "+-----------+------------\n");
  const auto all_local = ForcedPolicy(cs, 3, true);
  const auto all_gateway = ForcedPolicy(cs, 3, false);
  PrintRow("all-local", all_local);
  PrintRow("all-gateway (shared)", all_gateway);

  const auto evals = bench::EnvU64("BISTDSE_ABL_EVALS", 20000);
  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 100;
  config.seed = 11;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();

  // From the free exploration: cheapest and fastest points at >= 95 quality.
  const dse::ExplorationEntry* cheapest = nullptr;
  const dse::ExplorationEntry* fastest = nullptr;
  for (const auto& e : result.pareto) {
    if (e.objectives.test_quality_percent < 95.0) continue;
    if (!cheapest ||
        e.objectives.monetary_cost < cheapest->objectives.monetary_cost) {
      cheapest = &e;
    }
    if (!fastest ||
        e.objectives.shutoff_time_ms < fastest->objectives.shutoff_time_ms) {
      fastest = &e;
    }
  }
  if (cheapest) PrintRow("explored: cheapest", cheapest->objectives);
  if (fastest) PrintRow("explored: fastest", fastest->objectives);

  bool ok = true;
  if (cheapest && fastest) {
    ok &= cheapest->objectives.monetary_cost <= all_local.monetary_cost;
    ok &= fastest->objectives.shutoff_time_ms <= all_gateway.shutoff_time_ms;
  }
  std::printf("\n  check: exploration matches/beats each forced corner in "
              "its own discipline ... %s\n",
              ok ? "OK" : "VIOLATED");
  std::printf("  check: all-gateway is ~%.0fx cheaper in memory cost, "
              "all-local ~%.0fx faster to shut off\n",
              all_local.pattern_memory_cost /
                  std::max(1e-9, all_gateway.pattern_memory_cost),
              all_gateway.shutoff_time_ms /
                  std::max(1e-9, all_local.shutoff_time_ms));

  // --- (b) mirrored vs. burst transfer ------------------------------------
  std::printf("\n(b) transfer mechanism on a representative body bus:\n\n");
  can::CanBus bus("body", 500e3);
  std::vector<can::CanMessage> ecu_tx;
  {
    can::CanMessage m;
    m.name = "e1";
    m.id = 16;
    m.payload_bytes = 4;
    m.period_ms = 10;
    ecu_tx.push_back(m);
    m.name = "e2";
    m.id = 48;
    m.payload_bytes = 2;
    m.period_ms = 20;
    ecu_tx.push_back(m);
  }
  {
    can::CanMessage m;
    m.name = "other0";
    m.id = 0;
    m.payload_bytes = 2;
    m.period_ms = 5;
    bus.AddMessage(m);
    bus.AddMessage(ecu_tx[0]);
    m.name = "other32";
    m.id = 32;
    m.payload_bytes = 4;
    m.period_ms = 10;
    bus.AddMessage(m);
    bus.AddMessage(ecu_tx[1]);
    m.name = "other64";
    m.id = 64;
    m.payload_bytes = 2;
    m.period_ms = 20;
    bus.AddMessage(m);
  }

  const std::uint64_t data_bytes = 455061;  // profile 4
  const auto mirrored = can::MakeMirroredMessages(ecu_tx, 1);
  const auto mirrored_report = can::CheckNonIntrusiveness(bus, ecu_tx, mirrored);
  const double mirrored_ms = can::MirroredTransferTimeMs(data_bytes, ecu_tx);

  const auto burst = can::MakeBurstTransfer(data_bytes, 100, bus.BitrateBps());
  std::vector<can::CanMessage> burst_set = {burst.message};
  const auto burst_report = can::CheckNonIntrusiveness(bus, ecu_tx, burst_set);

  std::printf("  mechanism | transfer time [s] | non-intrusive | max WCRT "
              "increase [ms]\n");
  std::printf("  ----------+-------------------+---------------+------------"
              "----------\n");
  std::printf("  mirrored  | %17.1f | %13s | %.3f\n", mirrored_ms / 1e3,
              mirrored_report.non_intrusive ? "YES" : "NO",
              mirrored_report.max_wcrt_increase_ms);
  std::printf("  burst     | %17.1f | %13s | %.3f\n", burst.wire_time_ms / 1e3,
              burst_report.non_intrusive ? "YES" : "NO",
              burst_report.max_wcrt_increase_ms);

  const bool b_ok = mirrored_report.non_intrusive &&
                    !burst_report.non_intrusive &&
                    burst.wire_time_ms < mirrored_ms;
  std::printf("\n  check: burst is faster but intrusive; mirroring preserves "
              "every WCRT ... %s\n",
              b_ok ? "OK" : "VIOLATED");

  // --- (c) CAN FD mirrored downloads (future field bus) -------------------
  std::printf("\n(c) mirrored download technology, profile 4 all-gateway:\n\n");
  const auto classic_fd = ForcedPolicy(cs, 3, false);
  dse::SatDecoder fd_decoder(cs.spec, cs.augmentation);
  // Re-evaluate the same all-gateway design under FD slots.
  moea::Genotype g;
  g.priorities.assign(fd_decoder.GenotypeSize(), 0.5);
  g.phases.assign(fd_decoder.GenotypeSize(), 0);
  const auto mappings2 = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[3];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool is_gw = mappings2[m].resource != ecu;
      g.phases[m] = is_gw ? 1 : 0;
      g.priorities[m] = is_gw ? 0.8 : 0.1;
    }
  }
  const auto fd_impl = fd_decoder.Decode(g);
  dse::EvaluationOptions fd_options;
  fd_options.use_can_fd = true;
  const auto fd_obj = dse::EvaluateImplementation(cs.spec, cs.augmentation,
                                                  *fd_impl, fd_options);
  std::printf("  classic CAN shut-off: %10.1f s\n",
              classic_fd.shutoff_time_ms / 1e3);
  std::printf("  CAN FD   shut-off:    %10.1f s (%.0fx faster)\n",
              fd_obj.shutoff_time_ms / 1e3,
              classic_fd.shutoff_time_ms / fd_obj.shutoff_time_ms);
  const bool c_ok = fd_obj.shutoff_time_ms < classic_fd.shutoff_time_ms / 4;
  std::printf("  check: FD payloads cut the download by the payload ratio "
              "... %s\n",
              c_ok ? "OK" : "VIOLATED");
  return ok && b_ok && c_ok ? 0 : 1;
}
