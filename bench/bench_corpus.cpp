// Corpus sweep benchmark: seeded E/E-architecture families (5-50 ECUs,
// 2-8 classic-CAN/CAN-FD buses) through the full pipeline — generation,
// DSE, representative pick, and an adversarial frame-level campaign — with
// the three PERF.md invariants asserted on every round. Reports per-topology
// structure, exploration and campaign wall time, and the invariant verdicts,
// and writes them to BENCH_corpus.json.
//
// Env: BISTDSE_CORPUS_COUNT (default 10) sampled topologies,
//      BISTDSE_CORPUS_SEED (default 1) corpus seed,
//      BISTDSE_CORPUS_EVALS (default 300) DSE evaluations per topology,
//      BISTDSE_CORPUS_ROUNDS (default 3) adversarial rounds per topology.
// Arg: output path (default BENCH_corpus.json).
#include <cstdio>

#include "arch/corpus.hpp"
#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"

using namespace bistdse;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_corpus.json";
  bench::PrintHeader(
      "Corpus sweep — the paper's invariants on generated architectures",
      "Seeded topology families beyond the case study, each explored and\n"
      "then replayed under randomized loss/corruption/reordering schedules.\n"
      "Every round must respect the Eq.-1 lower bound, WCRT domination, and\n"
      "functional-schedule non-intrusiveness.");

  arch::CorpusSpec corpus;
  corpus.count = bench::EnvU64("BISTDSE_CORPUS_COUNT", 10);
  corpus.seed = bench::EnvU64("BISTDSE_CORPUS_SEED", 1);
  corpus.profile_pool = casestudy::ScaledTableI(1.0 / 256, 4);

  arch::CorpusSweepOptions options;
  options.exploration.evaluations = bench::EnvU64("BISTDSE_CORPUS_EVALS", 300);
  options.exploration.population_size = 24;
  options.exploration.seed = corpus.seed;
  options.campaign.rounds = bench::EnvU64("BISTDSE_CORPUS_ROUNDS", 3);
  options.campaign.seed = corpus.seed;

  const arch::CorpusSweepReport report = arch::SweepCorpus(corpus, options);
  std::printf("%s", arch::FormatCorpusReport(report).c_str());

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"corpus_sweep\",\n"
               "  \"corpus_seed\": %llu,\n"
               "  \"evaluations\": %llu,\n"
               "  \"all_passed\": %s,\n"
               "  \"rounds_executed\": %zu,\n"
               "  \"topologies\": [\n",
               static_cast<unsigned long long>(corpus.seed),
               static_cast<unsigned long long>(
                   options.exploration.evaluations),
               report.all_passed ? "true" : "false", report.rounds_executed);
  for (std::size_t i = 0; i < report.topologies.size(); ++i) {
    const arch::CorpusTopologyResult& t = report.topologies[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"ecus\": %zu, \"buses\": %zu, "
        "\"fd_buses\": %zu, \"generations\": %zu, "
        "\"content_hash\": \"0x%016llx\", \"pareto_size\": %zu, "
        "\"quality_percent\": %.2f, \"cost\": %.2f, "
        "\"explore_seconds\": %.3f, \"campaign_seconds\": %.3f, "
        "\"rounds\": %zu, \"frames_dropped\": %llu, "
        "\"q_bounded\": %s, \"wcrt_dominated\": %s, "
        "\"non_intrusive\": %s, \"passed\": %s}%s\n",
        t.name.c_str(), t.num_ecus, t.num_buses, t.fd_buses, t.generations,
        static_cast<unsigned long long>(t.content_hash), t.pareto_size,
        t.representative.test_quality_percent, t.representative.monetary_cost,
        t.explore_seconds, t.campaign_seconds, t.campaign.rounds.size(),
        static_cast<unsigned long long>(t.campaign.total_frames_dropped),
        t.campaign.all_q_bounded ? "true" : "false",
        t.campaign.all_wcrt_dominated ? "true" : "false",
        t.campaign.all_non_intrusive ? "true" : "false",
        t.passed ? "true" : "false",
        i + 1 < report.topologies.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("corpus benchmark written to %s\n", path);

  // CI acceptance gate: an invariant violation anywhere in the corpus fails
  // the sweep leg.
  return report.all_passed ? 0 : 1;
}
