// Micro-benchmarks (google-benchmark) for the substrate layers: logic/fault
// simulation, PODEM, reseeding, SAT decoding, CAN response-time analysis.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>
#include <thread>

#include "atpg/podem.hpp"
#include "bist/reseeding.hpp"
#include "can/bus.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/routing_encoding.hpp"
#include "dse/objectives.hpp"
#include "netlist/random_circuit.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/profile_generator.hpp"
#include "bist/scan_sim.hpp"
#include "sim/fault_sim.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/wide_word_simd.hpp"
#include "sim/transition_fault.hpp"
#include "util/rng.hpp"

using namespace bistdse;

namespace {

const netlist::Netlist& Cut() {
  static const netlist::Netlist cut = [] {
    auto spec = casestudy::ScaledCutSpec(1);
    return netlist::GenerateRandomCircuit(spec);
  }();
  return cut;
}

void BM_LogicSim64Patterns(benchmark::State& state) {
  const auto& cut = Cut();
  sim::LogicSimulator simulator(cut);
  util::SplitMix64 rng(1);
  std::vector<sim::PatternWord> words(cut.CoreInputs().size());
  for (auto& w : words) w = rng();
  for (auto _ : state) {
    simulator.Simulate(words);
    benchmark::DoNotOptimize(simulator.ValueOf(cut.CoreOutputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cut.CombinationalGateCount()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LogicSim64Patterns);

void BM_FaultSimBlock(benchmark::State& state) {
  const auto& cut = Cut();
  sim::FaultSimulator fsim(cut);
  const auto faults = sim::CollapsedFaults(cut);
  util::SplitMix64 rng(2);
  std::vector<sim::PatternWord> words(cut.CoreInputs().size());
  for (auto& w : words) w = rng();
  fsim.SetPatternBlock(words);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.DetectWord(faults[i]));
    i = (i + 997) % faults.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultSimBlock);

const std::vector<sim::BitPattern>& BenchPatterns() {
  static const std::vector<sim::BitPattern> patterns = [] {
    util::SplitMix64 rng(9);
    const std::size_t width = Cut().CoreInputs().size();
    std::vector<sim::BitPattern> out(512);
    for (auto& p : out) {
      p.resize(width);
      for (auto& b : p) b = rng.Chance(0.5);
    }
    return out;
  }();
  return patterns;
}

// Serial baseline for the fault-simulation speedup trajectory: full
// drop-list sweep of every collapsed fault over 512 patterns.
void BM_CountDetectedFaults(benchmark::State& state) {
  const auto& cut = Cut();
  const auto faults = sim::CollapsedFaults(cut);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::CountDetectedFaults(cut, BenchPatterns(), faults));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
}
BENCHMARK(BM_CountDetectedFaults)->Unit(benchmark::kMillisecond);

// Fault-partitioned parallel sweep; Arg = thread count. Results are
// bit-identical to the serial baseline for every arg.
void BM_ParallelCountDetectedFaults(benchmark::State& state) {
  const auto& cut = Cut();
  const auto faults = sim::CollapsedFaults(cut);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::ParallelCountDetectedFaults(cut, BenchPatterns(), faults, threads));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelCountDetectedFaults)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Raw PPSFP datapath throughput: detect every fault against every pattern
// block, no dropping — the access pattern of the dictionary build and
// signature diagnosis. One sweep at width W covers W*64 patterns, and the
// faulty activity cone of a wide block is the union of W narrow cones, so
// patterns/s scales superlinearly in sweep savings (see docs/PERF.md).
template <std::size_t W>
std::uint64_t PpsfpDetectSweep(const netlist::Netlist& cut,
                               std::span<const sim::BitPattern> patterns,
                               std::span<const sim::StuckAtFault> faults) {
  sim::FaultSimulatorT<W> fsim(cut);
  const std::size_t width = cut.CoreInputs().size();
  std::uint64_t detected = 0;
  for (std::size_t base = 0; base < patterns.size(); base += W * 64) {
    const std::size_t count =
        std::min<std::size_t>(W * 64, patterns.size() - base);
    fsim.SetPatternBlock(
        sim::PackPatternBlockWide(patterns, base, count, width, W));
    const sim::WideWord<W> mask = sim::BlockMaskWide<W>(count);
    for (const sim::StuckAtFault& f : faults) {
      detected += (fsim.DetectBlock(f) & mask).Any();
    }
  }
  return detected;
}

// Arg = block width W. The detect count is identical for every W.
void BM_PpsfpThroughput(benchmark::State& state) {
  const auto& cut = Cut();
  const auto faults = sim::CollapsedFaults(cut);
  const auto w = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::DispatchBlockWidth(w, [&](auto width) {
      benchmark::DoNotOptimize(
          PpsfpDetectSweep<width()>(cut, BenchPatterns(), faults));
    });
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
  state.counters["block_width"] = static_cast<double>(w);
  state.counters["patterns/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * BenchPatterns().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PpsfpThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Drop-list sweep at width W, single-threaded. Wide blocks trade dropping
// granularity for sweep savings, so unlike BM_PpsfpThroughput this does NOT
// improve with W on drop-heavy pattern sets — the measured reason the
// profile generator's random phase runs a narrow warm-up first.
void BM_WideCountDetectedFaults(benchmark::State& state) {
  const auto& cut = Cut();
  const auto faults = sim::CollapsedFaults(cut);
  const auto w = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::CountDetectedFaults(cut, BenchPatterns(), faults, w));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
  state.counters["block_width"] = static_cast<double>(w);
  state.counters["patterns/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * BenchPatterns().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WideCountDetectedFaults)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Width x threads: the wide datapath composes multiplicatively with the
// fault-partitioned pool. Args = {block width W, thread count}.
void BM_WideParallelCountDetectedFaults(benchmark::State& state) {
  const auto& cut = Cut();
  const auto faults = sim::CollapsedFaults(cut);
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::ParallelCountDetectedFaults(
        cut, BenchPatterns(), faults, threads, w));
  }
  state.SetItemsProcessed(state.iterations() * faults.size());
  state.counters["block_width"] = static_cast<double>(w);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["patterns/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * BenchPatterns().size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WideParallelCountDetectedFaults)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

// Random phase of the profile generator (coverage target 0 skips the PODEM
// top-up); Args = {thread count, block width W}, {1, 1} being the serial
// narrow baseline. The profile table is identical for every combination.
void BM_ProfileRandomPhase(benchmark::State& state) {
  const auto& cut = Cut();
  bist::ProfileGeneratorConfig config;
  config.stumps = casestudy::PaperStumpsConfig();
  config.prp_counts = {4096};
  config.coverage_targets_percent = {0.0};
  config.fill_seeds = {11};
  config.threads = static_cast<std::size_t>(state.range(0));
  config.block_width = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    bist::ProfileGenerator generator(cut, config);
    benchmark::DoNotOptimize(generator.GenerateAll());
  }
  state.counters["threads"] = static_cast<double>(config.threads);
  state.counters["block_width"] = static_cast<double>(config.block_width);
}
BENCHMARK(BM_ProfileRandomPhase)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

void BM_PodemEasyFault(benchmark::State& state) {
  const auto& cut = Cut();
  atpg::Podem podem(cut, 100);
  const auto faults = sim::CollapsedFaults(cut);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(podem.Generate(faults[i]));
    i = (i + 131) % faults.size();
  }
}
BENCHMARK(BM_PodemEasyFault);

void BM_ReseedingEncode(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(Cut().CoreInputs().size());
  bist::ReseedingEncoder encoder(width);
  util::SplitMix64 rng(3);
  atpg::TestCube cube;
  cube.bits.assign(width, atpg::Value3::X);
  for (int k = 0; k < 24; ++k) {
    cube.bits[rng.Below(width)] =
        rng.Chance(0.5) ? atpg::Value3::One : atpg::Value3::Zero;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(cube));
  }
}
BENCHMARK(BM_ReseedingEncode);

void BM_SatDecode(benchmark::State& state) {
  static auto cs = casestudy::BuildCaseStudy();
  static dse::SatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(4);
  for (auto _ : state) {
    const auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    benchmark::DoNotOptimize(decoder.Decode(genotype));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SatDecode);

void BM_RoutedSatDecode(benchmark::State& state) {
  // The complete time-indexed routing encoding (Eqs. 2b-2g searched by the
  // solver) vs the derived-routing decoder above.
  static auto profiles = [] {
    auto p = casestudy::PaperTableI();
    p.resize(4);
    return p;
  }();
  static auto cs = casestudy::BuildCaseStudy(profiles, 42);
  static dse::RoutedSatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(6);
  for (auto _ : state) {
    const auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    benchmark::DoNotOptimize(decoder.Decode(genotype));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sat_vars"] =
      static_cast<double>(decoder.VariableCount());
}
BENCHMARK(BM_RoutedSatDecode);

void BM_EvaluateObjectives(benchmark::State& state) {
  static auto cs = casestudy::BuildCaseStudy();
  static dse::SatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(5);
  const auto impl =
      decoder.Decode(moea::RandomGenotype(decoder.GenotypeSize(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl));
  }
}
BENCHMARK(BM_EvaluateObjectives);

void BM_ScanShiftCapture(benchmark::State& state) {
  const auto& cut = Cut();
  bist::ScanChainSimulator scan(cut, 100);
  util::SplitMix64 rng(7);
  sim::BitPattern pattern(cut.CoreInputs().size());
  for (auto& b : pattern) b = rng.Chance(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.ApplyAndObserve(pattern));
  }
  state.counters["cycles/pattern"] =
      static_cast<double>(scan.CyclesPerPattern());
}
BENCHMARK(BM_ScanShiftCapture);

void BM_TransitionFaultDetect(benchmark::State& state) {
  const auto& cut = Cut();
  sim::TransitionFaultSimulator tsim(cut);
  const auto faults = sim::TransitionFaults(cut);
  util::SplitMix64 rng(8);
  std::vector<sim::PatternWord> v1(cut.CoreInputs().size());
  for (auto& w : v1) w = rng();
  const auto v2 = sim::TransitionFaultSimulator::LaunchOnCapture(cut, v1);
  tsim.SetPatternPairBlock(v1, v2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsim.DetectWord(faults[i]));
    i = (i + 613) % faults.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransitionFaultDetect);

void BM_CanResponseTimeAnalysis(benchmark::State& state) {
  can::CanBus bus("b", 500e3);
  for (int i = 0; i < 20; ++i) {
    can::CanMessage m;
    m.id = static_cast<can::CanId>(i * 16);
    m.payload_bytes = 1 + i % 8;
    m.period_ms = 5.0 * (1 + i % 5);
    m.name = "m" + std::to_string(i);
    bus.AddMessage(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.AllResponseTimes());
  }
}
BENCHMARK(BM_CanResponseTimeAnalysis);

// Parallel no-drop detect sweep for the JSON grid: the fault loop of each
// block fans out over `threads` workers.
template <std::size_t W>
std::uint64_t ParallelPpsfpDetectSweep(
    const netlist::Netlist& cut, std::span<const sim::BitPattern> patterns,
    std::span<const sim::StuckAtFault> faults, std::size_t threads) {
  sim::ParallelFaultSimulatorT<W> fsim(cut, threads);
  const std::size_t width = cut.CoreInputs().size();
  std::vector<sim::WideWord<W>> detect(faults.size());
  std::uint64_t detected = 0;
  for (std::size_t base = 0; base < patterns.size(); base += W * 64) {
    const std::size_t count =
        std::min<std::size_t>(W * 64, patterns.size() - base);
    fsim.SetPatternBlock(
        sim::PackPatternBlockWide(patterns, base, count, width, W));
    const sim::WideWord<W> mask = sim::BlockMaskWide<W>(count);
    fsim.DetectBlocks(faults, detect);
    for (const auto& d : detect) detected += (d & mask).Any();
  }
  return detected;
}

// Machine-readable PPSFP throughput sweep (patterns/s over the width x
// thread grid), independent of google-benchmark's own reporters so CI can
// track the wide-datapath speedup as one small artifact. Measures the raw
// no-drop datapath (see BM_PpsfpThroughput).
int WritePpsfpJson(const char* path) {
  const auto& cut = Cut();
  const auto& patterns = BenchPatterns();
  const auto faults = sim::CollapsedFaults(cut);
  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());

  struct Cell {
    std::size_t width, threads;
    double patterns_per_second;
  };
  std::vector<Cell> cells;
  for (const std::size_t threads : {std::size_t{1}, hw}) {
    for (const std::size_t w : sim::kSupportedBlockWidths) {
      // Time whole sweeps until the sample is long enough to be stable;
      // each sweep applies every pattern to every fault.
      const auto t0 = std::chrono::steady_clock::now();
      std::size_t iters = 0;
      double elapsed = 0.0;
      do {
        sim::DispatchBlockWidth(w, [&](auto width_c) {
          if (threads == 1) {
            benchmark::DoNotOptimize(
                PpsfpDetectSweep<width_c()>(cut, patterns, faults));
          } else {
            benchmark::DoNotOptimize(ParallelPpsfpDetectSweep<width_c()>(
                cut, patterns, faults, threads));
          }
        });
        ++iters;
        elapsed = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
      } while (elapsed < 0.4 || iters < 3);
      cells.push_back(
          {w, threads,
           static_cast<double>(iters * patterns.size()) / elapsed});
    }
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  const double base = cells.front().patterns_per_second;  // W=1, 1 thread
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"ppsfp_detect_throughput\",\n"
               "  \"cpu\": \"%s\",\n"
               "  \"simd_backend\": \"%s\",\n"
               "  \"patterns\": %zu,\n"
               "  \"collapsed_faults\": %zu,\n"
               "  \"results\": [\n",
               sim::simd::CpuFeatureString().c_str(),
               sim::simd::SimdBackendName(), patterns.size(), faults.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(out,
                 "    {\"block_width\": %zu, \"threads\": %zu, "
                 "\"patterns_per_second\": %.1f, \"speedup_vs_w1t1\": "
                 "%.3f}%s\n",
                 cells[i].width, cells[i].threads,
                 cells[i].patterns_per_second,
                 cells[i].patterns_per_second / base,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("ppsfp throughput written to %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    constexpr std::string_view kFlag = "--ppsfp_json=";
    if (std::string_view(argv[i]).starts_with(kFlag)) {
      json_path = argv[i] + kFlag.size();
    } else {
      args.push_back(argv[i]);
    }
  }
  if (json_path) {
    const int rc = WritePpsfpJson(json_path);
    if (rc != 0) return rc;
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
