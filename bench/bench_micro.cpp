// Micro-benchmarks (google-benchmark) for the substrate layers: logic/fault
// simulation, PODEM, reseeding, SAT decoding, CAN response-time analysis.
#include <benchmark/benchmark.h>

#include "atpg/podem.hpp"
#include "bist/reseeding.hpp"
#include "can/bus.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/routing_encoding.hpp"
#include "dse/objectives.hpp"
#include "netlist/random_circuit.hpp"
#include "bist/fault_dictionary.hpp"
#include "bist/scan_sim.hpp"
#include "sim/fault_sim.hpp"
#include "sim/transition_fault.hpp"
#include "util/rng.hpp"

using namespace bistdse;

namespace {

const netlist::Netlist& Cut() {
  static const netlist::Netlist cut = [] {
    auto spec = casestudy::ScaledCutSpec(1);
    return netlist::GenerateRandomCircuit(spec);
  }();
  return cut;
}

void BM_LogicSim64Patterns(benchmark::State& state) {
  const auto& cut = Cut();
  sim::LogicSimulator simulator(cut);
  util::SplitMix64 rng(1);
  std::vector<sim::PatternWord> words(cut.CoreInputs().size());
  for (auto& w : words) w = rng();
  for (auto _ : state) {
    simulator.Simulate(words);
    benchmark::DoNotOptimize(simulator.ValueOf(cut.CoreOutputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * cut.CombinationalGateCount()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LogicSim64Patterns);

void BM_FaultSimBlock(benchmark::State& state) {
  const auto& cut = Cut();
  sim::FaultSimulator fsim(cut);
  const auto faults = sim::CollapsedFaults(cut);
  util::SplitMix64 rng(2);
  std::vector<sim::PatternWord> words(cut.CoreInputs().size());
  for (auto& w : words) w = rng();
  fsim.SetPatternBlock(words);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsim.DetectWord(faults[i]));
    i = (i + 997) % faults.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultSimBlock);

void BM_PodemEasyFault(benchmark::State& state) {
  const auto& cut = Cut();
  atpg::Podem podem(cut, 100);
  const auto faults = sim::CollapsedFaults(cut);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(podem.Generate(faults[i]));
    i = (i + 131) % faults.size();
  }
}
BENCHMARK(BM_PodemEasyFault);

void BM_ReseedingEncode(benchmark::State& state) {
  const auto width = static_cast<std::uint32_t>(Cut().CoreInputs().size());
  bist::ReseedingEncoder encoder(width);
  util::SplitMix64 rng(3);
  atpg::TestCube cube;
  cube.bits.assign(width, atpg::Value3::X);
  for (int k = 0; k < 24; ++k) {
    cube.bits[rng.Below(width)] =
        rng.Chance(0.5) ? atpg::Value3::One : atpg::Value3::Zero;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode(cube));
  }
}
BENCHMARK(BM_ReseedingEncode);

void BM_SatDecode(benchmark::State& state) {
  static auto cs = casestudy::BuildCaseStudy();
  static dse::SatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(4);
  for (auto _ : state) {
    const auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    benchmark::DoNotOptimize(decoder.Decode(genotype));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SatDecode);

void BM_RoutedSatDecode(benchmark::State& state) {
  // The complete time-indexed routing encoding (Eqs. 2b-2g searched by the
  // solver) vs the derived-routing decoder above.
  static auto profiles = [] {
    auto p = casestudy::PaperTableI();
    p.resize(4);
    return p;
  }();
  static auto cs = casestudy::BuildCaseStudy(profiles, 42);
  static dse::RoutedSatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(6);
  for (auto _ : state) {
    const auto genotype = moea::RandomGenotype(decoder.GenotypeSize(), rng);
    benchmark::DoNotOptimize(decoder.Decode(genotype));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sat_vars"] =
      static_cast<double>(decoder.VariableCount());
}
BENCHMARK(BM_RoutedSatDecode);

void BM_EvaluateObjectives(benchmark::State& state) {
  static auto cs = casestudy::BuildCaseStudy();
  static dse::SatDecoder decoder(cs.spec, cs.augmentation);
  util::SplitMix64 rng(5);
  const auto impl =
      decoder.Decode(moea::RandomGenotype(decoder.GenotypeSize(), rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl));
  }
}
BENCHMARK(BM_EvaluateObjectives);

void BM_ScanShiftCapture(benchmark::State& state) {
  const auto& cut = Cut();
  bist::ScanChainSimulator scan(cut, 100);
  util::SplitMix64 rng(7);
  sim::BitPattern pattern(cut.CoreInputs().size());
  for (auto& b : pattern) b = rng.Chance(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.ApplyAndObserve(pattern));
  }
  state.counters["cycles/pattern"] =
      static_cast<double>(scan.CyclesPerPattern());
}
BENCHMARK(BM_ScanShiftCapture);

void BM_TransitionFaultDetect(benchmark::State& state) {
  const auto& cut = Cut();
  sim::TransitionFaultSimulator tsim(cut);
  const auto faults = sim::TransitionFaults(cut);
  util::SplitMix64 rng(8);
  std::vector<sim::PatternWord> v1(cut.CoreInputs().size());
  for (auto& w : v1) w = rng();
  const auto v2 = sim::TransitionFaultSimulator::LaunchOnCapture(cut, v1);
  tsim.SetPatternPairBlock(v1, v2);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tsim.DetectWord(faults[i]));
    i = (i + 613) % faults.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransitionFaultDetect);

void BM_CanResponseTimeAnalysis(benchmark::State& state) {
  can::CanBus bus("b", 500e3);
  for (int i = 0; i < 20; ++i) {
    can::CanMessage m;
    m.id = static_cast<can::CanId>(i * 16);
    m.payload_bytes = 1 + i % 8;
    m.period_ms = 5.0 * (1 + i % 5);
    m.name = "m" + std::to_string(i);
    bus.AddMessage(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.AllResponseTimes());
  }
}
BENCHMARK(BM_CanResponseTimeAnalysis);

}  // namespace

BENCHMARK_MAIN();
