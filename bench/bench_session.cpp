// Session-executor benchmark: frame-accurate replay of all 15 case-study
// BIST sessions, at zero loss and at 1 % injected frame loss. Reports the
// executor's wall-clock throughput (simulated milliseconds per wall second,
// sessions per second), the simulated-vs-analytical download deviation, and
// the retry counts, and writes them to BENCH_session.json.
//
// Env: BISTDSE_SESS_ITERS (default 3) repetitions per loss rate.
// Arg: output path (default BENCH_session.json).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "net/session_executor.hpp"

using namespace bistdse;

namespace {

/// Every ECU selects Table-I profile 4 with gateway pattern storage, so all
/// sessions exercise the mirrored download + upload path.
model::Implementation RemoteStorageImpl(const casestudy::CaseStudy& cs,
                                        dse::SatDecoder& decoder) {
  moea::Genotype g;
  g.priorities.assign(decoder.GenotypeSize(), 0.5);
  g.phases.assign(decoder.GenotypeSize(), 0);
  const auto& mappings = cs.spec.Mappings();
  for (const auto& [ecu, programs] : cs.augmentation.programs_by_ecu) {
    const auto& prog = programs[3];
    for (std::size_t m : cs.spec.MappingsOfTask(prog.test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : cs.spec.MappingsOfTask(prog.data_task)) {
      const bool remote = mappings[m].resource != ecu;
      g.phases[m] = remote ? 1 : 0;
      g.priorities[m] = remote ? 0.8 : 0.1;
    }
  }
  return *decoder.Decode(g);
}

struct Row {
  double loss_rate;
  std::size_t sessions;
  bool all_completed;
  double max_rel_error;
  std::uint64_t retransmissions, dropped;
  double simulated_ms;
  double wall_seconds;
};

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_session.json";
  bench::PrintHeader(
      "Session executor — simulated vs analytical session timing",
      "All 15 case-study ECUs download + run + upload their BIST session on\n"
      "the discrete-event bus network (Table-I profile 4, data x 1/256,\n"
      "gateway pattern storage). Zero loss cross-checks Eq. 1 within 5 %;\n"
      "1 % frame loss must complete via transport retries.");

  const auto iters = bench::EnvU64("BISTDSE_SESS_ITERS", 3);
  auto cs = casestudy::BuildCaseStudy(casestudy::ScaledTableI(1.0 / 256, 4));
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  const auto impl = RemoteStorageImpl(cs, decoder);

  std::vector<Row> rows;
  for (const double loss : {0.0, 0.01}) {
    net::SessionExecutorOptions options;
    options.faults.drop_rate = loss;
    options.faults.seed = 7;
    net::SessionExecutor executor(cs.spec, cs.augmentation, options);

    net::SessionExecutionReport report;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) report = executor.Execute(impl);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count() /
        static_cast<double>(iters);

    Row row{loss, report.sessions.size(), report.all_completed,
            report.max_download_rel_error, report.total_retransmissions,
            report.total_frames_dropped, 0.0, wall};
    for (const auto& s : report.sessions) row.simulated_ms += s.simulated_total_ms;
    rows.push_back(row);

    std::printf(
        "loss %.2f %%: %zu sessions (%s) in %.3f s wall — %.0f simulated "
        "ms/wall s, max download error %.2f %%, %llu retransmissions\n",
        100.0 * loss, row.sessions,
        row.all_completed ? "all completed" : "INCOMPLETE", wall,
        row.simulated_ms / wall, 100.0 * row.max_rel_error,
        static_cast<unsigned long long>(row.retransmissions));
  }

  std::FILE* out = std::fopen(path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"session_executor\",\n"
               "  \"iterations\": %llu,\n"
               "  \"results\": [\n",
               static_cast<unsigned long long>(iters));
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"frame_loss\": %.4f, \"sessions\": %zu, \"all_completed\": "
        "%s, \"max_download_rel_error\": %.6f, \"retransmissions\": %llu, "
        "\"frames_dropped\": %llu, \"sessions_per_second\": %.2f, "
        "\"simulated_ms_per_wall_second\": %.1f}%s\n",
        r.loss_rate, r.sessions, r.all_completed ? "true" : "false",
        r.max_rel_error, static_cast<unsigned long long>(r.retransmissions),
        static_cast<unsigned long long>(r.dropped),
        static_cast<double>(r.sessions) / r.wall_seconds,
        r.simulated_ms / r.wall_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("session benchmark written to %s\n", path);

  // The benchmark doubles as an acceptance gate for CI: every session must
  // complete, and at zero loss the simulation must land within 5 % of Eq. 1
  // (under injected loss the retries legitimately stretch the downloads).
  for (const Row& r : rows) {
    if (!r.all_completed) return 1;
    if (r.loss_rate == 0.0 && r.max_rel_error > 0.05) return 1;
  }
  return 0;
}
