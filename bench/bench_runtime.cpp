// Reproduces the §IV.B runtime claim: "Evaluating 100,000 implementations
// took roughly 29 minutes" (8-core i7, 2014). Measures decode+evaluate
// throughput of this implementation and extrapolates.
//
// Env: BISTDSE_RT_EVALS (default 10000).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/exploration.hpp"
#include "dse/parallel.hpp"

using namespace bistdse;

int main() {
  bench::PrintHeader(
      "Runtime — evaluations per second of the SAT-decoding DSE",
      "Paper: 100,000 implementations in ~29 min (~57/s) on an 8-core i7.");

  const auto evals = bench::EnvU64("BISTDSE_RT_EVALS", 10000);
  auto cs = casestudy::BuildCaseStudy();

  dse::ExplorationConfig config;
  config.evaluations = evals;
  config.population_size = 100;
  config.seed = 3;
  dse::Explorer explorer(cs.spec, cs.augmentation, config);
  const auto result = explorer.Run();

  const double per_100k = 100000.0 / result.Throughput();
  std::printf("\n%zu evaluations in %.2f s  ->  %.0f evaluations/s\n",
              result.evaluations, result.wall_seconds, result.Throughput());
  std::printf("extrapolated 100,000 evaluations: %.1f s (%.1f min); paper: "
              "~29 min\n",
              per_100k, per_100k / 60.0);
  std::printf("decoder: %llu decodes, %llu infeasible\n",
              static_cast<unsigned long long>(result.decoder_stats.decodes),
              static_cast<unsigned long long>(result.decoder_stats.infeasible));

  // Island parallelism (the paper used an 8-core i7): islands of the same
  // budget run concurrently and merge.
  {
    dse::ExplorationConfig island_config = config;
    island_config.evaluations = evals / 4;
    const auto seq_start = std::chrono::steady_clock::now();
    for (int i = 0; i < 4; ++i) {
      dse::ExplorationConfig c = island_config;
      c.seed = 100 + i;
      dse::Explorer e(cs.spec, cs.augmentation, c);
      e.Run();
    }
    const double seq_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - seq_start)
                             .count();
    dse::ExplorationConfig par_config = island_config;
    par_config.seed = 100;
    const auto par =
        dse::ExploreParallel(cs.spec, cs.augmentation, par_config, 4);
    std::printf("\n4 islands x %zu evals: sequential %.2f s, threaded %.2f s "
                "(speedup %.1fx), merged front %zu\n",
                island_config.evaluations, seq_s, par.wall_seconds,
                seq_s / par.wall_seconds, par.pareto.size());
  }

  // Seed robustness: the front metrics should be stable across MOEA seeds
  // (the paper reports a single run; we quantify the spread).
  std::printf("\nseed robustness (4 seeds x %llu evaluations):\n",
              static_cast<unsigned long long>(evals));
  std::vector<double> sizes, headlines;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    dse::ExplorationConfig c = config;
    c.seed = s;
    dse::Explorer e(cs.spec, cs.augmentation, c);
    const auto r = e.Run();
    double best = -1.0;
    for (const auto& entry : r.pareto) {
      const auto& o = entry.objectives;
      if (o.test_quality_percent < 80.0) continue;
      const double base = o.monetary_cost - o.pattern_memory_cost;
      const double rel = 100.0 * o.pattern_memory_cost / base;
      if (best < 0 || rel < best) best = rel;
    }
    sizes.push_back(static_cast<double>(r.pareto.size()));
    if (best >= 0) headlines.push_back(best);
    std::printf("  seed %llu: front %4zu, cheapest >=80%%-quality overhead "
                "%+.2f %%\n",
                static_cast<unsigned long long>(s), r.pareto.size(), best);
  }
  auto mean_sd = [](const std::vector<double>& v) {
    double mean = 0, sd = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    for (double x : v) sd += (x - mean) * (x - mean);
    sd = std::sqrt(sd / static_cast<double>(v.size()));
    return std::pair{mean, sd};
  };
  const auto [fm, fs] = mean_sd(sizes);
  std::printf("  front size %.0f +/- %.0f", fm, fs);
  if (!headlines.empty()) {
    const auto [hm, hs] = mean_sd(headlines);
    std::printf(";  headline overhead %.2f +/- %.2f %%", hm, hs);
  }
  std::printf("\n");
  return 0;
}
