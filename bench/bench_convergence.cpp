// Ablation of the exploration's own design choices (DESIGN.md §5):
//
//  * biased vs. uniform phase initialization — biased initialization spreads
//    the initial population over the selection-density spectrum of the
//    optional diagnosis tasks (without it the front collapses to
//    all-BIST-everywhere designs);
//  * mutation strength 1/n vs 3/n;
//  * hypervolume over evaluations for the default configuration.
//
// Env: BISTDSE_CONV_EVALS (default 15000).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "casestudy/casestudy.hpp"
#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "moea/indicators.hpp"
#include "moea/nsga2.hpp"
#include "moea/spea2.hpp"

using namespace bistdse;

namespace {

struct RunResult {
  double hypervolume = 0.0;
  std::size_t front_size = 0;
  double min_quality = 1e18, max_quality = -1e18;
  std::vector<std::pair<std::size_t, double>> hv_trace;
};

/// Reference point for hypervolume: (quality 0 %, shut-off 10^7 ms, cost
/// 2000) — dominated by every sensible implementation.
const moea::ObjectiveVector kReference = {0.0, 1e7, 2000.0};

RunResult RunOnce(const casestudy::CaseStudy& cs, bool biased_init,
                  double mutation_scale, std::size_t evals,
                  bool use_spea2 = false) {
  dse::SatDecoder decoder(cs.spec, cs.augmentation);
  moea::Nsga2Config config;
  config.population_size = 100;
  config.genotype_size = decoder.GenotypeSize();
  config.biased_phase_init = biased_init;
  config.mutation_rate =
      mutation_scale / static_cast<double>(decoder.GenotypeSize());
  config.seed = 17;
  moea::Nsga2 nsga2(config);

  RunResult rr;
  const moea::Evaluator evaluator =
      [&](const moea::Genotype& genotype)
      -> std::optional<moea::ObjectiveVector> {
    auto impl = decoder.Decode(genotype);
    if (!impl) return std::nullopt;
    return dse::EvaluateImplementation(cs.spec, cs.augmentation, *impl)
        .ToMinimizationVector();
  };
  const moea::GenerationCallback trace =
      [&](std::size_t, std::size_t done, const moea::ParetoArchive& archive) {
        if (rr.hv_trace.empty() ||
            done >= rr.hv_trace.back().first + evals / 8) {
          std::vector<moea::ObjectiveVector> pts;
          for (const auto& e : archive.Entries()) pts.push_back(e.objectives);
          // Clip shut-off into the reference box for a stable indicator.
          for (auto& p : pts) p[1] = std::min(p[1], kReference[1]);
          rr.hv_trace.emplace_back(done, moea::Hypervolume(pts, kReference));
        }
      };
  moea::Nsga2Result result;
  if (use_spea2) {
    moea::Spea2Config spea_config;
    spea_config.population_size = config.population_size;
    spea_config.archive_size = config.population_size;
    spea_config.genotype_size = config.genotype_size;
    spea_config.mutation_rate = config.mutation_rate;
    spea_config.biased_phase_init = config.biased_phase_init;
    spea_config.seed = config.seed;
    moea::Spea2 spea2(spea_config);
    result = spea2.Run(evaluator, evals, trace);
  } else {
    result = nsga2.Run(evaluator, evals, trace);
  }

  std::vector<moea::ObjectiveVector> pts;
  for (const auto& e : result.archive.Entries()) {
    rr.min_quality = std::min(rr.min_quality, -e.objectives[0]);
    rr.max_quality = std::max(rr.max_quality, -e.objectives[0]);
    auto p = e.objectives;
    p[1] = std::min(p[1], kReference[1]);
    pts.push_back(p);
  }
  rr.front_size = result.archive.Size();
  rr.hypervolume = moea::Hypervolume(pts, kReference);
  return rr;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation — exploration design choices (init bias, mutation strength)",
      "Hypervolume of the archive (reference: quality 0 %, 10^4 s, cost 2000);"
      "\nhigher is better. Quality span shows selection-density coverage.");

  const auto evals = bench::EnvU64("BISTDSE_CONV_EVALS", 15000);
  auto cs = casestudy::BuildCaseStudy();

  struct Config2 {
    const char* name;
    bool biased;
    double mutation_scale;
    bool spea2;
  };
  const Config2 configs[] = {
      {"NSGA-II uniform init, 1/n", false, 1.0, false},
      {"NSGA-II biased  init, 1/n", true, 1.0, false},
      {"NSGA-II biased  init, 3/n", true, 3.0, false},
      {"SPEA2   biased  init, 1/n", true, 1.0, true},
  };

  std::printf("\n  configuration                 | hypervolume | front | "
              "quality span [%%]\n");
  std::printf("  ------------------------------+-------------+-------+"
              "------------------\n");
  RunResult biased_1n, uniform_1n;
  for (const Config2& c : configs) {
    const auto rr = RunOnce(cs, c.biased, c.mutation_scale, evals, c.spea2);
    std::printf("  %-29s | %11.4g | %5zu | %5.1f .. %5.1f\n", c.name,
                rr.hypervolume, rr.front_size, rr.min_quality, rr.max_quality);
    if (c.biased && c.mutation_scale == 1.0 && !c.spea2) biased_1n = rr;
    if (!c.biased) uniform_1n = rr;
  }

  std::printf("\n  hypervolume over evaluations (biased init, 1/n):\n");
  for (const auto& [done, hv] : biased_1n.hv_trace) {
    std::printf("    %6zu evals: %.4g\n", done, hv);
  }

  const bool ok = biased_1n.hypervolume >= uniform_1n.hypervolume;
  std::printf("\n  check: biased phase initialization does not hurt (usually "
              "helps) hypervolume ... %s\n",
              ok ? "OK" : "VIOLATED");
  return ok ? 0 : 1;
}
