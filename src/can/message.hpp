// CAN message and frame timing model.
//
// Frame times follow the classical worst-case bit-stuffing analysis for
// 11-bit-identifier CAN 2.0A frames (Davis/Burns/Bril/Lukkien, "Controller
// Area Network (CAN) schedulability analysis: Refuted, revisited and
// revised", Real-Time Systems 35, 2007).
#pragma once

#include <cstdint>
#include <string>

namespace bistdse::can {

/// Priority = CAN identifier: lower numeric value wins arbitration.
using CanId = std::uint32_t;

struct CanMessage {
  std::string name;
  CanId id = 0;
  std::uint32_t payload_bytes = 8;  ///< 0..8 data bytes.
  double period_ms = 10.0;          ///< Transmission period (= deadline).
  double jitter_ms = 0.0;           ///< Queuing jitter.
  bool extended_id = false;         ///< CAN 2.0B 29-bit identifier.

  /// Worst-case number of bits on the wire including stuff bits:
  /// g + 8s + 13 + floor((g + 8s - 1) / 4), with g = 34 control bits for
  /// 11-bit identifiers and g = 54 for 29-bit (extended) identifiers.
  std::uint32_t WorstCaseFrameBits() const {
    const std::uint32_t g = extended_id ? 54 : 34;
    const std::uint32_t data = 8 * payload_bytes;
    return g + data + 13 + (g + data - 1) / 4;
  }

  /// Worst-case frame transmission time at `bitrate_bps`.
  double FrameTimeMs(double bitrate_bps) const {
    return WorstCaseFrameBits() / bitrate_bps * 1e3;
  }

  /// Average bus bandwidth consumed by this message in bits/s.
  double BandwidthBps(double bitrate_bps) const {
    (void)bitrate_bps;
    return WorstCaseFrameBits() / (period_ms * 1e-3);
  }
};

}  // namespace bistdse::can
