#include "can/simulator.hpp"

#include <algorithm>
#include <queue>

namespace bistdse::can {

namespace {

struct Release {
  double time_ms;
  std::size_t msg_index;

  bool operator>(const Release& other) const {
    return time_ms > other.time_ms;
  }
};

}  // namespace

SimulationResult CanSimulator::Run(
    double duration_ms,
    const std::map<CanId, double>& release_offsets_ms) const {
  const auto& messages = bus_.Messages();
  SimulationResult result;
  result.duration_ms = duration_ms;

  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    double offset = 0.0;
    if (auto it = release_offsets_ms.find(messages[i].id);
        it != release_offsets_ms.end()) {
      offset = it->second;
    }
    releases.push({offset, i});
    result.per_message[messages[i].id] = {};
  }

  // Ready frames ordered by priority (CAN id). Stores release time.
  std::map<CanId, std::pair<std::size_t, double>> ready;

  double now = 0.0;
  while (now < duration_ms && (!releases.empty() || !ready.empty())) {
    // Move all due releases into the ready set.
    while (!releases.empty() && releases.top().time_ms <= now) {
      const Release r = releases.top();
      releases.pop();
      const CanMessage& m = messages[r.msg_index];
      // A previous instance still queued means overload; the new instance
      // replaces it (typical CAN controller buffer semantics).
      ready[m.id] = {r.msg_index, r.time_ms};
      const double next = r.time_ms + m.period_ms;
      if (next < duration_ms) releases.push({next, r.msg_index});
    }
    if (ready.empty()) {
      if (releases.empty()) break;
      now = releases.top().time_ms;
      continue;
    }

    // Transmit the highest-priority ready frame, non-preemptively.
    const auto [index, release_time] = ready.begin()->second;
    ready.erase(ready.begin());
    const CanMessage& m = messages[index];
    const double frame_time = m.FrameTimeMs(bus_.BitrateBps());
    const double finish = now + frame_time;

    auto& stats = result.per_message[m.id];
    ++stats.frames_sent;
    const double response = finish - release_time;
    stats.max_response_ms = std::max(stats.max_response_ms, response);
    stats.total_response_ms += response;
    result.bus_busy_ms += frame_time;
    now = finish;
  }
  return result;
}

}  // namespace bistdse::can
