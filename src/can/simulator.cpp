#include "can/simulator.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace bistdse::can {

const MessageSimStats& SimulationResult::Of(CanId id) const {
  const MessageSimStats* found = nullptr;
  for (const auto& [key, stats] : per_message) {
    if (key.id != id) continue;
    if (found != nullptr) {
      throw std::logic_error("CAN id " + std::to_string(id) +
                             " exists on several buses; qualify the bus");
    }
    found = &stats;
  }
  if (found == nullptr) {
    throw std::out_of_range("CAN id " + std::to_string(id) +
                            " not present in simulation result");
  }
  return *found;
}

void SimulationResult::Merge(const SimulationResult& other) {
  for (const auto& [key, stats] : other.per_message) {
    if (!per_message.emplace(key, stats).second) {
      throw std::logic_error("duplicate (bus, id) in merged results: " +
                             key.bus + "/" + std::to_string(key.id));
    }
  }
  bus_busy_ms += other.bus_busy_ms;
  duration_ms = std::max(duration_ms, other.duration_ms);
}

namespace {

struct Release {
  double time_ms;
  std::size_t msg_index;

  bool operator>(const Release& other) const {
    return time_ms > other.time_ms;
  }
};

}  // namespace

SimulationResult CanSimulator::Run(
    double duration_ms,
    const std::map<CanId, double>& release_offsets_ms) const {
  const auto& messages = bus_.Messages();
  SimulationResult result;
  result.duration_ms = duration_ms;

  std::priority_queue<Release, std::vector<Release>, std::greater<>> releases;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    double offset = 0.0;
    if (auto it = release_offsets_ms.find(messages[i].id);
        it != release_offsets_ms.end()) {
      offset = it->second;
    }
    releases.push({offset, i});
    result.per_message[{bus_.Name(), messages[i].id}] = {};
  }

  // Ready frames ordered by priority (CAN id). Stores release time.
  std::map<CanId, std::pair<std::size_t, double>> ready;

  double now = 0.0;
  while (now < duration_ms && (!releases.empty() || !ready.empty())) {
    // Move all due releases into the ready set.
    while (!releases.empty() && releases.top().time_ms <= now) {
      const Release r = releases.top();
      releases.pop();
      const CanMessage& m = messages[r.msg_index];
      // A previous instance still queued means overload; the new instance
      // replaces it (typical CAN controller buffer semantics).
      ready[m.id] = {r.msg_index, r.time_ms};
      const double next = r.time_ms + m.period_ms;
      if (next < duration_ms) releases.push({next, r.msg_index});
    }
    if (ready.empty()) {
      if (releases.empty()) break;
      now = releases.top().time_ms;
      continue;
    }

    // Transmit the highest-priority ready frame, non-preemptively.
    const auto [index, release_time] = ready.begin()->second;
    ready.erase(ready.begin());
    const CanMessage& m = messages[index];
    const double frame_time = m.FrameTimeMs(bus_.BitrateBps());
    const double finish = now + frame_time;

    auto& stats = result.per_message[{bus_.Name(), m.id}];
    ++stats.frames_sent;
    const double response = finish - release_time;
    stats.max_response_ms = std::max(stats.max_response_ms, response);
    stats.total_response_ms += response;
    result.bus_busy_ms += frame_time;
    now = finish;
  }
  return result;
}

}  // namespace bistdse::can
