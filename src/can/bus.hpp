// CAN bus with fixed-priority non-preemptive response-time analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "can/message.hpp"

namespace bistdse::can {

struct ResponseTimeResult {
  double worst_case_ms = 0.0;
  bool schedulable = false;  ///< R <= period (deadline = period).
};

class CanBus {
 public:
  explicit CanBus(std::string name, double bitrate_bps = 500e3)
      : name_(std::move(name)), bitrate_bps_(bitrate_bps) {}

  /// Adds a message. Throws std::invalid_argument on duplicate CAN id or
  /// payload > 8 bytes.
  void AddMessage(const CanMessage& message);

  /// Removes the message with the given id; returns false if absent.
  bool RemoveMessage(CanId id);

  const std::vector<CanMessage>& Messages() const { return messages_; }
  const std::string& Name() const { return name_; }
  double BitrateBps() const { return bitrate_bps_; }

  /// Bus utilization in [0, 1+): sum of frame_time/period.
  double Utilization() const;

  /// Worst-case response time of message `id` (blocking + higher-priority
  /// interference, iterated to fixpoint). Returns nullopt for unknown ids or
  /// when the busy period diverges (utilization >= 1 at that priority level).
  std::optional<ResponseTimeResult> ResponseTime(CanId id) const;

  /// Response times of all messages; nullopt entries mean divergence.
  std::vector<std::pair<CanId, std::optional<ResponseTimeResult>>>
  AllResponseTimes() const;

  /// True iff every message meets its deadline (= period).
  bool Schedulable() const;

 private:
  std::string name_;
  double bitrate_bps_;
  std::vector<CanMessage> messages_;  // kept sorted by id (priority order)
};

}  // namespace bistdse::can
