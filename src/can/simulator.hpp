// Discrete-event simulation of CAN arbitration.
//
// Complements the analytical response-time analysis: simulated worst
// observed response times must never exceed the analytical bounds, which the
// test suite checks as a property. Also used to demonstrate that mirrored
// test-data transfers do not disturb functional traffic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "can/bus.hpp"

namespace bistdse::can {

struct MessageSimStats {
  std::uint64_t frames_sent = 0;
  double max_response_ms = 0.0;
  double total_response_ms = 0.0;

  double AvgResponseMs() const {
    return frames_sent == 0 ? 0.0 : total_response_ms / frames_sent;
  }
};

/// Stats key: CAN ids are only unique per segment, so results that are
/// merged across buses must carry the bus name to avoid aliasing two
/// different messages that share an id.
struct BusMessageKey {
  std::string bus;
  CanId id = 0;

  auto operator<=>(const BusMessageKey&) const = default;
};

struct SimulationResult {
  std::map<BusMessageKey, MessageSimStats> per_message;
  double bus_busy_ms = 0.0;
  double duration_ms = 0.0;

  double Utilization() const {
    return duration_ms == 0.0 ? 0.0 : bus_busy_ms / duration_ms;
  }

  /// Stats of `id`, asserting it exists on exactly one bus. Throws
  /// std::out_of_range when absent, std::logic_error when the id appears on
  /// several buses (use per_message with an explicit bus name instead).
  const MessageSimStats& Of(CanId id) const;

  /// Folds another segment's result into this one (busy time accumulates,
  /// duration takes the max). Throws std::logic_error when a (bus, id) pair
  /// appears in both results.
  void Merge(const SimulationResult& other);
};

class CanSimulator {
 public:
  explicit CanSimulator(const CanBus& bus) : bus_(bus) {}

  /// Simulates periodic releases (synchronous start at t=0, the critical
  /// instant) with non-preemptive priority arbitration for `duration_ms`.
  /// `release_offsets_ms` optionally staggers message phases by CAN id.
  SimulationResult Run(double duration_ms,
                       const std::map<CanId, double>& release_offsets_ms = {}) const;

 private:
  const CanBus& bus_;
};

}  // namespace bistdse::can
