#include "can/bus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bistdse::can {

void CanBus::AddMessage(const CanMessage& message) {
  if (message.payload_bytes > 8)
    throw std::invalid_argument("CAN payload exceeds 8 bytes");
  if (message.period_ms <= 0)
    throw std::invalid_argument("CAN message period must be positive");
  for (const CanMessage& m : messages_) {
    if (m.id == message.id)
      throw std::invalid_argument("duplicate CAN id " + std::to_string(m.id));
  }
  messages_.push_back(message);
  std::sort(messages_.begin(), messages_.end(),
            [](const CanMessage& a, const CanMessage& b) { return a.id < b.id; });
}

bool CanBus::RemoveMessage(CanId id) {
  const auto it = std::find_if(messages_.begin(), messages_.end(),
                               [&](const CanMessage& m) { return m.id == id; });
  if (it == messages_.end()) return false;
  messages_.erase(it);
  return true;
}

double CanBus::Utilization() const {
  double u = 0.0;
  for (const CanMessage& m : messages_) {
    u += m.FrameTimeMs(bitrate_bps_) / m.period_ms;
  }
  return u;
}

std::optional<ResponseTimeResult> CanBus::ResponseTime(CanId id) const {
  const auto it = std::find_if(messages_.begin(), messages_.end(),
                               [&](const CanMessage& m) { return m.id == id; });
  if (it == messages_.end()) return std::nullopt;
  const CanMessage& msg = *it;
  const double c = msg.FrameTimeMs(bitrate_bps_);
  const double tau_bit = 1e3 / bitrate_bps_;  // one bit time in ms

  // Blocking: longest lower-priority frame already on the wire.
  double blocking = 0.0;
  for (const CanMessage& m : messages_) {
    if (m.id > id) blocking = std::max(blocking, m.FrameTimeMs(bitrate_bps_));
  }

  // Fixpoint for the queuing delay w:
  //   w = B + sum_{k in hp} ceil((w + J_k + tau_bit) / T_k) * C_k
  double w = blocking;
  for (int iter = 0; iter < 10000; ++iter) {
    double next = blocking;
    for (const CanMessage& m : messages_) {
      if (m.id >= id) continue;
      next += std::ceil((w + m.jitter_ms + tau_bit) / m.period_ms) *
              m.FrameTimeMs(bitrate_bps_);
    }
    if (next == w) {
      ResponseTimeResult result;
      result.worst_case_ms = msg.jitter_ms + w + c;
      result.schedulable = result.worst_case_ms <= msg.period_ms;
      return result;
    }
    if (next > 10.0 * msg.period_ms) return std::nullopt;  // diverging
    w = next;
  }
  return std::nullopt;
}

std::vector<std::pair<CanId, std::optional<ResponseTimeResult>>>
CanBus::AllResponseTimes() const {
  std::vector<std::pair<CanId, std::optional<ResponseTimeResult>>> out;
  out.reserve(messages_.size());
  for (const CanMessage& m : messages_) out.emplace_back(m.id, ResponseTime(m.id));
  return out;
}

bool CanBus::Schedulable() const {
  for (const CanMessage& m : messages_) {
    const auto r = ResponseTime(m.id);
    if (!r || !r->schedulable) return false;
  }
  return true;
}

}  // namespace bistdse::can
