#include "can/canfd.hpp"

#include <array>
#include <stdexcept>

namespace bistdse::can {

std::uint32_t RoundUpFdPayload(std::uint32_t bytes) {
  constexpr std::array<std::uint32_t, 16> kDlc = {0,  1,  2,  3,  4,  5,
                                                  6,  7,  8,  12, 16, 20,
                                                  24, 32, 48, 64};
  for (std::uint32_t v : kDlc) {
    if (bytes <= v) return v;
  }
  throw std::invalid_argument("CAN FD payload exceeds 64 bytes");
}

double CanFdTiming::FrameTimeMs(std::uint32_t payload_bytes) const {
  const std::uint32_t payload = RoundUpFdPayload(payload_bytes);
  // Nominal-rate portion: SOF + 11-bit id + control up to BRS (~30 bits) +
  // ACK/EOF/IFS (~13 bits), with worst-case stuffing on the arbitration
  // part.
  const double arb_bits = 30 + (30 - 1) / 4.0 + 13;
  // Data-rate portion: DLC remainder, payload, CRC (17/21 bits) + stuff
  // bits (fixed stuffing every 4 bits in FD CRC, approximated at 1/4).
  const std::uint32_t crc_bits = payload > 16 ? 21 : 17;
  const double data_bits_raw = 8.0 * payload + crc_bits + 8;
  const double data_bits = data_bits_raw * 1.25;
  return arb_bits / nominal_bitrate_bps * 1e3 +
         data_bits / data_bitrate_bps * 1e3;
}

double MirroredFdTransferTimeMs(std::uint64_t data_bytes,
                                std::uint32_t message_count_per_period,
                                double period_ms, std::uint32_t fd_payload) {
  if (message_count_per_period == 0 || period_ms <= 0)
    throw std::invalid_argument("transfer needs message slots");
  const double bytes_per_ms =
      static_cast<double>(RoundUpFdPayload(fd_payload)) *
      message_count_per_period / period_ms;
  return static_cast<double>(data_bytes) / bytes_per_ms;
}

}  // namespace bistdse::can
