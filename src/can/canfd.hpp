// CAN FD frame timing — the "extensible to other automotive field buses"
// direction of paper §III-B. Arbitration and control fields run at the
// nominal bitrate, the data phase (up to 64 payload bytes) at the fast data
// bitrate, which shortens the mirrored test-data download dramatically.
#pragma once

#include <cstdint>

#include "can/message.hpp"

namespace bistdse::can {

/// Valid CAN FD payload lengths (DLC encoding).
std::uint32_t RoundUpFdPayload(std::uint32_t bytes);

struct CanFdTiming {
  double nominal_bitrate_bps = 500e3;
  double data_bitrate_bps = 2e6;

  /// Worst-case frame time: arbitration/control/ack at nominal rate, data +
  /// CRC at the data rate, including worst-case stuff bits.
  double FrameTimeMs(std::uint32_t payload_bytes) const;
};

/// Time to move `data_bytes` over a mirrored FD message set that reuses the
/// functional messages' periods but upgrades each frame to `fd_payload`
/// bytes (the schedule slots are unchanged; only the payload field grows —
/// the frame gets *shorter* on the wire thanks to the fast data phase, so
/// the certified slot still fits).
double MirroredFdTransferTimeMs(std::uint64_t data_bytes,
                                std::uint32_t message_count_per_period,
                                double period_ms,
                                std::uint32_t fd_payload = 64);

}  // namespace bistdse::can
