// Non-intrusive test-data transfer by message mirroring (paper §III-B).
//
// When an ECU's functional applications are shut off, its certified share of
// the bus schedule is idle. The BIST test patterns are transmitted in
// messages c' that *mirror* the ECU's functional messages c — same payload
// size, same period, same relative priority, different CAN id — so every
// other subscriber observes an unchanged bus. Eq. (1) of the paper gives the
// resulting transfer time:
//
//     q(b^T) = s(b^D) / sum_{c in I} s(c)/p(c)
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "can/bus.hpp"

namespace bistdse::can {

/// Eq. (1): time [ms] to move `data_bytes` of encoded test data over the
/// mirrored copies of `functional` (payload bytes / period ms each).
/// Returns +inf when the ECU sends no functional messages (no mirrored
/// bandwidth exists).
double MirroredTransferTimeMs(std::uint64_t data_bytes,
                              std::span<const CanMessage> functional);

/// Builds the mirrored message set: identical size/period/jitter, CAN id
/// shifted by `id_offset` (caller picks an offset that keeps relative
/// priority and avoids collisions; see CheckNonIntrusiveness).
std::vector<CanMessage> MakeMirroredMessages(
    std::span<const CanMessage> functional, CanId id_offset);

struct NonIntrusivenessReport {
  bool non_intrusive = false;
  /// Max increase in worst-case response time over all messages that do not
  /// belong to the swapped ECU (ms). 0 for a correct mirror.
  double max_wcrt_increase_ms = 0.0;
  /// Messages that became unschedulable by the change.
  std::vector<CanId> newly_unschedulable;
};

/// Verifies that replacing `ecu_functional` (subset of `bus`) by `test_set`
/// leaves the worst-case response time of every *other* message unchanged
/// (mirroring) or reports by how much it degrades (burst/naive transfer).
NonIntrusivenessReport CheckNonIntrusiveness(
    const CanBus& bus, std::span<const CanMessage> ecu_functional,
    std::span<const CanMessage> test_set);

/// Heuristic release-offset plan: staggers message phases so the critical
/// instant (all messages released simultaneously) is avoided in operation.
/// Highest-priority message keeps offset 0; each next message is placed
/// after the accumulated frame times of its predecessors (modulo its
/// period). Purely an operational aid — WCRT analysis stays offset-free
/// (safe for any phasing).
std::map<CanId, double> PlanReleaseOffsets(const CanBus& bus);

/// The naive alternative for the ablation study: ship `data_bytes` as
/// back-to-back max-payload frames at the given id (lowest priority
/// recommended). Returns the periodic message that models the burst as
/// sustained traffic plus the raw wire time of the burst.
struct BurstTransfer {
  CanMessage message;      ///< Saturating periodic model of the burst.
  double wire_time_ms = 0; ///< Raw transmission time of all frames.
  std::uint64_t frames = 0;
};
BurstTransfer MakeBurstTransfer(std::uint64_t data_bytes, CanId id,
                                double bitrate_bps);

}  // namespace bistdse::can
