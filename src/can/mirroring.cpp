#include "can/mirroring.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bistdse::can {

double MirroredTransferTimeMs(std::uint64_t data_bytes,
                              std::span<const CanMessage> functional) {
  double bytes_per_ms = 0.0;
  for (const CanMessage& c : functional) {
    bytes_per_ms += static_cast<double>(c.payload_bytes) / c.period_ms;
  }
  if (bytes_per_ms <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(data_bytes) / bytes_per_ms;
}

std::vector<CanMessage> MakeMirroredMessages(
    std::span<const CanMessage> functional, CanId id_offset) {
  std::vector<CanMessage> mirrored;
  mirrored.reserve(functional.size());
  for (const CanMessage& c : functional) {
    CanMessage m = c;
    m.id = c.id + id_offset;
    m.name = c.name + "'";
    mirrored.push_back(m);
  }
  return mirrored;
}

NonIntrusivenessReport CheckNonIntrusiveness(
    const CanBus& bus, std::span<const CanMessage> ecu_functional,
    std::span<const CanMessage> test_set) {
  CanBus modified(bus.Name() + "+test", bus.BitrateBps());
  std::vector<CanId> removed;
  for (const CanMessage& c : ecu_functional) removed.push_back(c.id);

  for (const CanMessage& m : bus.Messages()) {
    if (std::find(removed.begin(), removed.end(), m.id) == removed.end()) {
      modified.AddMessage(m);
    }
  }
  for (const CanMessage& m : test_set) modified.AddMessage(m);

  NonIntrusivenessReport report;
  report.non_intrusive = true;
  for (const CanMessage& m : bus.Messages()) {
    if (std::find(removed.begin(), removed.end(), m.id) != removed.end())
      continue;
    const auto before = bus.ResponseTime(m.id);
    const auto after = modified.ResponseTime(m.id);
    if (!before) continue;  // already broken without test traffic
    if (!after) {
      report.non_intrusive = false;
      report.newly_unschedulable.push_back(m.id);
      report.max_wcrt_increase_ms = std::numeric_limits<double>::infinity();
      continue;
    }
    const double delta = after->worst_case_ms - before->worst_case_ms;
    report.max_wcrt_increase_ms = std::max(report.max_wcrt_increase_ms, delta);
    if (delta > 1e-9) report.non_intrusive = false;
    if (before->schedulable && !after->schedulable) {
      report.newly_unschedulable.push_back(m.id);
      report.non_intrusive = false;
    }
  }
  return report;
}

std::map<CanId, double> PlanReleaseOffsets(const CanBus& bus) {
  std::map<CanId, double> offsets;
  double accumulated = 0.0;
  for (const CanMessage& m : bus.Messages()) {  // sorted by priority
    offsets[m.id] = m.period_ms > 0 ? std::fmod(accumulated, m.period_ms) : 0.0;
    accumulated += m.FrameTimeMs(bus.BitrateBps());
  }
  return offsets;
}

BurstTransfer MakeBurstTransfer(std::uint64_t data_bytes, CanId id,
                                double bitrate_bps) {
  BurstTransfer burst;
  burst.frames = (data_bytes + 7) / 8;
  CanMessage m;
  m.name = "burst";
  m.id = id;
  m.payload_bytes = 8;
  burst.wire_time_ms =
      static_cast<double>(burst.frames) * m.FrameTimeMs(bitrate_bps);
  // Back-to-back frames are equivalent to a periodic message whose period
  // equals its own frame time: it grabs the bus whenever it is free.
  m.period_ms = m.FrameTimeMs(bitrate_bps);
  burst.message = m;
  return burst;
}

}  // namespace bistdse::can
