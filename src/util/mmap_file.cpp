#include "util/mmap_file.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define BISTDSE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BISTDSE_HAVE_MMAP 0
#endif

namespace bistdse::util {

namespace {

[[noreturn]] void Fail(const std::string& path, const char* what) {
  throw std::runtime_error("MmapFile: cannot " + std::string(what) + " '" +
                           path + "'");
}

}  // namespace

MmapFile::MmapFile(const std::string& path) {
#if BISTDSE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) Fail(path, "open");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    Fail(path, "stat");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    return;  // Empty file: valid, empty span.
  }
  void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) {
    size_ = 0;
    Fail(path, "mmap");
  }
  data_ = static_cast<const std::byte*>(map);
  mapped_ = true;
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) Fail(path, "open");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    Fail(path, "stat");
  }
  fallback_.resize(static_cast<std::size_t>(size));
  const std::size_t got =
      fallback_.empty()
          ? 0
          : std::fread(fallback_.data(), 1, fallback_.size(), f);
  std::fclose(f);
  if (got != fallback_.size()) Fail(path, "read");
  data_ = fallback_.data();
  size_ = fallback_.size();
#endif
}

MmapFile::~MmapFile() { Release(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Release();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    if (!mapped_ && !fallback_.empty()) data_ = fallback_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

void MmapFile::Release() noexcept {
#if BISTDSE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.clear();
}

}  // namespace bistdse::util
