// Shared work-chunking thread pool — the one executor behind every parallel
// layer of the library (fault-partitioned simulation, island-parallel DSE).
//
// ParallelFor() splits an index range into contiguous chunks and runs them on
// the pool's workers while the calling thread helps execute chunks of its own
// loop. Each chunk carries a dense *slot* index in [0, chunk count); two
// chunks never run concurrently under the same slot, so callers can keep
// per-slot scratch state (e.g. a fault-simulator clone per slot). Nested
// calls from inside a worker run inline on the calling worker — no deadlock,
// no oversubscription.
//
// Determinism contract: the pool makes no ordering promise between chunks,
// so parallel algorithms built on it must write results per index and merge
// them in index order. Every user in this library does exactly that, which
// is what keeps parallel results bit-identical to the serial path for any
// thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bistdse::util {

class ThreadPool {
 public:
  /// Body of one chunk: half-open index range plus the chunk's slot index.
  using ChunkBody =
      std::function<void(std::size_t begin, std::size_t end, std::size_t slot)>;

  /// Spawns `workers` worker threads; 0 means hardware concurrency.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t WorkerCount() const { return workers_.size(); }

  /// Runs `body` over [begin, end) split into at most `max_chunks` contiguous
  /// chunks (0 = worker count + 1, counting the helping caller). Blocks until
  /// every chunk finished; the first exception thrown by any chunk is
  /// rethrown here. An empty range returns immediately without invoking
  /// `body`. Safe to call from inside a chunk body: nested calls run inline
  /// on the calling thread.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t max_chunks,
                   const ChunkBody& body);

  /// The process-wide executor shared by fault simulation and the island
  /// explorer, sized to the hardware. Sharing one pool is what prevents
  /// oversubscription when both layers are active at once.
  static ThreadPool& Global();

 private:
  struct ForState;

  void WorkerLoop();
  /// Executes one pending chunk of `state`; false if none were left.
  static bool RunOneChunk(ForState& state);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<ForState>> pending_;
  bool stop_ = false;
};

}  // namespace bistdse::util
