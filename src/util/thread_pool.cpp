#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace bistdse::util {

namespace {

/// Set while a thread executes chunks for some pool; nested ParallelFor calls
/// detect it and degrade to inline execution instead of re-entering the queue.
thread_local bool tls_inside_chunk = false;

}  // namespace

struct ThreadPool::ForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunks = 0;
  const ChunkBody* body = nullptr;

  std::atomic<std::size_t> next_chunk{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done_chunks = 0;
  std::exception_ptr error;

  /// Index range of chunk `c`: an even split with the remainder spread over
  /// the leading chunks.
  std::pair<std::size_t, std::size_t> ChunkRange(std::size_t c) const {
    const std::size_t n = end - begin;
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    const std::size_t lo = begin + c * base + std::min(c, extra);
    return {lo, lo + base + (c < extra ? 1 : 0)};
  }
};

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::RunOneChunk(ForState& state) {
  const std::size_t c = state.next_chunk.fetch_add(1, std::memory_order_relaxed);
  if (c >= state.chunks) return false;
  const bool was_inside = tls_inside_chunk;
  tls_inside_chunk = true;
  std::exception_ptr error;
  try {
    const auto [lo, hi] = state.ChunkRange(c);
    (*state.body)(lo, hi, c);
  } catch (...) {
    error = std::current_exception();
  }
  tls_inside_chunk = was_inside;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (error && !state.error) state.error = std::move(error);
    if (++state.done_chunks == state.chunks) state.done_cv.notify_all();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<ForState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      state = pending_.front();
      if (state->next_chunk.load(std::memory_order_relaxed) >= state->chunks) {
        pending_.pop_front();
        continue;
      }
    }
    RunOneChunk(*state);
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             std::size_t max_chunks, const ChunkBody& body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (max_chunks == 0) max_chunks = workers_.size() + 1;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, max_chunks));

  if (chunks == 1 || tls_inside_chunk) {
    // Single chunk or nested use: run inline (exceptions propagate directly).
    ForState state;
    state.begin = begin;
    state.end = end;
    state.chunks = chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const auto [lo, hi] = state.ChunkRange(c);
      body(lo, hi, c);
    }
    return;
  }

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->end = end;
  state->chunks = chunks;
  state->body = &body;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(state);
  }
  work_cv_.notify_all();

  // The caller helps: it pulls chunks through the same atomic cursor the
  // workers use, so progress never depends on worker availability.
  while (RunOneChunk(*state)) {
  }
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->done_chunks == state->chunks; });
  }
  {
    // Drop the drained loop from the queue if a worker has not already.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find(pending_.begin(), pending_.end(), state);
    if (it != pending_.end()) pending_.erase(it);
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace bistdse::util
