// Sharded, mutex-protected memo table shared by concurrent consumers — the
// cross-island implementation-signature cache of the evaluation engine.
//
// Values must be pure functions of their key: when two threads race on the
// same absent key both may compute, but only the first insert sticks, so
// every reader observes one canonical value. That property (not locking
// through the compute) is what keeps expensive evaluations off the lock.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace bistdse::util {

template <typename Key, typename Value, std::size_t Shards = 16>
class ConcurrentMemo {
  static_assert(Shards > 0);

 public:
  /// Canonical value for `key`, or nullopt when absent.
  std::optional<Value> Lookup(const Key& key) const {
    const Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return it->second;
  }

  /// Inserts (key, value) if absent and returns the canonical value (the
  /// already-present one on a lost race).
  Value Insert(const Key& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mutex);
    return shard.map.emplace(key, std::move(value)).first->second;
  }

  /// Inserts (key, value) if absent, or replaces the stored value when
  /// `better(candidate, stored)` holds — the upsert behind caches whose
  /// entries subsume each other (e.g. a longer-prefix campaign result
  /// replacing a shorter one). Returns the value that ended up stored.
  template <typename Better>
  Value UpsertIf(const Key& key, Value value, Better&& better) {
    Shard& shard = ShardFor(key);
    std::lock_guard lock(shard.mutex);
    auto [it, inserted] = shard.map.emplace(key, value);
    if (!inserted && better(value, it->second)) it->second = std::move(value);
    return it->second;
  }

  /// Canonical value for `key`, computing it via `compute()` (outside the
  /// shard lock) when absent. `*hit` reports whether the lookup succeeded.
  template <typename Compute>
  Value GetOrCompute(const Key& key, Compute&& compute, bool* hit = nullptr) {
    if (auto found = Lookup(key)) {
      if (hit != nullptr) *hit = true;
      return *std::move(found);
    }
    if (hit != nullptr) *hit = false;
    return Insert(key, std::forward<Compute>(compute)());
  }

  std::size_t Size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard lock(shard.mutex);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value> map;
  };

  const Shard& ShardFor(const Key& key) const {
    return shards_[std::hash<Key>{}(key) % Shards];
  }
  Shard& ShardFor(const Key& key) {
    return shards_[std::hash<Key>{}(key) % Shards];
  }

  std::array<Shard, Shards> shards_;
};

}  // namespace bistdse::util
