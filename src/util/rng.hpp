// Deterministic pseudo-random number generation used throughout bistdse.
//
// All stochastic algorithms in this library (random circuit generation,
// pseudo-random BIST patterns, evolutionary operators, ...) draw from
// explicitly seeded generators so that every experiment is reproducible
// bit-for-bit across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace bistdse::util {

/// SplitMix64: tiny, fast, high-quality 64-bit generator (Steele et al.).
/// Satisfies std::uniform_random_bit_generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t Below(std::uint64_t bound) {
    // Lemire-style rejection-free mapping is overkill here; modulo bias is
    // negligible for the bounds used in this library (<< 2^32).
    return (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double UnitReal() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool Chance(double p) { return UnitReal() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace bistdse::util
