// Read-only file mapping for zero-copy artifact loading (the mmap-backed
// fault-dictionary read path). On POSIX the file is mmap'd and the OS pages
// it in lazily, so opening a multi-gigabyte artifact costs O(1) regardless
// of payload size; where mmap is unavailable the class falls back to a
// plain heap read, keeping the same interface (callers can query which
// path they got via IsMapped()).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace bistdse::util {

class MmapFile {
 public:
  MmapFile() = default;
  /// Maps `path` read-only. Throws std::runtime_error (with the path in the
  /// message) when the file cannot be opened or mapped.
  explicit MmapFile(const std::string& path);
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// The file's bytes; stable for the lifetime of the object.
  std::span<const std::byte> Bytes() const { return {data_, size_}; }
  std::size_t Size() const { return size_; }
  bool Empty() const { return size_ == 0; }
  /// True when the bytes are an actual mapping (no copy was made).
  bool IsMapped() const { return mapped_; }

 private:
  void Release() noexcept;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;  ///< Owns the bytes when !mapped_.
};

}  // namespace bistdse::util
