#include "serve/versioned_store.hpp"

#include <stdexcept>

namespace bistdse::serve {

VersionedStore::VersionedStore(bist::DictionaryStore initial)
    : current_(std::make_shared<Generation>(
          Generation{0, std::move(initial)})) {}

std::shared_ptr<const Generation> VersionedStore::Acquire() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::uint32_t VersionedStore::Version() const {
  std::lock_guard lock(mutex_);
  return current_->version;
}

std::uint32_t VersionedStore::Reload(bist::DictionaryStore next) {
  std::lock_guard lock(mutex_);
  // Wrong-CUT rejection: a rollover may grow a dictionary (ΔN Extend) or
  // retire/add shards, but a shard key served by both generations must
  // keep its circuit and session-stream identity.
  for (const bist::DictShardKey& key : next.Keys()) {
    const bist::FaultDictionary* serving = current_->store.Find(key);
    if (serving == nullptr) continue;
    const bist::FaultDictionary* incoming = next.Find(key);
    if (incoming->NetlistHash() != serving->NetlistHash() ||
        incoming->ConfigHash() != serving->ConfigHash()) {
      ++reload_rejects_;
      throw std::invalid_argument(
          "reload rejected: shard (" + key.ecu + ", " + key.profile +
          ") was built for a different CUT or session config");
    }
  }
  previous_ = current_;
  current_ = std::make_shared<Generation>(
      Generation{current_->version + 1, std::move(next)});
  ++reloads_;
  return current_->version;
}

std::uint64_t VersionedStore::Reloads() const {
  std::lock_guard lock(mutex_);
  return reloads_;
}

std::uint64_t VersionedStore::ReloadRejects() const {
  std::lock_guard lock(mutex_);
  return reload_rejects_;
}

bool VersionedStore::PreviousDrained() const {
  std::lock_guard lock(mutex_);
  return previous_.expired();
}

}  // namespace bistdse::serve
