// Versioned dictionary generations for hot-reload while serving.
//
// The server answers queries against whatever generation is current when a
// batch is dispatched; a rollover atomically publishes a new generation
// while in-flight batches keep their shared_ptr to the old one and drain
// against it (the refcount IS the epoch — when the last in-flight batch
// commits, the old generation's dictionaries unmap). Zero requests are
// dropped across a rollover, and an artifact built for the wrong CUT or
// session config is rejected without disturbing the serving generation.
//
// Thread-safe: Acquire() and Reload() may race from any number of threads
// (the reload path of a live server runs off a signal/watcher thread while
// the serving loop dispatches batches).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "bist/dictionary_store.hpp"

namespace bistdse::serve {

/// One immutable published generation of the sharded dictionary store.
struct Generation {
  std::uint32_t version = 0;
  bist::DictionaryStore store;
};

class VersionedStore {
 public:
  explicit VersionedStore(bist::DictionaryStore initial);

  /// The current generation. Hold the returned pointer for the duration of
  /// a batch: it pins the generation across a concurrent Reload().
  std::shared_ptr<const Generation> Acquire() const;

  std::uint32_t Version() const;

  /// Atomically publishes `next` as the new serving generation. Every shard
  /// key that both generations serve must agree on netlist and session
  /// config hashes — a wrong-CUT artifact throws std::invalid_argument and
  /// the serving generation is untouched. Returns the new version.
  std::uint32_t Reload(bist::DictionaryStore next);

  std::uint64_t Reloads() const;
  std::uint64_t ReloadRejects() const;

  /// True when no in-flight consumer still pins the generation that the
  /// most recent Reload() replaced — the drain criterion of the rollover
  /// tests. Trivially true before the first reload.
  bool PreviousDrained() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Generation> current_;
  std::weak_ptr<const Generation> previous_;
  std::uint64_t reloads_ = 0;
  std::uint64_t reload_rejects_ = 0;
};

}  // namespace bistdse::serve
