#include "serve/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/wire.hpp"

namespace bistdse::serve {

namespace {

/// Engine advance cap while transfers are in flight: a timed-out transfer
/// stops producing frame outcomes, so the stop predicate alone cannot end
/// the engine call — the chunk bound guarantees the harvest loop runs.
constexpr double kChunkMs = 50.0;

}  // namespace

const char* ToString(RequestStatus status) {
  switch (status) {
    case RequestStatus::Pending: return "pending";
    case RequestStatus::RejectedBusy: return "rejected_busy";
    case RequestStatus::Uploading: return "uploading";
    case RequestStatus::Queued: return "queued";
    case RequestStatus::Diagnosing: return "diagnosing";
    case RequestStatus::Responding: return "responding";
    case RequestStatus::Answered: return "answered";
    case RequestStatus::UploadFailed: return "upload_failed";
    case RequestStatus::ResponseFailed: return "response_failed";
  }
  return "?";
}

DiagnosisServer::DiagnosisServer(bist::DictionaryStore initial,
                                 const DiagnosisServerConfig& config,
                                 net::EventTrace* trace)
    : config_(config),
      store_(std::move(initial)),
      trace_(trace),
      injector_(config.faults),
      engine_(&injector_, trace, config.trace_frames) {
  bus_ = engine_.AddBus("diag", config_.bus_bitrate_bps);
  traced_version_ = store_.Version();
}

std::size_t DiagnosisServer::EndpointFor(const std::string& ecu) {
  const auto it = endpoint_index_.find(ecu);
  if (it != endpoint_index_.end()) return it->second;
  const std::size_t index = endpoints_.size();
  auto endpoint = std::make_unique<Endpoint>();
  endpoint->ecu = ecu;
  // Slots registered mid-run must release in the engine's future.
  const double first_release = engine_.NowMs() + config_.slot_period_ms;
  const auto id = static_cast<can::CanId>(index);
  net::PeriodicSlot up;
  up.message = {.name = "up:" + ecu,
                .id = config_.upload_id_base + id,
                .payload_bytes = config_.payload_bytes,
                .period_ms = config_.slot_period_ms};
  up.path = {bus_};
  up.hop_ids = {config_.upload_id_base + id};
  up.first_release_ms = first_release;
  up.client = &endpoint->upload_mux;
  engine_.AddSlot(std::move(up));
  net::PeriodicSlot down;
  down.message = {.name = "down:" + ecu,
                  .id = config_.response_id_base + id,
                  .payload_bytes = config_.payload_bytes,
                  .period_ms = config_.slot_period_ms};
  down.path = {bus_};
  down.hop_ids = {config_.response_id_base + id};
  down.first_release_ms = first_release;
  down.client = &endpoint->response_mux;
  engine_.AddSlot(std::move(down));
  endpoints_.push_back(std::move(endpoint));
  endpoint_index_.emplace(ecu, index);
  return index;
}

std::size_t DiagnosisServer::PerEcuShare() const {
  if (endpoints_.empty()) return config_.max_inflight;
  return std::max<std::size_t>(1, config_.max_inflight / endpoints_.size());
}

std::uint64_t DiagnosisServer::Submit(bist::DictQuery query,
                                      double release_ms) {
  const std::uint64_t id = requests_.size();
  Request request;
  request.endpoint = EndpointFor(query.shard.ecu);
  request.upload_wire = wire::EncodeQuery(query);
  request.outcome.id = id;
  request.outcome.ecu = query.shard.ecu;
  request.outcome.release_ms = release_ms;
  request.outcome.upload_bytes = request.upload_wire.size();
  request.query = std::move(query);
  requests_.push_back(std::move(request));
  pending_.emplace(release_ms, id);
  ++stats_.submitted;
  return id;
}

const RequestOutcome& DiagnosisServer::Outcome(std::uint64_t id) const {
  return requests_.at(id).outcome;
}

void DiagnosisServer::TraceRequest(net::TraceEventKind kind, double now_ms,
                                   std::uint64_t id,
                                   const std::string& note) {
  if (trace_ == nullptr) return;
  trace_->Record({now_ms, kind, "diag", 0, id, 0, note});
}

void DiagnosisServer::Terminal(Request& request, RequestStatus status,
                               double now_ms) {
  request.outcome.status = status;
  request.outcome.answered_ms = now_ms;
  if (status != RequestStatus::RejectedBusy) {
    --inflight_;
    --endpoints_[request.endpoint]->inflight;
  }
}

void DiagnosisServer::AdmitDue(double now_ms) {
  while (!pending_.empty() && pending_.begin()->first <= now_ms) {
    const std::uint64_t id = pending_.begin()->second;
    pending_.erase(pending_.begin());
    Request& request = requests_[id];
    Endpoint& endpoint = *endpoints_[request.endpoint];
    if (inflight_ >= config_.max_inflight ||
        endpoint.inflight >= PerEcuShare()) {
      request.outcome.status = RequestStatus::RejectedBusy;
      request.outcome.answered_ms = now_ms;
      ++stats_.rejected_busy;
      TraceRequest(net::TraceEventKind::RequestRejected, now_ms, id,
                   endpoint.ecu + ": inflight bound");
      continue;
    }
    request.outcome.status = RequestStatus::Uploading;
    request.outcome.admitted_ms = now_ms;
    ++inflight_;
    ++endpoint.inflight;
    ++stats_.admitted;
    stats_.max_inflight_observed =
        std::max(stats_.max_inflight_observed, inflight_);
    endpoint.upload_wait.push_back(id);
    TraceRequest(net::TraceEventKind::RequestAdmitted, now_ms, id,
                 endpoint.ecu);
  }
}

void DiagnosisServer::NoticeReload(double now_ms) {
  const std::uint32_t version = store_.Version();
  if (version == traced_version_) return;
  TraceRequest(net::TraceEventKind::DictReload, now_ms, version,
               "generation v" + std::to_string(traced_version_) + " -> v" +
                   std::to_string(version));
  traced_version_ = version;
}

void DiagnosisServer::StartUploads(double now_ms) {
  for (auto& endpoint : endpoints_) {
    if (endpoint->upload != nullptr || endpoint->upload_wait.empty()) {
      continue;
    }
    const std::uint64_t id = endpoint->upload_wait.front();
    endpoint->upload_wait.pop_front();
    Request& request = requests_[id];
    endpoint->upload = std::make_unique<net::SegmentedTransfer>(
        2 * id + 1, "upload#" + std::to_string(id) + "@" + endpoint->ecu,
        request.upload_wire.size(), config_.transport, trace_);
    endpoint->upload_request = id;
    endpoint->upload->Begin(now_ms);
    endpoint->upload_mux.active = endpoint->upload.get();
  }
}

void DiagnosisServer::HarvestUploads(double now_ms) {
  for (auto& endpoint : endpoints_) {
    if (endpoint->upload == nullptr || !endpoint->upload->Finished()) {
      continue;
    }
    const std::uint64_t id = endpoint->upload_request;
    Request& request = requests_[id];
    request.outcome.upload = endpoint->upload->Stats();
    const bool done = endpoint->upload->Done();
    const double complete_ms = endpoint->upload->CompleteMs();
    endpoint->upload_mux.active = nullptr;
    endpoint->upload.reset();
    if (!done) {
      ++stats_.upload_failures;
      Terminal(request, RequestStatus::UploadFailed, now_ms);
      continue;
    }
    // The transport retransmits every lost/corrupted frame, so a completed
    // transfer delivered the payload intact: decode what came off the wire
    // and diagnose *that* (full round trip, not the submitted object).
    request.query = wire::DecodeQuery(request.upload_wire);
    request.outcome.status = RequestStatus::Queued;
    request.outcome.upload_done_ms = complete_ms;
    endpoint->ready.push_back(id);
  }
}

bool DiagnosisServer::MaybeDispatchBatch(double now_ms) {
  if (batch_active_ || endpoints_.empty()) return false;
  batch_ids_.clear();
  // Round-robin across ECUs, one query per endpoint per pass, so a deep
  // queue at one ECU cannot monopolize the diagnosis station.
  std::size_t idle_passes = 0;
  std::size_t cursor = batch_cursor_;
  while (batch_ids_.size() < config_.max_batch &&
         idle_passes < endpoints_.size()) {
    Endpoint& endpoint = *endpoints_[cursor];
    cursor = (cursor + 1) % endpoints_.size();
    if (endpoint.ready.empty()) {
      ++idle_passes;
      continue;
    }
    idle_passes = 0;
    batch_ids_.push_back(endpoint.ready.front());
    endpoint.ready.pop_front();
  }
  if (batch_ids_.empty()) return false;
  batch_cursor_ = cursor;

  batch_generation_ = store_.Acquire();
  std::vector<bist::DictQuery> queries;
  queries.reserve(batch_ids_.size());
  for (const std::uint64_t id : batch_ids_) {
    requests_[id].outcome.status = RequestStatus::Diagnosing;
    queries.push_back(requests_[id].query);
  }
  batch_results_ = batch_generation_->store.DiagnoseBatch(
      queries, config_.top_k, config_.threads);
  batch_active_ = true;
  batch_done_ms_ = now_ms + config_.service_time_ms;
  ++stats_.batches;
  TraceRequest(net::TraceEventKind::BatchDispatched, now_ms, stats_.batches,
               "n=" + std::to_string(batch_ids_.size()) + " gen=v" +
                   std::to_string(batch_generation_->version));
  return true;
}

void DiagnosisServer::CompleteBatch(double now_ms) {
  if (!batch_active_ || now_ms < batch_done_ms_) return;
  for (std::size_t i = 0; i < batch_ids_.size(); ++i) {
    const std::uint64_t id = batch_ids_[i];
    Request& request = requests_[id];
    if (batch_generation_->store.Find(request.query.shard) == nullptr) {
      ++stats_.unknown_shard;
    }
    request.response_wire = wire::EncodeRanking(batch_results_[i]);
    request.outcome.generation = batch_generation_->version;
    request.outcome.response_bytes = request.response_wire.size();
    request.outcome.status = RequestStatus::Responding;
    endpoints_[request.endpoint]->respond_wait.push_back(id);
  }
  batch_ids_.clear();
  batch_results_.clear();
  // Unpin the dictionary generation: after a rollover, the last batch to
  // release its pointer is what lets VersionedStore::PreviousDrained() flip.
  batch_generation_.reset();
  batch_active_ = false;
}

void DiagnosisServer::StartResponses(double now_ms) {
  for (auto& endpoint : endpoints_) {
    if (endpoint->response != nullptr || endpoint->respond_wait.empty()) {
      continue;
    }
    const std::uint64_t id = endpoint->respond_wait.front();
    endpoint->respond_wait.pop_front();
    Request& request = requests_[id];
    endpoint->response = std::make_unique<net::SegmentedTransfer>(
        2 * id + 2, "reply#" + std::to_string(id) + "@" + endpoint->ecu,
        request.response_wire.size(), config_.transport, trace_);
    endpoint->response_request = id;
    endpoint->response->Begin(now_ms);
    endpoint->response_mux.active = endpoint->response.get();
  }
}

void DiagnosisServer::HarvestResponses(double now_ms) {
  for (auto& endpoint : endpoints_) {
    if (endpoint->response == nullptr || !endpoint->response->Finished()) {
      continue;
    }
    const std::uint64_t id = endpoint->response_request;
    Request& request = requests_[id];
    request.outcome.response = endpoint->response->Stats();
    const bool done = endpoint->response->Done();
    const double complete_ms = endpoint->response->CompleteMs();
    endpoint->response_mux.active = nullptr;
    endpoint->response.reset();
    if (!done) {
      ++stats_.response_failures;
      Terminal(request, RequestStatus::ResponseFailed, now_ms);
      continue;
    }
    request.outcome.ranking = wire::DecodeRanking(request.response_wire);
    Terminal(request, RequestStatus::Answered, complete_ms);
    ++stats_.answered;
    const double latency_ms = complete_ms - request.outcome.admitted_ms;
    stats_.max_latency_ms = std::max(stats_.max_latency_ms, latency_ms);
    stats_.total_latency_ms += latency_ms;
    TraceRequest(net::TraceEventKind::RequestAnswered, complete_ms, id,
                 endpoint->ecu + ": " +
                     std::to_string(request.outcome.ranking.size()) +
                     " candidates, gen=v" +
                     std::to_string(request.outcome.generation));
  }
}

bool DiagnosisServer::AnyTransferActive() const {
  for (const auto& endpoint : endpoints_) {
    if (endpoint->upload != nullptr || endpoint->response != nullptr) {
      return true;
    }
  }
  return false;
}

bool DiagnosisServer::AnyTransferFinished() const {
  for (const auto& endpoint : endpoints_) {
    if (endpoint->upload != nullptr && endpoint->upload->Finished()) {
      return true;
    }
    if (endpoint->response != nullptr && endpoint->response->Finished()) {
      return true;
    }
  }
  return false;
}

double DiagnosisServer::Run(double until_ms) {
  for (;;) {
    const double now_ms = engine_.NowMs();
    NoticeReload(now_ms);
    AdmitDue(now_ms);
    HarvestUploads(now_ms);
    HarvestResponses(now_ms);
    // Service the diagnosis station; with service_time_ms == 0 several
    // batches can clear in the same tick.
    for (;;) {
      CompleteBatch(now_ms);
      if (batch_active_) break;  // Still serving a future completion.
      if (!MaybeDispatchBatch(now_ms)) break;
      if (now_ms < batch_done_ms_) break;
    }
    StartUploads(now_ms);
    StartResponses(now_ms);
    if (AllDone() || now_ms >= until_ms) return now_ms;

    double wake_ms = until_ms;
    if (!pending_.empty()) {
      wake_ms = std::min(wake_ms, std::max(pending_.begin()->first, now_ms));
    }
    if (batch_active_) wake_ms = std::min(wake_ms, batch_done_ms_);
    const bool busy = AnyTransferActive();
    if (busy) wake_ms = std::min(wake_ms, now_ms + kChunkMs);
    if (!busy && wake_ms <= now_ms) {
      // No transfer, no pending release, no batch deadline in the future:
      // nothing can make progress, so bail instead of spinning (the caller
      // sees the stuck requests as non-terminal outcomes).
      return now_ms;
    }
    engine_.Run(wake_ms, [this] { return AnyTransferFinished(); });
  }
}

}  // namespace bistdse::serve
