#include "serve/wire.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>

namespace bistdse::serve::wire {

namespace {

constexpr std::uint32_t kQueryMagic = 0x51534442u;    // "BDSQ" little-endian
constexpr std::uint32_t kRankingMagic = 0x52534442u;  // "BDSR"

std::uint64_t Fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) h = (h ^ b) * 0x100000001b3ULL;
  return h;
}

template <typename T>
void Append(std::vector<std::uint8_t>& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto offset = out.size();
  out.resize(offset + sizeof(T));
  std::memcpy(out.data() + offset, &value, sizeof(T));
}

void AppendString(std::vector<std::uint8_t>& out, const std::string& s) {
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void Seal(std::vector<std::uint8_t>& out) {
  Append<std::uint64_t>(out, Fnv1a({out.data(), out.size()}));
}

/// Bounds-checked sequential reader; every defect throws with the codec's
/// name so a malformed upload is attributable from the error alone.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t pos = 0;
  const char* what;

  template <typename T>
  T Read() {
    if (bytes.size() - pos < sizeof(T)) {
      throw std::runtime_error(std::string(what) + ": truncated payload");
    }
    T value;
    std::memcpy(&value, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }

  std::string ReadString() {
    const auto len = Read<std::uint32_t>();
    if (bytes.size() - pos < len) {
      throw std::runtime_error(std::string(what) + ": truncated payload");
    }
    std::string s(reinterpret_cast<const char*>(bytes.data() + pos), len);
    pos += len;
    return s;
  }
};

Reader Open(std::span<const std::uint8_t> bytes, std::uint32_t magic,
            const char* what) {
  if (bytes.size() < sizeof(std::uint32_t) + sizeof(std::uint64_t)) {
    throw std::runtime_error(std::string(what) + ": truncated payload");
  }
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t checksum;
  std::memcpy(&checksum, bytes.data() + body, sizeof(checksum));
  if (checksum != Fnv1a(bytes.first(body))) {
    throw std::runtime_error(std::string(what) + ": checksum mismatch");
  }
  Reader reader{bytes.first(body), 0, what};
  if (reader.Read<std::uint32_t>() != magic) {
    throw std::runtime_error(std::string(what) + ": bad magic");
  }
  return reader;
}

}  // namespace

std::vector<std::uint8_t> EncodeQuery(const bist::DictQuery& query) {
  std::vector<std::uint8_t> out;
  Append(out, kQueryMagic);
  AppendString(out, query.shard.ecu);
  AppendString(out, query.shard.profile);
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(query.fail_data.size()));
  for (const bist::FailDatum& f : query.fail_data) {
    Append(out, f.window_index);
    Append(out, f.observed_signature);
    Append(out, f.expected_signature);
  }
  Seal(out);
  return out;
}

bist::DictQuery DecodeQuery(std::span<const std::uint8_t> bytes) {
  Reader reader = Open(bytes, kQueryMagic, "wire query");
  bist::DictQuery query;
  query.shard.ecu = reader.ReadString();
  query.shard.profile = reader.ReadString();
  const auto count = reader.Read<std::uint32_t>();
  query.fail_data.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    bist::FailDatum f;
    f.window_index = reader.Read<std::uint32_t>();
    f.observed_signature = reader.Read<std::uint64_t>();
    f.expected_signature = reader.Read<std::uint64_t>();
    query.fail_data.push_back(f);
  }
  return query;
}

std::vector<std::uint8_t> EncodeRanking(
    std::span<const bist::DiagnosisCandidate> ranking) {
  std::vector<std::uint8_t> out;
  Append(out, kRankingMagic);
  Append<std::uint32_t>(out, static_cast<std::uint32_t>(ranking.size()));
  for (const bist::DiagnosisCandidate& c : ranking) {
    Append<std::uint32_t>(out, c.fault.node);
    Append<std::int8_t>(out, c.fault.fanin_index);
    Append<std::uint8_t>(out, c.fault.stuck_value ? 1 : 0);
    Append<std::uint64_t>(out, std::bit_cast<std::uint64_t>(c.score));
  }
  Seal(out);
  return out;
}

std::vector<bist::DiagnosisCandidate> DecodeRanking(
    std::span<const std::uint8_t> bytes) {
  Reader reader = Open(bytes, kRankingMagic, "wire ranking");
  const auto count = reader.Read<std::uint32_t>();
  std::vector<bist::DiagnosisCandidate> ranking;
  ranking.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    bist::DiagnosisCandidate c;
    c.fault.node = reader.Read<std::uint32_t>();
    c.fault.fanin_index = reader.Read<std::int8_t>();
    c.fault.stuck_value = reader.Read<std::uint8_t>() != 0;
    c.score = std::bit_cast<double>(reader.Read<std::uint64_t>());
    ranking.push_back(c);
  }
  return ranking;
}

}  // namespace bistdse::serve::wire
