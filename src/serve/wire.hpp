// Wire codecs of the diagnosis server: the byte layout a field ECU's
// fail-data upload and the server's top-k ranking reply occupy on the bus.
//
// The discrete-event network model carries byte *counts*, not payload bits,
// so these codecs are what ties the simulated transfers to real content: an
// upload transfer is sized by EncodeQuery's output and the buffer is decoded
// when the segmented transport reports intact delivery (corrupted frames
// never ack — they retransmit — so a completed transfer implies an intact
// payload). Rankings round-trip bit-exactly: candidate scores travel as
// raw IEEE-754 bit patterns, which is what makes the end-to-end serve path
// bit-identical to a direct DictionaryStore::DiagnoseBatch call.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/diagnosis.hpp"
#include "bist/dictionary_store.hpp"

namespace bistdse::serve::wire {

/// Serialized upload: magic "BDSQ", shard key, fail data, FNV-1a checksum.
std::vector<std::uint8_t> EncodeQuery(const bist::DictQuery& query);

/// Inverse of EncodeQuery. Throws std::runtime_error naming the defect on
/// truncated, wrong-magic, or checksum-mismatched buffers.
bist::DictQuery DecodeQuery(std::span<const std::uint8_t> bytes);

/// Serialized reply: magic "BDSR", candidate list (fault identity + score
/// bit pattern), FNV-1a checksum. An empty ranking is a valid payload.
std::vector<std::uint8_t> EncodeRanking(
    std::span<const bist::DiagnosisCandidate> ranking);

/// Inverse of EncodeRanking; same error contract as DecodeQuery.
std::vector<bist::DiagnosisCandidate> DecodeRanking(
    std::span<const std::uint8_t> bytes);

}  // namespace bistdse::serve::wire
