// Long-lived diagnosis server: the fleet front end of the PR-7 serving core.
//
// Field ECUs upload their BIST fail data to a central diagnosis host over a
// diagnostic CAN segment. The server models that path end to end in the
// discrete-event network engine: every registered ECU gets an upload carrier
// slot (ECU -> server) and a response carrier slot (server -> ECU) on the
// shared bus; a request's fail data is serialized (serve/wire), segmented
// into frames by net::SegmentedTransfer — with the engine's deterministic
// fault injector judging every frame (loss / corruption / reordering) and
// the transport's bounded retries riding it out — then admitted queries are
// framed into bist::DictQuery batches, fanned out through
// DictionaryStore::DiagnoseBatch on the shared pool against the current
// dictionary generation (serve::VersionedStore, hot-reloadable while
// serving), and the top-k ranking returns to the ECU as a segmented
// response. The delivered ranking is bit-identical to calling DiagnoseBatch
// directly: corrupted frames never acknowledge, so a completed transfer
// implies the intact payload, and scores travel as raw IEEE-754 bits.
//
// Admission and backpressure: the in-flight set (admitted but not yet
// terminal) is bounded by `max_inflight`, with a per-ECU share so one
// flooding ECU cannot starve the rest; releases beyond the bound are
// rejected busy, visible in the stats and the JSONL request trace.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bist/dictionary_store.hpp"
#include "net/engine.hpp"
#include "net/fault_injector.hpp"
#include "net/trace.hpp"
#include "net/transport.hpp"
#include "serve/versioned_store.hpp"

namespace bistdse::serve {

struct DiagnosisServerConfig {
  double bus_bitrate_bps = 500e3;      ///< Diagnostic segment bitrate.
  double slot_period_ms = 1.0;         ///< Carrier period per endpoint slot.
  std::uint32_t payload_bytes = 8;     ///< Carrier payload per frame.
  can::CanId upload_id_base = 0x300;   ///< Upload carrier ids (base + index).
  can::CanId response_id_base = 0x400; ///< Response carrier ids.
  net::TransportConfig transport;      ///< Segmentation / retry / timeout.
  net::FaultInjectorConfig faults;     ///< Frame loss/corruption/reordering.
  std::size_t top_k = 5;
  std::size_t threads = 0;             ///< DiagnoseBatch fan-out (0 = pool).
  std::size_t max_inflight = 64;       ///< Admission bound across all ECUs.
  std::size_t max_batch = 16;          ///< Queries per DiagnoseBatch dispatch.
  double service_time_ms = 0.0;        ///< Modeled diagnosis latency per batch.
  bool trace_frames = false;           ///< Per-frame trace events (large!).
};

enum class RequestStatus : std::uint8_t {
  Pending,         ///< Submitted, release time not reached.
  RejectedBusy,    ///< Admission refused: in-flight bound (terminal).
  Uploading,       ///< Fail-data upload in progress (or waiting for carrier).
  Queued,          ///< Uploaded and decoded, waiting for a batch slot.
  Diagnosing,      ///< In a dispatched DiagnoseBatch.
  Responding,      ///< Ranking reply in transit (or waiting for carrier).
  Answered,        ///< Reply delivered and decoded (terminal).
  UploadFailed,    ///< Upload exhausted retries / timed out (terminal).
  ResponseFailed,  ///< Reply exhausted retries / timed out (terminal).
};

const char* ToString(RequestStatus status);

struct RequestOutcome {
  std::uint64_t id = 0;
  std::string ecu;
  RequestStatus status = RequestStatus::Pending;
  /// The ranking decoded from the delivered reply (wire round trip).
  std::vector<bist::DiagnosisCandidate> ranking;
  std::uint32_t generation = 0;  ///< Dictionary generation that diagnosed it.
  double release_ms = 0.0;
  double admitted_ms = 0.0;
  double upload_done_ms = 0.0;
  double answered_ms = 0.0;      ///< Terminal time for failed requests too.
  std::uint64_t upload_bytes = 0;
  std::uint64_t response_bytes = 0;
  net::TransferStats upload;     ///< Per-transfer retry/timeout attribution.
  net::TransferStats response;
};

struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t answered = 0;
  std::uint64_t upload_failures = 0;
  std::uint64_t response_failures = 0;
  std::uint64_t unknown_shard = 0;  ///< Answered with an empty ranking.
  std::uint64_t batches = 0;
  std::size_t max_inflight_observed = 0;
  double max_latency_ms = 0.0;    ///< admitted -> answered, over answered.
  double total_latency_ms = 0.0;
};

class DiagnosisServer {
 public:
  DiagnosisServer(bist::DictionaryStore initial,
                  const DiagnosisServerConfig& config = {},
                  net::EventTrace* trace = nullptr);

  /// Enqueues one fail-data upload, released at simulated `release_ms` from
  /// the ECU named by the query's shard key. Endpoints (carrier slots) are
  /// registered on first use, in submit order. Returns the request id.
  /// Must not race Run() (single control thread; Reload may race freely).
  std::uint64_t Submit(bist::DictQuery query, double release_ms);

  /// Drives the bus, the admission queue, and the diagnosis pipeline until
  /// every submitted request reaches a terminal state or simulated time
  /// passes `until_ms`. Resumable: call again (optionally after more
  /// Submits or a Store().Reload()) to continue where it stopped. Returns
  /// the simulated time reached.
  double Run(double until_ms = 1e12);

  bool AllDone() const { return inflight_ == 0 && pending_.empty(); }
  double NowMs() const { return engine_.NowMs(); }

  /// Outcome of request `id` (ids are dense, assigned by Submit).
  const RequestOutcome& Outcome(std::uint64_t id) const;
  std::size_t RequestCount() const { return requests_.size(); }

  const ServerStats& Stats() const { return stats_; }

  /// The hot-reloadable dictionary generations. Reload() here is safe from
  /// a concurrent thread while Run() is serving.
  VersionedStore& Store() { return store_; }
  const VersionedStore& Store() const { return store_; }

  const net::NetworkEngine& Engine() const { return engine_; }

 private:
  struct Request {
    bist::DictQuery query;
    std::vector<std::uint8_t> upload_wire;    ///< Encoded fail-data payload.
    std::vector<std::uint8_t> response_wire;  ///< Encoded ranking payload.
    std::size_t endpoint = 0;
    RequestOutcome outcome;
  };

  /// One ECU's pair of carrier slots plus its queues along the pipeline.
  struct Endpoint {
    std::string ecu;
    net::SlotClientMux upload_mux;
    net::SlotClientMux response_mux;
    std::unique_ptr<net::SegmentedTransfer> upload;
    std::unique_ptr<net::SegmentedTransfer> response;
    std::uint64_t upload_request = 0;
    std::uint64_t response_request = 0;
    std::deque<std::uint64_t> upload_wait;   ///< Admitted, carrier busy.
    std::deque<std::uint64_t> ready;         ///< Decoded, awaiting a batch.
    std::deque<std::uint64_t> respond_wait;  ///< Diagnosed, carrier busy.
    std::size_t inflight = 0;                ///< Non-terminal requests.
  };

  std::size_t EndpointFor(const std::string& ecu);
  std::size_t PerEcuShare() const;
  void Terminal(Request& request, RequestStatus status, double now_ms);
  void AdmitDue(double now_ms);
  void NoticeReload(double now_ms);
  void StartUploads(double now_ms);
  void HarvestUploads(double now_ms);
  bool MaybeDispatchBatch(double now_ms);
  void CompleteBatch(double now_ms);
  void StartResponses(double now_ms);
  void HarvestResponses(double now_ms);
  bool AnyTransferActive() const;
  bool AnyTransferFinished() const;
  void TraceRequest(net::TraceEventKind kind, double now_ms, std::uint64_t id,
                    const std::string& note);

  DiagnosisServerConfig config_;
  VersionedStore store_;
  net::EventTrace* trace_;
  net::FaultInjector injector_;
  net::NetworkEngine engine_;
  net::BusIndex bus_ = 0;

  /// unique_ptr: the engine holds SlotClient* into each endpoint's muxes.
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::map<std::string, std::size_t> endpoint_index_;
  std::vector<Request> requests_;
  /// Submitted, not yet released: (release_ms, id), processed in order.
  std::multimap<double, std::uint64_t> pending_;
  std::size_t inflight_ = 0;
  std::size_t batch_cursor_ = 0;      ///< Round-robin start endpoint.
  std::uint32_t traced_version_ = 0;  ///< Last store version seen by Run().

  /// The one batch in service: ids + results, pinned to its generation
  /// until the service window elapses (this is what drains a rollover).
  bool batch_active_ = false;
  double batch_done_ms_ = 0.0;
  std::vector<std::uint64_t> batch_ids_;
  std::vector<std::vector<bist::DiagnosisCandidate>> batch_results_;
  std::shared_ptr<const Generation> batch_generation_;

  ServerStats stats_;
};

}  // namespace bistdse::serve
