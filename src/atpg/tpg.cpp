#include "atpg/tpg.hpp"

#include <algorithm>

#include "sim/fault_sim.hpp"
#include "util/rng.hpp"

namespace bistdse::atpg {

using sim::BitPattern;
using sim::FaultSimulator;
using sim::PatternWord;
using sim::StuckAtFault;

namespace {

BitPattern FillCube(const TestCube& cube, util::SplitMix64& rng) {
  BitPattern p(cube.bits.size());
  for (std::size_t i = 0; i < cube.bits.size(); ++i) {
    switch (cube.bits[i]) {
      case Value3::Zero: p[i] = 0; break;
      case Value3::One: p[i] = 1; break;
      case Value3::X: p[i] = rng.Chance(0.5) ? 1 : 0; break;
    }
  }
  return p;
}

}  // namespace

std::vector<TestCube> MergeCompatibleCubes(std::span<const TestCube> cubes) {
  auto compatible = [](const TestCube& a, const TestCube& b) {
    for (std::size_t i = 0; i < a.bits.size(); ++i) {
      if (a.bits[i] != Value3::X && b.bits[i] != Value3::X &&
          a.bits[i] != b.bits[i]) {
        return false;
      }
    }
    return true;
  };
  std::vector<TestCube> merged;
  for (const TestCube& cube : cubes) {
    bool placed = false;
    for (TestCube& target : merged) {
      if (target.bits.size() == cube.bits.size() &&
          compatible(target, cube)) {
        for (std::size_t i = 0; i < cube.bits.size(); ++i) {
          if (cube.bits[i] != Value3::X) target.bits[i] = cube.bits[i];
        }
        placed = true;
        break;
      }
    }
    if (!placed) merged.push_back(cube);
  }
  return merged;
}

DeterministicTpgResult GenerateDeterministicPatterns(
    const netlist::Netlist& netlist, std::span<const StuckAtFault> targets,
    const DeterministicTpgOptions& options) {
  DeterministicTpgResult result;
  util::SplitMix64 rng(options.seed);
  Podem podem(netlist, options.backtrack_limit);
  FaultSimulator fsim(netlist);
  const std::size_t width = netlist.CoreInputs().size();

  std::vector<StuckAtFault> remaining(targets.begin(), targets.end());
  enum : std::uint8_t { kPending, kDropped, kUntestable };
  std::vector<std::uint8_t> status(remaining.size(), kPending);

  for (std::size_t i = 0; i < remaining.size(); ++i) {
    if (status[i] != kPending) continue;
    const PodemResult pr = podem.Generate(remaining[i]);
    if (pr.outcome == PodemOutcome::Untestable) {
      status[i] = kUntestable;
      ++result.untestable;
      continue;
    }
    if (pr.outcome == PodemOutcome::Aborted) {
      // Stays pending: a later pattern may catch it by chance.
      ++result.aborted;
      continue;
    }

    const BitPattern pattern = FillCube(pr.cube, rng);
    std::vector<PatternWord> words(width);
    for (std::size_t k = 0; k < width; ++k)
      words[k] = pattern[k] ? ~PatternWord{0} : PatternWord{0};
    // A single pattern replicated across all 64 lanes: DetectWord != 0 means
    // "this pattern detects the fault". Scan the whole list so previously
    // aborted faults can still be dropped by serendipitous detection.
    fsim.SetPatternBlock(words);
    for (std::size_t j = 0; j < remaining.size(); ++j) {
      if (status[j] != kPending) continue;
      if (fsim.DetectWord(remaining[j]) != 0) {
        status[j] = kDropped;
        ++result.detected;
      }
    }
    result.total_care_bits += pr.cube.CareBitCount();
    result.cubes.push_back(pr.cube);
    result.patterns.push_back(pattern);
  }

  if (options.static_compaction && !result.cubes.empty()) {
    // Merge, refill, and recount: detection of each original target is
    // preserved because every original cube's care bits survive in some
    // merged cube.
    auto merged = MergeCompatibleCubes(result.cubes);
    result.cubes = std::move(merged);
    result.patterns.clear();
    result.total_care_bits = 0;
    for (const TestCube& cube : result.cubes) {
      result.patterns.push_back(FillCube(cube, rng));
      result.total_care_bits += cube.CareBitCount();
    }
  }

  if (options.reverse_compaction && !result.patterns.empty()) {
    std::vector<bool> keep;
    auto compacted = CompactPatterns(netlist, result.patterns, targets, &keep);
    std::vector<TestCube> kept_cubes;
    std::size_t care = 0;
    for (std::size_t i = 0; i < keep.size(); ++i) {
      if (!keep[i]) continue;
      care += result.cubes[i].CareBitCount();
      kept_cubes.push_back(std::move(result.cubes[i]));
    }
    result.cubes = std::move(kept_cubes);
    result.patterns = std::move(compacted);
    result.total_care_bits = care;
  }
  return result;
}

std::vector<BitPattern> CompactPatterns(
    const netlist::Netlist& netlist, std::span<const BitPattern> patterns,
    std::span<const StuckAtFault> targets, std::vector<bool>* keep_mask_out) {
  FaultSimulator fsim(netlist);
  const std::size_t width = netlist.CoreInputs().size();

  std::vector<StuckAtFault> remaining(targets.begin(), targets.end());
  std::vector<bool> keep(patterns.size(), false);

  // Walk patterns in reverse order; keep a pattern iff it detects at least
  // one still-undetected fault. Later patterns (generated for the hardest
  // faults last) tend to detect many easy faults, making early patterns
  // redundant.
  std::vector<PatternWord> words(width);
  for (std::size_t rev = patterns.size(); rev-- > 0;) {
    if (remaining.empty()) break;
    const BitPattern& p = patterns[rev];
    for (std::size_t k = 0; k < width; ++k)
      words[k] = p[k] ? ~PatternWord{0} : PatternWord{0};
    fsim.SetPatternBlock(words);
    bool useful = false;
    std::vector<StuckAtFault> still;
    still.reserve(remaining.size());
    for (const StuckAtFault& f : remaining) {
      if (fsim.DetectWord(f) != 0) {
        useful = true;
      } else {
        still.push_back(f);
      }
    }
    if (useful) {
      keep[rev] = true;
      remaining = std::move(still);
    }
  }

  std::vector<BitPattern> out;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (keep[i]) out.push_back(patterns[i]);
  }
  if (keep_mask_out) *keep_mask_out = std::move(keep);
  return out;
}

}  // namespace bistdse::atpg
