#include "atpg/tpg.hpp"

#include <algorithm>
#include <numeric>

#include "netlist/structure.hpp"
#include "sim/campaign.hpp"
#include "util/rng.hpp"

namespace bistdse::atpg {

using sim::BitPattern;
using sim::PatternWord;
using sim::StuckAtFault;

namespace {

BitPattern FillCube(const TestCube& cube, util::SplitMix64& rng) {
  BitPattern p(cube.bits.size());
  for (std::size_t i = 0; i < cube.bits.size(); ++i) {
    switch (cube.bits[i]) {
      case Value3::Zero: p[i] = 0; break;
      case Value3::One: p[i] = 1; break;
      case Value3::X: p[i] = rng.Chance(0.5) ? 1 : 0; break;
    }
  }
  return p;
}

/// Marks every tracked fault the block detects as dropped in a caller-owned
/// status array (`indices` maps tracked positions to status slots).
class DropScanSink final : public sim::CampaignSink {
 public:
  DropScanSink(std::vector<std::uint8_t>& status,
               const std::vector<std::size_t>& indices,
               std::uint8_t dropped_value, std::size_t& detected)
      : status_(status),
        indices_(indices),
        dropped_value_(dropped_value),
        detected_(detected) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    for (std::size_t i = 0; i < block.TrackedCount(); ++i) {
      if (block.TrackedDetected(i)) {
        status_[indices_[block.TrackedIndex(i)]] = dropped_value_;
        ++detected_;
      }
    }
    return true;
  }

 private:
  std::vector<std::uint8_t>& status_;
  const std::vector<std::size_t>& indices_;
  std::uint8_t dropped_value_;
  std::size_t& detected_;
};

}  // namespace

std::vector<TestCube> MergeCompatibleCubes(std::span<const TestCube> cubes) {
  auto compatible = [](const TestCube& a, const TestCube& b) {
    for (std::size_t i = 0; i < a.bits.size(); ++i) {
      if (a.bits[i] != Value3::X && b.bits[i] != Value3::X &&
          a.bits[i] != b.bits[i]) {
        return false;
      }
    }
    return true;
  };
  std::vector<TestCube> merged;
  for (const TestCube& cube : cubes) {
    bool placed = false;
    for (TestCube& target : merged) {
      if (target.bits.size() == cube.bits.size() &&
          compatible(target, cube)) {
        for (std::size_t i = 0; i < cube.bits.size(); ++i) {
          if (cube.bits[i] != Value3::X) target.bits[i] = cube.bits[i];
        }
        placed = true;
        break;
      }
    }
    if (!placed) merged.push_back(cube);
  }
  return merged;
}

DeterministicTpgResult GenerateDeterministicPatterns(
    const netlist::Netlist& netlist, std::span<const StuckAtFault> targets,
    const DeterministicTpgOptions& options) {
  DeterministicTpgResult result;
  util::SplitMix64 rng(options.seed);
  Podem podem(netlist, options.backtrack_limit);
  // One single-pattern drop-scan campaign per generated pattern; the runner
  // keeps its simulator state across all of them.
  sim::CampaignRunner runner(netlist, {.block_width = 1, .threads = 1});

  std::vector<StuckAtFault> remaining(targets.begin(), targets.end());
  enum : std::uint8_t { kPending, kDropped, kUntestable };
  std::vector<std::uint8_t> status(remaining.size(), kPending);
  std::vector<StuckAtFault> pending;
  std::vector<std::size_t> pending_idx;

  // Batch targets per fanout-free region: faults of one region share their
  // propagation path from the stem onward (and usually their activation
  // neighborhood), so the region's last successful cube is handed to PODEM
  // as a decision hint and the implication/backtrace work is amortized
  // across the whole region instead of repeated per fault. Stable order
  // within a region preserves the collapsed-fault order.
  const netlist::StructuralInfo& structure = netlist.Structure();
  std::vector<std::size_t> order(remaining.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return structure.FfrStemOf(remaining[a].node) <
                            structure.FfrStemOf(remaining[b].node);
                   });

  netlist::NodeId current_stem = netlist::kInvalidNode;
  TestCube region_hint;
  bool have_hint = false;

  for (std::size_t i : order) {
    if (status[i] != kPending) continue;
    const netlist::NodeId stem = structure.FfrStemOf(remaining[i].node);
    if (stem != current_stem) {
      current_stem = stem;
      have_hint = false;
      ++result.ffr_groups;
    }
    const PodemResult pr =
        podem.Generate(remaining[i], have_hint ? &region_hint : nullptr);
    if (pr.outcome == PodemOutcome::Untestable) {
      status[i] = kUntestable;
      ++result.untestable;
      continue;
    }
    if (pr.outcome == PodemOutcome::Aborted) {
      // Stays pending: a later pattern may catch it by chance.
      ++result.aborted;
      continue;
    }

    const BitPattern pattern = FillCube(pr.cube, rng);
    // Scan the whole pending list so previously aborted faults can still be
    // dropped by serendipitous detection.
    pending.clear();
    pending_idx.clear();
    for (std::size_t j = 0; j < remaining.size(); ++j) {
      if (status[j] != kPending) continue;
      pending.push_back(remaining[j]);
      pending_idx.push_back(j);
    }
    sim::StoredPatternSource source(std::span<const BitPattern>(&pattern, 1));
    DropScanSink sink(status, pending_idx, kDropped, result.detected);
    runner.Run(source, sink, {.track = pending});
    result.total_care_bits += pr.cube.CareBitCount();
    result.cubes.push_back(pr.cube);
    result.patterns.push_back(pattern);
    region_hint = pr.cube;
    have_hint = true;
  }

  if (options.static_compaction && !result.cubes.empty()) {
    // Merge and refill. Every explicitly generated cube keeps detecting its
    // own target (the merged cube carries a superset of its care bits), but
    // targets that were only dropped thanks to the old random fill can escape
    // the refilled set — verify against the dropped set and graft back the
    // original patterns still needed, so the compacted set never detects
    // fewer targets than the uncompacted one.
    auto merged = MergeCompatibleCubes(result.cubes);
    if (merged.size() < result.cubes.size()) {
      std::vector<BitPattern> merged_patterns;
      merged_patterns.reserve(merged.size());
      for (const TestCube& cube : merged) {
        merged_patterns.push_back(FillCube(cube, rng));
      }

      std::vector<StuckAtFault> dropped;
      for (std::size_t j = 0; j < remaining.size(); ++j) {
        if (status[j] == kDropped) dropped.push_back(remaining[j]);
      }
      std::vector<std::uint64_t> first_detect(dropped.size(), UINT64_MAX);
      {
        sim::StoredPatternSource source{
            std::span<const BitPattern>(merged_patterns)};
        sim::FirstDetectSink sink(first_detect);
        runner.Run(source, sink, {.track = dropped, .drop_detected = true});
      }
      std::vector<StuckAtFault> missed;
      for (std::size_t j = 0; j < dropped.size(); ++j) {
        if (first_detect[j] == UINT64_MAX) missed.push_back(dropped[j]);
      }
      if (!missed.empty()) {
        std::vector<std::uint64_t> original_first(missed.size(), UINT64_MAX);
        sim::StoredPatternSource source{
            std::span<const BitPattern>(result.patterns)};
        sim::FirstDetectSink sink(original_first);
        runner.Run(source, sink, {.track = missed, .drop_detected = true});
        std::vector<std::size_t> graft;
        for (std::uint64_t p : original_first) {
          if (p != UINT64_MAX) graft.push_back(static_cast<std::size_t>(p));
        }
        std::sort(graft.begin(), graft.end());
        graft.erase(std::unique(graft.begin(), graft.end()), graft.end());
        for (std::size_t p : graft) {
          merged.push_back(result.cubes[p]);
          merged_patterns.push_back(result.patterns[p]);
        }
      }
      if (merged_patterns.size() <= result.patterns.size()) {
        result.cubes = std::move(merged);
        result.patterns = std::move(merged_patterns);
        result.total_care_bits = 0;
        for (const TestCube& cube : result.cubes) {
          result.total_care_bits += cube.CareBitCount();
        }
      }
    }
  }

  if (options.reverse_compaction && !result.patterns.empty()) {
    std::vector<bool> keep;
    auto compacted = CompactPatterns(netlist, result.patterns, targets, &keep);
    std::vector<TestCube> kept_cubes;
    std::size_t care = 0;
    for (std::size_t i = 0; i < keep.size(); ++i) {
      if (!keep[i]) continue;
      care += result.cubes[i].CareBitCount();
      kept_cubes.push_back(std::move(result.cubes[i]));
    }
    result.cubes = std::move(kept_cubes);
    result.patterns = std::move(compacted);
    result.total_care_bits = care;
  }
  return result;
}

std::vector<BitPattern> CompactPatterns(
    const netlist::Netlist& netlist, std::span<const BitPattern> patterns,
    std::span<const StuckAtFault> targets, std::vector<bool>* keep_mask_out) {
  // Walk patterns in reverse order; keep a pattern iff it detects at least
  // one still-undetected fault. Later patterns (generated for the hardest
  // faults last) tend to detect many easy faults, making early patterns
  // redundant. A pattern detecting a still-undetected fault is by definition
  // that fault's first detection in the reversed stream, so the keep set is
  // exactly "some fault first-detects here" — a reversed drop campaign with
  // a first-detect sink.
  sim::CampaignRunner runner(netlist, {.block_width = 1, .threads = 1});
  sim::StoredPatternSource source(patterns, /*reversed=*/true);
  std::vector<std::uint64_t> first_detect(targets.size(), UINT64_MAX);
  sim::FirstDetectSink sink(first_detect);
  runner.Run(source, sink, {.track = targets, .drop_detected = true});

  std::vector<bool> keep(patterns.size(), false);
  for (std::uint64_t rev : first_detect) {
    if (rev != UINT64_MAX) {
      keep[patterns.size() - 1 - static_cast<std::size_t>(rev)] = true;
    }
  }

  std::vector<BitPattern> out;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    if (keep[i]) out.push_back(patterns[i]);
  }
  if (keep_mask_out) *keep_mask_out = std::move(keep);
  return out;
}

}  // namespace bistdse::atpg
