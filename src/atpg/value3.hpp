// Three-valued (0/1/X) logic used by the PODEM test generator.
#pragma once

#include <cstdint>
#include <span>

#include "netlist/gate.hpp"

namespace bistdse::atpg {

enum class Value3 : std::uint8_t { Zero = 0, One = 1, X = 2 };

constexpr Value3 FromBool(bool b) { return b ? Value3::One : Value3::Zero; }

constexpr Value3 Not3(Value3 v) {
  if (v == Value3::X) return Value3::X;
  return v == Value3::Zero ? Value3::One : Value3::Zero;
}

/// Kleene AND over two values.
constexpr Value3 And3(Value3 a, Value3 b) {
  if (a == Value3::Zero || b == Value3::Zero) return Value3::Zero;
  if (a == Value3::One && b == Value3::One) return Value3::One;
  return Value3::X;
}

/// Kleene OR over two values.
constexpr Value3 Or3(Value3 a, Value3 b) {
  if (a == Value3::One || b == Value3::One) return Value3::One;
  if (a == Value3::Zero && b == Value3::Zero) return Value3::Zero;
  return Value3::X;
}

/// Kleene XOR over two values.
constexpr Value3 Xor3(Value3 a, Value3 b) {
  if (a == Value3::X || b == Value3::X) return Value3::X;
  return a == b ? Value3::Zero : Value3::One;
}

/// Evaluates one gate in 3-valued logic.
Value3 EvalGate3(netlist::GateType type, std::span<const Value3> fanins);

}  // namespace bistdse::atpg
