// Deterministic test pattern generation with fault dropping and
// reverse-order compaction — the "top-up" stage of mixed-mode BIST.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "atpg/podem.hpp"
#include "sim/fault.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::atpg {

struct DeterministicTpgOptions {
  std::uint64_t seed = 1;               ///< For random fill of don't-cares.
  std::uint32_t backtrack_limit = 200;  ///< PODEM effort per fault.
  bool reverse_compaction = true;       ///< Reverse-order fault-sim compaction.
  /// Static compaction: greedily merge compatible cubes (no conflicting care
  /// bit) before random fill, shrinking the encoded pattern count further.
  bool static_compaction = false;
};

struct DeterministicTpgResult {
  /// Pre-fill cubes (care bits only), aligned with `patterns`. Their care-bit
  /// counts drive the BIST encoding cost model.
  std::vector<TestCube> cubes;
  /// Fully specified patterns after random fill (and compaction, if enabled).
  std::vector<sim::BitPattern> patterns;
  std::size_t detected = 0;    ///< Target faults detected by `patterns`.
  std::size_t untestable = 0;  ///< Proven redundant.
  std::size_t aborted = 0;     ///< PODEM gave up (backtrack limit).
  std::size_t total_care_bits = 0;
  /// Distinct fanout-free regions the target list was batched into (PODEM
  /// reuses each region's last successful cube as a decision hint).
  std::size_t ffr_groups = 0;
};

/// Generates deterministic patterns covering `targets`. Faults detected by an
/// earlier pattern are dropped before ATPG is attempted for them.
DeterministicTpgResult GenerateDeterministicPatterns(
    const netlist::Netlist& netlist, std::span<const sim::StuckAtFault> targets,
    const DeterministicTpgOptions& options = {});

/// Greedy static compaction: merges cubes pairwise whenever their care bits
/// do not conflict (the merged cube carries the union of care bits). The
/// result detects at least the union of the inputs' target faults.
std::vector<TestCube> MergeCompatibleCubes(std::span<const TestCube> cubes);

/// Reverse-order fault-simulation compaction: returns the subset of
/// `patterns` (original relative order preserved) that still detects every
/// fault of `targets` that the full set detects. `keep_mask_out`, if non-null,
/// receives one flag per input pattern.
std::vector<sim::BitPattern> CompactPatterns(
    const netlist::Netlist& netlist, std::span<const sim::BitPattern> patterns,
    std::span<const sim::StuckAtFault> targets,
    std::vector<bool>* keep_mask_out = nullptr);

}  // namespace bistdse::atpg
