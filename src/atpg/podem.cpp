#include "atpg/podem.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::atpg {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

Value3 EvalGate3(GateType type, std::span<const Value3> fanins) {
  switch (type) {
    case GateType::Buf:
      return fanins[0];
    case GateType::Not:
      return Not3(fanins[0]);
    case GateType::And:
    case GateType::Nand: {
      Value3 v = Value3::One;
      for (Value3 f : fanins) v = And3(v, f);
      return type == GateType::And ? v : Not3(v);
    }
    case GateType::Or:
    case GateType::Nor: {
      Value3 v = Value3::Zero;
      for (Value3 f : fanins) v = Or3(v, f);
      return type == GateType::Or ? v : Not3(v);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      Value3 v = Value3::Zero;
      for (Value3 f : fanins) v = Xor3(v, f);
      return type == GateType::Xor ? v : Not3(v);
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("EvalGate3 called on source node");
  }
  return Value3::X;
}

Podem::Podem(const Netlist& netlist, std::uint32_t backtrack_limit)
    : netlist_(netlist),
      backtrack_limit_(backtrack_limit),
      input_index_of_(netlist.NodeCount(), static_cast<std::uint32_t>(-1)) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
  const auto inputs = netlist.CoreInputs();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    input_index_of_[inputs[i]] = static_cast<std::uint32_t>(i);
}

std::pair<Value3, Value3> Podem::EvaluateNode(netlist::NodeId id) const {
  const auto fanins = netlist_.FaninsOf(id);
  std::vector<Value3> gvals, fvals;
  gvals.reserve(fanins.size());
  fvals.reserve(fanins.size());
  for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
    gvals.push_back(good_[fanins[pin]]);
    Value3 fv = faulty_[fanins[pin]];
    if (id == fault_.node && static_cast<int>(pin) == fault_.fanin_index) {
      fv = FromBool(fault_.stuck_value);
    }
    fvals.push_back(fv);
  }
  Value3 g = EvalGate3(netlist_.TypeOf(id), gvals);
  Value3 f = EvalGate3(netlist_.TypeOf(id), fvals);
  if (id == fault_.node && fault_.IsStem()) f = FromBool(fault_.stuck_value);
  return {g, f};
}

void Podem::AssignAndPropagate(std::uint32_t input_index, Value3 value) {
  assignment_[input_index] = value;
  const netlist::NodeId input = netlist_.CoreInputs()[input_index];
  good_[input] = value;
  faulty_[input] = (fault_.IsStem() && input == fault_.node)
                       ? FromBool(fault_.stuck_value)
                       : value;

  if (level_buckets_.size() != netlist_.MaxLevel() + 1) {
    level_buckets_.assign(netlist_.MaxLevel() + 1, {});
    in_queue_.assign(netlist_.NodeCount(), 0);
  }

  std::uint32_t min_level = netlist_.MaxLevel() + 1;
  std::uint32_t max_level = 0;
  auto enqueue_fanouts = [&](netlist::NodeId id) {
    for (netlist::NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;
      if (in_queue_[out]) continue;
      in_queue_[out] = 1;
      const std::uint32_t lvl = netlist_.LevelOf(out);
      level_buckets_[lvl].push_back(out);
      min_level = std::min(min_level, lvl);
      max_level = std::max(max_level, lvl);
    }
  };
  enqueue_fanouts(input);

  for (std::uint32_t lvl = min_level; lvl <= max_level && lvl < level_buckets_.size(); ++lvl) {
    auto& bucket = level_buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const netlist::NodeId id = bucket[i];
      in_queue_[id] = 0;
      const auto [g, f] = EvaluateNode(id);
      if (g == good_[id] && f == faulty_[id]) continue;
      good_[id] = g;
      faulty_[id] = f;
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
}

void Podem::SimulateBothPlanes() {
  const auto inputs = netlist_.CoreInputs();
  good_.assign(netlist_.NodeCount(), Value3::X);
  faulty_.assign(netlist_.NodeCount(), Value3::X);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    good_[inputs[i]] = assignment_[i];
    faulty_[inputs[i]] = assignment_[i];
  }

  // Inject stem faults at source nodes directly.
  if (fault_.IsStem()) faulty_[fault_.node] = FromBool(fault_.stuck_value);

  std::vector<Value3> vals;
  for (NodeId id : netlist_.TopologicalOrder()) {
    const auto fanins = netlist_.FaninsOf(id);
    vals.clear();
    for (NodeId f : fanins) vals.push_back(good_[f]);
    good_[id] = EvalGate3(netlist_.TypeOf(id), vals);

    vals.clear();
    for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
      Value3 v = faulty_[fanins[pin]];
      if (id == fault_.node && static_cast<int>(pin) == fault_.fanin_index)
        v = FromBool(fault_.stuck_value);
      vals.push_back(v);
    }
    Value3 fv = EvalGate3(netlist_.TypeOf(id), vals);
    if (id == fault_.node && fault_.IsStem()) fv = FromBool(fault_.stuck_value);
    faulty_[id] = fv;
  }
  // Re-force stems on source nodes (Input/Dff) that the loop above skipped.
  if (fault_.IsStem()) faulty_[fault_.node] = FromBool(fault_.stuck_value);
}

bool Podem::Detected() const {
  // Flop D-branch faults are observed directly at the flop's PPO slot.
  if (!fault_.IsStem() && netlist_.TypeOf(fault_.node) == GateType::Dff) {
    const Value3 g = good_[netlist_.FaninsOf(fault_.node)[0]];
    return g != Value3::X && g != FromBool(fault_.stuck_value);
  }
  for (NodeId id : netlist_.CoreOutputs()) {
    if (good_[id] != Value3::X && faulty_[id] != Value3::X &&
        good_[id] != faulty_[id]) {
      return true;
    }
  }
  return false;
}

std::optional<std::pair<NodeId, Value3>> Podem::Objective() {
  // Flop D-branch: single objective — drive the D net to the opposite value.
  if (!fault_.IsStem() && netlist_.TypeOf(fault_.node) == GateType::Dff) {
    const NodeId driver = netlist_.FaninsOf(fault_.node)[0];
    if (good_[driver] != Value3::X) return std::nullopt;  // conflict or done
    return std::make_pair(driver, Not3(FromBool(fault_.stuck_value)));
  }

  // Activation: the fault site (stem) or faulted pin's driver must carry the
  // opposite of the stuck value in the good circuit.
  const NodeId site_net = fault_.IsStem()
                              ? fault_.node
                              : netlist_.FaninsOf(fault_.node)[fault_.fanin_index];
  const Value3 want = Not3(FromBool(fault_.stuck_value));
  if (good_[site_net] == Value3::X) return std::make_pair(site_net, want);
  if (good_[site_net] != want) return std::nullopt;  // unactivatable here

  // Propagation: pick a D-frontier gate and set one of its X inputs to the
  // non-controlling value. For a branch fault the site gate itself is in the
  // frontier: its faulted pin carries D by the forced value, even though the
  // driver net's planes agree.
  for (NodeId id : netlist_.TopologicalOrder()) {
    if (good_[id] != Value3::X && faulty_[id] != Value3::X) continue;
    bool has_d_input = false;
    if (id == fault_.node && !fault_.IsStem()) {
      has_d_input = true;  // activation was checked above
    }
    for (NodeId f : netlist_.FaninsOf(id)) {
      if (has_d_input) break;
      if (good_[f] != Value3::X && faulty_[f] != Value3::X &&
          good_[f] != faulty_[f]) {
        has_d_input = true;
      }
    }
    if (!has_d_input) continue;
    const GateType type = netlist_.TypeOf(id);
    for (NodeId f : netlist_.FaninsOf(id)) {
      if (good_[f] != Value3::X) continue;
      const int ctrl = netlist::ControllingValue(type);
      const Value3 v = ctrl < 0 ? Value3::Zero : Not3(FromBool(ctrl == 1));
      return std::make_pair(f, v);
    }
  }
  return std::nullopt;  // no D-frontier gate with an X input
}

std::optional<std::pair<std::uint32_t, Value3>> Podem::Backtrace(
    NodeId node, Value3 value) const {
  // Follow X-valued nets toward a core input, inverting the target value
  // through inverting gates.
  NodeId cur = node;
  Value3 v = value;
  for (;;) {
    const GateType type = netlist_.TypeOf(cur);
    if (type == GateType::Input || type == GateType::Dff) {
      const std::uint32_t idx = input_index_of_[cur];
      if (assignment_[idx] != Value3::X) return std::nullopt;  // already set
      return std::make_pair(idx, v);
    }
    const Value3 v_in = IsInverting(type) ? Not3(v) : v;
    // Choose an X-valued input. If the required value is the controlling
    // value, any single input suffices ("easiest": lowest level). Otherwise
    // all inputs must eventually get it, start with the hardest (highest
    // level) to fail fast.
    const int ctrl = netlist::ControllingValue(type);
    NodeId chosen = netlist::kInvalidNode;
    const bool want_easiest = ctrl >= 0 && v_in == FromBool(ctrl == 1);
    std::uint32_t best_level = 0;
    for (NodeId f : netlist_.FaninsOf(cur)) {
      if (good_[f] != Value3::X) continue;
      const std::uint32_t lvl = netlist_.LevelOf(f);
      if (chosen == netlist::kInvalidNode ||
          (want_easiest ? lvl < best_level : lvl > best_level)) {
        chosen = f;
        best_level = lvl;
      }
    }
    if (chosen == netlist::kInvalidNode) return std::nullopt;
    if (type == GateType::Xor || type == GateType::Xnor) {
      // XOR heuristic: pick the value that yields the desired output parity
      // assuming the remaining X inputs settle at 0; backtracking corrects
      // wrong guesses.
      Value3 parity = type == GateType::Xnor ? Value3::One : Value3::Zero;
      for (NodeId f : netlist_.FaninsOf(cur)) {
        if (f == chosen) continue;
        if (good_[f] == Value3::One) parity = Not3(parity);
      }
      v = Xor3(v, parity);
    } else {
      v = v_in;
    }
    cur = chosen;
  }
}

bool Podem::XPathExists() const {
  // A fault effect can still reach an observation point if some node that
  // carries D (planes differ) or X faulty value has a forward path of
  // X-valued nodes to a core output. Conservative check: BFS from D-carrying
  // nodes through X nodes.
  std::vector<std::uint8_t> carries_d(netlist_.NodeCount(), 0);
  std::vector<NodeId> frontier;
  for (NodeId id = 0; id < netlist_.NodeCount(); ++id) {
    if (good_[id] != Value3::X && faulty_[id] != Value3::X &&
        good_[id] != faulty_[id]) {
      carries_d[id] = 1;
      frontier.push_back(id);
    }
  }
  if (frontier.empty()) {
    const NodeId site_net =
        fault_.IsStem() ? fault_.node
                        : netlist_.FaninsOf(fault_.node)[fault_.fanin_index];
    if (good_[site_net] == Value3::X) return true;  // activation still open
    if (good_[site_net] == FromBool(fault_.stuck_value)) return false;
    // Branch fault activated at the pin but not yet visible at the site
    // gate's output: propagation is possible iff that output is still
    // undetermined in some plane.
    if (!fault_.IsStem() && netlist_.TypeOf(fault_.node) != GateType::Dff &&
        (good_[fault_.node] == Value3::X ||
         faulty_[fault_.node] == Value3::X)) {
      carries_d[fault_.node] = 1;
      frontier.push_back(fault_.node);
    }
    if (frontier.empty()) return false;
  }

  std::vector<std::uint8_t> visited(netlist_.NodeCount(), 0);
  std::vector<std::uint8_t> observed(netlist_.NodeCount(), 0);
  for (NodeId id : netlist_.CoreOutputs()) observed[id] = 1;

  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    if (observed[id]) return true;
    for (NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;
      if (visited[out]) continue;
      visited[out] = 1;
      // Propagation is possible through nodes whose value is not yet fixed
      // identically in both planes.
      if (good_[out] == Value3::X || faulty_[out] == Value3::X ||
          good_[out] != faulty_[out]) {
        frontier.push_back(out);
      }
    }
  }
  return false;
}

PodemResult Podem::Generate(const sim::StuckAtFault& fault,
                            const TestCube* hint) {
  if (hint && hint->bits.size() == netlist_.CoreInputs().size()) {
    PodemResult hinted = GenerateImpl(fault, hint);
    // A hinted Untestable is still a complete-search proof (hint decisions
    // are flippable); only an abort warrants a fresh unhinted attempt.
    if (hinted.outcome != PodemOutcome::Aborted) return hinted;
  }
  return GenerateImpl(fault, nullptr);
}

PodemResult Podem::GenerateImpl(const sim::StuckAtFault& fault,
                                const TestCube* hint) {
  fault_ = fault;
  assignment_.assign(netlist_.CoreInputs().size(), Value3::X);
  decisions_.clear();
  PodemResult result;

  SimulateBothPlanes();
  if (hint) {
    // Seed the hint's care bits as ordinary decisions: usually they carry
    // the region's shared activation/propagation conditions and the search
    // finishes immediately; when they conflict, normal backtracking flips
    // them like any other decision.
    for (std::size_t i = 0; i < hint->bits.size(); ++i) {
      if (Detected()) break;
      if (hint->bits[i] == Value3::X || assignment_[i] != Value3::X) continue;
      const auto idx = static_cast<std::uint32_t>(i);
      decisions_.push_back({idx, hint->bits[i], false});
      AssignAndPropagate(idx, hint->bits[i]);
    }
  }
  for (;;) {
    if (Detected()) {
      result.outcome = PodemOutcome::Detected;
      result.cube.bits = assignment_;
      return result;
    }

    bool dead_end = false;
    std::optional<std::pair<std::uint32_t, Value3>> next;
    if (!XPathExists()) {
      dead_end = true;
    } else if (auto obj = Objective()) {
      next = Backtrace(obj->first, obj->second);
      dead_end = !next.has_value();
    } else {
      dead_end = true;
    }

    if (dead_end) {
      // Backtrack: flip the most recent unflipped decision.
      for (;;) {
        if (decisions_.empty()) {
          result.outcome = PodemOutcome::Untestable;
          return result;
        }
        Decision& d = decisions_.back();
        if (!d.flipped) {
          d.flipped = true;
          d.value = Not3(d.value);
          assignment_[d.input_index] = d.value;
          ++result.backtracks;
          break;
        }
        assignment_[d.input_index] = Value3::X;
        decisions_.pop_back();
      }
      if (result.backtracks > backtrack_limit_) {
        result.outcome = PodemOutcome::Aborted;
        return result;
      }
      SimulateBothPlanes();  // un-refining X values needs a full recompute
      continue;
    }

    decisions_.push_back({next->first, next->second, false});
    AssignAndPropagate(next->first, next->second);
  }
}

}  // namespace bistdse::atpg
