// PODEM (Path-Oriented DEcision Making) deterministic test generation.
//
// The generator operates on the full-scan combinational core: decisions are
// made only at core inputs (PIs and flop Qs); values propagate by two-plane
// three-valued simulation (a fault-free plane and a faulty plane with the
// target fault injected). A fault is detected when some core output differs
// between the planes with both values known.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "atpg/value3.hpp"
#include "netlist/netlist.hpp"
#include "sim/fault.hpp"

namespace bistdse::atpg {

/// A test cube: one Value3 per core input (CoreInputs() order). X positions
/// are don't-cares to be filled (randomly for BIST top-up patterns).
struct TestCube {
  std::vector<Value3> bits;

  std::size_t CareBitCount() const {
    std::size_t n = 0;
    for (Value3 v : bits) n += v != Value3::X;
    return n;
  }
};

enum class PodemOutcome : std::uint8_t {
  Detected,    ///< Cube generated.
  Untestable,  ///< Proven redundant (search space exhausted).
  Aborted,     ///< Backtrack limit hit.
};

struct PodemResult {
  PodemOutcome outcome = PodemOutcome::Aborted;
  TestCube cube;                 ///< Valid iff outcome == Detected.
  std::uint32_t backtracks = 0;  ///< Search effort spent.
};

class Podem {
 public:
  /// `backtrack_limit` bounds search effort per fault.
  explicit Podem(const netlist::Netlist& netlist,
                 std::uint32_t backtrack_limit = 200);

  /// Attempts to generate a test cube for `fault`. `hint` (optional) is a
  /// previously successful cube for a structurally related fault — typically
  /// another fault in the same fanout-free region, whose activation and
  /// propagation conditions overlap heavily. Its care bits are seeded as
  /// ordinary flippable decisions before the search starts, so completeness
  /// is untouched: an exhausted decision stack still proves untestability.
  /// If the hinted search aborts on the backtrack limit, the generator
  /// retries once without the hint — a hint can speed the search up but
  /// never change the outcome quality.
  PodemResult Generate(const sim::StuckAtFault& fault,
                       const TestCube* hint = nullptr);

 private:
  struct Decision {
    std::uint32_t input_index;  ///< Index into CoreInputs().
    Value3 value;
    bool flipped;
  };

  PodemResult GenerateImpl(const sim::StuckAtFault& fault,
                           const TestCube* hint);
  void SimulateBothPlanes();
  /// Incremental forward propagation after assigning one core input (both
  /// planes). Sound because forward decisions only refine X values (Kleene
  /// monotonicity); backtracking falls back to SimulateBothPlanes().
  void AssignAndPropagate(std::uint32_t input_index, Value3 value);
  /// Recomputes one node's planes from its fanins (with fault overrides).
  std::pair<Value3, Value3> EvaluateNode(netlist::NodeId id) const;
  bool Detected() const;
  /// Next objective (node, value) or nullopt if the search hit a dead end.
  std::optional<std::pair<netlist::NodeId, Value3>> Objective();
  /// Maps an objective to a core-input assignment.
  std::optional<std::pair<std::uint32_t, Value3>> Backtrace(
      netlist::NodeId node, Value3 value) const;
  bool XPathExists() const;

  const netlist::Netlist& netlist_;
  std::uint32_t backtrack_limit_;
  sim::StuckAtFault fault_{};
  std::vector<Value3> assignment_;  // per core input
  std::vector<Value3> good_;        // per node
  std::vector<Value3> faulty_;      // per node
  std::vector<std::uint32_t> input_index_of_;  // NodeId -> core input index
  std::vector<Decision> decisions_;
  // Event propagation scratch (lazily sized).
  std::vector<std::vector<netlist::NodeId>> level_buckets_;
  std::vector<std::uint8_t> in_queue_;
};

}  // namespace bistdse::atpg
