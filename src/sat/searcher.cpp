#include "sat/searcher.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::sat {

namespace {

/// Luby restart sequence (MiniSat formulation).
std::uint64_t Luby(std::uint64_t x) {
  std::uint64_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

void Searcher::AddVar() {
  phase_.push_back(0);
  in_policy_.push_back(0);
  activity_.push_back(0.0);
  heap_pos_.push_back(0);
  seen_.push_back(0);
  level_seen_.push_back(0);
}

void Searcher::SetDecisionPolicy(std::span<const Var> order,
                                 std::span<const std::uint8_t> phases) {
  if (order.size() != phases.size())
    throw std::invalid_argument("order/phases size mismatch");
  order_.assign(order.begin(), order.end());
  std::fill(in_policy_.begin(), in_policy_.end(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= in_policy_.size())
      throw std::invalid_argument("decision policy names an unknown variable");
    phase_[order[i]] = phases[i] ? 1 : 0;
    in_policy_[order[i]] = 1;
  }
  decision_head_ = 0;
  tail_head_ = 0;
}

bool Searcher::PickBranch(Lit& decision) {
  // Pinned policy prefix: the first variable whose equivalence class is
  // still unassigned decides its representative with the projected phase.
  while (decision_head_ < order_.size()) {
    const Var v = order_[decision_head_];
    const Lit root = db_.Resolve(PosLit(v));
    if (prop_.ValueOfVar(VarOf(root)) == Value::Unassigned) {
      decision = phase_[v] ? root : Negate(root);
      return true;
    }
    ++decision_head_;
  }
  if (config_.tail_policy == SolverConfig::TailPolicy::kIndexOrder) {
    // Historical SAT-decoding tail: ascending index, preferred phase false.
    const auto n = static_cast<Var>(prop_.VarCount());
    while (tail_head_ < n) {
      const Var v = tail_head_;
      if (!in_policy_[v]) {
        const Lit root = db_.Resolve(NegLit(v));
        if (prop_.ValueOfVar(VarOf(root)) == Value::Unassigned) {
          decision = root;
          return true;
        }
      }
      ++tail_head_;
    }
    return false;
  }
  // Activity tail: highest-activity unassigned representative, saved phase.
  while (!heap_.empty()) {
    const Var v = heap_.front();
    const Lit root = db_.Resolve(PosLit(v));
    const Var rv = VarOf(root);
    if (in_policy_[v] || v != rv ||
        prop_.ValueOfVar(rv) != Value::Unassigned) {
      heap_pos_[v] = 0;
      heap_.front() = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) {
        heap_pos_[heap_.front()] = 1;
        HeapSiftDown(0);
      }
      continue;
    }
    decision = prop_.SavedPhase(rv) ? PosLit(rv) : NegLit(rv);
    return true;
  }
  return false;
}

std::uint32_t Searcher::ComputeLbd(const std::vector<Lit>& lits) {
  ++level_stamp_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const std::uint32_t level = prop_.LevelOf(VarOf(l));
    if (level_seen_[level] != level_stamp_) {
      level_seen_[level] = level_stamp_;
      ++lbd;
    }
  }
  return lbd;
}

void Searcher::Analyze(const Conflict& conflict, std::vector<Lit>& learnt,
                       std::uint32_t& backjump_level, std::uint32_t& lbd) {
  learnt.assign(1, kNoLit);
  ++seen_stamp_;
  const std::uint32_t current_level = prop_.DecisionLevel();
  std::uint32_t counter = 0;
  Lit p = kNoLit;
  const auto& trail = prop_.Trail();
  std::size_t idx = trail.size();
  std::vector<Lit> reason_lits = prop_.ConflictLits(conflict);

  for (;;) {
    for (const Lit q : reason_lits) {
      if (q == p) continue;
      const Var v = VarOf(q);
      if (Seen(v) || prop_.LevelOf(v) == 0) continue;
      MarkSeen(v);
      BumpActivity(v);
      if (prop_.LevelOf(v) >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    while (idx > 0 && !Seen(VarOf(trail[idx - 1]))) --idx;
    p = trail[--idx];
    const Var pv = VarOf(p);
    UnmarkSeen(pv);
    --counter;
    if (counter == 0) break;
    reason_lits = prop_.ReasonLits(prop_.ReasonOf(pv), p);
  }
  learnt[0] = Negate(p);

  // Conflict-clause minimization (MiniSat-style): drop literals whose reason
  // is fully covered by the remaining learnt literals.
  for (const Lit q : learnt) MarkSeen(VarOf(q));
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (!LitRedundant(learnt[i])) learnt[keep++] = learnt[i];
  }
  learnt.resize(keep);

  backjump_level = 0;
  std::size_t max_pos = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (prop_.LevelOf(VarOf(learnt[i])) > backjump_level) {
      backjump_level = prop_.LevelOf(VarOf(learnt[i]));
      max_pos = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_pos]);
  lbd = ComputeLbd(learnt);
}

bool Searcher::LitRedundant(Lit lit) {
  // `lit` is redundant if it was implied (non-decision) and every literal of
  // its reason is already in the learnt clause (seen) or recursively
  // redundant. Bounded depth keeps worst-case cost negligible.
  const auto implied_kind = [](Reason::Kind k) {
    return k == Reason::Kind::Clause || k == Reason::Kind::Binary ||
           k == Reason::Kind::Pb;
  };
  if (!implied_kind(prop_.ReasonOf(VarOf(lit)).kind)) return false;
  std::vector<Lit> pending{lit};
  std::vector<Var> marked;  // temporarily marked as known-redundant
  std::size_t steps = 0;
  while (!pending.empty()) {
    if (++steps > 64) {
      for (Var v : marked) UnmarkSeen(v);
      return false;
    }
    const Lit cur = pending.back();
    pending.pop_back();
    const Reason reason = prop_.ReasonOf(VarOf(cur));
    if (!implied_kind(reason.kind)) {
      for (Var v : marked) UnmarkSeen(v);
      return false;
    }
    for (const Lit q : prop_.ReasonLits(reason, Negate(cur))) {
      if (q == Negate(cur)) continue;
      const Var v = VarOf(q);
      if (Seen(v) || prop_.LevelOf(v) == 0) continue;
      MarkSeen(v);
      marked.push_back(v);
      pending.push_back(q);
    }
  }
  // Keep the marks: anything proven redundant stays covered for later
  // literals of the same learnt clause.
  return true;
}

void Searcher::ReduceLearned() {
  struct Entry {
    std::uint32_t lbd;
    std::uint32_t size;
    std::uint32_t index;
  };
  std::vector<Entry> candidates;
  for (std::uint32_t i = 0; i < db_.ClauseCount(); ++i) {
    const Clause& cl = db_.ClauseAt(i);
    if (cl.removed || !cl.learned) continue;
    if (cl.lbd <= 2) continue;  // glue clauses always survive
    candidates.push_back(
        {cl.lbd, static_cast<std::uint32_t>(cl.lits.size()), i});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Entry& a, const Entry& b) {
              if (a.lbd != b.lbd) return a.lbd > b.lbd;
              if (a.size != b.size) return a.size > b.size;
              return a.index > b.index;  // prefer deleting younger clauses
            });
  const std::size_t drop = candidates.size() / 2;
  for (std::size_t i = 0; i < drop; ++i) db_.Remove(candidates[i].index);
  stats_.reduced_clauses += drop;
}

void Searcher::CancelUntil(std::uint32_t level) {
  prop_.CancelUntil(level);
  decision_head_ = 0;
  tail_head_ = 0;
  if (config_.tail_policy == SolverConfig::TailPolicy::kActivity) {
    for (const Var v : prop_.LastUnassigned()) HeapInsert(v);
  }
}

SolveResult Searcher::Search() {
  if (config_.tail_policy == SolverConfig::TailPolicy::kActivity) {
    RebuildHeap();
  }
  decision_head_ = 0;
  tail_head_ = 0;
  std::uint64_t restart_index = 0;
  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t restart_budget = 64 * Luby(restart_index);

  for (;;) {
    const Conflict conflict = prop_.Propagate();
    if (conflict.IsConflict()) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (prop_.DecisionLevel() == 0) return SolveResult::Unsat;
      std::vector<Lit> learnt;
      std::uint32_t backjump = 0;
      std::uint32_t lbd = 0;
      Analyze(conflict, learnt, backjump, lbd);
      CancelUntil(backjump);
      if (learnt.size() == 1) {
        if (prop_.LitValue(learnt[0]) == Value::False) {
          return SolveResult::Unsat;
        }
        if (prop_.LitValue(learnt[0]) == Value::Unassigned) {
          prop_.Enqueue(learnt[0], {Reason::Kind::None, 0});  // root fact
        }
      } else if (learnt.size() == 2) {
        db_.AddBinary(learnt[0], learnt[1]);
        ++stats_.learned_clauses;
        prop_.Enqueue(learnt[0],
                      {Reason::Kind::Binary, Negate(learnt[1])});
      } else {
        const std::uint32_t ci = db_.AddLong(std::move(learnt), true, lbd);
        ++stats_.learned_clauses;
        prop_.Enqueue(db_.ClauseAt(ci).lits[0], {Reason::Kind::Clause, ci});
      }
      DecayActivities();
      if (conflicts_since_restart >= restart_budget) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_budget = 64 * Luby(++restart_index);
        CancelUntil(0);
        if (config_.reduce_learned &&
            db_.LiveLearnedLong() >= config_.reduce_min_learned) {
          ReduceLearned();
        }
      }
      continue;
    }
    Lit decision;
    if (!PickBranch(decision)) return SolveResult::Sat;
    ++stats_.decisions;
    prop_.PushDecision(decision);
  }
}

// --- activity heap ---------------------------------------------------------

void Searcher::HeapInsert(Var v) {
  if (heap_pos_[v] != 0) return;
  heap_.push_back(v);
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  HeapSiftUp(heap_.size() - 1);
}

void Searcher::HeapSiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[heap_[i]]) break;
    std::swap(heap_[parent], heap_[i]);
    heap_pos_[heap_[parent]] = static_cast<std::uint32_t>(parent + 1);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i + 1);
    i = parent;
  }
}

void Searcher::HeapSiftDown(std::size_t i) {
  for (;;) {
    std::size_t best = i;
    const std::size_t left = 2 * i + 1, right = 2 * i + 2;
    if (left < heap_.size() &&
        activity_[heap_[left]] > activity_[heap_[best]])
      best = left;
    if (right < heap_.size() &&
        activity_[heap_[right]] > activity_[heap_[best]])
      best = right;
    if (best == i) break;
    std::swap(heap_[best], heap_[i]);
    heap_pos_[heap_[best]] = static_cast<std::uint32_t>(best + 1);
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i + 1);
    i = best;
  }
}

void Searcher::BumpActivity(Var v) {
  activity_[v] += activity_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    activity_inc_ *= 1e-100;
  }
  const std::uint32_t pos = heap_pos_[v];
  if (pos != 0) HeapSiftUp(pos - 1);
}

void Searcher::DecayActivities() { activity_inc_ /= 0.95; }

void Searcher::RebuildHeap() {
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), 0);
  for (Var v = 0; v < static_cast<Var>(prop_.VarCount()); ++v) {
    if (prop_.ValueOfVar(v) == Value::Unassigned && db_.IsRepresentative(v)) {
      HeapInsert(v);
    }
  }
}

}  // namespace bistdse::sat
