// Frozen copy of the pre-refactor monolithic CDCL+PB solver, kept verbatim
// as the oracle for differential fuzzing (tools/sat_fuzz.cpp) against the
// layered core in sat/solver.hpp. Do not evolve this file alongside the
// solver — its value is being the old behavior.
//
// Two deliberate deviations from the historical code (applied identically to
// the new Propagator), both fixing the same PB slack invariant — slack must
// track exactly the processed trail prefix, or later PB conflicts are masked
// and an invalid model gets through (unusable in an oracle):
//   1. CancelUntil restores PB slack only for literals the propagation loop
//      actually processed. The original restored slack for every popped
//      literal, including enqueued-but-unprocessed ones a conflict stranded.
//   2. Propagate applies all of a literal's PB slack decrements before any
//      conflict return (PB pass first, decrements completed even when one of
//      them conflicts). The original could return from the clause pass or
//      mid-way through the PB occurrence list, leaving the literal
//      half-subtracted while counting as processed — found by sat_fuzz.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bistdse::sat::reference {

using Var = std::uint32_t;
/// Literal encoding: lit = 2*var + (negated ? 1 : 0).
using Lit = std::uint32_t;

constexpr Lit PosLit(Var v) { return 2 * v; }
constexpr Lit NegLit(Var v) { return 2 * v + 1; }
constexpr Var VarOf(Lit l) { return l >> 1; }
constexpr bool IsNeg(Lit l) { return l & 1; }
constexpr Lit Negate(Lit l) { return l ^ 1; }

enum class Value : std::uint8_t { False = 0, True = 1, Unassigned = 2 };

enum class SolveResult : std::uint8_t { Sat, Unsat };

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
};

class Solver {
 public:
  Var NewVar();
  std::size_t VarCount() const { return assigns_.size(); }

  void AddClause(std::vector<Lit> lits);

  /// sum coef_i * lit_i >= bound (coefficients must be > 0).
  void AddPbGe(std::vector<std::pair<std::int64_t, Lit>> terms,
               std::int64_t bound);
  /// sum coef_i * lit_i <= bound.
  void AddPbLe(std::vector<std::pair<std::int64_t, Lit>> terms,
               std::int64_t bound);

  void AddAtMostOne(std::span<const Lit> lits);
  void AddExactlyOne(std::span<const Lit> lits);

  void SetDecisionPolicy(std::span<const Var> order,
                         std::span<const std::uint8_t> phases);

  SolveResult Solve();

  Value ValueOf(Var v) const { return assigns_[v]; }
  bool IsTrue(Var v) const { return assigns_[v] == Value::True; }

  const SolverStats& Stats() const { return stats_; }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
  };
  struct PbConstraint {
    std::vector<std::pair<std::int64_t, Lit>> terms;  // coef > 0
    std::int64_t bound = 0;
    std::int64_t slack = 0;  // sum of coefs of not-false lits minus bound
  };
  struct Reason {
    enum class Kind : std::uint8_t { None, Decision, Clause, Pb } kind =
        Kind::None;
    std::uint32_t index = 0;
  };

  Value LitValue(Lit l) const {
    const Value v = assigns_[VarOf(l)];
    if (v == Value::Unassigned) return Value::Unassigned;
    const bool is_true = (v == Value::True) != IsNeg(l);
    return is_true ? Value::True : Value::False;
  }

  void Enqueue(Lit l, Reason reason);
  Reason Propagate();
  void CancelUntil(std::uint32_t level);
  void Analyze(Reason conflict, std::vector<Lit>& learnt,
               std::uint32_t& backjump_level);
  std::vector<Lit> ReasonLits(Reason reason, Lit implied) const;
  bool LitRedundant(Lit lit, std::vector<std::uint8_t>& seen) const;
  void AttachClause(std::uint32_t index);
  bool PickBranch(Lit& decision);

  std::vector<Value> assigns_;
  std::vector<std::uint32_t> levels_;
  std::vector<Reason> reasons_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::uint32_t> trail_pos_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::size_t decision_head_ = 0;

  std::vector<Clause> clauses_;
  std::vector<std::vector<std::uint32_t>> clause_watches_;  // per lit
  std::vector<PbConstraint> pbs_;
  std::vector<std::vector<std::uint32_t>> pb_occurrences_;  // per lit

  std::vector<Var> decision_order_;
  std::vector<std::uint8_t> decision_phase_;

  bool ok_ = true;  // false once a top-level contradiction is found
  SolverStats stats_;
};

}  // namespace bistdse::sat::reference
