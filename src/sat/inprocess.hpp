// Root-level inprocessing between solves: failed-literal probing over the
// binary-implication graph, SCC-based equivalent-literal elimination,
// substitution of representatives through every constraint, and
// subsumption / self-subsuming strengthening of long clauses. All passes
// preserve the model set of the formula, so the pinned-policy model returned
// by the searcher is unchanged (solution reconstruction happens implicitly
// through ClauseDb::Resolve at readout).
#pragma once

#include <cstdint>
#include <vector>

#include "sat/clause_db.hpp"
#include "sat/propagator.hpp"
#include "sat/types.hpp"

namespace bistdse::sat {

class Inprocessor {
 public:
  Inprocessor(ClauseDb& db, Propagator& prop, SolverStats& stats,
              const SolverConfig& config)
      : db_(db), prop_(prop), stats_(stats), config_(config) {}

  /// Runs one full inprocessing round at decision level 0. Returns false if
  /// the formula was refuted (root conflict), true otherwise.
  bool Run();

 private:
  bool ProbeFailedLiterals();
  /// Tarjan SCC over the binary-implication graph; merges every non-trivial
  /// component into a representative literal in ClauseDb's map.
  bool EliminateEquivalentLiterals();
  bool ProcessScc(const std::vector<Lit>& component);
  /// Rewrites every long clause, binary clause and PB constraint through the
  /// representative map and the root assignment. Discovered units are queued
  /// in pending_units_ (flushed by Run after occurrence rebuilds).
  bool Substitute();
  bool SubstituteLongClauses();
  bool SubstituteBinaries();
  bool SubstitutePbs();
  /// Forward subsumption and self-subsuming strengthening over live long
  /// clauses (binary clauses act as strengtheners too). Work-bounded.
  void Subsume();

  /// Records `l` as a root fact to assert after the rebuild step.
  void QueueUnit(Lit l) { pending_units_.push_back(l); }
  bool FlushPendingUnits();

  ClauseDb& db_;
  Propagator& prop_;
  SolverStats& stats_;
  const SolverConfig& config_;

  std::vector<Lit> pending_units_;
};

}  // namespace bistdse::sat
