#include "sat/inprocess.hpp"

#include <algorithm>

namespace bistdse::sat {

namespace {
/// Work bound (literal touches) for one subsumption pass.
constexpr std::uint64_t kSubsumeBudget = 20'000'000;
}  // namespace

bool Inprocessor::Run() {
  ++stats_.inprocess_runs;
  if (prop_.DecisionLevel() != 0) return true;
  if (prop_.Propagate().IsConflict()) return false;
  pending_units_.clear();

  if (!ProbeFailedLiterals()) return false;
  if (!EliminateEquivalentLiterals()) return false;

  // From here on constraints are rewritten in place, invalidating clause
  // indices stored as reasons. Root reasons are never dereferenced during
  // analysis, but drop them anyway so no stale index survives.
  prop_.ClearRootReasons();
  if (!Substitute()) return false;
  Subsume();

  db_.RebuildWatches();
  db_.RebuildBinaryAdjacency();
  db_.RebuildPbOccurrences();
  prop_.RecomputePbSlacks();
  if (!FlushPendingUnits()) return false;
  if (prop_.Propagate().IsConflict()) return false;
  return true;
}

bool Inprocessor::ProbeFailedLiterals() {
  std::uint64_t budget = config_.probe_propagation_budget;
  const Var n = static_cast<Var>(prop_.VarCount());
  for (Var v = 0; v < n && budget > 0; ++v) {
    if (!db_.IsRepresentative(v)) continue;
    for (const Lit lit : {PosLit(v), NegLit(v)}) {
      if (budget == 0) break;
      if (prop_.ValueOfVar(v) != Value::Unassigned) break;
      // Only literals with binary successors are worth probing: anything a
      // successor-free literal implies, plain unit propagation finds later
      // at the same cost.
      if (db_.Implications(lit).empty()) continue;
      ++stats_.probes;
      const std::size_t before = prop_.Trail().size();
      prop_.PushDecision(lit);
      const Conflict conflict = prop_.Propagate();
      const std::uint64_t grown =
          static_cast<std::uint64_t>(prop_.Trail().size() - before);
      budget = grown >= budget ? 0 : budget - grown;
      prop_.CancelUntil(0);
      if (conflict.IsConflict()) {
        ++stats_.probed_literals;
        prop_.Enqueue(Negate(lit), {Reason::Kind::None, 0});
        if (prop_.Propagate().IsConflict()) return false;
      }
    }
  }
  return true;
}

bool Inprocessor::ProcessScc(const std::vector<Lit>& component) {
  if (component.size() < 2) return true;
  // A literal and its negation in one SCC means l <-> ~l: refuted.
  std::vector<Lit> sorted(component);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (VarOf(sorted[i]) == VarOf(sorted[i + 1])) return false;
  }
  // Root-assigned components were already equalized by propagation.
  for (const Lit l : component) {
    if (prop_.ValueOfVar(VarOf(l)) != Value::Unassigned) return true;
  }
  std::vector<Lit> candidates;
  for (const Lit l : sorted) {
    if (db_.IsRepresentative(VarOf(l))) candidates.push_back(l);
  }
  if (candidates.size() < 2) return true;
  const Lit root = candidates.front();  // smallest literal, deterministic
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const Lit l = candidates[i];
    db_.SetRepresentative(VarOf(l), IsNeg(l) ? Negate(root) : root);
    ++stats_.eliminated_equivalences;
  }
  return true;
}

bool Inprocessor::EliminateEquivalentLiterals() {
  // Iterative Tarjan SCC over the binary-implication graph (2n nodes).
  const std::size_t n = 2 * prop_.VarCount();
  std::vector<std::uint32_t> index(n, 0), low(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<Lit> stack;
  std::uint32_t next_index = 1;
  struct Frame {
    Lit node;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  std::vector<Lit> component;

  for (Lit root = 0; root < n; ++root) {
    if (index[root] != 0) continue;
    frames.push_back({root, 0});
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& adj = db_.Implications(f.node);
      if (f.edge < adj.size()) {
        const Lit w = adj[f.edge++];
        if (index[w] == 0) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.node] = std::min(low[f.node], index[w]);
        }
        continue;
      }
      if (low[f.node] == index[f.node]) {
        component.clear();
        for (;;) {
          const Lit w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          component.push_back(w);
          if (w == f.node) break;
        }
        if (!ProcessScc(component)) return false;
      }
      const Lit done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[done]);
      }
    }
  }
  return true;
}

bool Inprocessor::Substitute() {
  return SubstituteLongClauses() && SubstituteBinaries() && SubstitutePbs();
}

bool Inprocessor::SubstituteLongClauses() {
  const std::size_t nlits = 2 * prop_.VarCount();
  std::vector<std::uint32_t> stamp(nlits, 0);
  std::uint32_t cur = 0;
  std::vector<Lit> kept;
  for (std::uint32_t ci = 0; ci < db_.ClauseCount(); ++ci) {
    Clause& cl = db_.ClauseAt(ci);
    if (cl.removed) continue;
    ++cur;
    kept.clear();
    bool satisfied = false, tautology = false, changed = false;
    for (const Lit l : cl.lits) {
      const Lit r = db_.Resolve(l);
      const Value v = prop_.LitValue(r);
      if (v == Value::True) {
        satisfied = true;
        break;
      }
      if (v == Value::False) {
        changed = true;
        continue;
      }
      if (stamp[r] == cur) {  // duplicate after merging
        changed = true;
        continue;
      }
      if (stamp[Negate(r)] == cur) {
        tautology = true;
        break;
      }
      stamp[r] = cur;
      kept.push_back(r);
      if (r != l) changed = true;
    }
    if (satisfied || tautology) {
      db_.Remove(ci);
      continue;
    }
    if (kept.empty()) return false;
    if (kept.size() == 1) {
      QueueUnit(kept[0]);
      db_.Remove(ci);
      continue;
    }
    if (kept.size() == 2) {
      db_.AddBinary(kept[0], kept[1]);
      db_.Remove(ci);
      continue;
    }
    if (changed) cl.lits = kept;
  }
  return true;
}

bool Inprocessor::SubstituteBinaries() {
  auto& bins = db_.MutableBinaries();
  std::vector<std::pair<Lit, Lit>> kept;
  kept.reserve(bins.size());
  for (const auto& [a, b] : bins) {
    const Lit ra = db_.Resolve(a);
    const Lit rb = db_.Resolve(b);
    const Value va = prop_.LitValue(ra);
    const Value vb = prop_.LitValue(rb);
    if (va == Value::True || vb == Value::True) continue;
    if (va == Value::False && vb == Value::False) return false;
    if (va == Value::False) {
      QueueUnit(rb);
      continue;
    }
    if (vb == Value::False) {
      QueueUnit(ra);
      continue;
    }
    if (ra == rb) {
      QueueUnit(ra);
      continue;
    }
    if (ra == Negate(rb)) continue;  // tautology
    kept.emplace_back(ra, rb);
  }
  bins = std::move(kept);
  return true;
}

bool Inprocessor::SubstitutePbs() {
  const std::size_t nlits = 2 * prop_.VarCount();
  std::vector<std::uint32_t> stamp(nlits, 0);
  std::vector<std::int64_t> coef_of(nlits, 0);
  std::uint32_t cur = 0;
  std::vector<Lit> order;
  for (std::uint32_t pi = 0; pi < db_.PbCount(); ++pi) {
    PbConstraint& pb = db_.PbAt(pi);
    if (pb.removed) continue;
    ++cur;
    order.clear();
    std::int64_t bound = pb.bound;
    for (const auto& [c, l] : pb.terms) {
      const Lit r = db_.Resolve(l);
      const Value v = prop_.LitValue(r);
      if (v == Value::True) {
        bound -= c;
        continue;
      }
      if (v == Value::False) continue;
      if (stamp[r] != cur) {
        stamp[r] = cur;
        coef_of[r] = 0;
        order.push_back(r);
      }
      coef_of[r] += c;
    }
    // a*l + b*~l = min(a,b) + (a-min)*l resp. (b-min)*~l.
    for (const Lit l : order) {
      const Lit neg = Negate(l);
      if (stamp[neg] != cur || IsNeg(l)) continue;  // handle each pair once
      const std::int64_t m = std::min(coef_of[l], coef_of[neg]);
      bound -= m;
      coef_of[l] -= m;
      coef_of[neg] -= m;
    }
    if (bound <= 0) {  // trivially satisfied
      db_.RemovePb(pi);
      continue;
    }
    pb.terms.clear();
    std::int64_t total = 0;
    for (const Lit l : order) {
      if (coef_of[l] <= 0) continue;
      const std::int64_t c = std::min(coef_of[l], bound);
      pb.terms.emplace_back(c, l);
      total += c;
    }
    if (total < bound) return false;  // unreachable bound: refuted
    pb.bound = bound;
    pb.slack = total - bound;
    for (const auto& [c, l] : pb.terms) {
      if (c > pb.slack) QueueUnit(l);
    }
  }
  return true;
}

void Inprocessor::Subsume() {
  const std::size_t nlits = 2 * prop_.VarCount();
  const auto nclauses = static_cast<std::uint32_t>(db_.ClauseCount());
  std::vector<std::vector<std::uint32_t>> occ(nlits);
  std::vector<std::uint64_t> sig(nclauses, 0);
  std::vector<std::uint32_t> live;
  for (std::uint32_t ci = 0; ci < nclauses; ++ci) {
    const Clause& cl = db_.ClauseAt(ci);
    if (cl.removed) continue;
    live.push_back(ci);
    for (const Lit l : cl.lits) {
      occ[l].push_back(ci);
      sig[ci] |= std::uint64_t{1} << (VarOf(l) & 63);
    }
  }
  std::vector<std::uint32_t> mark(nlits, 0);
  std::uint32_t stamp = 0;
  std::uint64_t budget = kSubsumeBudget;

  // Tries to subsume or strengthen clauses containing the probe literal of
  // `lits` (the clause acting as subsumer); `self` is its own index (or
  // UINT32_MAX for a binary clause).
  auto sweep = [&](const std::vector<Lit>& lits, std::uint64_t lits_sig,
                   std::uint32_t self) {
    Lit probe = lits[0];
    for (const Lit l : lits) {
      if (occ[l].size() < occ[probe].size()) probe = l;
    }
    // occ[probe] holds the subsumption candidates and the strengthenings
    // whose flipped literal is not the probe; occ[~probe] holds the
    // strengthenings that drop ~probe itself — the single-flip check below
    // covers both uniformly.
    for (const Lit side : {probe, Negate(probe)})
    for (const std::uint32_t di : occ[side]) {
      if (budget == 0) return;
      if (di == self) continue;
      Clause& target = db_.ClauseAt(di);
      if (target.removed) continue;
      if (target.lits.size() < lits.size()) continue;
      if ((lits_sig & ~sig[di]) != 0) continue;
      budget -= std::min<std::uint64_t>(
          budget, target.lits.size() + lits.size());
      ++stamp;
      for (const Lit l : target.lits) mark[l] = stamp;
      Lit flipped = kNoLit;
      bool applicable = true;
      for (const Lit l : lits) {
        if (mark[l] == stamp) continue;
        if (mark[Negate(l)] == stamp && flipped == kNoLit) {
          flipped = Negate(l);
          continue;
        }
        applicable = false;
        break;
      }
      if (!applicable) continue;
      if (flipped == kNoLit) {
        db_.Remove(di);
        ++stats_.subsumed_clauses;
        continue;
      }
      // Self-subsuming resolution: the resolvent subsumes `target`, so the
      // flipped literal can be dropped from it.
      target.lits.erase(
          std::find(target.lits.begin(), target.lits.end(), flipped));
      ++stats_.strengthened_clauses;
      if (target.lits.size() == 2) {
        db_.AddBinary(target.lits[0], target.lits[1]);
        db_.Remove(di);
      } else if (target.lits.size() == 1) {
        QueueUnit(target.lits[0]);
        db_.Remove(di);
      }
    }
  };

  // Binaries first: cheapest subsumers with the widest reach. Snapshot the
  // count — strengthening appends new binaries we must not iterate.
  const std::size_t nbins = db_.Binaries().size();
  std::vector<Lit> pair(2);
  for (std::size_t i = 0; i < nbins && budget > 0; ++i) {
    const auto [a, b] = db_.Binaries()[i];
    pair[0] = a;
    pair[1] = b;
    const std::uint64_t s = (std::uint64_t{1} << (VarOf(a) & 63)) |
                            (std::uint64_t{1} << (VarOf(b) & 63));
    sweep(pair, s, UINT32_MAX);
  }
  // Then long clauses, smallest first.
  std::sort(live.begin(), live.end(), [&](std::uint32_t a, std::uint32_t b) {
    const std::size_t sa = db_.ClauseAt(a).lits.size();
    const std::size_t sb = db_.ClauseAt(b).lits.size();
    if (sa != sb) return sa < sb;
    return a < b;
  });
  for (const std::uint32_t ci : live) {
    if (budget == 0) break;
    const Clause& cl = db_.ClauseAt(ci);
    if (cl.removed) continue;
    sweep(cl.lits, sig[ci], ci);
  }
}

bool Inprocessor::FlushPendingUnits() {
  for (const Lit l : pending_units_) {
    const Lit r = db_.Resolve(l);
    const Value v = prop_.LitValue(r);
    if (v == Value::False) return false;
    if (v == Value::True) continue;
    prop_.Enqueue(r, {Reason::Kind::None, 0});
  }
  pending_units_.clear();
  return true;
}

}  // namespace bistdse::sat
