#include "sat/solver.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace bistdse::sat {

Var Solver::NewVar() {
  const Var v = static_cast<Var>(prop_.VarCount());
  db_.AddVar();
  prop_.AddVar();
  searcher_.AddVar();
  return v;
}

void Solver::AssertRootFact(Lit l) {
  prop_.Enqueue(l, {Reason::Kind::None, 0});
  if (prop_.Propagate().IsConflict()) ok_ = false;
}

void Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return;
  // Constraints are only sound to ingest at the root: assignments left over
  // from a previous Solve() would otherwise be mistaken for root facts.
  prop_.CancelUntil(0);
  // Constraints added after inprocessing merged variables must be expressed
  // over representatives, or they would never propagate.
  for (Lit& l : lits) l = db_.Resolve(l);
  // Deduplicate and detect tautologies / satisfied-at-root clauses.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && VarOf(lits[i]) == VarOf(lits[i + 1]))
      return;  // l and ~l: tautology
    const Value val = prop_.LitValue(lits[i]);
    if (val == Value::True && prop_.LevelOf(VarOf(lits[i])) == 0) return;
    if (val == Value::False && prop_.LevelOf(VarOf(lits[i])) == 0) continue;
    kept.push_back(lits[i]);
  }
  if (kept.empty()) {
    ok_ = false;
    return;
  }
  if (kept.size() == 1) {
    if (prop_.LitValue(kept[0]) == Value::False) {
      ok_ = false;
      return;
    }
    if (prop_.LitValue(kept[0]) == Value::Unassigned) {
      AssertRootFact(kept[0]);
    }
    return;
  }
  if (kept.size() == 2) {
    db_.AddBinary(kept[0], kept[1]);
    return;
  }
  db_.AddLong(std::move(kept), false, 0);
}

void Solver::AddPbGe(std::vector<std::pair<std::int64_t, Lit>> terms,
                     std::int64_t bound) {
  if (!ok_) return;
  prop_.CancelUntil(0);  // see AddClause: ingest constraints at root only
  // Merge duplicate literals and opposite-polarity pairs.
  std::map<Lit, std::int64_t> by_lit;
  std::int64_t coef_sum = 0;
  for (const auto& [coef, lit] : terms) {
    if (coef <= 0) {
      throw std::invalid_argument("PB coefficients must be > 0, got " +
                                  std::to_string(coef));
    }
    if (__builtin_add_overflow(coef_sum, coef, &coef_sum)) {
      throw std::overflow_error("PB coefficient sum overflows int64");
    }
    by_lit[db_.Resolve(lit)] += coef;
  }
  if (by_lit.empty()) {
    // No terms: the constraint reads 0 >= bound.
    if (bound > 0) ok_ = false;
    return;
  }
  PbConstraint pb;
  pb.bound = bound;
  for (auto it = by_lit.begin(); it != by_lit.end(); ++it) {
    const Lit l = it->first;
    if (!IsNeg(l)) {
      auto neg = by_lit.find(Negate(l));
      if (neg != by_lit.end()) {
        const std::int64_t both = std::min(it->second, neg->second);
        it->second -= both;
        neg->second -= both;
        pb.bound -= both;  // one of l/~l is always true
      }
    }
  }
  for (const auto& [lit, coef] : by_lit) {
    if (coef <= 0) continue;
    // Literals true at root always contribute; fold them into the bound.
    if (prop_.LitValue(lit) == Value::True && prop_.LevelOf(VarOf(lit)) == 0) {
      pb.bound -= coef;
      continue;
    }
    if (prop_.LitValue(lit) == Value::False && prop_.LevelOf(VarOf(lit)) == 0)
      continue;
    pb.terms.emplace_back(std::min(coef, std::max<std::int64_t>(pb.bound, 1)),
                          lit);
  }
  if (pb.bound <= 0) return;  // trivially satisfied
  // Re-clamp after bound folding.
  std::int64_t total = 0;
  for (auto& [coef, lit] : pb.terms) {
    coef = std::min(coef, pb.bound);
    total += coef;
  }
  pb.slack = total - pb.bound;
  if (pb.slack < 0) {
    ok_ = false;  // bound unreachable even with every literal true
    return;
  }
  const std::int64_t slack = pb.slack;
  const std::uint32_t index = db_.AddPb(std::move(pb));
  // Root-level propagation.
  for (const auto& [coef, lit] : db_.PbAt(index).terms) {
    if (coef > slack && prop_.LitValue(lit) == Value::Unassigned) {
      prop_.Enqueue(lit, {Reason::Kind::None, 0});  // root-level fact
    }
  }
  if (prop_.Propagate().IsConflict()) ok_ = false;
}

void Solver::AddPbLe(std::vector<std::pair<std::int64_t, Lit>> terms,
                     std::int64_t bound) {
  std::int64_t total = 0;
  for (auto& [coef, lit] : terms) {
    if (coef <= 0) {
      throw std::invalid_argument("PB coefficients must be > 0, got " +
                                  std::to_string(coef));
    }
    if (__builtin_add_overflow(total, coef, &total)) {
      throw std::overflow_error("PB coefficient sum overflows int64");
    }
    lit = Negate(lit);
  }
  std::int64_t ge_bound = 0;
  if (__builtin_sub_overflow(total, bound, &ge_bound)) {
    throw std::overflow_error("PB bound overflows int64 after normalization");
  }
  AddPbGe(std::move(terms), ge_bound);
}

void Solver::AddAtMostOne(std::span<const Lit> lits) {
  if (lits.size() <= 1) return;
  if (lits.size() <= 5) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
      for (std::size_t j = i + 1; j < lits.size(); ++j) {
        AddClause({Negate(lits[i]), Negate(lits[j])});
      }
    }
    return;
  }
  std::vector<std::pair<std::int64_t, Lit>> terms;
  terms.reserve(lits.size());
  for (Lit l : lits) terms.emplace_back(1, l);
  AddPbLe(std::move(terms), 1);
}

void Solver::AddExactlyOne(std::span<const Lit> lits) {
  AddClause({lits.begin(), lits.end()});
  AddAtMostOne(lits);
}

void Solver::SetDecisionPolicy(std::span<const Var> order,
                               std::span<const std::uint8_t> phases) {
  searcher_.SetDecisionPolicy(order, phases);
}

SolveResult Solver::Solve() {
  ++stats_.solves;
  if (!ok_) return SolveResult::Unsat;
  prop_.CancelUntil(0);
  if (prop_.Propagate().IsConflict()) {
    ok_ = false;
    return SolveResult::Unsat;
  }
  if (config_.inprocess &&
      (!inprocessed_once_ ||
       stats_.conflicts - conflicts_at_last_inprocess_ >=
           config_.inprocess_conflict_interval)) {
    inprocessed_once_ = true;
    if (!inprocessor_.Run()) {
      ok_ = false;
      return SolveResult::Unsat;
    }
    conflicts_at_last_inprocess_ = stats_.conflicts;
  }
  const SolveResult result = searcher_.Search();
  if (result == SolveResult::Unsat) ok_ = false;
  return result;
}

}  // namespace bistdse::sat
