#include "sat/clause_db.hpp"

#include <algorithm>

namespace bistdse::sat {

void ClauseDb::AddVar() {
  watches_.emplace_back();
  watches_.emplace_back();
  implications_.emplace_back();
  implications_.emplace_back();
  pb_occurrences_.emplace_back();
  pb_occurrences_.emplace_back();
  repr_.push_back(PosLit(static_cast<Var>(repr_.size())));
}

std::uint32_t ClauseDb::AddLong(std::vector<Lit> lits, bool learned,
                                std::uint32_t lbd) {
  const auto index = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back({std::move(lits), learned, false, lbd});
  const Clause& cl = clauses_.back();
  watches_[cl.lits[0]].push_back(index);
  watches_[cl.lits[1]].push_back(index);
  if (learned) ++live_learned_;
  return index;
}

void ClauseDb::Remove(std::uint32_t index) {
  Clause& cl = clauses_[index];
  if (cl.removed) return;
  cl.removed = true;
  if (cl.learned) --live_learned_;
  // Free the literal storage; the husk stays so indices remain stable.
  cl.lits.clear();
  cl.lits.shrink_to_fit();
}

void ClauseDb::RebuildWatches() {
  for (auto& w : watches_) w.clear();
  for (std::uint32_t i = 0; i < clauses_.size(); ++i) {
    const Clause& cl = clauses_[i];
    if (cl.removed) continue;
    watches_[cl.lits[0]].push_back(i);
    watches_[cl.lits[1]].push_back(i);
  }
}

void ClauseDb::AddBinary(Lit a, Lit b) {
  binaries_.emplace_back(a, b);
  implications_[Negate(a)].push_back(b);
  implications_[Negate(b)].push_back(a);
}

void ClauseDb::RebuildBinaryAdjacency() {
  for (auto& [a, b] : binaries_) {
    if (a > b) std::swap(a, b);
  }
  std::sort(binaries_.begin(), binaries_.end());
  binaries_.erase(std::unique(binaries_.begin(), binaries_.end()),
                  binaries_.end());
  for (auto& adj : implications_) adj.clear();
  for (const auto& [a, b] : binaries_) {
    implications_[Negate(a)].push_back(b);
    implications_[Negate(b)].push_back(a);
  }
}

std::uint32_t ClauseDb::AddPb(PbConstraint pb) {
  const auto index = static_cast<std::uint32_t>(pbs_.size());
  pbs_.push_back(std::move(pb));
  for (const auto& [coef, lit] : pbs_[index].terms) {
    pb_occurrences_[lit].push_back(index);
  }
  return index;
}

void ClauseDb::RemovePb(std::uint32_t index) {
  PbConstraint& pb = pbs_[index];
  if (pb.removed) return;
  pb.removed = true;
  pb.terms.clear();
  pb.terms.shrink_to_fit();
}

void ClauseDb::RebuildPbOccurrences() {
  for (auto& occ : pb_occurrences_) occ.clear();
  for (std::uint32_t i = 0; i < pbs_.size(); ++i) {
    if (pbs_[i].removed) continue;
    for (const auto& [coef, lit] : pbs_[i].terms) {
      pb_occurrences_[lit].push_back(i);
    }
  }
}

}  // namespace bistdse::sat
