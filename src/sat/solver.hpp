// CDCL SAT solver with native pseudo-Boolean (linear) constraints.
//
// This is the feasibility core of SAT-decoding (Lukasiewycz et al., [17] of
// the paper): the MOEA genotype supplies a branching *order* and *phase* per
// variable; the solver completes it to a feasible assignment via unit
// propagation, binary-implication propagation, PB counter propagation, 1-UIP
// clause learning and non-chronological backtracking. Re-solving the same
// instance with a different decision policy is cheap: learned clauses
// persist across calls, and root-level inprocessing (failed-literal probing,
// equivalent-literal elimination, subsumption) amortizes across the many
// decodes of one exploration.
//
// The class is a thin facade over the layered core (ClauseDb / Propagator /
// Searcher / Inprocessor — see sat/types.hpp for the layering map); the
// public surface is unchanged from the historical monolithic solver except
// for the optional SolverConfig constructor argument.
//
// PB constraints are normalized to  sum_i a_i * lit_i >= bound  with a_i > 0;
// AtMostOne/AtLeastOne/ExactlyOne helpers build on clauses + PB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/clause_db.hpp"
#include "sat/inprocess.hpp"
#include "sat/propagator.hpp"
#include "sat/searcher.hpp"
#include "sat/types.hpp"

namespace bistdse::sat {

class Solver {
 public:
  Solver() = default;
  explicit Solver(const SolverConfig& config) : config_(config) {}

  const SolverConfig& Config() const { return config_; }

  Var NewVar();
  std::size_t VarCount() const { return prop_.VarCount(); }

  /// Adds a disjunction (at least one literal true). An empty clause makes
  /// the instance trivially unsatisfiable.
  void AddClause(std::vector<Lit> lits);

  /// sum coef_i * lit_i >= bound (coefficients must be > 0; throws
  /// std::invalid_argument otherwise and std::overflow_error when the
  /// coefficient sum exceeds the int64 range).
  void AddPbGe(std::vector<std::pair<std::int64_t, Lit>> terms,
               std::int64_t bound);
  /// sum coef_i * lit_i <= bound.
  void AddPbLe(std::vector<std::pair<std::int64_t, Lit>> terms,
               std::int64_t bound);

  void AddAtMostOne(std::span<const Lit> lits);
  void AddExactlyOne(std::span<const Lit> lits);

  /// Installs the SAT-decoding branching policy: variables are decided in
  /// `order` (earlier = higher priority) with the given preferred phase.
  /// Variables missing from `order` are decided last by the configured tail
  /// policy (historically: ascending index, phase false).
  void SetDecisionPolicy(std::span<const Var> order,
                         std::span<const std::uint8_t> phases);

  /// Solves from scratch (prior learned clauses are kept and reused).
  SolveResult Solve();

  /// Model value after Solve() == Sat. Reads through the equivalent-literal
  /// map, so values of variables merged by inprocessing are reconstructed.
  Value ValueOf(Var v) const { return prop_.LitValue(db_.Resolve(PosLit(v))); }
  bool IsTrue(Var v) const { return ValueOf(v) == Value::True; }

  const SolverStats& Stats() const { return stats_; }

 private:
  /// Asserts a root fact and propagates; clears ok_ on conflict.
  void AssertRootFact(Lit l);

  SolverConfig config_{};
  SolverStats stats_{};
  ClauseDb db_{};
  Propagator prop_{db_, stats_};
  Searcher searcher_{db_, prop_, stats_, config_};
  Inprocessor inprocessor_{db_, prop_, stats_, config_};

  bool ok_ = true;  // false once a top-level contradiction is found
  bool inprocessed_once_ = false;
  std::uint64_t conflicts_at_last_inprocess_ = 0;
};

}  // namespace bistdse::sat
