// Propagation engine of the layered SAT core: owns the assignment trail and
// runs the unified propagation loop — binary implications first (adjacency
// walk), then two-watched-literal long clauses, then PB counter propagation.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/clause_db.hpp"
#include "sat/types.hpp"

namespace bistdse::sat {

/// A failed propagation step. `reason.kind == None` means no conflict; for
/// Binary conflicts `binary_other` carries the implied-but-false literal
/// (the full conflicting clause is then {binary_other, ~premise}).
struct Conflict {
  Reason reason{};
  Lit binary_other = kNoLit;
  bool IsConflict() const { return reason.kind != Reason::Kind::None; }
};

class Propagator {
 public:
  Propagator(ClauseDb& db, SolverStats& stats) : db_(db), stats_(stats) {}

  void AddVar();
  std::size_t VarCount() const { return assigns_.size(); }

  Value ValueOfVar(Var v) const { return assigns_[v]; }
  Value LitValue(Lit l) const {
    const Value v = assigns_[VarOf(l)];
    if (v == Value::Unassigned) return Value::Unassigned;
    const bool is_true = (v == Value::True) != IsNeg(l);
    return is_true ? Value::True : Value::False;
  }
  std::uint32_t LevelOf(Var v) const { return levels_[v]; }
  Reason ReasonOf(Var v) const { return reasons_[v]; }
  std::uint32_t TrailPos(Var v) const { return trail_pos_[v]; }

  std::uint32_t DecisionLevel() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  const std::vector<Lit>& Trail() const { return trail_; }
  /// Trail length at the first decision (== root-fact count), or the full
  /// trail when no decision is active.
  std::size_t RootTrailSize() const {
    return trail_lim_.empty() ? trail_.size() : trail_lim_[0];
  }

  void Enqueue(Lit l, Reason reason);
  void PushDecision(Lit l);
  /// Runs propagation to fixpoint; returns the conflict (kind None if none).
  Conflict Propagate();
  void CancelUntil(std::uint32_t level);

  /// Variables unassigned by the most recent CancelUntil (consumed by the
  /// searcher's activity heap); cleared by the next CancelUntil.
  const std::vector<Var>& LastUnassigned() const { return last_unassigned_; }

  std::uint8_t SavedPhase(Var v) const { return saved_phase_[v]; }

  /// The literals of the clause certifying `reason` (the implied literal
  /// first when given). For PB reasons the certificate is the implied
  /// literal or'ed with every term literal false before the implication.
  std::vector<Lit> ReasonLits(Reason reason, Lit implied) const;
  /// The conflicting-clause literals of a Propagate() conflict.
  std::vector<Lit> ConflictLits(const Conflict& conflict) const;

  /// Recomputes every live PB slack from the current assignment (after
  /// inprocessing rewrote terms/bounds). Must be called at level 0.
  void RecomputePbSlacks();

  /// Drops reasons of root-level trail literals (before clause compaction).
  void ClearRootReasons();

 private:
  ClauseDb& db_;
  SolverStats& stats_;

  std::vector<Value> assigns_;
  std::vector<std::uint32_t> levels_;
  std::vector<Reason> reasons_;
  std::vector<std::uint8_t> saved_phase_;
  std::vector<std::uint32_t> trail_pos_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::vector<Var> last_unassigned_;
};

}  // namespace bistdse::sat
