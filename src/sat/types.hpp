// Shared vocabulary of the layered SAT core: literals, truth values, solver
// configuration and the per-phase statistics threaded through the DSE decode
// telemetry (dse::DecoderStats -> ExploreParallel -> bench_explore).
//
// The layering (paper [17] SAT-decoding, modernized after dawn's searcher):
//
//   ClauseDb     — clause arena + watch lists, dedicated binary-implication
//                  graph, PB constraint store, equivalent-literal map
//   Propagator   — assignment trail; unified clause/binary/PB propagation
//   Searcher     — CDCL loop: pinned genotype decision policy, VSIDS tail,
//                  phase saving, Luby restarts, LBD-based clause reduction
//   Inprocessor  — root-level simplification between solves: failed-literal
//                  probing, SCC equivalent-literal elimination, subsumption
//   Solver       — thin facade preserving the historical call sites
#pragma once

#include <cstdint>

namespace bistdse::sat {

using Var = std::uint32_t;
/// Literal encoding: lit = 2*var + (negated ? 1 : 0).
using Lit = std::uint32_t;

constexpr Lit PosLit(Var v) { return 2 * v; }
constexpr Lit NegLit(Var v) { return 2 * v + 1; }
constexpr Var VarOf(Lit l) { return l >> 1; }
constexpr bool IsNeg(Lit l) { return l & 1; }
constexpr Lit Negate(Lit l) { return l ^ 1; }

constexpr Lit kNoLit = static_cast<Lit>(-1);

enum class Value : std::uint8_t { False = 0, True = 1, Unassigned = 2 };

enum class SolveResult : std::uint8_t { Sat, Unsat };

/// Counters exposed through Solver::Stats(). The per-phase groups (search /
/// propagation / inprocessing) feed the `decode` section of
/// BENCH_explore.json via dse::DecoderStats.
struct SolverStats {
  // Search.
  std::uint64_t solves = 0;
  std::uint64_t decisions = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  /// Learned clauses deleted by the LBD-driven reduction.
  std::uint64_t reduced_clauses = 0;

  // Propagation (propagations counts trail literals processed; the
  // binary/pb counters count implications enqueued by that engine).
  std::uint64_t propagations = 0;
  std::uint64_t binary_propagations = 0;
  std::uint64_t pb_propagations = 0;

  // Inprocessing.
  std::uint64_t inprocess_runs = 0;
  /// Literals probed at the root (both phases counted individually).
  std::uint64_t probes = 0;
  /// Probes that failed and therefore asserted the negation as a root fact.
  std::uint64_t probed_literals = 0;
  /// Variables merged into an equivalence-class representative (SCC pass).
  std::uint64_t eliminated_equivalences = 0;
  std::uint64_t subsumed_clauses = 0;
  /// Literals removed from clauses by self-subsuming resolution.
  std::uint64_t strengthened_clauses = 0;

  void MergeFrom(const SolverStats& o) {
    solves += o.solves;
    decisions += o.decisions;
    conflicts += o.conflicts;
    restarts += o.restarts;
    learned_clauses += o.learned_clauses;
    reduced_clauses += o.reduced_clauses;
    propagations += o.propagations;
    binary_propagations += o.binary_propagations;
    pb_propagations += o.pb_propagations;
    inprocess_runs += o.inprocess_runs;
    probes += o.probes;
    probed_literals += o.probed_literals;
    eliminated_equivalences += o.eliminated_equivalences;
    subsumed_clauses += o.subsumed_clauses;
    strengthened_clauses += o.strengthened_clauses;
  }
};

/// Solver behavior knobs. The defaults keep the SAT-decoding contract: with
/// the branching order pinned to the genotype policy the produced model is
/// the unique policy-preferred model, so inprocessing (which is
/// model-set-preserving) may default to on without perturbing Pareto fronts.
struct SolverConfig {
  /// Decision rule once the pinned policy order is exhausted (and for
  /// solvers with no policy installed).
  enum class TailPolicy : std::uint8_t {
    /// Ascending variable index, preferred phase false — the historical
    /// SAT-decoding behavior; required for bit-identical fronts.
    kIndexOrder,
    /// VSIDS-style activity heap with phase saving.
    kActivity,
  };

  /// Master switch for the inprocessing module (probing + SCC equivalent
  /// literals + subsumption). Runs before the first search and again after
  /// every `inprocess_conflict_interval` accumulated conflicts.
  bool inprocess = true;
  std::uint64_t inprocess_conflict_interval = 2000;
  /// Cap on trail literals enqueued by one probing pass (keeps the pass a
  /// bounded fraction of search work on very large encodings).
  std::uint64_t probe_propagation_budget = 2'000'000;

  /// LBD-based learned-clause reduction at restart boundaries.
  bool reduce_learned = true;
  /// Reduction triggers once this many learned long clauses are live.
  std::size_t reduce_min_learned = 2000;

  TailPolicy tail_policy = TailPolicy::kIndexOrder;

  /// The pinned-order bit-identity mode used by the refactor gate tests:
  /// every transformation off, decisions exactly as the pre-refactor solver.
  static SolverConfig BitIdentity() {
    SolverConfig c;
    c.inprocess = false;
    c.reduce_learned = false;
    c.tail_policy = TailPolicy::kIndexOrder;
    return c;
  }
};

/// Why a variable holds its value. `index` is a clause index (Clause), a PB
/// constraint index (Pb), or the premise literal (Binary: premise -> this).
struct Reason {
  enum class Kind : std::uint8_t { None, Decision, Clause, Binary, Pb } kind =
      Kind::None;
  std::uint32_t index = 0;
};

}  // namespace bistdse::sat
