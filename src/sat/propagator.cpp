#include "sat/propagator.hpp"

namespace bistdse::sat {

void Propagator::AddVar() {
  assigns_.push_back(Value::Unassigned);
  levels_.push_back(0);
  reasons_.push_back({});
  saved_phase_.push_back(0);
  trail_pos_.push_back(0);
}

void Propagator::Enqueue(Lit l, Reason reason) {
  const Var v = VarOf(l);
  assigns_[v] = IsNeg(l) ? Value::False : Value::True;
  levels_[v] = DecisionLevel();
  reasons_[v] = reason;
  trail_pos_[v] = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

void Propagator::PushDecision(Lit l) {
  trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
  Enqueue(l, {Reason::Kind::Decision, 0});
}

Conflict Propagator::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = Negate(p);

    // --- PB counter maintenance first -----------------------------------
    // Slack tracks the processed trail prefix exactly, so every decrement
    // for p must land before any conflict return from this iteration: a
    // binary/clause conflict below (or a conflict part-way through this
    // list) would otherwise leave p half-updated while CancelUntil — which
    // only knows processed-or-not — restores it in full.
    const auto& pb_occs = db_.PbOccurrences(false_lit);
    Conflict pb_conflict{};
    for (const std::uint32_t pi : pb_occs) {
      PbConstraint& pb = db_.PbAt(pi);
      if (pb.removed) continue;
      for (const auto& [c, l] : pb.terms) {
        if (l == false_lit) {
          pb.slack -= c;
          break;
        }
      }
      if (pb.slack < 0 && pb_conflict.reason.kind == Reason::Kind::None) {
        pb_conflict.reason = {Reason::Kind::Pb, pi};
      }
    }
    if (pb_conflict.reason.kind != Reason::Kind::None) return pb_conflict;
    for (const std::uint32_t pi : pb_occs) {
      PbConstraint& pb = db_.PbAt(pi);
      if (pb.removed) continue;
      for (const auto& [c, l] : pb.terms) {
        if (c > pb.slack && LitValue(l) == Value::Unassigned) {
          Enqueue(l, {Reason::Kind::Pb, pi});
          ++stats_.pb_propagations;
        }
      }
    }

    // --- binary-implication adjacency ----------------------------------
    for (const Lit q : db_.Implications(p)) {
      const Value val = LitValue(q);
      if (val == Value::True) continue;
      if (val == Value::False) {
        return {{Reason::Kind::Binary, p}, q};
      }
      Enqueue(q, {Reason::Kind::Binary, p});
      ++stats_.binary_propagations;
    }

    // --- two-watched-literal clause propagation -------------------------
    auto& watches = db_.Watches(false_lit);
    std::size_t keep = 0;
    bool clause_conflict = false;
    std::uint32_t conflict_index = 0;
    for (std::size_t i = 0; i < watches.size(); ++i) {
      const std::uint32_t ci = watches[i];
      Clause& cl = db_.ClauseAt(ci);
      if (cl.removed) continue;  // lazily dropped from the watch list
      if (cl.lits[0] == false_lit) std::swap(cl.lits[0], cl.lits[1]);
      if (LitValue(cl.lits[0]) == Value::True) {
        watches[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < cl.lits.size(); ++k) {
        if (LitValue(cl.lits[k]) != Value::False) {
          std::swap(cl.lits[1], cl.lits[k]);
          db_.Watches(cl.lits[1]).push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict on cl.lits[0].
      watches[keep++] = ci;
      if (LitValue(cl.lits[0]) == Value::False) {
        for (std::size_t j = i + 1; j < watches.size(); ++j)
          watches[keep++] = watches[j];
        clause_conflict = true;
        conflict_index = ci;
        break;
      }
      Enqueue(cl.lits[0], {Reason::Kind::Clause, ci});
    }
    watches.resize(keep);
    if (clause_conflict) return {{Reason::Kind::Clause, conflict_index}};
  }
  return {};
}

void Propagator::CancelUntil(std::uint32_t level) {
  last_unassigned_.clear();
  if (trail_lim_.size() <= level) return;
  const std::size_t target = trail_lim_[level];
  while (trail_.size() > target) {
    // PB slacks track the *processed* trail prefix: a conflict can leave
    // enqueued-but-unprocessed literals whose slack contribution was never
    // subtracted, so only processed literals may be restored.
    const bool processed = trail_.size() <= qhead_;
    const Lit p = trail_.back();
    trail_.pop_back();
    const Var v = VarOf(p);
    saved_phase_[v] = assigns_[v] == Value::True ? 1 : 0;
    assigns_[v] = Value::Unassigned;
    reasons_[v] = {Reason::Kind::None, 0};
    last_unassigned_.push_back(v);
    if (!processed) continue;
    for (const std::uint32_t pi : db_.PbOccurrences(Negate(p))) {
      PbConstraint& pb = db_.PbAt(pi);
      if (pb.removed) continue;
      for (const auto& [c, l] : pb.terms) {
        if (l == Negate(p)) {
          pb.slack += c;
          break;
        }
      }
    }
  }
  trail_lim_.resize(level);
  qhead_ = trail_.size();
}

std::vector<Lit> Propagator::ReasonLits(Reason reason, Lit implied) const {
  switch (reason.kind) {
    case Reason::Kind::Clause:
      return db_.ClauseAt(reason.index).lits;
    case Reason::Kind::Binary: {
      // Clause (implied v ~premise); the premise literal is in `index`.
      std::vector<Lit> lits;
      if (implied != kNoLit) lits.push_back(implied);
      lits.push_back(Negate(static_cast<Lit>(reason.index)));
      return lits;
    }
    case Reason::Kind::Pb: {
      const PbConstraint& pb = db_.PbAt(reason.index);
      std::vector<Lit> lits;
      if (implied != kNoLit) lits.push_back(implied);
      const std::uint32_t implied_pos =
          implied == kNoLit ? static_cast<std::uint32_t>(trail_.size())
                            : trail_pos_[VarOf(implied)];
      for (const auto& [c, l] : pb.terms) {
        if (LitValue(l) == Value::False && trail_pos_[VarOf(l)] < implied_pos) {
          lits.push_back(l);
        }
      }
      return lits;
    }
    default:
      return {};
  }
}

std::vector<Lit> Propagator::ConflictLits(const Conflict& conflict) const {
  if (conflict.reason.kind == Reason::Kind::Binary) {
    return {conflict.binary_other,
            Negate(static_cast<Lit>(conflict.reason.index))};
  }
  return ReasonLits(conflict.reason, kNoLit);
}

void Propagator::RecomputePbSlacks() {
  for (std::uint32_t i = 0; i < db_.PbCount(); ++i) {
    PbConstraint& pb = db_.PbAt(i);
    if (pb.removed) continue;
    std::int64_t not_false = 0;
    for (const auto& [c, l] : pb.terms) {
      if (LitValue(l) != Value::False) not_false += c;
    }
    pb.slack = not_false - pb.bound;
  }
}

void Propagator::ClearRootReasons() {
  for (std::size_t i = 0; i < RootTrailSize(); ++i) {
    reasons_[VarOf(trail_[i])] = {Reason::Kind::None, 0};
  }
}

}  // namespace bistdse::sat
