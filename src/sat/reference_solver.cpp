#include "sat/reference_solver.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace bistdse::sat::reference {

namespace {

constexpr Lit kNoLit = static_cast<Lit>(-1);

/// Luby restart sequence (MiniSat formulation).
std::uint64_t Luby(std::uint64_t x) {
  std::uint64_t size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) / 2;
    --seq;
    x %= size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Var Solver::NewVar() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(Value::Unassigned);
  levels_.push_back(0);
  reasons_.push_back({});
  saved_phase_.push_back(0);
  trail_pos_.push_back(0);
  clause_watches_.emplace_back();
  clause_watches_.emplace_back();
  pb_occurrences_.emplace_back();
  pb_occurrences_.emplace_back();
  return v;
}

void Solver::Enqueue(Lit l, Reason reason) {
  const Var v = VarOf(l);
  assigns_[v] = IsNeg(l) ? Value::False : Value::True;
  levels_[v] = static_cast<std::uint32_t>(trail_lim_.size());
  reasons_[v] = reason;
  trail_pos_[v] = static_cast<std::uint32_t>(trail_.size());
  trail_.push_back(l);
}

void Solver::AttachClause(std::uint32_t index) {
  const Clause& cl = clauses_[index];
  clause_watches_[cl.lits[0]].push_back(index);
  clause_watches_[cl.lits[1]].push_back(index);
}

void Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return;
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && VarOf(lits[i]) == VarOf(lits[i + 1]))
      return;  // l and ~l: tautology
    const Value val = LitValue(lits[i]);
    if (val == Value::True && levels_[VarOf(lits[i])] == 0) return;
    if (val == Value::False && levels_[VarOf(lits[i])] == 0) continue;
    kept.push_back(lits[i]);
  }
  if (kept.empty()) {
    ok_ = false;
    return;
  }
  if (kept.size() == 1) {
    if (LitValue(kept[0]) == Value::False) {
      ok_ = false;
      return;
    }
    if (LitValue(kept[0]) == Value::Unassigned) {
      Enqueue(kept[0], {Reason::Kind::None, 0});  // root-level fact
      if (Propagate().kind != Reason::Kind::None) ok_ = false;
    }
    return;
  }
  const auto index = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back({std::move(kept), false});
  AttachClause(index);
}

void Solver::AddPbGe(std::vector<std::pair<std::int64_t, Lit>> terms,
                     std::int64_t bound) {
  if (!ok_) return;
  std::map<Lit, std::int64_t> by_lit;
  for (const auto& [coef, lit] : terms) {
    if (coef <= 0) throw std::invalid_argument("PB coefficients must be > 0");
    by_lit[lit] += coef;
  }
  PbConstraint pb;
  pb.bound = bound;
  for (auto it = by_lit.begin(); it != by_lit.end(); ++it) {
    const Lit l = it->first;
    if (!IsNeg(l)) {
      auto neg = by_lit.find(Negate(l));
      if (neg != by_lit.end()) {
        const std::int64_t both = std::min(it->second, neg->second);
        it->second -= both;
        neg->second -= both;
        pb.bound -= both;  // one of l/~l is always true
      }
    }
  }
  for (const auto& [lit, coef] : by_lit) {
    if (coef <= 0) continue;
    if (LitValue(lit) == Value::True && levels_[VarOf(lit)] == 0) {
      pb.bound -= coef;
      continue;
    }
    if (LitValue(lit) == Value::False && levels_[VarOf(lit)] == 0) continue;
    pb.terms.emplace_back(std::min(coef, std::max<std::int64_t>(pb.bound, 1)),
                          lit);
  }
  if (pb.bound <= 0) return;  // trivially satisfied
  std::int64_t total = 0;
  for (auto& [coef, lit] : pb.terms) {
    coef = std::min(coef, pb.bound);
    total += coef;
  }
  pb.slack = total - pb.bound;
  if (pb.slack < 0) {
    ok_ = false;
    return;
  }
  const auto index = static_cast<std::uint32_t>(pbs_.size());
  for (const auto& [coef, lit] : pb.terms) {
    pb_occurrences_[lit].push_back(index);
  }
  const std::int64_t slack = pb.slack;
  pbs_.push_back(std::move(pb));
  for (const auto& [coef, lit] : pbs_[index].terms) {
    if (coef > slack && LitValue(lit) == Value::Unassigned) {
      Enqueue(lit, {Reason::Kind::None, 0});  // root-level fact
    }
  }
  if (Propagate().kind != Reason::Kind::None) ok_ = false;
}

void Solver::AddPbLe(std::vector<std::pair<std::int64_t, Lit>> terms,
                     std::int64_t bound) {
  std::int64_t total = 0;
  for (auto& [coef, lit] : terms) {
    if (coef <= 0) throw std::invalid_argument("PB coefficients must be > 0");
    total += coef;
    lit = Negate(lit);
  }
  AddPbGe(std::move(terms), total - bound);
}

void Solver::AddAtMostOne(std::span<const Lit> lits) {
  if (lits.size() <= 1) return;
  if (lits.size() <= 5) {
    for (std::size_t i = 0; i < lits.size(); ++i) {
      for (std::size_t j = i + 1; j < lits.size(); ++j) {
        AddClause({Negate(lits[i]), Negate(lits[j])});
      }
    }
    return;
  }
  std::vector<std::pair<std::int64_t, Lit>> terms;
  terms.reserve(lits.size());
  for (Lit l : lits) terms.emplace_back(1, l);
  AddPbLe(std::move(terms), 1);
}

void Solver::AddExactlyOne(std::span<const Lit> lits) {
  AddClause({lits.begin(), lits.end()});
  AddAtMostOne(lits);
}

Solver::Reason Solver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = Negate(p);

    // Deliberate fix over the historical code (see header): all of p's PB
    // slack decrements land before any conflict return, so CancelUntil's
    // processed-prefix restoration is exact.
    const auto& pb_occs = pb_occurrences_[false_lit];
    Reason pb_conflict{Reason::Kind::None, 0};
    for (const std::uint32_t pi : pb_occs) {
      PbConstraint& pb = pbs_[pi];
      for (const auto& [c, l] : pb.terms) {
        if (l == false_lit) {
          pb.slack -= c;
          break;
        }
      }
      if (pb.slack < 0 && pb_conflict.kind == Reason::Kind::None) {
        pb_conflict = {Reason::Kind::Pb, pi};
      }
    }
    if (pb_conflict.kind != Reason::Kind::None) return pb_conflict;
    for (const std::uint32_t pi : pb_occs) {
      PbConstraint& pb = pbs_[pi];
      for (const auto& [c, l] : pb.terms) {
        if (c > pb.slack && LitValue(l) == Value::Unassigned) {
          Enqueue(l, {Reason::Kind::Pb, pi});
        }
      }
    }

    auto& watches = clause_watches_[false_lit];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watches.size(); ++i) {
      const std::uint32_t ci = watches[i];
      Clause& cl = clauses_[ci];
      if (cl.lits[0] == false_lit) std::swap(cl.lits[0], cl.lits[1]);
      if (LitValue(cl.lits[0]) == Value::True) {
        watches[keep++] = ci;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < cl.lits.size(); ++k) {
        if (LitValue(cl.lits[k]) != Value::False) {
          std::swap(cl.lits[1], cl.lits[k]);
          clause_watches_[cl.lits[1]].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      watches[keep++] = ci;
      if (LitValue(cl.lits[0]) == Value::False) {
        for (std::size_t j = i + 1; j < watches.size(); ++j)
          watches[keep++] = watches[j];
        watches.resize(keep);
        return {Reason::Kind::Clause, ci};
      }
      Enqueue(cl.lits[0], {Reason::Kind::Clause, ci});
    }
    watches.resize(keep);
  }
  return {Reason::Kind::None, 0};
}

void Solver::CancelUntil(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::size_t target = trail_lim_[level];
  while (trail_.size() > target) {
    // Deliberate fix over the historical code: only literals the propagation
    // loop processed had their slack contribution subtracted (see header).
    const bool processed = trail_.size() <= qhead_;
    const Lit p = trail_.back();
    trail_.pop_back();
    const Var v = VarOf(p);
    saved_phase_[v] = assigns_[v] == Value::True ? 1 : 0;
    assigns_[v] = Value::Unassigned;
    reasons_[v] = {Reason::Kind::None, 0};
    if (!processed) continue;
    for (const std::uint32_t pi : pb_occurrences_[Negate(p)]) {
      PbConstraint& pb = pbs_[pi];
      for (const auto& [c, l] : pb.terms) {
        if (l == Negate(p)) {
          pb.slack += c;
          break;
        }
      }
    }
  }
  trail_lim_.resize(level);
  qhead_ = trail_.size();
  decision_head_ = 0;
}

std::vector<Lit> Solver::ReasonLits(Reason reason, Lit implied) const {
  switch (reason.kind) {
    case Reason::Kind::Clause:
      return clauses_[reason.index].lits;
    case Reason::Kind::Pb: {
      const PbConstraint& pb = pbs_[reason.index];
      std::vector<Lit> lits;
      if (implied != kNoLit) lits.push_back(implied);
      const std::uint32_t implied_pos =
          implied == kNoLit ? static_cast<std::uint32_t>(trail_.size())
                            : trail_pos_[VarOf(implied)];
      for (const auto& [c, l] : pb.terms) {
        if (LitValue(l) == Value::False && trail_pos_[VarOf(l)] < implied_pos) {
          lits.push_back(l);
        }
      }
      return lits;
    }
    default:
      return {};
  }
}

void Solver::Analyze(Reason conflict, std::vector<Lit>& learnt,
                     std::uint32_t& backjump_level) {
  learnt.assign(1, kNoLit);
  std::vector<std::uint8_t> seen(assigns_.size(), 0);
  const auto current_level = static_cast<std::uint32_t>(trail_lim_.size());
  std::uint32_t counter = 0;
  Lit p = kNoLit;
  Reason reason = conflict;
  std::size_t idx = trail_.size();

  for (;;) {
    for (const Lit q : ReasonLits(reason, p)) {
      if (q == p) continue;
      const Var v = VarOf(q);
      if (seen[v] || levels_[v] == 0) continue;
      seen[v] = 1;
      if (levels_[v] >= current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    while (idx > 0 && !seen[VarOf(trail_[idx - 1])]) --idx;
    p = trail_[--idx];
    const Var pv = VarOf(p);
    seen[pv] = 0;
    --counter;
    if (counter == 0) break;
    reason = reasons_[pv];
  }
  learnt[0] = Negate(p);

  for (const Lit q : learnt) seen[VarOf(q)] = 1;
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (!LitRedundant(learnt[i], seen)) learnt[keep++] = learnt[i];
  }
  learnt.resize(keep);

  backjump_level = 0;
  std::size_t max_pos = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (levels_[VarOf(learnt[i])] > backjump_level) {
      backjump_level = levels_[VarOf(learnt[i])];
      max_pos = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_pos]);
}

bool Solver::LitRedundant(Lit lit, std::vector<std::uint8_t>& seen) const {
  const Reason root = reasons_[VarOf(lit)];
  if (root.kind != Reason::Kind::Clause && root.kind != Reason::Kind::Pb) {
    return false;
  }
  std::vector<Lit> pending{lit};
  std::vector<Var> marked;
  std::size_t steps = 0;
  while (!pending.empty()) {
    if (++steps > 64) {
      for (Var v : marked) seen[v] = 0;
      return false;
    }
    const Lit cur = pending.back();
    pending.pop_back();
    const Reason reason = reasons_[VarOf(cur)];
    if (reason.kind != Reason::Kind::Clause && reason.kind != Reason::Kind::Pb) {
      for (Var v : marked) seen[v] = 0;
      return false;
    }
    for (const Lit q : ReasonLits(reason, Negate(cur))) {
      if (q == Negate(cur)) continue;
      const Var v = VarOf(q);
      if (seen[v] || levels_[v] == 0) continue;
      seen[v] = 1;
      marked.push_back(v);
      pending.push_back(q);
    }
  }
  return true;
}

void Solver::SetDecisionPolicy(std::span<const Var> order,
                               std::span<const std::uint8_t> phases) {
  if (order.size() != phases.size())
    throw std::invalid_argument("order/phases size mismatch");
  decision_order_.assign(order.begin(), order.end());
  decision_phase_.resize(assigns_.size());
  std::vector<std::uint8_t> in_order(assigns_.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    decision_phase_[order[i]] = phases[i] ? 1 : 0;
    in_order[order[i]] = 1;
  }
  for (Var v = 0; v < assigns_.size(); ++v) {
    if (!in_order[v]) decision_order_.push_back(v);
  }
  decision_head_ = 0;
}

bool Solver::PickBranch(Lit& decision) {
  ++stats_.decisions;
  if (decision_order_.size() != assigns_.size()) {
    decision_order_.resize(assigns_.size());
    for (Var v = 0; v < assigns_.size(); ++v) decision_order_[v] = v;
    decision_phase_.assign(assigns_.size(), 0);
    decision_head_ = 0;
  }
  while (decision_head_ < decision_order_.size()) {
    const Var v = decision_order_[decision_head_];
    if (assigns_[v] == Value::Unassigned) {
      decision = decision_phase_[v] ? PosLit(v) : NegLit(v);
      return true;
    }
    ++decision_head_;
  }
  return false;
}

SolveResult Solver::Solve() {
  if (!ok_) return SolveResult::Unsat;
  CancelUntil(0);
  if (Propagate().kind != Reason::Kind::None) {
    ok_ = false;
    return SolveResult::Unsat;
  }

  std::uint64_t restart_index = 0;
  std::uint64_t conflicts_since_restart = 0;
  std::uint64_t restart_budget = 64 * Luby(restart_index);

  for (;;) {
    const Reason conflict = Propagate();
    if (conflict.kind != Reason::Kind::None) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return SolveResult::Unsat;
      }
      std::vector<Lit> learnt;
      std::uint32_t backjump = 0;
      Analyze(conflict, learnt, backjump);
      CancelUntil(backjump);
      if (learnt.size() == 1) {
        if (LitValue(learnt[0]) == Value::False) {
          ok_ = false;
          return SolveResult::Unsat;
        }
        if (LitValue(learnt[0]) == Value::Unassigned) {
          Enqueue(learnt[0], {Reason::Kind::None, 0});
        }
      } else {
        const auto ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back({std::move(learnt), true});
        AttachClause(ci);
        ++stats_.learned_clauses;
        Enqueue(clauses_[ci].lits[0], {Reason::Kind::Clause, ci});
      }
      if (conflicts_since_restart >= restart_budget) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_budget = 64 * Luby(++restart_index);
        CancelUntil(0);
      }
      continue;
    }
    Lit decision;
    if (!PickBranch(decision)) return SolveResult::Sat;
    trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size()));
    Enqueue(decision, {Reason::Kind::Decision, 0});
  }
}

}  // namespace bistdse::sat::reference
