// Constraint store of the layered SAT core: long-clause arena with two
// watched literals, a dedicated binary-implication graph (2-literal clauses
// propagate via adjacency lists, not watches), the PB constraint store with
// per-literal occurrence lists, and the equivalent-literal representative
// map written by the inprocessor and consulted during decisions and model
// readout (solution reconstruction).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sat/types.hpp"

namespace bistdse::sat {

struct Clause {
  std::vector<Lit> lits;
  bool learned = false;
  bool removed = false;
  std::uint32_t lbd = 0;  ///< Literal-block distance at learn time.
};

struct PbConstraint {
  std::vector<std::pair<std::int64_t, Lit>> terms;  // coef > 0
  std::int64_t bound = 0;
  std::int64_t slack = 0;  // sum of coefs of not-false lits minus bound
  bool removed = false;
};

class ClauseDb {
 public:
  /// Grows every per-literal structure for one new variable.
  void AddVar();
  std::size_t VarCount() const { return repr_.size(); }

  // --- long clauses -------------------------------------------------------
  /// Adds a clause of size >= 3 and attaches its first two literals.
  std::uint32_t AddLong(std::vector<Lit> lits, bool learned,
                        std::uint32_t lbd);
  void Remove(std::uint32_t index);
  Clause& ClauseAt(std::uint32_t index) { return clauses_[index]; }
  const Clause& ClauseAt(std::uint32_t index) const { return clauses_[index]; }
  std::size_t ClauseCount() const { return clauses_.size(); }
  std::size_t LiveLearnedLong() const { return live_learned_; }

  std::vector<std::uint32_t>& Watches(Lit l) { return watches_[l]; }
  /// Re-derives every watch list from the live clauses (after inprocessing
  /// rewrote or removed clauses). Requires all clauses to have size >= 2 and
  /// the first two literals to be valid watches at the current root state.
  void RebuildWatches();

  // --- binary clauses -----------------------------------------------------
  /// Registers (a v b): a false implies b and vice versa.
  void AddBinary(Lit a, Lit b);
  /// Literals implied by `p` being true (adjacency of the implication
  /// graph).
  const std::vector<Lit>& Implications(Lit p) const { return implications_[p]; }
  /// Ground-truth binary clause list (for inprocessing and fuzz readout).
  const std::vector<std::pair<Lit, Lit>>& Binaries() const { return binaries_; }
  std::vector<std::pair<Lit, Lit>>& MutableBinaries() { return binaries_; }
  /// Re-derives the adjacency lists from Binaries(), deduplicating entries.
  void RebuildBinaryAdjacency();

  // --- pseudo-Boolean constraints -----------------------------------------
  std::uint32_t AddPb(PbConstraint pb);
  void RemovePb(std::uint32_t index);
  PbConstraint& PbAt(std::uint32_t index) { return pbs_[index]; }
  const PbConstraint& PbAt(std::uint32_t index) const { return pbs_[index]; }
  std::size_t PbCount() const { return pbs_.size(); }
  const std::vector<std::uint32_t>& PbOccurrences(Lit l) const {
    return pb_occurrences_[l];
  }
  void RebuildPbOccurrences();

  // --- equivalent-literal representative map ------------------------------
  /// Resolves `l` through the representative map: the returned literal holds
  /// the truth value of `l` in the current (possibly merged) formula.
  Lit Resolve(Lit l) const {
    for (;;) {
      Lit r = repr_[VarOf(l)];
      if (IsNeg(l)) r = Negate(r);
      if (r == l) return l;
      l = r;
    }
  }
  bool IsRepresentative(Var v) const { return repr_[v] == PosLit(v); }
  /// Declares value(PosLit(v)) == value(to). `to` must not resolve to v.
  void SetRepresentative(Var v, Lit to) { repr_[v] = to; }

 private:
  std::vector<Clause> clauses_;
  std::size_t live_learned_ = 0;
  std::vector<std::vector<std::uint32_t>> watches_;  // per lit

  std::vector<std::pair<Lit, Lit>> binaries_;
  std::vector<std::vector<Lit>> implications_;  // per lit

  std::vector<PbConstraint> pbs_;
  std::vector<std::vector<std::uint32_t>> pb_occurrences_;  // per lit

  std::vector<Lit> repr_;  // per var: literal equal in value to PosLit(var)
};

}  // namespace bistdse::sat
