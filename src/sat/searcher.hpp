// Search loop of the layered SAT core (dawn-style searcher): decisions
// follow the pinned SAT-decoding policy first (genotype order + phases,
// projected through the equivalent-literal map), then fall back to the
// configured tail rule — historical ascending-index/phase-false order, or a
// VSIDS-style activity heap with phase saving. Luby restarts; 1-UIP clause
// learning with recursive minimization; LBD-tagged learned clauses reduced
// at restart boundaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/clause_db.hpp"
#include "sat/propagator.hpp"
#include "sat/types.hpp"

namespace bistdse::sat {

class Searcher {
 public:
  Searcher(ClauseDb& db, Propagator& prop, SolverStats& stats,
           const SolverConfig& config)
      : db_(db), prop_(prop), stats_(stats), config_(config) {}

  void AddVar();

  /// Installs the SAT-decoding branching policy: variables are decided in
  /// `order` (earlier = higher priority) with the given preferred phase;
  /// variables missing from `order` fall to the tail rule.
  void SetDecisionPolicy(std::span<const Var> order,
                         std::span<const std::uint8_t> phases);

  /// Runs the CDCL loop from the current root state until a model is found
  /// or the instance is refuted. The caller must have propagated the root
  /// level conflict-free.
  SolveResult Search();

 private:
  bool PickBranch(Lit& decision);
  /// 1-UIP analysis; fills the learnt clause (asserting literal first, a
  /// highest-level literal second) and the backjump level; tags the LBD.
  void Analyze(const Conflict& conflict, std::vector<Lit>& learnt,
               std::uint32_t& backjump_level, std::uint32_t& lbd);
  bool LitRedundant(Lit lit);
  std::uint32_t ComputeLbd(const std::vector<Lit>& lits);
  /// Deletes the worst half of the live learned long clauses by (LBD, size);
  /// glue clauses (LBD <= 2) survive. Runs at decision level 0 only, where
  /// no learned clause can be a live reason.
  void ReduceLearned();
  void CancelUntil(std::uint32_t level);

  bool Seen(Var v) const { return seen_[v] == seen_stamp_; }
  void MarkSeen(Var v) { seen_[v] = seen_stamp_; }
  void UnmarkSeen(Var v) { seen_[v] = 0; }

  // --- activity heap (VSIDS) ---------------------------------------------
  void HeapInsert(Var v);
  void HeapSiftUp(std::size_t i);
  void HeapSiftDown(std::size_t i);
  void BumpActivity(Var v);
  void DecayActivities();
  void RebuildHeap();

  ClauseDb& db_;
  Propagator& prop_;
  SolverStats& stats_;
  const SolverConfig& config_;

  std::vector<Var> order_;            // pinned policy prefix
  std::vector<std::uint8_t> phase_;   // per var, valid for policy vars
  std::vector<std::uint8_t> in_policy_;
  std::size_t decision_head_ = 0;
  Var tail_head_ = 0;

  std::vector<double> activity_;
  double activity_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<std::uint32_t> heap_pos_;  // var -> heap index + 1 (0 = absent)

  std::vector<std::uint32_t> seen_;
  std::uint32_t seen_stamp_ = 0;
  std::vector<std::uint32_t> level_seen_;
  std::uint32_t level_stamp_ = 0;
};

}  // namespace bistdse::sat
