#include "moea/dominance.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bistdse::moea {

bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("objective dimensionality mismatch");
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

std::vector<std::vector<std::size_t>> FastNonDominatedSort(
    std::span<const ObjectiveVector> points) {
  const std::size_t n = points.size();
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts(1);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (Dominates(points[p], points[q])) {
        dominated[p].push_back(q);
      } else if (Dominates(points[q], points[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) fronts[0].push_back(p);
  }

  std::size_t current = 0;
  while (!fronts[current].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[current]) {
      for (std::size_t q : dominated[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    ++current;
    fronts.push_back(std::move(next));
  }
  fronts.pop_back();  // last front is empty
  return fronts;
}

std::vector<double> CrowdingDistance(std::span<const ObjectiveVector> points,
                                     std::span<const std::size_t> front) {
  const std::size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  const std::size_t dims = points[front[0]].size();

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  for (std::size_t d = 0; d < dims; ++d) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return points[front[a]][d] < points[front[b]][d];
    });
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    const double span =
        points[front[order.back()]][d] - points[front[order.front()]][d];
    if (span <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (points[front[order[i + 1]]][d] -
                             points[front[order[i - 1]]][d]) /
                            span;
    }
  }
  return distance;
}

}  // namespace bistdse::moea
