// Epsilon-dominance archive (Laumanns et al., 2002): guarantees a bounded
// archive with provable diversity by keeping at most one representative per
// epsilon-box of the objective space. Useful for very long explorations
// where the exact Pareto archive grows into the thousands.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "moea/dominance.hpp"

namespace bistdse::moea {

class EpsilonArchive {
 public:
  /// `epsilons`: box edge length per objective (> 0).
  explicit EpsilonArchive(ObjectiveVector epsilons);

  struct Entry {
    ObjectiveVector objectives;
    std::uint64_t payload = 0;
  };

  /// Offers a point; returns true iff it is accepted (replacing a dominated
  /// or worse same-box representative).
  bool Offer(const ObjectiveVector& objectives, std::uint64_t payload);

  std::vector<Entry> Entries() const;
  std::size_t Size() const { return boxes_.size(); }

 private:
  using BoxKey = std::vector<std::int64_t>;
  BoxKey KeyOf(const ObjectiveVector& objectives) const;
  /// Box-level dominance: every coordinate <=, one <.
  static bool BoxDominates(const BoxKey& a, const BoxKey& b);

  ObjectiveVector epsilons_;
  std::map<BoxKey, Entry> boxes_;
};

}  // namespace bistdse::moea
