#include "moea/epsilon_archive.hpp"

#include <cmath>
#include <stdexcept>

namespace bistdse::moea {

EpsilonArchive::EpsilonArchive(ObjectiveVector epsilons)
    : epsilons_(std::move(epsilons)) {
  if (epsilons_.empty()) throw std::invalid_argument("need epsilons");
  for (double e : epsilons_) {
    if (e <= 0) throw std::invalid_argument("epsilons must be positive");
  }
}

EpsilonArchive::BoxKey EpsilonArchive::KeyOf(
    const ObjectiveVector& objectives) const {
  if (objectives.size() != epsilons_.size())
    throw std::invalid_argument("objective dimensionality mismatch");
  BoxKey key(objectives.size());
  for (std::size_t d = 0; d < objectives.size(); ++d) {
    key[d] = static_cast<std::int64_t>(std::floor(objectives[d] / epsilons_[d]));
  }
  return key;
}

bool EpsilonArchive::BoxDominates(const BoxKey& a, const BoxKey& b) {
  bool strict = false;
  for (std::size_t d = 0; d < a.size(); ++d) {
    if (a[d] > b[d]) return false;
    if (a[d] < b[d]) strict = true;
  }
  return strict;
}

bool EpsilonArchive::Offer(const ObjectiveVector& objectives,
                           std::uint64_t payload) {
  const BoxKey key = KeyOf(objectives);

  // Same box: keep the representative closer to the box's utopia corner.
  if (auto it = boxes_.find(key); it != boxes_.end()) {
    if (Dominates(objectives, it->second.objectives)) {
      it->second = {objectives, payload};
      return true;
    }
    return false;
  }

  // Rejected if any existing box dominates this one.
  for (const auto& [k, entry] : boxes_) {
    if (BoxDominates(k, key)) return false;
  }
  // Evict boxes dominated by the new one.
  for (auto it = boxes_.begin(); it != boxes_.end();) {
    if (BoxDominates(key, it->first)) {
      it = boxes_.erase(it);
    } else {
      ++it;
    }
  }
  boxes_.emplace(key, Entry{objectives, payload});
  return true;
}

std::vector<EpsilonArchive::Entry> EpsilonArchive::Entries() const {
  std::vector<Entry> out;
  out.reserve(boxes_.size());
  for (const auto& [k, entry] : boxes_) out.push_back(entry);
  return out;
}

}  // namespace bistdse::moea
