// The common MOEA surface: every algorithm (NSGA-II, SPEA2) runs genotypes
// through an evaluator until an evaluation budget is spent and returns the
// global non-dominated archive. Consumers program against this interface —
// the exploration layer selects an algorithm via MakeAlgorithm() instead of
// dispatching on an enum itself.
//
// Evaluation is *population-shaped*: algorithms hand the evaluator whole
// batches of genotypes (one offspring generation at a time). An evaluator
// that can evaluate a batch in parallel (the EvaluationEngine does) gets its
// parallelism for free; a plain per-genotype evaluator is applied
// sequentially. Batches preserve sequential semantics: genotypes are
// generated before the batch is submitted and results are consumed in
// genotype order, so a run is bit-identical to evaluating one-by-one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "moea/archive.hpp"
#include "moea/dominance.hpp"
#include "moea/genotype.hpp"

namespace bistdse::moea {

/// Evaluator: decodes + evaluates one genotype. nullopt = evaluation failed
/// (e.g. the SAT decoder proved the instance infeasible) — such individuals
/// are discarded from selection.
using Evaluator = std::function<std::optional<ObjectiveVector>(const Genotype&)>;

/// Batch evaluator: results[i] corresponds to genotypes[i]. Must behave as
/// if the genotypes were evaluated sequentially in order (the engine's
/// batched path parallelizes internally but reports in order).
using BatchEvaluator = std::function<std::vector<std::optional<ObjectiveVector>>(
    std::span<const Genotype>)>;

/// Per-generation observer (generation index, evaluations so far, archive).
using GenerationCallback =
    std::function<void(std::size_t, std::size_t, const ParetoArchive&)>;

/// Early-stop predicate, polled after every generation.
using StopPredicate =
    std::function<bool(std::size_t evaluations, const ParetoArchive&)>;

/// What algorithms consume: a per-genotype evaluator plus an optional batch
/// path. When `batch` is empty, batches fall back to sequential `single`
/// calls.
struct PopulationEvaluator {
  Evaluator single;
  BatchEvaluator batch;

  std::vector<std::optional<ObjectiveVector>> Evaluate(
      std::span<const Genotype> genotypes) const;
};

struct MoeaResult {
  ParetoArchive archive;             ///< All non-dominated points seen.
  std::vector<Genotype> genotypes;   ///< Genotype per archive payload index.
  std::size_t evaluations = 0;
};

enum class AlgorithmKind : std::uint8_t { Nsga2, Spea2 };

const char* AlgorithmName(AlgorithmKind kind);
std::optional<AlgorithmKind> ParseAlgorithmName(const std::string& name);

/// One configuration for every algorithm — a single plumbing path, so a knob
/// (e.g. mutation_rate) cannot be honored by one algorithm and dropped by
/// another.
struct AlgorithmConfig {
  std::size_t population_size = 100;
  /// SPEA2 environmental-archive capacity; 0 = population_size. Ignored by
  /// NSGA-II.
  std::size_t archive_size = 0;
  std::size_t genotype_size = 0;  ///< Genes per genotype (required).
  double crossover_rate = 0.9;
  /// Per-gene mutation probability; <= 0 selects the 1/n default.
  double mutation_rate = -1.0;
  /// Draw a per-individual phase bias uniformly in [0,1] for the initial
  /// population (instead of a fixed 1/2), spreading it over the selection-
  /// density spectrum of optional design elements.
  bool biased_phase_init = true;
  std::uint64_t seed = 1;
  /// Genotypes injected into the initial population before random ones
  /// (problem-knowledge seeding, e.g. design-space corners).
  std::vector<Genotype> initial_genotypes;
  /// Optional early stop, polled after each generation.
  StopPredicate should_stop;
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Runs until `max_evaluations` evaluator calls have been spent.
  virtual MoeaResult Run(const PopulationEvaluator& evaluator,
                         std::size_t max_evaluations,
                         const GenerationCallback& on_generation = {}) = 0;

  /// Convenience: per-genotype evaluator without a batch path.
  MoeaResult Run(const Evaluator& evaluator, std::size_t max_evaluations,
                 const GenerationCallback& on_generation = {});

 protected:
  /// Shared batched-evaluation step: evaluates `batch` in genotype order,
  /// updates `result` (evaluation count, archive, archived genotypes) and
  /// hands each feasible (genotype, objectives) pair to `accept`.
  static void EvaluateBatch(
      const PopulationEvaluator& evaluator, std::vector<Genotype> batch,
      MoeaResult& result,
      const std::function<void(Genotype&&, const ObjectiveVector&)>& accept);
};

/// Factory behind the one-interface design: maps (kind, config) to a
/// concrete algorithm.
std::unique_ptr<Algorithm> MakeAlgorithm(AlgorithmKind kind,
                                         AlgorithmConfig config);

}  // namespace bistdse::moea
