#include "moea/algorithm.hpp"

#include <stdexcept>

#include "moea/nsga2.hpp"
#include "moea/spea2.hpp"

namespace bistdse::moea {

std::vector<std::optional<ObjectiveVector>> PopulationEvaluator::Evaluate(
    std::span<const Genotype> genotypes) const {
  if (batch) return batch(genotypes);
  std::vector<std::optional<ObjectiveVector>> results;
  results.reserve(genotypes.size());
  for (const Genotype& genotype : genotypes) results.push_back(single(genotype));
  return results;
}

const char* AlgorithmName(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::Nsga2:
      return "nsga2";
    case AlgorithmKind::Spea2:
      return "spea2";
  }
  return "?";
}

std::optional<AlgorithmKind> ParseAlgorithmName(const std::string& name) {
  if (name == "nsga2" || name == "nsga-ii" || name == "nsga-2") {
    return AlgorithmKind::Nsga2;
  }
  if (name == "spea2" || name == "spea-2") return AlgorithmKind::Spea2;
  return std::nullopt;
}

MoeaResult Algorithm::Run(const Evaluator& evaluator,
                          std::size_t max_evaluations,
                          const GenerationCallback& on_generation) {
  PopulationEvaluator population_evaluator;
  population_evaluator.single = evaluator;
  return Run(population_evaluator, max_evaluations, on_generation);
}

void Algorithm::EvaluateBatch(
    const PopulationEvaluator& evaluator, std::vector<Genotype> batch,
    MoeaResult& result,
    const std::function<void(Genotype&&, const ObjectiveVector&)>& accept) {
  const auto objectives = evaluator.Evaluate(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ++result.evaluations;
    if (!objectives[i]) continue;
    if (result.archive.Offer(*objectives[i], result.genotypes.size())) {
      result.genotypes.push_back(batch[i]);
    }
    accept(std::move(batch[i]), *objectives[i]);
  }
}

std::unique_ptr<Algorithm> MakeAlgorithm(AlgorithmKind kind,
                                         AlgorithmConfig config) {
  switch (kind) {
    case AlgorithmKind::Nsga2: {
      Nsga2Config nsga2;
      nsga2.population_size = config.population_size;
      nsga2.genotype_size = config.genotype_size;
      nsga2.crossover_rate = config.crossover_rate;
      nsga2.mutation_rate = config.mutation_rate;
      nsga2.biased_phase_init = config.biased_phase_init;
      nsga2.seed = config.seed;
      nsga2.initial_genotypes = std::move(config.initial_genotypes);
      nsga2.should_stop = std::move(config.should_stop);
      return std::make_unique<Nsga2>(std::move(nsga2));
    }
    case AlgorithmKind::Spea2: {
      Spea2Config spea2;
      spea2.population_size = config.population_size;
      spea2.archive_size =
          config.archive_size > 0 ? config.archive_size : config.population_size;
      spea2.genotype_size = config.genotype_size;
      spea2.crossover_rate = config.crossover_rate;
      spea2.mutation_rate = config.mutation_rate;
      spea2.biased_phase_init = config.biased_phase_init;
      spea2.seed = config.seed;
      spea2.initial_genotypes = std::move(config.initial_genotypes);
      spea2.should_stop = std::move(config.should_stop);
      return std::make_unique<Spea2>(std::move(spea2));
    }
  }
  throw std::invalid_argument("unknown MOEA algorithm kind");
}

}  // namespace bistdse::moea
