#include "moea/genotype.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bistdse::moea {

std::vector<std::uint32_t> Genotype::DecisionOrder() const {
  std::vector<std::uint32_t> order(priorities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return priorities[a] > priorities[b];
                   });
  return order;
}

Genotype RandomGenotype(std::size_t n, util::SplitMix64& rng) {
  return RandomGenotypeBiased(n, 0.5, rng);
}

Genotype RandomGenotypeBiased(std::size_t n, double bias,
                              util::SplitMix64& rng) {
  Genotype g;
  g.priorities.resize(n);
  g.phases.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.priorities[i] = rng.UnitReal();
    g.phases[i] = rng.Chance(bias) ? 1 : 0;
  }
  return g;
}

Genotype UniformCrossover(const Genotype& a, const Genotype& b,
                          util::SplitMix64& rng) {
  if (a.Size() != b.Size())
    throw std::invalid_argument("genotype size mismatch");
  Genotype child;
  child.priorities.resize(a.Size());
  child.phases.resize(a.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    const bool from_a = rng.Chance(0.5);
    child.priorities[i] = from_a ? a.priorities[i] : b.priorities[i];
    child.phases[i] = from_a ? a.phases[i] : b.phases[i];
  }
  return child;
}

Genotype OnePointCrossover(const Genotype& a, const Genotype& b,
                           util::SplitMix64& rng) {
  if (a.Size() != b.Size())
    throw std::invalid_argument("genotype size mismatch");
  const std::size_t cut = a.Size() == 0 ? 0 : rng.Below(a.Size() + 1);
  Genotype child;
  child.priorities.resize(a.Size());
  child.phases.resize(a.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    const Genotype& source = i < cut ? a : b;
    child.priorities[i] = source.priorities[i];
    child.phases[i] = source.phases[i];
  }
  return child;
}

void Mutate(Genotype& genotype, double rate, util::SplitMix64& rng) {
  for (std::size_t i = 0; i < genotype.Size(); ++i) {
    if (!rng.Chance(rate)) continue;
    genotype.priorities[i] = rng.UnitReal();
    if (rng.Chance(0.5)) genotype.phases[i] ^= 1;
  }
}

}  // namespace bistdse::moea
