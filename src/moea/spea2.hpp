// SPEA2 (Zitzler/Laumanns/Thiele, 2001): strength-Pareto evolutionary
// algorithm with k-th-nearest-neighbor density and archive truncation — a
// second MOEA besides NSGA-II, implementing the same moea::Algorithm
// interface so explorations can swap algorithms.
#pragma once

#include "moea/algorithm.hpp"
#include "moea/nsga2.hpp"

namespace bistdse::moea {

struct Spea2Config {
  std::size_t population_size = 100;
  std::size_t archive_size = 100;
  std::size_t genotype_size = 0;
  double crossover_rate = 0.9;
  double mutation_rate = -1.0;  ///< <= 0 selects 1/n.
  bool biased_phase_init = true;
  std::uint64_t seed = 1;
  /// Genotypes injected into the initial population before random ones.
  std::vector<Genotype> initial_genotypes;
  /// Optional early stop, polled after each generation.
  StopPredicate should_stop;
};

class Spea2 : public Algorithm {
 public:
  explicit Spea2(Spea2Config config);

  /// Runs until `max_evaluations` evaluator calls. Returns the global
  /// non-dominated archive (same semantics as Nsga2::Run).
  using Algorithm::Run;
  MoeaResult Run(const PopulationEvaluator& evaluator,
                 std::size_t max_evaluations,
                 const GenerationCallback& on_generation = {}) override;

 private:
  struct Individual {
    Genotype genotype;
    ObjectiveVector objectives;
    double fitness = 0.0;  ///< Raw fitness + density (lower is better).
  };

  /// SPEA2 fitness: strength-based raw fitness plus 1/(2 + k-NN distance).
  static void AssignFitness(std::vector<Individual>& pool);
  /// Environmental selection into the bounded archive (truncation by
  /// nearest-neighbor distance).
  static std::vector<Individual> SelectArchive(std::vector<Individual> pool,
                                               std::size_t capacity);

  Spea2Config config_;
};

}  // namespace bistdse::moea
