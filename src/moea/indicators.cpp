#include "moea/indicators.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bistdse::moea {

namespace {

double Hypervolume2D(std::vector<ObjectiveVector> pts,
                     const ObjectiveVector& ref) {
  std::sort(pts.begin(), pts.end());
  double volume = 0.0;
  double prev_y = ref[1];
  for (const auto& p : pts) {
    const double x = std::min(p[0], ref[0]);
    const double y = std::min(p[1], ref[1]);
    if (y < prev_y) {
      volume += (ref[0] - x) * (prev_y - y);
      prev_y = y;
    }
  }
  return volume;
}

}  // namespace

std::vector<ObjectiveVector> NonDominatedSubset(
    std::span<const ObjectiveVector> points) {
  std::vector<ObjectiveVector> kept;
  for (const auto& p : points) {
    bool dominated = false;
    for (const auto& q : points) {
      if (&p != &q && (Dominates(q, p))) {
        dominated = true;
        break;
      }
    }
    if (!dominated &&
        std::find(kept.begin(), kept.end(), p) == kept.end()) {
      kept.push_back(p);
    }
  }
  return kept;
}

namespace {

/// HSO recursion: slice along the last objective; between consecutive cuts
/// the volume is the (d-1)-dimensional hypervolume of the active points.
double HypervolumeRec(std::vector<ObjectiveVector> pts,
                      const ObjectiveVector& reference) {
  const std::size_t dims = reference.size();
  if (pts.empty()) return 0.0;
  if (dims == 2) return Hypervolume2D(std::move(pts), reference);

  const std::size_t last = dims - 1;
  std::vector<double> cuts;
  for (const auto& p : pts) {
    if (p[last] < reference[last]) cuts.push_back(p[last]);
  }
  if (cuts.empty()) return 0.0;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  cuts.push_back(reference[last]);

  ObjectiveVector sub_ref(reference.begin(), reference.end() - 1);
  double volume = 0.0;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double depth = cuts[i + 1] - cuts[i];
    std::vector<ObjectiveVector> slice;
    for (const auto& p : pts) {
      if (p[last] <= cuts[i]) {
        slice.emplace_back(p.begin(), p.end() - 1);
      }
    }
    if (!slice.empty()) {
      volume += depth * HypervolumeRec(std::move(slice), sub_ref);
    }
  }
  return volume;
}

}  // namespace

double Hypervolume(std::span<const ObjectiveVector> front,
                   const ObjectiveVector& reference) {
  if (front.empty()) return 0.0;
  const std::size_t dims = reference.size();
  if (dims < 2) throw std::invalid_argument("need >= 2 objectives");
  for (const auto& p : front) {
    if (p.size() != dims)
      throw std::invalid_argument("dimensionality mismatch");
  }
  return HypervolumeRec(NonDominatedSubset(front), reference);
}

double AdditiveEpsilon(std::span<const ObjectiveVector> a,
                       std::span<const ObjectiveVector> b) {
  if (a.empty() || b.empty())
    throw std::invalid_argument("epsilon indicator needs non-empty sets");
  double eps = -std::numeric_limits<double>::infinity();
  for (const auto& pb : b) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& pa : a) {
      double worst = -std::numeric_limits<double>::infinity();
      for (std::size_t d = 0; d < pb.size(); ++d) {
        worst = std::max(worst, pa[d] - pb[d]);
      }
      best = std::min(best, worst);
    }
    eps = std::max(eps, best);
  }
  return eps;
}

}  // namespace bistdse::moea
