#include "moea/spea2.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bistdse::moea {

namespace {

double Distance(const ObjectiveVector& a, const ObjectiveVector& b) {
  double sum = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

}  // namespace

Spea2::Spea2(Spea2Config config) : config_(config) {
  if (config_.genotype_size == 0)
    throw std::invalid_argument("genotype_size must be set");
  if (config_.population_size < 2 || config_.archive_size < 2)
    throw std::invalid_argument("population/archive size must be >= 2");
  if (config_.mutation_rate <= 0.0) {
    config_.mutation_rate = 1.0 / static_cast<double>(config_.genotype_size);
  }
}

void Spea2::AssignFitness(std::vector<Individual>& pool) {
  const std::size_t n = pool.size();
  // Strength S(i): number of individuals i dominates.
  std::vector<std::size_t> strength(n, 0);
  std::vector<std::vector<std::size_t>> dominators(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (Dominates(pool[i].objectives, pool[j].objectives)) {
        ++strength[i];
        dominators[j].push_back(i);
      }
    }
  }
  // Raw fitness R(i): sum of strengths of i's dominators; density D(i):
  // 1 / (sigma_k + 2) with k = sqrt(n).
  const auto k = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
  std::vector<double> dists;
  for (std::size_t i = 0; i < n; ++i) {
    double raw = 0.0;
    for (std::size_t d : dominators[i]) {
      raw += static_cast<double>(strength[d]);
    }
    dists.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) dists.push_back(Distance(pool[i].objectives, pool[j].objectives));
    }
    double sigma = 0.0;
    if (!dists.empty()) {
      const std::size_t kth = std::min(k, dists.size() - 1);
      std::nth_element(dists.begin(), dists.begin() + kth, dists.end());
      sigma = dists[kth];
    }
    pool[i].fitness = raw + 1.0 / (sigma + 2.0);
  }
}

std::vector<Spea2::Individual> Spea2::SelectArchive(
    std::vector<Individual> pool, std::size_t capacity) {
  // Non-dominated members (fitness < 1) first.
  std::vector<Individual> archive;
  std::vector<Individual> dominated;
  for (auto& ind : pool) {
    (ind.fitness < 1.0 ? archive : dominated).push_back(std::move(ind));
  }
  if (archive.size() < capacity) {
    // Fill with the best dominated individuals.
    std::sort(dominated.begin(), dominated.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness < b.fitness;
              });
    for (auto& ind : dominated) {
      if (archive.size() >= capacity) break;
      archive.push_back(std::move(ind));
    }
    return archive;
  }
  // Truncation: repeatedly remove the member with the smallest nearest-
  // neighbor distance (O(n^2) per removal is fine at these sizes).
  while (archive.size() > capacity) {
    std::size_t victim = 0;
    double victim_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < archive.size(); ++i) {
      double nearest = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < archive.size(); ++j) {
        if (j != i) {
          nearest = std::min(
              nearest, Distance(archive[i].objectives, archive[j].objectives));
        }
      }
      if (nearest < victim_dist) {
        victim_dist = nearest;
        victim = i;
      }
    }
    archive.erase(archive.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  return archive;
}

MoeaResult Spea2::Run(const PopulationEvaluator& evaluator,
                      std::size_t max_evaluations,
                      const GenerationCallback& on_generation) {
  util::SplitMix64 rng(config_.seed);
  MoeaResult result;

  // As in Nsga2::Run, genotype generation is independent of evaluation
  // results, so seeds/offspring are drawn in batches and evaluated together
  // without changing the RNG stream.
  std::vector<Individual> population;
  const auto accept = [&population](Genotype&& genotype,
                                    const ObjectiveVector& objectives) {
    population.push_back({std::move(genotype), objectives, 0.0});
  };
  std::size_t next_seeded = 0;
  while (next_seeded < config_.initial_genotypes.size() &&
         population.size() < config_.population_size &&
         result.evaluations < max_evaluations) {
    std::vector<Genotype> batch;
    const std::size_t want =
        std::min({config_.initial_genotypes.size() - next_seeded,
                  config_.population_size - population.size(),
                  max_evaluations - result.evaluations});
    for (std::size_t i = 0; i < want; ++i) {
      const Genotype& seeded = config_.initial_genotypes[next_seeded++];
      if (seeded.Size() != config_.genotype_size)
        throw std::invalid_argument("seeded genotype size mismatch");
      batch.push_back(seeded);
    }
    EvaluateBatch(evaluator, std::move(batch), result, accept);
  }
  std::size_t attempts = 0;
  while (population.size() < config_.population_size &&
         result.evaluations < max_evaluations) {
    std::vector<Genotype> batch;
    const std::size_t want =
        std::min(config_.population_size - population.size(),
                 max_evaluations - result.evaluations);
    for (std::size_t i = 0; i < want; ++i) {
      const double bias = config_.biased_phase_init ? rng.UnitReal() : 0.5;
      batch.push_back(RandomGenotypeBiased(config_.genotype_size, bias, rng));
    }
    EvaluateBatch(evaluator, std::move(batch), result, accept);
    attempts += want;
    if (attempts > 50 * config_.population_size) {
      throw std::runtime_error(
          "SPEA2: evaluator rejects nearly every random genotype");
    }
  }

  std::vector<Individual> archive;
  std::size_t generation = 0;
  while (result.evaluations < max_evaluations &&
         population.size() + archive.size() >= 2) {
    std::vector<Individual> pool = std::move(population);
    for (Individual& ind : archive) pool.push_back(std::move(ind));
    AssignFitness(pool);
    archive = SelectArchive(std::move(pool), config_.archive_size);

    auto tournament = [&]() -> const Individual& {
      const Individual& a = archive[rng.Below(archive.size())];
      const Individual& b = archive[rng.Below(archive.size())];
      return a.fitness <= b.fitness ? a : b;
    };

    population.clear();
    while (population.size() < config_.population_size &&
           result.evaluations < max_evaluations) {
      std::vector<Genotype> batch;
      const std::size_t want =
          std::min(config_.population_size - population.size(),
                   max_evaluations - result.evaluations);
      for (std::size_t i = 0; i < want; ++i) {
        Genotype child = rng.Chance(config_.crossover_rate)
                             ? UniformCrossover(tournament().genotype,
                                                tournament().genotype, rng)
                             : tournament().genotype;
        Mutate(child, config_.mutation_rate, rng);
        batch.push_back(std::move(child));
      }
      EvaluateBatch(evaluator, std::move(batch), result, accept);
    }
    ++generation;
    if (on_generation) {
      on_generation(generation, result.evaluations, result.archive);
    }
    if (config_.should_stop &&
        config_.should_stop(result.evaluations, result.archive)) {
      break;
    }
  }
  return result;
}

}  // namespace bistdse::moea
