// Unbounded Pareto archive: keeps every non-dominated (objectives, payload)
// pair seen during the exploration. Payload is an opaque index that callers
// map back to decoded implementations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "moea/dominance.hpp"

namespace bistdse::moea {

struct ArchiveEntry {
  ObjectiveVector objectives;
  std::uint64_t payload = 0;
};

class ParetoArchive {
 public:
  /// Offers a point. Returns true iff it enters the archive (i.e. no member
  /// dominates it and it is not a duplicate); dominated members are evicted.
  bool Offer(ObjectiveVector objectives, std::uint64_t payload);

  std::span<const ArchiveEntry> Entries() const { return entries_; }
  std::size_t Size() const { return entries_.size(); }

 private:
  std::vector<ArchiveEntry> entries_;
};

}  // namespace bistdse::moea
