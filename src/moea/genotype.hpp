// SAT-decoding genotype: a branching priority and a preferred phase per
// decision variable (Lukasiewycz et al. [17]). The decoder turns the
// genotype into a total branching order for the PB/SAT solver; the solver
// output is always a *feasible* implementation, so the evolutionary search
// never wastes evaluations on infeasible points.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace bistdse::moea {

struct Genotype {
  std::vector<double> priorities;     ///< Higher decides earlier.
  std::vector<std::uint8_t> phases;   ///< Preferred value per variable.

  std::size_t Size() const { return priorities.size(); }

  /// Decision order implied by the priorities (descending; stable).
  std::vector<std::uint32_t> DecisionOrder() const;
};

/// Uniformly random genotype of `n` genes (phase probability 1/2).
Genotype RandomGenotype(std::size_t n, util::SplitMix64& rng);

/// Random genotype whose phases are 1 with probability `bias`. Drawing the
/// bias itself uniformly per individual spreads the initial population over
/// the whole selection-density spectrum (none ... all optional tasks
/// selected) — essential when most genes gate *optional* design elements.
Genotype RandomGenotypeBiased(std::size_t n, double bias,
                              util::SplitMix64& rng);

/// Uniform crossover: each gene (priority, phase pair) from either parent.
Genotype UniformCrossover(const Genotype& a, const Genotype& b,
                          util::SplitMix64& rng);

/// One-point crossover: genes [0, cut) from `a`, the rest from `b`. Keeps
/// co-located genes (e.g. one ECU's profile block) together more often than
/// uniform crossover.
Genotype OnePointCrossover(const Genotype& a, const Genotype& b,
                           util::SplitMix64& rng);

/// Per-gene mutation: with `rate`, redraw the priority and flip the phase
/// with probability 1/2.
void Mutate(Genotype& genotype, double rate, util::SplitMix64& rng);

}  // namespace bistdse::moea
