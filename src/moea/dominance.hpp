// Pareto dominance, fast non-dominated sorting and crowding distance
// (Deb et al., NSGA-II, IEEE TEC 2002). All objectives are minimized.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bistdse::moea {

using ObjectiveVector = std::vector<double>;

/// a dominates b: a <= b in every objective and a < b in at least one.
bool Dominates(const ObjectiveVector& a, const ObjectiveVector& b);

/// Partitions indices 0..n-1 into non-dominated fronts (front 0 first).
std::vector<std::vector<std::size_t>> FastNonDominatedSort(
    std::span<const ObjectiveVector> points);

/// Crowding distance of each member of `front` (indices into `points`).
/// Boundary points get +infinity.
std::vector<double> CrowdingDistance(std::span<const ObjectiveVector> points,
                                     std::span<const std::size_t> front);

}  // namespace bistdse::moea
