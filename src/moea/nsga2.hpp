// NSGA-II multi-objective evolutionary algorithm (Deb et al., 2002) over
// SAT-decoding genotypes. All objectives are minimized. Offspring are
// evaluated one generation at a time through the PopulationEvaluator batch
// path (see moea/algorithm.hpp) — bit-identical to per-genotype evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "moea/algorithm.hpp"
#include "moea/archive.hpp"
#include "moea/dominance.hpp"
#include "moea/genotype.hpp"

namespace bistdse::moea {

/// Historical name of the common result type.
using Nsga2Result = MoeaResult;

struct Nsga2Config {
  std::size_t population_size = 100;
  std::size_t genotype_size = 0;  ///< Genes per genotype (required).
  double crossover_rate = 0.9;
  /// Per-gene mutation probability; <= 0 selects the 1/n default.
  double mutation_rate = -1.0;
  /// Draw a per-individual phase bias uniformly in [0,1] for the initial
  /// population (instead of a fixed 1/2), spreading it over the selection-
  /// density spectrum of optional design elements.
  bool biased_phase_init = true;
  std::uint64_t seed = 1;
  /// Genotypes injected into the initial population before random ones
  /// (problem-knowledge seeding, e.g. design-space corners).
  std::vector<Genotype> initial_genotypes;
  /// Optional early stop, polled after each generation.
  StopPredicate should_stop;
};

class Nsga2 : public Algorithm {
 public:
  explicit Nsga2(Nsga2Config config);

  using Algorithm::Run;
  MoeaResult Run(const PopulationEvaluator& evaluator,
                 std::size_t max_evaluations,
                 const GenerationCallback& on_generation = {}) override;

 private:
  struct Individual {
    Genotype genotype;
    ObjectiveVector objectives;
  };

  Individual& Tournament(std::vector<Individual>& pop, util::SplitMix64& rng,
                         std::span<const std::size_t> ranks,
                         std::span<const double> crowding);

  Nsga2Config config_;
};

}  // namespace bistdse::moea
