#include "moea/archive.hpp"

#include <algorithm>

namespace bistdse::moea {

bool ParetoArchive::Offer(ObjectiveVector objectives, std::uint64_t payload) {
  for (const ArchiveEntry& e : entries_) {
    if (e.objectives == objectives || Dominates(e.objectives, objectives)) {
      return false;
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const ArchiveEntry& e) {
                                  return Dominates(objectives, e.objectives);
                                }),
                 entries_.end());
  entries_.push_back({std::move(objectives), payload});
  return true;
}

}  // namespace bistdse::moea
