// Multi-objective quality indicators: exact hypervolume for 2 and 3
// objectives and the additive epsilon indicator. Objectives are minimized;
// the reference point must be dominated by every front member.
#pragma once

#include <span>
#include <vector>

#include "moea/dominance.hpp"

namespace bistdse::moea {

/// Exact hypervolume for minimization fronts of any dimension (HSO-style
/// recursive slicing; practical for the front sizes and <= 5 objectives
/// used here). Points outside the reference box contribute their clipped
/// part.
double Hypervolume(std::span<const ObjectiveVector> front,
                   const ObjectiveVector& reference);

/// Additive epsilon indicator I_eps+(A, B): the smallest eps such that every
/// point of B is weakly dominated by some point of A shifted by eps.
double AdditiveEpsilon(std::span<const ObjectiveVector> a,
                       std::span<const ObjectiveVector> b);

/// Strips dominated and duplicate points.
std::vector<ObjectiveVector> NonDominatedSubset(
    std::span<const ObjectiveVector> points);

}  // namespace bistdse::moea
