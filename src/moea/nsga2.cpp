#include "moea/nsga2.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::moea {

Nsga2::Nsga2(Nsga2Config config) : config_(config) {
  if (config_.genotype_size == 0)
    throw std::invalid_argument("genotype_size must be set");
  if (config_.population_size < 2)
    throw std::invalid_argument("population_size must be >= 2");
  if (config_.mutation_rate <= 0.0) {
    config_.mutation_rate = 1.0 / static_cast<double>(config_.genotype_size);
  }
}

Nsga2::Individual& Nsga2::Tournament(std::vector<Individual>& pop,
                                     util::SplitMix64& rng,
                                     std::span<const std::size_t> ranks,
                                     std::span<const double> crowding) {
  const std::size_t a = rng.Below(pop.size());
  const std::size_t b = rng.Below(pop.size());
  if (ranks[a] != ranks[b]) return pop[ranks[a] < ranks[b] ? a : b];
  return pop[crowding[a] >= crowding[b] ? a : b];
}

MoeaResult Nsga2::Run(const PopulationEvaluator& evaluator,
                      std::size_t max_evaluations,
                      const GenerationCallback& on_generation) {
  util::SplitMix64 rng(config_.seed);
  MoeaResult result;

  // Initial population: seeded genotypes first, then random ones (failed
  // evaluations are redrawn up to a sanity bound). Genotype generation never
  // depends on evaluation results, so whole batches can be drawn up front
  // and evaluated together without changing the RNG stream.
  std::vector<Individual> population;
  const auto accept = [&population](Genotype&& genotype,
                                    const ObjectiveVector& objectives) {
    population.push_back({std::move(genotype), objectives});
  };
  std::size_t next_seeded = 0;
  while (next_seeded < config_.initial_genotypes.size() &&
         population.size() < config_.population_size &&
         result.evaluations < max_evaluations) {
    std::vector<Genotype> batch;
    const std::size_t want =
        std::min({config_.initial_genotypes.size() - next_seeded,
                  config_.population_size - population.size(),
                  max_evaluations - result.evaluations});
    for (std::size_t i = 0; i < want; ++i) {
      const Genotype& seeded = config_.initial_genotypes[next_seeded++];
      if (seeded.Size() != config_.genotype_size)
        throw std::invalid_argument("seeded genotype size mismatch");
      batch.push_back(seeded);
    }
    EvaluateBatch(evaluator, std::move(batch), result, accept);
  }
  std::size_t attempts = 0;
  while (population.size() < config_.population_size &&
         result.evaluations < max_evaluations) {
    std::vector<Genotype> batch;
    const std::size_t want =
        std::min(config_.population_size - population.size(),
                 max_evaluations - result.evaluations);
    for (std::size_t i = 0; i < want; ++i) {
      const double bias = config_.biased_phase_init ? rng.UnitReal() : 0.5;
      batch.push_back(RandomGenotypeBiased(config_.genotype_size, bias, rng));
    }
    EvaluateBatch(evaluator, std::move(batch), result, accept);
    attempts += want;
    if (attempts > 50 * config_.population_size) {
      throw std::runtime_error(
          "NSGA-II: evaluator rejects nearly every random genotype");
    }
  }

  std::size_t generation = 0;
  while (result.evaluations < max_evaluations && population.size() >= 2) {
    // Rank + crowding of the current population.
    std::vector<ObjectiveVector> points;
    points.reserve(population.size());
    for (const Individual& ind : population) points.push_back(ind.objectives);
    const auto fronts = FastNonDominatedSort(points);
    std::vector<std::size_t> ranks(population.size(), 0);
    std::vector<double> crowding(population.size(), 0.0);
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      const auto cd = CrowdingDistance(points, fronts[f]);
      for (std::size_t i = 0; i < fronts[f].size(); ++i) {
        ranks[fronts[f][i]] = f;
        crowding[fronts[f][i]] = cd[i];
      }
    }

    // Variation: binary tournaments, uniform crossover, mutation. Selection
    // reads only the parent population, so one generation's offspring form
    // one evaluation batch.
    std::vector<Individual> offspring;
    const auto accept_offspring = [&offspring](Genotype&& genotype,
                                               const ObjectiveVector& objectives) {
      offspring.push_back({std::move(genotype), objectives});
    };
    while (offspring.size() < config_.population_size &&
           result.evaluations < max_evaluations) {
      std::vector<Genotype> batch;
      const std::size_t want =
          std::min(config_.population_size - offspring.size(),
                   max_evaluations - result.evaluations);
      for (std::size_t i = 0; i < want; ++i) {
        const Individual& p1 = Tournament(population, rng, ranks, crowding);
        const Individual& p2 = Tournament(population, rng, ranks, crowding);
        Genotype child = rng.Chance(config_.crossover_rate)
                             ? UniformCrossover(p1.genotype, p2.genotype, rng)
                             : p1.genotype;
        Mutate(child, config_.mutation_rate, rng);
        batch.push_back(std::move(child));
      }
      EvaluateBatch(evaluator, std::move(batch), result, accept_offspring);
    }

    // Environmental selection over parents + offspring.
    std::vector<Individual> merged = std::move(population);
    for (Individual& ind : offspring) merged.push_back(std::move(ind));
    std::vector<ObjectiveVector> merged_points;
    merged_points.reserve(merged.size());
    for (const Individual& ind : merged) merged_points.push_back(ind.objectives);
    const auto merged_fronts = FastNonDominatedSort(merged_points);

    population.clear();
    for (const auto& front : merged_fronts) {
      if (population.size() + front.size() <= config_.population_size) {
        for (std::size_t i : front) population.push_back(std::move(merged[i]));
      } else {
        const auto cd = CrowdingDistance(merged_points, front);
        std::vector<std::size_t> order(front.size());
        for (std::size_t i = 0; i < front.size(); ++i) order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return cd[a] > cd[b]; });
        for (std::size_t i : order) {
          if (population.size() >= config_.population_size) break;
          population.push_back(std::move(merged[front[i]]));
        }
      }
      if (population.size() >= config_.population_size) break;
    }

    ++generation;
    if (on_generation) {
      on_generation(generation, result.evaluations, result.archive);
    }
    if (config_.should_stop &&
        config_.should_stop(result.evaluations, result.archive)) {
      break;
    }
  }
  return result;
}

}  // namespace bistdse::moea
