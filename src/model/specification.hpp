// Specification g_S(g_T, g_A, M): application graph + architecture graph +
// mapping options, plus the BIST augmentation of paper Fig. 3.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "bist/profile.hpp"
#include "model/application.hpp"
#include "model/architecture.hpp"

namespace bistdse::model {

struct MappingOption {
  TaskId task = kInvalidId;
  ResourceId resource = kInvalidId;
};

class Specification {
 public:
  ApplicationGraph& Application() { return application_; }
  const ApplicationGraph& Application() const { return application_; }
  ArchitectureGraph& Architecture() { return architecture_; }
  const ArchitectureGraph& Architecture() const { return architecture_; }

  /// Registers a mapping option m = (t, r); returns its index into
  /// Mappings(). Throws on out-of-range ids, duplicates, or non-computational
  /// targets (tasks cannot run on buses).
  std::size_t AddMapping(TaskId task, ResourceId resource);

  std::span<const MappingOption> Mappings() const { return mappings_; }
  std::span<const std::size_t> MappingsOfTask(TaskId task) const;
  std::span<const std::size_t> MappingsOnResource(ResourceId resource) const;

  /// Checks global sanity: every mandatory task has at least one mapping
  /// option; diagnosis messages connect diagnosis tasks as in Fig. 3.
  /// Throws std::logic_error with a description on violation.
  void Validate() const;

 private:
  ApplicationGraph application_;
  ArchitectureGraph architecture_;
  std::vector<MappingOption> mappings_;
  std::vector<std::vector<std::size_t>> by_task_;
  std::vector<std::vector<std::size_t>> by_resource_;
};

/// One BIST program of an ECU (paper Fig. 3): test task b^T, data task b^D,
/// the pattern message c^D (b^D -> b^T) and fail-data message c^R
/// (b^T -> b^R).
struct BistProgram {
  TaskId test_task = kInvalidId;
  TaskId data_task = kInvalidId;
  MessageId pattern_message = kInvalidId;
  MessageId fail_message = kInvalidId;
  std::uint32_t profile_index = 0;
  /// CUT type of the ECU. Gateway pattern memory is shared only between
  /// ECUs of the same CUT type (identical silicon -> identical encoded
  /// patterns); heterogeneous fleets store one copy per (type, profile).
  std::uint32_t cut_type = 0;
};

struct BistAugmentation {
  TaskId collect_task = kInvalidId;  ///< b^R on the gateway.
  std::map<ResourceId, std::vector<BistProgram>> programs_by_ecu;
};

/// FNV-1a fingerprint of everything a Specification holds: resources (name,
/// kind, costs, bitrate), adjacency, tasks (all attributes), messages
/// (sender, receivers, payload, period), and mapping options, in id order.
/// Two specifications with equal hashes are structurally identical for every
/// consumer in this repo (decoder, objectives, session executor); the
/// generator tests use it to pin bit-identical rebuilds and to tell
/// different-seed topologies apart.
std::uint64_t ContentHash(const Specification& spec);

/// Augments `spec` with the diagnosis application of Fig. 3: a mandatory
/// collection task b^R mapped to the gateway and, per (ECU, profile), an
/// optional b^T (mappable only to that ECU), an optional b^D (mappable to
/// the ECU or the gateway), and the messages c^D, c^R. Profile attributes
/// (coverage, runtime, data size) are copied onto the tasks.
/// `cut_types` assigns each ECU's silicon type (missing entries: type 0);
/// it controls gateway pattern-memory sharing.
BistAugmentation AugmentWithBist(
    Specification& spec,
    const std::map<ResourceId, std::vector<bist::BistProfile>>& profiles,
    const std::map<ResourceId, std::uint32_t>& cut_types = {});

}  // namespace bistdse::model
