#include "model/spec_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bistdse::model {

namespace {

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error("spec line " + std::to_string(line) + ": " + msg);
}

ResourceKind KindFromString(const std::string& s, std::size_t line) {
  if (s == "ecu") return ResourceKind::Ecu;
  if (s == "gateway") return ResourceKind::Gateway;
  if (s == "bus") return ResourceKind::Bus;
  if (s == "sensor") return ResourceKind::Sensor;
  if (s == "actuator") return ResourceKind::Actuator;
  Fail(line, "unknown resource kind: " + s);
}

std::string KindToString(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::Ecu: return "ecu";
    case ResourceKind::Gateway: return "gateway";
    case ResourceKind::Bus: return "bus";
    case ResourceKind::Sensor: return "sensor";
    case ResourceKind::Actuator: return "actuator";
  }
  return "?";
}

}  // namespace

ParsedSpec ParseSpec(std::istream& in) {
  ParsedSpec result;
  std::map<std::string, ResourceId> resources;
  std::map<std::string, TaskId> tasks;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    std::istringstream ss(raw);
    std::string keyword;
    if (!(ss >> keyword)) continue;

    if (keyword == "resource") {
      std::string name, kind;
      double base_cost = 0, cost_per_byte = 0, bitrate = 500e3;
      if (!(ss >> name >> kind >> base_cost >> cost_per_byte))
        Fail(lineno, "resource needs: name kind base_cost cost_per_byte");
      ss >> bitrate;  // optional
      if (resources.count(name)) Fail(lineno, "duplicate resource " + name);
      resources[name] = result.spec.Architecture().AddResource(
          {name, KindFromString(kind, lineno), base_cost, cost_per_byte,
           bitrate});
    } else if (keyword == "link") {
      std::string a, b;
      if (!(ss >> a >> b)) Fail(lineno, "link needs two resources");
      if (!resources.count(a)) Fail(lineno, "unknown resource " + a);
      if (!resources.count(b)) Fail(lineno, "unknown resource " + b);
      try {
        result.spec.Architecture().AddLink(resources[a], resources[b]);
      } catch (const std::invalid_argument& e) {
        Fail(lineno, e.what());
      }
    } else if (keyword == "task") {
      std::string name;
      if (!(ss >> name)) Fail(lineno, "task needs a name");
      if (tasks.count(name)) Fail(lineno, "duplicate task " + name);
      Task t;
      t.name = name;
      t.kind = TaskKind::Functional;
      tasks[name] = result.spec.Application().AddTask(t);
    } else if (keyword == "message") {
      std::string name, sender, receivers;
      std::uint32_t payload = 0;
      double period = 0;
      if (!(ss >> name >> sender >> receivers >> payload >> period))
        Fail(lineno, "message needs: name sender receivers payload period");
      if (!tasks.count(sender)) Fail(lineno, "unknown task " + sender);
      Message m;
      m.name = name;
      m.sender = tasks[sender];
      m.payload_bytes = payload;
      m.period_ms = period;
      std::stringstream rs(receivers);
      std::string recv;
      while (std::getline(rs, recv, ',')) {
        if (!tasks.count(recv)) Fail(lineno, "unknown task " + recv);
        m.receivers.push_back(tasks[recv]);
      }
      try {
        result.spec.Application().AddMessage(m);
      } catch (const std::invalid_argument& e) {
        Fail(lineno, e.what());
      }
    } else if (keyword == "mapping") {
      std::string task, resource;
      if (!(ss >> task >> resource)) Fail(lineno, "mapping needs task resource");
      if (!tasks.count(task)) Fail(lineno, "unknown task " + task);
      if (!resources.count(resource))
        Fail(lineno, "unknown resource " + resource);
      try {
        result.spec.AddMapping(tasks[task], resources[resource]);
      } catch (const std::invalid_argument& e) {
        Fail(lineno, e.what());
      }
    } else if (keyword == "profile") {
      std::string ecu;
      bist::BistProfile p;
      if (!(ss >> ecu >> p.profile_number >> p.num_random_patterns >>
            p.fault_coverage_percent >> p.runtime_ms >> p.data_bytes)) {
        Fail(lineno,
             "profile needs: ecu number prps coverage runtime_ms data_bytes");
      }
      if (!resources.count(ecu)) Fail(lineno, "unknown resource " + ecu);
      result.profiles[resources[ecu]].push_back(p);
    } else if (keyword == "cuttype") {
      std::string ecu;
      std::uint32_t type = 0;
      if (!(ss >> ecu >> type)) Fail(lineno, "cuttype needs: ecu type");
      if (!resources.count(ecu)) Fail(lineno, "unknown resource " + ecu);
      result.cut_types[resources[ecu]] = type;
    } else {
      Fail(lineno, "unknown keyword: " + keyword);
    }
  }
  return result;
}

ParsedSpec ParseSpecString(const std::string& text) {
  std::istringstream ss(text);
  return ParseSpec(ss);
}

ParsedSpec ParseSpecFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return ParseSpec(f);
}

void WriteSpec(
    const Specification& spec,
    const std::map<ResourceId, std::vector<bist::BistProfile>>& profiles,
    const std::map<ResourceId, std::uint32_t>& cut_types, std::ostream& out) {
  const auto& arch = spec.Architecture();
  const auto& app = spec.Application();

  out << "# bistdse specification\n";
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    const Resource& res = arch.GetResource(r);
    out << "resource " << res.name << ' ' << KindToString(res.kind) << ' '
        << res.base_cost << ' ' << res.cost_per_byte;
    if (res.kind == ResourceKind::Bus) out << ' ' << res.bus_bitrate_bps;
    out << '\n';
  }
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    for (ResourceId n : arch.Neighbors(r)) {
      if (n > r) {
        out << "link " << arch.GetResource(r).name << ' '
            << arch.GetResource(n).name << '\n';
      }
    }
  }
  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    if (app.GetTask(t).kind != TaskKind::Functional) continue;
    out << "task " << app.GetTask(t).name << '\n';
  }
  for (MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& m = app.GetMessage(c);
    if (m.diagnostic) continue;
    out << "message " << m.name << ' ' << app.GetTask(m.sender).name << ' ';
    for (std::size_t i = 0; i < m.receivers.size(); ++i) {
      if (i) out << ',';
      out << app.GetTask(m.receivers[i]).name;
    }
    out << ' ' << m.payload_bytes << ' ' << m.period_ms << '\n';
  }
  for (const MappingOption& m : spec.Mappings()) {
    if (app.GetTask(m.task).kind != TaskKind::Functional) continue;
    out << "mapping " << app.GetTask(m.task).name << ' '
        << arch.GetResource(m.resource).name << '\n';
  }
  for (const auto& [ecu, profile_set] : profiles) {
    for (const auto& p : profile_set) {
      out << "profile " << arch.GetResource(ecu).name << ' '
          << p.profile_number << ' ' << p.num_random_patterns << ' '
          << p.fault_coverage_percent << ' ' << p.runtime_ms << ' '
          << p.data_bytes << '\n';
    }
  }
  for (const auto& [ecu, type] : cut_types) {
    out << "cuttype " << arch.GetResource(ecu).name << ' ' << type << '\n';
  }
}

void WriteImplementation(const Specification& spec, const Implementation& impl,
                         std::ostream& out) {
  out << "# bistdse implementation (binding; routing is derived)\n";
  for (std::size_t m : impl.binding) {
    const MappingOption& option = spec.Mappings()[m];
    out << "bind " << spec.Application().GetTask(option.task).name << ' '
        << spec.Architecture().GetResource(option.resource).name << '\n';
  }
}

Implementation ReadImplementation(const Specification& spec,
                                  std::istream& in) {
  std::map<std::string, TaskId> tasks;
  for (TaskId t = 0; t < spec.Application().TaskCount(); ++t) {
    tasks[spec.Application().GetTask(t).name] = t;
  }
  std::map<std::string, ResourceId> resources;
  for (ResourceId r = 0; r < spec.Architecture().ResourceCount(); ++r) {
    resources[spec.Architecture().GetResource(r).name] = r;
  }

  Implementation impl;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    std::istringstream ss(line);
    std::string keyword, task, resource;
    if (!(ss >> keyword)) continue;
    if (keyword != "bind" || !(ss >> task >> resource)) {
      Fail(lineno, "expected: bind <task> <resource>");
    }
    if (!tasks.count(task)) Fail(lineno, "unknown task " + task);
    if (!resources.count(resource)) Fail(lineno, "unknown resource " + resource);
    bool found = false;
    for (std::size_t m : spec.MappingsOfTask(tasks[task])) {
      if (spec.Mappings()[m].resource == resources[resource]) {
        impl.binding.push_back(m);
        found = true;
        break;
      }
    }
    if (!found) {
      Fail(lineno, "no mapping option " + task + " -> " + resource);
    }
  }
  if (!CompleteRoutingAndAllocation(spec, impl)) {
    throw std::runtime_error("implementation is unroutable on this spec");
  }
  return impl;
}

}  // namespace bistdse::model
