// Core identifiers and enums of the E/E-architecture system model
// (paper §III-A, specification g_S(g_T, g_A, M) after [17]).
#pragma once

#include <cstdint>

namespace bistdse::model {

using TaskId = std::uint32_t;
using MessageId = std::uint32_t;
using ResourceId = std::uint32_t;

inline constexpr std::uint32_t kInvalidId = static_cast<std::uint32_t>(-1);

/// Task kinds. Functional tasks and the fail-data collection task b^R are
/// mandatory; BIST test tasks b^T and BIST data tasks b^D are optional
/// (diagnosis tasks D of the paper).
enum class TaskKind : std::uint8_t {
  Functional,   ///< f in F
  BistTest,     ///< b^T in B subset D
  BistData,     ///< b^D in D
  BistCollect,  ///< b^R in F (mandatory, gateway)
};

constexpr bool IsDiagnosis(TaskKind kind) {
  return kind == TaskKind::BistTest || kind == TaskKind::BistData;
}

enum class ResourceKind : std::uint8_t {
  Ecu,
  Gateway,
  Bus,
  Sensor,
  Actuator,
};

constexpr bool IsComputational(ResourceKind kind) {
  return kind == ResourceKind::Ecu || kind == ResourceKind::Gateway ||
         kind == ResourceKind::Sensor || kind == ResourceKind::Actuator;
}

}  // namespace bistdse::model
