#include "model/application.hpp"

#include <stdexcept>

namespace bistdse::model {

TaskId ApplicationGraph::AddTask(Task task) {
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(task));
  outgoing_.emplace_back();
  incoming_.emplace_back();
  return id;
}

MessageId ApplicationGraph::AddMessage(Message message) {
  if (message.sender >= tasks_.size())
    throw std::invalid_argument("message sender out of range");
  if (message.receivers.empty())
    throw std::invalid_argument("message needs at least one receiver");
  for (TaskId r : message.receivers) {
    if (r >= tasks_.size())
      throw std::invalid_argument("message receiver out of range");
    if (r == message.sender)
      throw std::invalid_argument("message sender cannot receive itself");
  }
  const auto id = static_cast<MessageId>(messages_.size());
  outgoing_[message.sender].push_back(id);
  for (TaskId r : message.receivers) incoming_[r].push_back(id);
  messages_.push_back(std::move(message));
  return id;
}

std::vector<TaskId> ApplicationGraph::TasksOfKind(TaskKind kind) const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (tasks_[id].kind == kind) out.push_back(id);
  }
  return out;
}

}  // namespace bistdse::model
