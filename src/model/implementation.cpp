#include "model/implementation.hpp"

#include <algorithm>
#include <set>

namespace bistdse::model {

std::optional<ResourceId> Implementation::BoundResource(
    const Specification& spec, TaskId task) const {
  for (std::size_t m : binding) {
    if (spec.Mappings()[m].task == task) return spec.Mappings()[m].resource;
  }
  return std::nullopt;
}

bool CompleteRoutingAndAllocation(const Specification& spec,
                                  Implementation& impl) {
  const ApplicationGraph& app = spec.Application();
  const ArchitectureGraph& arch = spec.Architecture();

  impl.routing.clear();
  for (MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    const auto src = impl.BoundResource(spec, msg.sender);
    if (!src) continue;  // optional sender unbound: message inactive
    // Route to the (first bound) receiver; all receivers must lie on the
    // path for multicast messages.
    std::vector<ResourceId> path{*src};
    for (TaskId recv : msg.receivers) {
      const auto dst = impl.BoundResource(spec, recv);
      if (!dst) {
        if (app.IsMandatory(recv)) return false;  // mandatory receiver unbound
        continue;
      }
      if (std::find(path.begin(), path.end(), *dst) != path.end()) continue;
      const auto extension = arch.ShortestPath(path.back(), *dst);
      if (!extension) return false;
      path.insert(path.end(), extension->begin() + 1, extension->end());
    }
    impl.routing[c] = std::move(path);
  }

  impl.allocation.assign(arch.ResourceCount(), false);
  for (std::size_t m : impl.binding) {
    impl.allocation[spec.Mappings()[m].resource] = true;
  }
  for (const auto& [c, path] : impl.routing) {
    for (ResourceId r : path) impl.allocation[r] = true;
  }
  return true;
}

std::vector<std::string> ValidateImplementation(const Specification& spec,
                                                const Implementation& impl) {
  std::vector<std::string> violations;
  const ApplicationGraph& app = spec.Application();
  const ArchitectureGraph& arch = spec.Architecture();
  const auto mappings = spec.Mappings();

  // Binding multiplicity (functional: exactly once; Eq. 2a: at most once).
  std::vector<std::uint32_t> bound_count(app.TaskCount(), 0);
  for (std::size_t m : impl.binding) {
    if (m >= mappings.size()) {
      violations.push_back("binding references unknown mapping option");
      continue;
    }
    ++bound_count[mappings[m].task];
  }
  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    const Task& task = app.GetTask(t);
    if (app.IsMandatory(t) && bound_count[t] != 1) {
      violations.push_back("mandatory task '" + task.name +
                           "' bound " + std::to_string(bound_count[t]) +
                           " times (must be 1)");
    }
    if (!app.IsMandatory(t) && bound_count[t] > 1) {
      violations.push_back("diagnosis task '" + task.name +
                           "' bound more than once (Eq. 2a)");
    }
  }

  // Routing constraints (Eqs. 2b-2g).
  for (MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    const auto src = impl.BoundResource(spec, msg.sender);
    const auto route_it = impl.routing.find(c);

    if (!src) {
      if (route_it != impl.routing.end()) {
        violations.push_back("message '" + msg.name +
                             "' routed although its sender is unbound");
      }
      continue;
    }
    if (route_it == impl.routing.end()) {
      violations.push_back("message '" + msg.name + "' of bound sender not routed");
      continue;
    }
    const auto& path = route_it->second;
    if (path.empty() || path.front() != *src) {
      violations.push_back("route of '" + msg.name +
                           "' does not start at the sender (Eq. 2b)");
      continue;
    }
    // Eqs. 2d/2f: simple path, each resource visited at most once.
    std::set<ResourceId> seen;
    bool simple = true;
    for (ResourceId r : path) simple &= seen.insert(r).second;
    if (!simple) {
      violations.push_back("route of '" + msg.name + "' has a cycle (Eq. 2d)");
    }
    // Eq. 2g: adjacent hops.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!arch.Linked(path[i], path[i + 1])) {
        violations.push_back("route of '" + msg.name +
                             "' jumps between unlinked resources (Eq. 2g)");
        break;
      }
    }
    // Eq. 2c: every bound receiver's resource lies on the route.
    for (TaskId recv : msg.receivers) {
      const auto dst = impl.BoundResource(spec, recv);
      if (!dst) continue;
      if (std::find(path.begin(), path.end(), *dst) == path.end()) {
        violations.push_back("route of '" + msg.name +
                             "' misses receiver resource (Eq. 2c)");
      }
    }
  }

  // Eq. 2h: no diagnosis-only resources.
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    bool has_diag = false, has_normal = false;
    for (std::size_t m : impl.binding) {
      if (mappings[m].resource != r) continue;
      if (IsDiagnosis(app.GetTask(mappings[m].task).kind)) {
        has_diag = true;
      } else {
        has_normal = true;
      }
    }
    if (has_diag && !has_normal) {
      violations.push_back("resource '" + arch.GetResource(r).name +
                           "' hosts only diagnosis tasks (Eq. 2h)");
    }
  }

  // Eq. 3a: at most one BIST test task per ECU; Eq. 3b: b^D iff b^T.
  std::map<ResourceId, std::uint32_t> tests_per_ecu;
  for (std::size_t m : impl.binding) {
    const Task& task = app.GetTask(mappings[m].task);
    if (task.kind == TaskKind::BistTest) ++tests_per_ecu[task.target_ecu];
  }
  for (const auto& [ecu, count] : tests_per_ecu) {
    if (count > 1) {
      violations.push_back("ECU '" + arch.GetResource(ecu).name + "' has " +
                           std::to_string(count) + " BIST tasks (Eq. 3a)");
    }
  }
  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    const Task& task = app.GetTask(t);
    if (task.kind != TaskKind::BistTest) continue;
    // Find the partner data task via the incoming pattern message.
    for (MessageId c : app.Incoming(t)) {
      const Message& msg = app.GetMessage(c);
      const Task& sender = app.GetTask(msg.sender);
      if (sender.kind != TaskKind::BistData) continue;
      if ((bound_count[t] > 0) != (bound_count[msg.sender] > 0)) {
        violations.push_back("tasks '" + task.name + "' and '" + sender.name +
                             "' violate b^T <=> b^D coupling (Eq. 3b)");
      }
    }
  }

  // Allocation consistency.
  if (impl.allocation.size() != arch.ResourceCount()) {
    violations.push_back("allocation vector size mismatch");
  } else {
    for (std::size_t m : impl.binding) {
      if (!impl.allocation[mappings[m].resource]) {
        violations.push_back("bound resource '" +
                             arch.GetResource(mappings[m].resource).name +
                             "' not allocated");
      }
    }
    for (const auto& [c, path] : impl.routing) {
      for (ResourceId r : path) {
        if (!impl.allocation[r]) {
          violations.push_back(
              "routed resource '" + arch.GetResource(r).name +
              "' not allocated (message " +
              app.GetMessage(c).name + ")");
        }
      }
    }
  }

  return violations;
}

}  // namespace bistdse::model
