// Architecture graph g_A = (R, E_A): ECUs, sensors, actuators, buses and the
// central gateway, with bidirectional communication links.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace bistdse::model {

struct Resource {
  std::string name;
  ResourceKind kind = ResourceKind::Ecu;
  double base_cost = 0.0;              ///< Monetary cost when allocated.
  double cost_per_byte = 0.0;          ///< Pattern-memory cost (ECU/gateway).
  double bus_bitrate_bps = 500e3;      ///< Meaningful for buses.
};

class ArchitectureGraph {
 public:
  ResourceId AddResource(Resource resource);

  /// Adds a bidirectional link (e.g. ECU <-> bus, bus <-> gateway).
  void AddLink(ResourceId a, ResourceId b);

  std::size_t ResourceCount() const { return resources_.size(); }
  const Resource& GetResource(ResourceId id) const { return resources_[id]; }
  std::span<const ResourceId> Neighbors(ResourceId id) const {
    return adjacency_[id];
  }
  bool Linked(ResourceId a, ResourceId b) const;

  /// Shortest path a -> b (inclusive of both endpoints) by BFS; nullopt when
  /// disconnected. Deterministic (lowest-id tie-break).
  std::optional<std::vector<ResourceId>> ShortestPath(ResourceId a,
                                                      ResourceId b) const;

  std::vector<ResourceId> ResourcesOfKind(ResourceKind kind) const;

  /// The unique gateway resource; throws std::logic_error if there is none
  /// or more than one.
  ResourceId Gateway() const;

 private:
  std::vector<Resource> resources_;
  std::vector<std::vector<ResourceId>> adjacency_;
};

}  // namespace bistdse::model
