#include "model/specification.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::model {

std::size_t Specification::AddMapping(TaskId task, ResourceId resource) {
  if (task >= application_.TaskCount())
    throw std::invalid_argument("mapping task out of range");
  if (resource >= architecture_.ResourceCount())
    throw std::invalid_argument("mapping resource out of range");
  if (!IsComputational(architecture_.GetResource(resource).kind))
    throw std::invalid_argument("tasks cannot be mapped onto buses");
  for (const MappingOption& m : mappings_) {
    if (m.task == task && m.resource == resource)
      throw std::invalid_argument("duplicate mapping option");
  }
  const std::size_t index = mappings_.size();
  mappings_.push_back({task, resource});
  by_task_.resize(application_.TaskCount());
  by_resource_.resize(architecture_.ResourceCount());
  by_task_[task].push_back(index);
  by_resource_[resource].push_back(index);
  return index;
}

std::span<const std::size_t> Specification::MappingsOfTask(TaskId task) const {
  static const std::vector<std::size_t> kEmpty;
  if (task >= by_task_.size()) return kEmpty;
  return by_task_[task];
}

std::span<const std::size_t> Specification::MappingsOnResource(
    ResourceId resource) const {
  static const std::vector<std::size_t> kEmpty;
  if (resource >= by_resource_.size()) return kEmpty;
  return by_resource_[resource];
}

void Specification::Validate() const {
  for (TaskId t = 0; t < application_.TaskCount(); ++t) {
    if (application_.IsMandatory(t) && MappingsOfTask(t).empty()) {
      throw std::logic_error("mandatory task '" +
                             application_.GetTask(t).name +
                             "' has no mapping option");
    }
  }
  for (MessageId c = 0; c < application_.MessageCount(); ++c) {
    const Message& msg = application_.GetMessage(c);
    if (!msg.diagnostic) continue;
    const Task& sender = application_.GetTask(msg.sender);
    bool receiver_ok = true;
    for (TaskId r : msg.receivers) {
      const TaskKind k = application_.GetTask(r).kind;
      receiver_ok &= k == TaskKind::BistTest || k == TaskKind::BistCollect;
    }
    if (!(IsDiagnosis(sender.kind)) || !receiver_ok) {
      throw std::logic_error("diagnostic message '" + msg.name +
                             "' must connect diagnosis tasks per Fig. 3");
    }
  }
}

std::uint64_t ContentHash(const Specification& spec) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto bytes = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const auto u64 = [&bytes](std::uint64_t v) { bytes(&v, sizeof v); };
  const auto real = [&bytes](double v) { bytes(&v, sizeof v); };
  const auto str = [&bytes, &u64](const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  };

  const ArchitectureGraph& arch = spec.Architecture();
  u64(arch.ResourceCount());
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    const Resource& res = arch.GetResource(r);
    str(res.name);
    u64(static_cast<std::uint64_t>(res.kind));
    real(res.base_cost);
    real(res.cost_per_byte);
    real(res.bus_bitrate_bps);
    const auto neighbors = arch.Neighbors(r);
    u64(neighbors.size());
    for (ResourceId n : neighbors) u64(n);
  }

  const ApplicationGraph& app = spec.Application();
  u64(app.TaskCount());
  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    const Task& task = app.GetTask(t);
    str(task.name);
    u64(static_cast<std::uint64_t>(task.kind));
    u64(task.target_ecu);
    u64(task.profile_index);
    real(task.fault_coverage_percent);
    real(task.transition_coverage_percent);
    real(task.runtime_ms);
    u64(task.data_bytes);
  }
  u64(app.MessageCount());
  for (MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    str(msg.name);
    u64(msg.sender);
    u64(msg.receivers.size());
    for (TaskId r : msg.receivers) u64(r);
    u64(msg.payload_bytes);
    real(msg.period_ms);
    u64(msg.diagnostic ? 1 : 0);
  }

  u64(spec.Mappings().size());
  for (const MappingOption& m : spec.Mappings()) {
    u64(m.task);
    u64(m.resource);
  }
  return h;
}

BistAugmentation AugmentWithBist(
    Specification& spec,
    const std::map<ResourceId, std::vector<bist::BistProfile>>& profiles,
    const std::map<ResourceId, std::uint32_t>& cut_types) {
  ApplicationGraph& app = spec.Application();
  ArchitectureGraph& arch = spec.Architecture();
  const ResourceId gateway = arch.Gateway();

  BistAugmentation augmentation;
  Task collect;
  collect.name = "b_R";
  collect.kind = TaskKind::BistCollect;
  augmentation.collect_task = app.AddTask(collect);
  spec.AddMapping(augmentation.collect_task, gateway);

  for (const auto& [ecu, profile_set] : profiles) {
    if (ecu >= arch.ResourceCount() ||
        arch.GetResource(ecu).kind != ResourceKind::Ecu) {
      throw std::invalid_argument("BIST profiles attached to a non-ECU");
    }
    auto& programs = augmentation.programs_by_ecu[ecu];
    const std::string ecu_name = arch.GetResource(ecu).name;

    for (std::uint32_t p = 0; p < profile_set.size(); ++p) {
      const bist::BistProfile& profile = profile_set[p];
      BistProgram program;
      program.profile_index = p;
      if (auto it = cut_types.find(ecu); it != cut_types.end()) {
        program.cut_type = it->second;
      }

      Task test;
      test.name = "b_T[" + ecu_name + "," + std::to_string(p + 1) + "]";
      test.kind = TaskKind::BistTest;
      test.target_ecu = ecu;
      test.profile_index = p;
      test.fault_coverage_percent = profile.fault_coverage_percent;
      test.transition_coverage_percent = profile.transition_coverage_percent;
      test.runtime_ms = profile.runtime_ms;
      program.test_task = app.AddTask(test);
      spec.AddMapping(program.test_task, ecu);  // BIST runs on its own CUT

      Task data;
      data.name = "b_D[" + ecu_name + "," + std::to_string(p + 1) + "]";
      data.kind = TaskKind::BistData;
      data.target_ecu = ecu;
      data.profile_index = p;
      data.data_bytes = profile.data_bytes;
      program.data_task = app.AddTask(data);
      spec.AddMapping(program.data_task, ecu);      // local pattern memory
      spec.AddMapping(program.data_task, gateway);  // central pattern memory

      Message pattern_msg;
      pattern_msg.name = "c_D[" + ecu_name + "," + std::to_string(p + 1) + "]";
      pattern_msg.sender = program.data_task;
      pattern_msg.receivers = {program.test_task};
      pattern_msg.payload_bytes = 8;  // mirrored frames: up to full payload
      pattern_msg.period_ms = 10.0;
      pattern_msg.diagnostic = true;
      program.pattern_message = app.AddMessage(pattern_msg);

      Message fail_msg;
      fail_msg.name = "c_R[" + ecu_name + "," + std::to_string(p + 1) + "]";
      fail_msg.sender = program.test_task;
      fail_msg.receivers = {augmentation.collect_task};
      fail_msg.payload_bytes = 8;
      fail_msg.period_ms = 10.0;
      fail_msg.diagnostic = true;
      program.fail_message = app.AddMessage(fail_msg);

      programs.push_back(program);
    }
  }
  return augmentation;
}

}  // namespace bistdse::model
