#include "model/architecture.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace bistdse::model {

ResourceId ArchitectureGraph::AddResource(Resource resource) {
  const auto id = static_cast<ResourceId>(resources_.size());
  resources_.push_back(std::move(resource));
  adjacency_.emplace_back();
  return id;
}

void ArchitectureGraph::AddLink(ResourceId a, ResourceId b) {
  if (a >= resources_.size() || b >= resources_.size())
    throw std::invalid_argument("link endpoint out of range");
  if (a == b) throw std::invalid_argument("self-link");
  if (Linked(a, b)) return;
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  std::sort(adjacency_[a].begin(), adjacency_[a].end());
  std::sort(adjacency_[b].begin(), adjacency_[b].end());
}

bool ArchitectureGraph::Linked(ResourceId a, ResourceId b) const {
  const auto& adj = adjacency_[a];
  return std::find(adj.begin(), adj.end(), b) != adj.end();
}

std::optional<std::vector<ResourceId>> ArchitectureGraph::ShortestPath(
    ResourceId a, ResourceId b) const {
  if (a >= resources_.size() || b >= resources_.size()) return std::nullopt;
  if (a == b) return std::vector<ResourceId>{a};
  std::vector<ResourceId> pred(resources_.size(), kInvalidId);
  std::deque<ResourceId> queue{a};
  pred[a] = a;
  while (!queue.empty()) {
    const ResourceId cur = queue.front();
    queue.pop_front();
    for (ResourceId next : adjacency_[cur]) {  // sorted: lowest-id tie-break
      if (pred[next] != kInvalidId) continue;
      pred[next] = cur;
      if (next == b) {
        std::vector<ResourceId> path{b};
        for (ResourceId p = b; p != a;) {
          p = pred[p];
          path.push_back(p);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return std::nullopt;
}

std::vector<ResourceId> ArchitectureGraph::ResourcesOfKind(
    ResourceKind kind) const {
  std::vector<ResourceId> out;
  for (ResourceId id = 0; id < resources_.size(); ++id) {
    if (resources_[id].kind == kind) out.push_back(id);
  }
  return out;
}

ResourceId ArchitectureGraph::Gateway() const {
  const auto gws = ResourcesOfKind(ResourceKind::Gateway);
  if (gws.size() != 1)
    throw std::logic_error("architecture must have exactly one gateway");
  return gws[0];
}

}  // namespace bistdse::model
