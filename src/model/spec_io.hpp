// Plain-text serialization of specifications — the interchange format of
// the CLI (`bistdse_cli explore --spec my_subnet.spec`).
//
// Line-oriented, '#' comments, whitespace-separated:
//
//   resource <name> <ecu|gateway|bus|sensor|actuator> <base_cost>
//            <cost_per_byte> [bitrate_bps]
//   link     <resource> <resource>
//   task     <name>
//   message  <name> <sender_task> <receiver_task>[,<receiver>...]
//            <payload_bytes> <period_ms>
//   mapping  <task> <resource>
//   profile  <ecu> <number> <prps> <coverage_pct> <runtime_ms> <data_bytes>
//   cuttype  <ecu> <type>
//
// Profiles and cut types feed AugmentWithBist after parsing.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "bist/profile.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::model {

struct ParsedSpec {
  Specification spec;
  std::map<ResourceId, std::vector<bist::BistProfile>> profiles;
  std::map<ResourceId, std::uint32_t> cut_types;

  /// Runs AugmentWithBist over the parsed profiles and validates.
  BistAugmentation Augment() {
    auto augmentation = AugmentWithBist(spec, profiles, cut_types);
    spec.Validate();
    return augmentation;
  }
};

/// Parses the text format. Throws std::runtime_error with a line number on
/// malformed input, unknown names, or forward references.
ParsedSpec ParseSpec(std::istream& in);
ParsedSpec ParseSpecString(const std::string& text);
ParsedSpec ParseSpecFile(const std::string& path);

/// Writes `spec` (without BIST augmentation tasks — those are regenerated
/// from the profile lines) plus the given profiles/cut types.
void WriteSpec(const Specification& spec,
               const std::map<ResourceId, std::vector<bist::BistProfile>>& profiles,
               const std::map<ResourceId, std::uint32_t>& cut_types,
               std::ostream& out);

/// Writes an implementation as name-based `bind <task> <resource>` lines
/// (routing is derived on load). Robust against reordering of mapping
/// options.
void WriteImplementation(const Specification& spec, const Implementation& impl,
                         std::ostream& out);

/// Parses an implementation against `spec`; routing and allocation are
/// completed deterministically. Throws std::runtime_error on unknown names
/// or unroutable bindings.
Implementation ReadImplementation(const Specification& spec, std::istream& in);

}  // namespace bistdse::model
