// Bipartite application graph g_T = (T u C, E_T): tasks exchange data via
// explicit message vertices.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/types.hpp"

namespace bistdse::model {

struct Task {
  std::string name;
  TaskKind kind = TaskKind::Functional;

  // BIST-specific attributes (meaningful for BistTest/BistData):
  ResourceId target_ecu = kInvalidId;  ///< The ECU whose CUT this task tests.
  std::uint32_t profile_index = 0;     ///< Index into the ECU's profile set.
  double fault_coverage_percent = 0.0; ///< c(b) for BistTest.
  double transition_coverage_percent = 0.0;  ///< Optional TDF metric.
  double runtime_ms = 0.0;             ///< l(b) for BistTest.
  std::uint64_t data_bytes = 0;        ///< s(b) for BistData (pattern memory).
};

struct Message {
  std::string name;
  TaskId sender = kInvalidId;
  std::vector<TaskId> receivers;
  std::uint32_t payload_bytes = 8;  ///< Per-frame payload on a field bus.
  double period_ms = 10.0;
  bool diagnostic = false;  ///< c^D / c^R messages of the BIST augmentation.
};

class ApplicationGraph {
 public:
  TaskId AddTask(Task task);
  MessageId AddMessage(Message message);

  std::size_t TaskCount() const { return tasks_.size(); }
  std::size_t MessageCount() const { return messages_.size(); }
  const Task& GetTask(TaskId id) const { return tasks_[id]; }
  Task& GetTask(TaskId id) { return tasks_[id]; }
  const Message& GetMessage(MessageId id) const { return messages_[id]; }

  /// Messages sent by / received by a task.
  std::span<const MessageId> Outgoing(TaskId id) const { return outgoing_[id]; }
  std::span<const MessageId> Incoming(TaskId id) const { return incoming_[id]; }

  /// Mandatory = functional or collection task (must be bound).
  bool IsMandatory(TaskId id) const { return !IsDiagnosis(tasks_[id].kind); }

  std::vector<TaskId> TasksOfKind(TaskKind kind) const;

 private:
  std::vector<Task> tasks_;
  std::vector<Message> messages_;
  std::vector<std::vector<MessageId>> outgoing_;
  std::vector<std::vector<MessageId>> incoming_;
};

}  // namespace bistdse::model
