// Implementation x = (A, B, W): allocation, binding, routing — one point of
// the design space — plus the feasibility validator implementing the
// semantics of the paper's ILP constraints (Eqs. 2a-2h, 3a, 3b) and the
// functional constraints of [17].
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "model/specification.hpp"

namespace bistdse::model {

struct Implementation {
  /// A: allocation flag per resource.
  std::vector<bool> allocation;
  /// B: selected mapping indices (into Specification::Mappings()).
  std::vector<std::size_t> binding;
  /// W: per routed message, the ordered resource path from the sender's
  /// resource to the receiver's resource (inclusive). Unbound messages are
  /// absent.
  std::map<MessageId, std::vector<ResourceId>> routing;

  /// Resource a task is bound to, or nullopt if unbound.
  std::optional<ResourceId> BoundResource(const Specification& spec,
                                          TaskId task) const;
  bool IsBound(const Specification& spec, TaskId task) const {
    return BoundResource(spec, task).has_value();
  }
};

/// Routes every message whose sender and receivers are bound, using
/// deterministic shortest paths over allocated... over the architecture.
/// Returns false if some required route does not exist (disconnected
/// architecture) — the implementation is then infeasible. Also fills the
/// allocation from bound and routed resources.
bool CompleteRoutingAndAllocation(const Specification& spec,
                                  Implementation& impl);

/// Checks all feasibility constraints; returns human-readable violations
/// (empty vector == feasible implementation):
///  * every mandatory task bound exactly once; diagnosis tasks at most once
///    (Eq. 2a);
///  * routes start at the sender's resource (Eq. 2b) and reach every bound
///    receiver (Eq. 2c);
///  * routes are simple, cycle-free, adjacency-following paths (Eqs. 2d-2g);
///  * no resource hosts only diagnosis tasks (Eq. 2h);
///  * at most one BIST test task per ECU (Eq. 3a);
///  * b^D bound if and only if its b^T is bound (Eq. 3b);
///  * allocation covers every bound or routed resource.
std::vector<std::string> ValidateImplementation(const Specification& spec,
                                                const Implementation& impl);

}  // namespace bistdse::model
