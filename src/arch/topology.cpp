#include "arch/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace bistdse::arch {

using model::Message;
using model::ResourceId;
using model::ResourceKind;
using model::Task;
using model::TaskId;
using model::TaskKind;

namespace {

/// Contiguous balanced split: the first num_ecus % buses buses host one
/// extra ECU. A ceil-everywhere split would starve trailing buses (23 ECUs
/// on 7 buses -> the last bus hosts none); exact divisions — both canonical
/// case studies — are identical under either scheme.
int BusOfEcu(const TopologySpec& spec, std::size_t e) {
  const std::size_t buses = spec.buses.size();
  const std::size_t small = spec.num_ecus / buses;
  const std::size_t rem = spec.num_ecus % buses;
  const std::size_t on_big = (small + 1) * rem;
  const std::size_t bus =
      e < on_big ? e / (small + 1)
                 : rem + (e - on_big) / std::max<std::size_t>(small, 1);
  return static_cast<int>(std::min(bus, buses - 1));
}

[[noreturn]] void Reject(const std::string& field, const std::string& why) {
  throw std::invalid_argument("TopologySpec." + field + ": " + why);
}

/// Adds sensor->processing-chain->actuator control applications (one tree
/// per shape: tasks - 1 messages) with 2-3 ECU mapping options per
/// processing task (occasionally one cross-bus option, so some messages
/// route through the gateway). The draw order of `rng` is load-bearing: the
/// canonical case-study specs replay the exact pre-refactor stream.
void BuildControlApps(Topology& topo, const std::vector<ChainShape>& shapes,
                      const std::vector<std::vector<ResourceId>>& ecus_on_bus,
                      util::SplitMix64& rng) {
  model::ApplicationGraph& app = topo.spec.Application();
  const std::size_t num_buses = ecus_on_bus.size();
  const std::uint32_t payloads[4] = {1, 2, 4, 8};
  const double periods[5] = {5, 10, 20, 50, 100};
  auto message_params = [&](Message& m) {
    m.payload_bytes = payloads[rng.Below(4)];
    m.period_ms = periods[rng.Below(5)];
  };

  for (const ChainShape& shape : shapes) {
    std::vector<TaskId> sense_tasks;
    for (int s : shape.sensors) {
      Task t;
      t.name = shape.name + ".sense" + std::to_string(s);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      topo.spec.AddMapping(id, topo.sensors[s]);
      sense_tasks.push_back(id);
      ++topo.functional_task_count;
    }

    const std::vector<ResourceId>& home = ecus_on_bus[shape.home_bus];
    std::vector<TaskId> proc_tasks;
    for (int p = 0; p < shape.processing; ++p) {
      Task t;
      t.name = shape.name + ".proc" + std::to_string(p);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      const std::size_t o1 = rng.Below(home.size());
      std::size_t o2 = rng.Below(home.size());
      while (o2 == o1) o2 = rng.Below(home.size());
      topo.spec.AddMapping(id, home[o1]);
      topo.spec.AddMapping(id, home[o2]);
      if (num_buses > 1 && rng.Chance(0.3)) {
        const std::size_t other_bus =
            (static_cast<std::size_t>(shape.home_bus) + 1 +
             rng.Below(num_buses - 1)) %
            num_buses;
        const std::vector<ResourceId>& other = ecus_on_bus[other_bus];
        topo.spec.AddMapping(id, other[rng.Below(other.size())]);
      }
      proc_tasks.push_back(id);
      ++topo.functional_task_count;
    }

    std::vector<TaskId> act_tasks;
    for (int a : shape.actuators) {
      Task t;
      t.name = shape.name + ".act" + std::to_string(a);
      t.kind = TaskKind::Functional;
      const TaskId id = app.AddTask(t);
      topo.spec.AddMapping(id, topo.actuators[a]);
      act_tasks.push_back(id);
      ++topo.functional_task_count;
    }

    // Tree edges: sensors -> proc[0], proc chain, proc[last] -> actuators.
    for (TaskId s : sense_tasks) {
      Message m;
      m.name = app.GetTask(s).name + ">";
      m.sender = s;
      m.receivers = {proc_tasks.front()};
      message_params(m);
      app.AddMessage(m);
      ++topo.functional_message_count;
    }
    for (std::size_t p = 0; p + 1 < proc_tasks.size(); ++p) {
      Message m;
      m.name = app.GetTask(proc_tasks[p]).name + ">";
      m.sender = proc_tasks[p];
      m.receivers = {proc_tasks[p + 1]};
      message_params(m);
      app.AddMessage(m);
      ++topo.functional_message_count;
    }
    for (TaskId a : act_tasks) {
      Message m;
      m.name =
          app.GetTask(proc_tasks.back()).name + ">" + app.GetTask(a).name;
      m.sender = proc_tasks.back();
      m.receivers = {a};
      message_params(m);
      app.AddMessage(m);
      ++topo.functional_message_count;
    }
  }
}

/// Derived application shapes for specs that leave `chains` empty: one chain
/// per bus by default, sensors/actuators dealt round-robin (every chain gets
/// at least one of each), processing lengths drawn from the structure
/// stream. Deterministic in (spec, seed).
std::vector<ChainShape> DeriveChains(const TopologySpec& spec,
                                     util::SplitMix64& structure_rng) {
  const std::size_t count =
      spec.derived_chains > 0 ? spec.derived_chains : spec.buses.size();
  std::vector<ChainShape> shapes(count);
  for (std::size_t i = 0; i < count; ++i) {
    ChainShape& shape = shapes[i];
    shape.name = "app" + std::to_string(i);
    shape.home_bus = static_cast<int>(i % spec.buses.size());
    const std::size_t span = spec.chain_processing_max -
                             spec.chain_processing_min + 1;
    shape.processing = static_cast<int>(spec.chain_processing_min +
                                        structure_rng.Below(span));
    for (std::size_t s = i; s < spec.num_sensors; s += count) {
      shape.sensors.push_back(static_cast<int>(s));
    }
    if (shape.sensors.empty()) {
      shape.sensors.push_back(static_cast<int>(i % spec.num_sensors));
    }
    for (std::size_t a = i; a < spec.num_actuators; a += count) {
      shape.actuators.push_back(static_cast<int>(a));
    }
    if (shape.actuators.empty()) {
      shape.actuators.push_back(static_cast<int>(i % spec.num_actuators));
    }
  }
  return shapes;
}

/// Peripheral bus assignment for specs that leave it implicit: each sensor/
/// actuator lands on the home bus of the first chain referencing it (so the
/// short sensing hop stays bus-local), unreferenced ones round-robin.
std::vector<int> DerivePeripheralBuses(const TopologySpec& spec,
                                       const std::vector<ChainShape>& chains,
                                       std::size_t count, bool sensors) {
  std::vector<int> bus(count, -1);
  for (const ChainShape& shape : chains) {
    for (int p : sensors ? shape.sensors : shape.actuators) {
      if (bus[p] < 0) bus[p] = shape.home_bus;
    }
  }
  for (std::size_t p = 0; p < count; ++p) {
    if (bus[p] < 0) bus[p] = static_cast<int>(p % spec.buses.size());
  }
  return bus;
}

void ValidateChains(const TopologySpec& spec,
                    const std::vector<ChainShape>& chains,
                    std::vector<std::size_t> ecus_per_bus) {
  for (const ChainShape& shape : chains) {
    const std::string where = "chains ('" + shape.name + "')";
    if (shape.home_bus < 0 ||
        static_cast<std::size_t>(shape.home_bus) >= spec.buses.size()) {
      Reject(where, "home_bus " + std::to_string(shape.home_bus) +
                        " out of range (buses: " +
                        std::to_string(spec.buses.size()) + ")");
    }
    if (ecus_per_bus[shape.home_bus] < 2) {
      Reject(where, "home_bus " + std::to_string(shape.home_bus) +
                        " hosts fewer than 2 ECUs — processing tasks need "
                        "two distinct mapping options");
    }
    if (shape.processing < 1) {
      Reject(where, "processing must be >= 1");
    }
    if (shape.sensors.empty()) Reject(where, "references no sensors");
    if (shape.actuators.empty()) Reject(where, "references no actuators");
    for (int s : shape.sensors) {
      if (s < 0 || static_cast<std::size_t>(s) >= spec.num_sensors) {
        Reject(where, "sensor index " + std::to_string(s) +
                          " out of range (num_sensors: " +
                          std::to_string(spec.num_sensors) + ")");
      }
    }
    for (int a : shape.actuators) {
      if (a < 0 || static_cast<std::size_t>(a) >= spec.num_actuators) {
        Reject(where, "actuator index " + std::to_string(a) +
                          " out of range (num_actuators: " +
                          std::to_string(spec.num_actuators) + ")");
      }
    }
  }
}

}  // namespace

void ValidateTopologySpec(const TopologySpec& spec) {
  if (spec.num_ecus == 0) Reject("num_ecus", "must be >= 1");
  if (spec.buses.empty()) Reject("buses", "must contain at least one bus");
  if (!spec.has_gateway && spec.buses.size() > 1) {
    Reject("has_gateway",
           "a multi-bus topology without a gateway is disconnected");
  }
  if (!spec.has_gateway && !spec.profile_sets.empty()) {
    Reject("has_gateway",
           "the BIST augmentation needs the gateway collector b^R");
  }
  if (spec.ecu_cost_period == 0) Reject("ecu_cost_period", "must be >= 1");
  for (const BusSpec& bus : spec.buses) {
    if (bus.bitrate_bps <= 0) Reject("buses", "bitrate_bps must be > 0");
  }
  if (!spec.sensor_bus.empty() &&
      spec.sensor_bus.size() != spec.num_sensors) {
    Reject("sensor_bus", "size " + std::to_string(spec.sensor_bus.size()) +
                             " != num_sensors " +
                             std::to_string(spec.num_sensors));
  }
  if (!spec.actuator_bus.empty() &&
      spec.actuator_bus.size() != spec.num_actuators) {
    Reject("actuator_bus",
           "size " + std::to_string(spec.actuator_bus.size()) +
               " != num_actuators " + std::to_string(spec.num_actuators));
  }
  for (int b : spec.sensor_bus) {
    if (b < 0 || static_cast<std::size_t>(b) >= spec.buses.size()) {
      Reject("sensor_bus", "bus index " + std::to_string(b) + " out of range");
    }
  }
  for (int b : spec.actuator_bus) {
    if (b < 0 || static_cast<std::size_t>(b) >= spec.buses.size()) {
      Reject("actuator_bus",
             "bus index " + std::to_string(b) + " out of range");
    }
  }
  const bool derive_chains = spec.chains.empty();
  if (derive_chains) {
    if (spec.num_sensors == 0) {
      Reject("num_sensors", "derived chains need at least one sensor");
    }
    if (spec.num_actuators == 0) {
      Reject("num_actuators", "derived chains need at least one actuator");
    }
    if (spec.chain_processing_min < 1 ||
        spec.chain_processing_max < spec.chain_processing_min) {
      Reject("chain_processing_min/max",
             "need 1 <= min <= max for derived processing lengths");
    }
  }
  std::vector<std::size_t> ecus_per_bus(spec.buses.size(), 0);
  for (std::size_t e = 0; e < spec.num_ecus; ++e) {
    ++ecus_per_bus[BusOfEcu(spec, e)];
  }
  if (!spec.chains.empty()) {
    ValidateChains(spec, spec.chains, ecus_per_bus);
  } else {
    // Derived chains put a home on every bus — each must host >= 2 ECUs.
    for (std::size_t b = 0; b < spec.buses.size(); ++b) {
      if (ecus_per_bus[b] < 2) {
        Reject("num_ecus",
               "bus " + std::to_string(b) + " hosts " +
                   std::to_string(ecus_per_bus[b]) +
                   " ECUs; derived chains need >= 2 per bus (have " +
                   std::to_string(spec.num_ecus) + " ECUs on " +
                   std::to_string(spec.buses.size()) + " buses)");
      }
    }
  }
  if (spec.profile_sets.size() > spec.num_ecus) {
    Reject("profile_sets", "more CUT generations than ECUs");
  }
}

Topology GenerateTopology(const TopologySpec& spec, std::uint64_t seed) {
  ValidateTopologySpec(spec);

  // Two independent deterministic streams: `app_rng` replays the historical
  // application-construction draws (bit-identity for the canonical specs
  // depends on it seeing exactly the pre-refactor sequence), `structure_rng`
  // covers everything the hand-built case studies specified explicitly.
  util::SplitMix64 app_rng(seed);
  util::SplitMix64 structure_rng(seed ^ 0x746f706f6c6f6779ULL);  // "topology"

  std::vector<ChainShape> derived;
  const std::vector<ChainShape>& chains =
      spec.chains.empty()
          ? (derived = DeriveChains(spec, structure_rng), derived)
          : spec.chains;
  if (spec.chains.empty()) {
    std::vector<std::size_t> ecus_per_bus(spec.buses.size(), 0);
    for (std::size_t e = 0; e < spec.num_ecus; ++e) {
      ++ecus_per_bus[BusOfEcu(spec, e)];
    }
    ValidateChains(spec, chains, ecus_per_bus);
  }
  const std::vector<int> sensor_bus =
      spec.sensor_bus.empty()
          ? DerivePeripheralBuses(spec, chains, spec.num_sensors, true)
          : spec.sensor_bus;
  const std::vector<int> actuator_bus =
      spec.actuator_bus.empty()
          ? DerivePeripheralBuses(spec, chains, spec.num_actuators, false)
          : spec.actuator_bus;

  Topology topo;
  auto& arch = topo.spec.Architecture();

  if (spec.has_gateway) {
    topo.gateway =
        arch.AddResource({"gateway", ResourceKind::Gateway,
                          spec.gateway_base_cost, spec.gateway_cost_per_byte,
                          0.0});
  }
  for (std::size_t b = 0; b < spec.buses.size(); ++b) {
    const ResourceId bus = arch.AddResource(
        {"can" + std::to_string(b), ResourceKind::Bus, spec.buses[b].cost,
         0.0, spec.buses[b].bitrate_bps});
    if (spec.has_gateway) arch.AddLink(bus, topo.gateway);
    topo.buses.push_back(bus);
  }
  std::vector<std::vector<ResourceId>> ecus_on_bus(spec.buses.size());
  const std::size_t generations = spec.profile_sets.size();
  for (std::size_t e = 0; e < spec.num_ecus; ++e) {
    const ResourceId ecu = arch.AddResource(
        {"ecu" + std::to_string(e), ResourceKind::Ecu,
         spec.ecu_base_cost +
             spec.ecu_cost_step *
                 static_cast<double>(e % spec.ecu_cost_period),
         spec.ecu_cost_per_byte, 0.0});
    const int bus = BusOfEcu(spec, e);
    arch.AddLink(ecu, topo.buses[bus]);
    ecus_on_bus[bus].push_back(ecu);
    topo.ecus.push_back(ecu);
    if (generations > 1) {
      topo.cut_type_by_ecu[ecu] =
          static_cast<std::uint32_t>(e * generations / spec.num_ecus);
    }
  }
  for (std::size_t s = 0; s < spec.num_sensors; ++s) {
    const ResourceId sensor = arch.AddResource(
        {"sensor" + std::to_string(s), ResourceKind::Sensor,
         spec.sensor_base_cost, 0.0, 0.0});
    arch.AddLink(sensor, topo.buses[sensor_bus[s]]);
    topo.sensors.push_back(sensor);
  }
  for (std::size_t a = 0; a < spec.num_actuators; ++a) {
    const ResourceId actuator = arch.AddResource(
        {"actuator" + std::to_string(a), ResourceKind::Actuator,
         spec.actuator_base_cost, 0.0, 0.0});
    arch.AddLink(actuator, topo.buses[actuator_bus[a]]);
    topo.actuators.push_back(actuator);
  }

  BuildControlApps(topo, chains, ecus_on_bus, app_rng);

  if (!spec.profile_sets.empty()) {
    std::map<ResourceId, std::vector<bist::BistProfile>> by_ecu;
    for (std::size_t e = 0; e < spec.num_ecus; ++e) {
      const std::size_t gen =
          generations > 1 ? e * generations / spec.num_ecus : 0;
      by_ecu[topo.ecus[e]] = spec.profile_sets[gen];
    }
    topo.augmentation =
        model::AugmentWithBist(topo.spec, by_ecu, topo.cut_type_by_ecu);
  }
  topo.spec.Validate();
  return topo;
}

std::size_t CountFdBuses(const TopologySpec& spec) {
  std::size_t fd = 0;
  for (const BusSpec& bus : spec.buses) fd += bus.fd;
  return fd;
}

std::vector<bist::BistProfile> NextGenerationProfiles(
    std::vector<bist::BistProfile> profiles) {
  for (bist::BistProfile& p : profiles) {
    p.data_bytes *= 3;
    p.runtime_ms *= 2.5;
    p.fault_coverage_percent =
        std::min(99.95, p.fault_coverage_percent + 0.03);
  }
  return profiles;
}

}  // namespace bistdse::arch
