// Corpus-wide invariant sweeps over generated E/E-architecture families.
//
// One topology proves the flow works once; a *corpus* probes whether the
// paper's guarantees (Eq.-1 lower bound, WCRT domination, mirrored
// non-intrusiveness — see docs/PERF.md) are properties of the method or
// accidents of the case study. arch::SampleTopologySpec draws structurally
// distinct TopologySpecs (5-50 ECUs, 2-8 classic-CAN/CAN-FD buses) from a
// corpus seed; arch::SweepCorpus pushes each generated family through the
// full pipeline — DSE -> representative pick -> session plan ->
// net::SessionExecutor under an adversarial fault campaign — and reports the
// per-topology invariant verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/topology.hpp"
#include "bist/profile.hpp"
#include "dse/exploration.hpp"
#include "net/campaign.hpp"

namespace bistdse::arch {

/// The sampling envelope of a corpus. Bus count is drawn first, then the
/// ECU count from [max(min_ecus, 2 * buses), max_ecus] — every bus must
/// host at least two ECUs for the processing chains' mapping options.
struct CorpusSpec {
  std::size_t count = 10;
  std::size_t min_ecus = 5;
  std::size_t max_ecus = 50;
  std::size_t min_buses = 2;
  std::size_t max_buses = 8;
  /// Probability a sampled bus segment is CAN-FD-capable.
  double fd_fraction = 0.35;
  /// Up to this many CUT generations per topology; generation k+1 derives
  /// from k like the future case study (x3 pattern data, x2.5 session time,
  /// +0.03 ceiling coverage).
  std::size_t max_generations = 2;
  /// Generation-0 profile set of every sampled topology. Use a scaled table
  /// (casestudy::ScaledTableI) to keep frame-level campaigns fast.
  std::vector<bist::BistProfile> profile_pool;
  std::uint64_t seed = 1;
};

/// The `index`-th member of the corpus family, deterministic in
/// (spec, index). Throws std::invalid_argument when the envelope itself is
/// degenerate (empty profile pool, min > max bounds).
TopologySpec SampleTopologySpec(const CorpusSpec& corpus, std::size_t index);

/// Generation seed paired with SampleTopologySpec(corpus, index).
std::uint64_t TopologySeed(const CorpusSpec& corpus, std::size_t index);

struct CorpusSweepOptions {
  /// Per-topology DSE budget; `evaluation.use_can_fd` is set automatically
  /// for topologies with FD segments.
  dse::ExplorationConfig exploration;
  net::SessionExecutorOptions executor;
  net::CampaignScheduleSpec campaign;
  /// The representative pushed through the campaign: the cheapest Pareto
  /// point reaching this quality, falling back to the best-quality point.
  double min_quality_percent = 80.0;
};

struct CorpusTopologyResult {
  std::string name;
  std::size_t num_ecus = 0;
  std::size_t num_buses = 0;
  std::size_t fd_buses = 0;
  std::size_t generations = 0;
  std::uint64_t content_hash = 0;

  std::size_t pareto_size = 0;
  double explore_seconds = 0.0;
  double campaign_seconds = 0.0;
  bool representative_meets_quality = false;
  dse::Objectives representative;

  net::CampaignReport campaign;
  bool passed = false;  ///< All campaign rounds completed + all invariants.
};

struct CorpusSweepReport {
  std::vector<CorpusTopologyResult> topologies;
  bool all_passed = true;
  std::size_t rounds_executed = 0;
};

/// Runs the full pipeline over every sampled member of the corpus.
CorpusSweepReport SweepCorpus(const CorpusSpec& corpus,
                              const CorpusSweepOptions& options);

/// One row per topology: structure, front size, representative objectives,
/// campaign verdicts. Markdown-ish, for the CLI and CI logs.
std::string FormatCorpusReport(const CorpusSweepReport& report);

}  // namespace bistdse::arch
