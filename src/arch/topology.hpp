// Parameterized E/E-architecture topology generation.
//
// The paper validates non-intrusive diagnosis integration on one industrial
// subnet (15 ECUs, 3 CAN buses, 36 Table-I profiles). This layer turns that
// hand-built graph into a *family*: an arch::TopologySpec captures every
// degree of freedom of the case-study construction — ECU/sensor/actuator
// counts, bus count and types (classic CAN and CAN FD segments), gateway
// fan-out, application-chain shapes, and the profile set of each CUT
// generation — and arch::GenerateTopology(spec, seed) emits a validated
// model::Specification plus the resource handles every downstream layer
// (DSE, session planning, net::SessionExecutor) consumes.
//
// casestudy::BuildCaseStudy / BuildFutureCaseStudy are two canonical specs
// run through this generator, bit-identical to the pre-refactor builders
// (pinned by content hashes and Pareto-front fingerprints in tests/).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bist/profile.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::arch {

/// One field-bus segment. `fd` marks a CAN-FD-capable segment: the frame
/// payload can grow to 64 bytes with the data phase running at a faster
/// bitrate (modeled analytically via dse::EvaluationOptions::use_can_fd /
/// can::MirroredFdTransferTimeMs; the frame-level executor replays the
/// nominal-rate schedule, which the FD frame fits by construction).
struct BusSpec {
  double bitrate_bps = 500e3;
  bool fd = false;
  double cost = 1.0;
};

/// One sensor -> processing-chain -> actuator control application.
/// `sensors` / `actuators` index into the topology's sensor/actuator lists;
/// `processing` tasks map onto 2-3 ECU options of `home_bus` (occasionally
/// one cross-bus option, so some messages route through the gateway).
struct ChainShape {
  std::string name;
  int home_bus = 0;
  std::vector<int> sensors;
  std::vector<int> actuators;
  int processing = 4;
};

/// Full parameterization of a generated E/E architecture.
struct TopologySpec {
  std::string name = "generated";

  std::size_t num_ecus = 15;
  std::vector<BusSpec> buses = {{}, {}};
  std::size_t num_sensors = 4;
  std::size_t num_actuators = 2;
  /// The central gateway bridging all buses (fan-out = bus count). Only a
  /// single-bus, diagnosis-free topology may omit it: the BIST augmentation
  /// needs the gateway collector b^R, and a multi-bus graph without it is
  /// disconnected.
  bool has_gateway = true;

  // Cost model (the case study's virtual monetary metric).
  double gateway_base_cost = 25.0;
  double gateway_cost_per_byte = 1e-6;
  double ecu_base_cost = 12.0;
  double ecu_cost_step = 2.0;
  std::size_t ecu_cost_period = 5;  ///< ECU e costs base + step * (e % period).
  double ecu_cost_per_byte = 2e-5;
  double sensor_base_cost = 2.0;
  double actuator_base_cost = 3.0;

  /// Explicit bus of each sensor/actuator; empty = derived from the chains
  /// that reference them (each peripheral lands on its chain's home bus).
  std::vector<int> sensor_bus;
  std::vector<int> actuator_bus;

  /// Application chains; empty = `derived_chains` seeded shapes (0 = one per
  /// bus) with processing lengths in [chain_processing_min, _max] and
  /// sensors/actuators dealt round-robin.
  std::vector<ChainShape> chains;
  std::size_t derived_chains = 0;
  std::size_t chain_processing_min = 4;
  std::size_t chain_processing_max = 8;

  /// BIST profile set per CUT generation; ECU e belongs to generation
  /// e * profile_sets.size() / num_ecus (contiguous blocks, as in the
  /// heterogeneous future case study). One entry = homogeneous fleet; an
  /// empty *outer* vector skips the BIST augmentation entirely (a pure
  /// functional network); an empty *inner* set keeps the augmentation with
  /// zero programs (the diagnosis-free baseline of BaselineCost).
  std::vector<std::vector<bist::BistProfile>> profile_sets;
};

/// A generated architecture: the specification plus every handle the
/// case-study consumers expect (casestudy::CaseStudy is an alias of this).
struct Topology {
  model::Specification spec;
  model::BistAugmentation augmentation;

  std::vector<model::ResourceId> ecus;
  std::vector<model::ResourceId> sensors;
  std::vector<model::ResourceId> actuators;
  std::vector<model::ResourceId> buses;
  model::ResourceId gateway = model::kInvalidId;
  /// CUT generation per ECU; populated only for heterogeneous fleets
  /// (profile_sets.size() > 1).
  std::map<model::ResourceId, std::uint32_t> cut_type_by_ecu;

  std::size_t functional_task_count = 0;
  std::size_t functional_message_count = 0;
};

/// Rejects degenerate specs with std::invalid_argument naming the offending
/// field: zero ECUs/buses, a gateway-less multi-bus or BIST-augmented
/// topology, peripheral bus assignments out of range, chains referencing
/// missing sensors/actuators or home buses without enough ECUs, and
/// inconsistent derived-chain bounds.
void ValidateTopologySpec(const TopologySpec& spec);

/// Builds the architecture deterministically from (spec, seed): equal
/// arguments reproduce the Specification bit-for-bit (pin with
/// model::ContentHash), different seeds vary the application mapping options
/// and derived shapes. Throws std::invalid_argument via ValidateTopologySpec
/// on degenerate specs.
Topology GenerateTopology(const TopologySpec& spec, std::uint64_t seed);

/// Number of FD-capable segments in `spec` (corpus bookkeeping).
std::size_t CountFdBuses(const TopologySpec& spec);

/// The next CUT generation of a profile set: a larger die of the same
/// family — x3 pattern data, x2.5 session time, slightly higher ceiling
/// coverage (the future case study's derivation, shared with the corpus
/// sampler).
std::vector<bist::BistProfile> NextGenerationProfiles(
    std::vector<bist::BistProfile> profiles);

}  // namespace bistdse::arch
