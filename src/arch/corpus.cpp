#include "arch/corpus.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "dse/report.hpp"
#include "util/rng.hpp"

namespace bistdse::arch {

namespace {

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       since)
      .count();
}

}  // namespace

TopologySpec SampleTopologySpec(const CorpusSpec& corpus, std::size_t index) {
  if (corpus.profile_pool.empty()) {
    throw std::invalid_argument("CorpusSpec.profile_pool: must not be empty");
  }
  if (corpus.min_buses == 0 || corpus.min_buses > corpus.max_buses) {
    throw std::invalid_argument(
        "CorpusSpec.min_buses/max_buses: need 1 <= min <= max");
  }
  if (corpus.min_ecus > corpus.max_ecus) {
    throw std::invalid_argument("CorpusSpec.min_ecus/max_ecus: min > max");
  }
  if (corpus.max_generations == 0) {
    throw std::invalid_argument("CorpusSpec.max_generations: must be >= 1");
  }

  util::SplitMix64 rng(corpus.seed ^ (0xd1342543de82ef95ULL * (index + 1)));
  TopologySpec spec;
  spec.name = "corpus" + std::to_string(index);

  const std::size_t nbuses =
      corpus.min_buses + rng.Below(corpus.max_buses - corpus.min_buses + 1);
  spec.buses.clear();
  for (std::size_t b = 0; b < nbuses; ++b) {
    BusSpec bus;
    bus.fd = rng.Chance(corpus.fd_fraction);
    // Occasional high-speed backbone segment, as in the future case study.
    if (b > 0 && rng.Chance(0.25)) bus.bitrate_bps = 1e6;
    spec.buses.push_back(bus);
  }

  // Bus count first, then ECUs from [max(min_ecus, 2 * buses), max_ecus]:
  // every bus hosts >= 2 ECUs, so the derived chains always validate.
  const std::size_t ecu_floor = std::max(corpus.min_ecus, 2 * nbuses);
  const std::size_t ecu_ceil = std::max(ecu_floor, corpus.max_ecus);
  spec.num_ecus = ecu_floor + rng.Below(ecu_ceil - ecu_floor + 1);
  spec.num_sensors = nbuses + rng.Below(nbuses + 1);
  spec.num_actuators = 1 + rng.Below(nbuses);
  spec.chain_processing_min = 3;
  spec.chain_processing_max = 6;

  const std::size_t generations = 1 + rng.Below(corpus.max_generations);
  spec.profile_sets.resize(generations);
  spec.profile_sets[0] = corpus.profile_pool;
  for (std::size_t g = 1; g < generations; ++g) {
    spec.profile_sets[g] = NextGenerationProfiles(spec.profile_sets[g - 1]);
  }
  return spec;
}

std::uint64_t TopologySeed(const CorpusSpec& corpus, std::size_t index) {
  return corpus.seed ^ (0x2545f4914f6cdd1dULL * (index + 1));
}

CorpusSweepReport SweepCorpus(const CorpusSpec& corpus,
                              const CorpusSweepOptions& options) {
  CorpusSweepReport report;
  for (std::size_t i = 0; i < corpus.count; ++i) {
    const TopologySpec spec = SampleTopologySpec(corpus, i);
    const Topology topo = GenerateTopology(spec, TopologySeed(corpus, i));

    CorpusTopologyResult result;
    result.name = spec.name;
    result.num_ecus = spec.num_ecus;
    result.num_buses = spec.buses.size();
    result.fd_buses = CountFdBuses(spec);
    result.generations = spec.profile_sets.size();
    result.content_hash = model::ContentHash(topo.spec);

    dse::ExplorationConfig config = options.exploration;
    config.evaluation.use_can_fd |= result.fd_buses > 0;

    const auto t_explore = std::chrono::steady_clock::now();
    dse::Explorer explorer(topo.spec, topo.augmentation, config);
    const dse::ExplorationResult front = explorer.Run();
    result.explore_seconds = Seconds(t_explore);
    result.pareto_size = front.pareto.size();

    if (front.pareto.empty()) {
      result.passed = false;
      report.all_passed = false;
      report.topologies.push_back(std::move(result));
      continue;
    }
    const auto picks =
        dse::RankCheapestMeetingQuality(front, options.min_quality_percent);
    const dse::ExplorationEntry* pick;
    if (!picks.empty()) {
      pick = picks.front();
      result.representative_meets_quality = true;
    } else {
      // Nothing reaches the bar (tiny budget / weak pool): campaign the
      // best-quality point so the invariants are still exercised.
      pick = &*std::max_element(
          front.pareto.begin(), front.pareto.end(),
          [](const auto& a, const auto& b) {
            return a.objectives.test_quality_percent <
                   b.objectives.test_quality_percent;
          });
    }
    result.representative = pick->objectives;

    net::CampaignScheduleSpec schedule = options.campaign;
    schedule.seed ^= 0x94d049bb133111ebULL * (i + 1);
    const auto t_campaign = std::chrono::steady_clock::now();
    result.campaign = net::RunAdversarialCampaign(
        topo.spec, topo.augmentation, pick->implementation, options.executor,
        schedule);
    result.campaign_seconds = Seconds(t_campaign);
    result.passed = result.campaign.Passed();
    report.rounds_executed += result.campaign.rounds.size();
    report.all_passed &= result.passed;
    report.topologies.push_back(std::move(result));
  }
  return report;
}

std::string FormatCorpusReport(const CorpusSweepReport& report) {
  std::ostringstream ss;
  ss << "| topology | ecus | buses (fd) | gens | front | quality % | cost | "
        "rounds | dropped | verdict |\n";
  ss << "|---|---|---|---|---|---|---|---|---|---|\n";
  for (const CorpusTopologyResult& t : report.topologies) {
    ss << "| " << t.name << " | " << t.num_ecus << " | " << t.num_buses
       << " (" << t.fd_buses << ") | " << t.generations << " | "
       << t.pareto_size << " | " << t.representative.test_quality_percent
       << " | " << t.representative.monetary_cost << " | "
       << t.campaign.rounds.size() << " | "
       << t.campaign.total_frames_dropped << " | "
       << (t.passed ? "pass" : "FAIL");
    if (!t.passed) {
      for (const net::CampaignRound& r : t.campaign.rounds) {
        if (!r.Passed()) {
          ss << " (" << r.failure << ")";
          break;
        }
      }
    }
    ss << " |\n";
  }
  ss << (report.all_passed ? "all invariants held" : "INVARIANT VIOLATION")
     << " over " << report.rounds_executed << " campaign rounds on "
     << report.topologies.size() << " topologies\n";
  return ss.str();
}

}  // namespace bistdse::arch
