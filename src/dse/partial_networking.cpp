#include "dse/partial_networking.hpp"

#include <algorithm>

#include "can/mirroring.hpp"

namespace bistdse::dse {

using model::Message;
using model::ResourceId;
using model::TaskId;

PartialNetworkingReport AnalyzePartialNetworking(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl,
    const std::map<ResourceId, double>& deadline_ms_by_ecu,
    double default_deadline_ms) {
  const auto& app = spec.Application();
  PartialNetworkingReport report;

  std::map<TaskId, ResourceId> bound_at;
  for (std::size_t m : impl.binding) {
    bound_at[spec.Mappings()[m].task] = spec.Mappings()[m].resource;
  }

  // Functional TX messages per ECU (the set I of Eq. 1).
  std::map<ResourceId, std::vector<can::CanMessage>> tx_messages;
  for (model::MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    const auto it = bound_at.find(msg.sender);
    if (it == bound_at.end()) continue;
    can::CanMessage cm;
    cm.name = msg.name;
    cm.payload_bytes = msg.payload_bytes;
    cm.period_ms = msg.period_ms;
    tx_messages[it->second].push_back(cm);
  }

  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      if (!bound_at.count(prog.test_task)) continue;
      const auto& test = app.GetTask(prog.test_task);
      const auto& data = app.GetTask(prog.data_task);

      EcuSessionTime session;
      session.ecu = ecu;
      session.profile_index = prog.profile_index;
      session.session_ms = test.runtime_ms;

      const auto data_it = bound_at.find(prog.data_task);
      session.patterns_local =
          data_it != bound_at.end() && data_it->second == ecu;
      if (data_it != bound_at.end() && !session.patterns_local) {
        const auto tx_it = tx_messages.find(ecu);
        session.transfer_ms = can::MirroredTransferTimeMs(
            data.data_bytes,
            tx_it == tx_messages.end()
                ? std::span<const can::CanMessage>{}
                : std::span<const can::CanMessage>(tx_it->second));
        session.session_ms += session.transfer_ms;
      }
      report.max_session_ms =
          std::max(report.max_session_ms, session.session_ms);

      double deadline = default_deadline_ms;
      if (auto it = deadline_ms_by_ecu.find(ecu);
          it != deadline_ms_by_ecu.end()) {
        deadline = it->second;
      }
      if (deadline >= 0.0 && session.session_ms > deadline) {
        report.deadline_violations.push_back(ecu);
      }
      report.sessions.push_back(session);
    }
  }
  return report;
}

}  // namespace bistdse::dse
