#include "dse/report.hpp"

#include <ostream>
#include <algorithm>
#include <sstream>

namespace bistdse::dse {

void WriteFrontCsv(const ExplorationResult& result, std::ostream& out) {
  out << "cost,test_quality_percent,transition_quality_percent,shutoff_ms,"
         "gateway_memory_bytes,distributed_memory_bytes,pattern_memory_cost,"
         "ecus_with_bist,ecus_allocated\n";
  for (const auto& entry : result.pareto) {
    const auto& o = entry.objectives;
    out << o.monetary_cost << ',' << o.test_quality_percent << ','
        << o.transition_quality_percent << ',' << o.shutoff_time_ms << ','
        << o.gateway_memory_bytes << ','
        << o.distributed_memory_bytes << ',' << o.pattern_memory_cost << ','
        << o.ecus_with_bist << ',' << o.ecus_allocated << '\n';
  }
}

std::string FrontCsvString(const ExplorationResult& result) {
  std::ostringstream ss;
  WriteFrontCsv(result, ss);
  return ss.str();
}

std::string DescribeImplementation(const model::Specification& spec,
                                   const model::BistAugmentation& augmentation,
                                   const ExplorationEntry& entry) {
  const auto& app = spec.Application();
  const auto& arch = spec.Architecture();
  std::ostringstream ss;
  const auto& o = entry.objectives;
  ss << "implementation: quality " << o.test_quality_percent << " %, shut-off "
     << o.shutoff_time_ms / 1e3 << " s, cost " << o.monetary_cost << "\n";

  ss << "allocation:";
  for (model::ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    if (r < entry.implementation.allocation.size() &&
        entry.implementation.allocation[r]) {
      ss << ' ' << arch.GetResource(r).name;
    }
  }
  ss << "\n";

  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      if (!entry.implementation.IsBound(spec, prog.test_task)) continue;
      const auto data_at =
          entry.implementation.BoundResource(spec, prog.data_task);
      const auto& test = app.GetTask(prog.test_task);
      ss << arch.GetResource(ecu).name << ": profile "
         << prog.profile_index + 1 << " (c=" << test.fault_coverage_percent
         << " %, l=" << test.runtime_ms << " ms), patterns "
         << (data_at && *data_at == ecu ? "local" : "at gateway");
      const auto route = entry.implementation.routing.find(prog.pattern_message);
      if (route != entry.implementation.routing.end()) {
        ss << ", c^D route:";
        for (model::ResourceId r : route->second) {
          ss << ' ' << arch.GetResource(r).name;
        }
      }
      ss << "\n";
    }
  }
  return ss.str();
}

std::vector<const ExplorationEntry*> RankCheapestMeetingQuality(
    const ExplorationResult& result, double min_quality_percent) {
  std::vector<const ExplorationEntry*> picks;
  for (const auto& e : result.pareto) {
    if (e.objectives.test_quality_percent >= min_quality_percent) {
      picks.push_back(&e);
    }
  }
  std::sort(picks.begin(), picks.end(), [](const auto* a, const auto* b) {
    return a->objectives.monetary_cost < b->objectives.monetary_cost;
  });
  return picks;
}

std::string SummarizeFront(const ExplorationResult& result,
                           double quality_bar_percent) {
  std::ostringstream ss;
  ss << "## Exploration summary\n\n";
  ss << "- evaluations: " << result.evaluations << " (" << result.Throughput()
     << "/s)\n";
  ss << "- non-dominated implementations: " << result.pareto.size() << "\n";
  if (result.pareto.empty()) return ss.str();

  double min_cost = 1e300, max_q = -1e300, min_shutoff = 1e300;
  std::size_t fast = 0;
  const ExplorationEntry* headline = nullptr;
  double headline_rel = 0.0;
  for (const auto& e : result.pareto) {
    const auto& o = e.objectives;
    min_cost = std::min(min_cost, o.monetary_cost);
    max_q = std::max(max_q, o.test_quality_percent);
    min_shutoff = std::min(min_shutoff, o.shutoff_time_ms);
    fast += o.shutoff_time_ms <= 20000.0 ? 1 : 0;
    if (o.test_quality_percent >= quality_bar_percent) {
      const double rel =
          o.pattern_memory_cost / (o.monetary_cost - o.pattern_memory_cost);
      if (!headline || rel < headline_rel) {
        headline = &e;
        headline_rel = rel;
      }
    }
  }
  ss << "- cost floor: " << min_cost << "; best quality: " << max_q
     << " %; fastest shut-off: " << min_shutoff / 1e3 << " s\n";
  ss << "- shut-off <= 20 s: " << fast << " of " << result.pareto.size()
     << "\n";
  if (headline) {
    ss << "- headline: " << headline->objectives.test_quality_percent
       << " % quality at +" << 100.0 * headline_rel
       << " % diagnosis cost\n";
  } else {
    ss << "- headline: no design reaches " << quality_bar_percent
       << " % quality\n";
  }
  return ss.str();
}

}  // namespace bistdse::dse
