// SAT-decoding: genotype (priorities + phases over mapping variables) ->
// feasible implementation x = (A, B, W).
#pragma once

#include <cstdint>
#include <optional>

#include "dse/encoding.hpp"
#include "moea/genotype.hpp"

namespace bistdse::dse {

struct DecoderStats {
  std::uint64_t decodes = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t validation_failures = 0;
  /// Wall time spent inside sat::Solver::Solve() across all decodes.
  double decode_seconds = 0.0;
  /// Per-phase counters of the underlying solver (search / propagation /
  /// inprocessing), snapshotted after the latest decode.
  sat::SolverStats solver;

  void MergeFrom(const DecoderStats& o) {
    decodes += o.decodes;
    infeasible += o.infeasible;
    validation_failures += o.validation_failures;
    decode_seconds += o.decode_seconds;
    solver.MergeFrom(o.solver);
  }
};

class SatDecoder {
 public:
  /// `spec` and `augmentation` must outlive the decoder.
  SatDecoder(const model::Specification& spec,
             const model::BistAugmentation& augmentation,
             bool validate_each_decode = false,
             const sat::SolverConfig& solver_config = {});

  /// Genes required per genotype (= number of mapping options).
  std::size_t GenotypeSize() const { return problem_.MappingVars().size(); }

  /// Decodes one genotype. nullopt when the instance is infeasible under the
  /// requested policy (with a correct specification this cannot happen — the
  /// instance itself is satisfiable — so nullopt signals a modeling error).
  std::optional<model::Implementation> Decode(const moea::Genotype& genotype);

  const DecoderStats& Stats() const { return stats_; }

 private:
  const model::Specification& spec_;
  EncodedProblem problem_;
  bool validate_each_decode_;
  DecoderStats stats_;
};

}  // namespace bistdse::dse
