#include "dse/parallel.hpp"

#include <chrono>

#include "moea/archive.hpp"
#include "util/thread_pool.hpp"

namespace bistdse::dse {

ParallelResult ExploreParallel(const model::Specification& spec,
                               const model::BistAugmentation& augmentation,
                               const ExplorationConfig& config,
                               std::size_t islands) {
  if (islands == 0) islands = 1;
  const auto start = std::chrono::steady_clock::now();

  // One engine for all islands: shared objective memo (cross-island cache
  // hits), one stage list, one set of evaluation options.
  ExplorationConfig base_config = config;
  if (base_config.stages.empty()) {
    base_config.stages = DefaultStages(config.include_transition_objective);
  }
  EvaluationEngineConfig engine_config;
  engine_config.validate_each_decode = base_config.validate_each_decode;
  engine_config.threads = base_config.threads;
  engine_config.evaluation = base_config.evaluation;
  engine_config.stages = base_config.stages;
  engine_config.solver = base_config.solver;
  EvaluationEngine engine(spec, augmentation, engine_config);

  // Islands run on the shared executor — the same pool the fault-simulation
  // layer uses — so stacking island parallelism on top of parallel objective
  // evaluation cannot oversubscribe the machine.
  std::vector<ExplorationResult> results(islands);
  util::ThreadPool::Global().ParallelFor(
      0, islands, islands,
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        for (std::size_t i = begin; i < end; ++i) {
          ExplorationConfig island_config = base_config;
          island_config.seed = base_config.seed + i;
          Explorer explorer(engine, island_config);
          results[i] = explorer.Run();
        }
      });

  // Deterministic merge: islands in seed order, entries in archive order.
  ParallelResult merged;
  moea::ParetoArchive archive;
  std::vector<const ExplorationEntry*> store;
  for (const auto& result : results) {
    merged.evaluations += result.evaluations;
    merged.eval_cache_hits += result.eval_cache_hits;
    merged.island_front_sizes.push_back(result.pareto.size());
    merged.decoder_stats.MergeFrom(result.decoder_stats);
    for (const auto& entry : result.pareto) {
      const auto vec = engine.Minimize(entry.objectives);
      if (archive.Offer(vec, store.size())) store.push_back(&entry);
    }
  }
  for (const auto& archived : archive.Entries()) {
    merged.pareto.push_back(*store[archived.payload]);
  }
  merged.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return merged;
}

}  // namespace bistdse::dse
