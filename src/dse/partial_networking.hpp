// Partial-networking analysis (paper §I): with AUTOSAR partial networking,
// individual ECUs power down while the rest of the network keeps operating,
// and a BIST session must fit into the window before the ECU's real
// power-down. Eq. 5's *global* shut-off maximum is therefore complemented by
// a per-ECU view: each ECU's session time (l(b) plus the mirrored transfer
// q, if its patterns live remotely) is checked against a per-ECU power-down
// deadline.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::dse {

struct EcuSessionTime {
  model::ResourceId ecu = model::kInvalidId;
  std::uint32_t profile_index = 0;
  double session_ms = 0.0;      ///< l(b) + q (Eq. 1) if stored remotely.
  double transfer_ms = 0.0;     ///< q component (0 for local storage).
  bool patterns_local = false;
};

struct PartialNetworkingReport {
  std::vector<EcuSessionTime> sessions;  ///< One entry per ECU with BIST.
  /// ECUs whose session exceeds their power-down deadline.
  std::vector<model::ResourceId> deadline_violations;
  double max_session_ms = 0.0;  ///< == Eq. 5 shut-off time.

  bool AllDeadlinesMet() const { return deadline_violations.empty(); }
};

/// Computes per-ECU BIST session times for `impl` and checks them against
/// `deadline_ms_by_ecu` (ECUs absent from the map are unconstrained; a
/// `default_deadline_ms` < 0 means unconstrained as well).
PartialNetworkingReport AnalyzePartialNetworking(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl,
    const std::map<model::ResourceId, double>& deadline_ms_by_ecu = {},
    double default_deadline_ms = -1.0);

}  // namespace bistdse::dse
