// Export of exploration results: CSV of the Pareto front (one row per
// implementation) and a per-implementation text report (which profile each
// ECU runs, where its patterns live, route of the pattern message) — the
// artifacts a system designer would hand to the E/E integration team.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dse/exploration.hpp"

namespace bistdse::dse {

/// CSV header + rows: cost, quality, shut-off, memory split, BIST counts.
void WriteFrontCsv(const ExplorationResult& result, std::ostream& out);
std::string FrontCsvString(const ExplorationResult& result);

/// Human-readable description of one implementation.
std::string DescribeImplementation(const model::Specification& spec,
                                   const model::BistAugmentation& augmentation,
                                   const ExplorationEntry& entry);

/// Pareto entries reaching `min_quality_percent`, cheapest first — the
/// representative-pick rule shared by the CLI's --report flag and the
/// corpus sweep. Pointers index into `result.pareto`; empty when no entry
/// reaches the bar.
std::vector<const ExplorationEntry*> RankCheapestMeetingQuality(
    const ExplorationResult& result, double min_quality_percent);

/// Markdown summary of a front: counts, objective extremes, shut-off-class
/// split, and the paper-style headline (min diagnosis overhead at >= the
/// quality bar).
std::string SummarizeFront(const ExplorationResult& result,
                           double quality_bar_percent = 80.0);

}  // namespace bistdse::dse
