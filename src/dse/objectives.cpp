#include "dse/objectives.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "can/canfd.hpp"
#include "can/mirroring.hpp"

namespace bistdse::dse {

using model::ApplicationGraph;
using model::Message;
using model::ResourceId;
using model::Task;
using model::TaskId;
using model::TaskKind;

Objectives EvaluateImplementation(const model::Specification& spec,
                                  const model::BistAugmentation& augmentation,
                                  const model::Implementation& impl,
                                  const EvaluationOptions& options) {
  const ApplicationGraph& app = spec.Application();
  const auto& arch = spec.Architecture();
  Objectives result;

  // Resource of every bound task (one pass over the binding).
  std::map<TaskId, ResourceId> bound_at;
  for (std::size_t m : impl.binding) {
    bound_at[spec.Mappings()[m].task] = spec.Mappings()[m].resource;
  }

  // Functional TX messages per ECU — the set I of Eq. (1).
  std::map<ResourceId, std::vector<can::CanMessage>> tx_messages;
  for (model::MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    const auto it = bound_at.find(msg.sender);
    if (it == bound_at.end()) continue;
    can::CanMessage cm;
    cm.name = msg.name;
    cm.payload_bytes = msg.payload_bytes;
    cm.period_ms = msg.period_ms;
    tx_messages[it->second].push_back(cm);
  }

  // --- test quality (Eq. 4) and shut-off time (Eq. 5) --------------------
  double coverage_sum = 0.0;
  double transition_sum = 0.0;
  double shutoff_ms = 0.0;
  const ResourceId gateway = arch.Gateway();

  // Gateway memory dedup key: (cut type, profile index) — identical silicon
  // shares one encoded copy.
  std::set<std::uint64_t> gateway_profiles;
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      const auto test_it = bound_at.find(prog.test_task);
      if (test_it == bound_at.end()) continue;
      const Task& test = app.GetTask(prog.test_task);
      const Task& data = app.GetTask(prog.data_task);
      coverage_sum += test.fault_coverage_percent;
      transition_sum += test.transition_coverage_percent;
      ++result.ecus_with_bist;

      const auto data_it = bound_at.find(prog.data_task);
      double session_ms = test.runtime_ms;
      if (data_it != bound_at.end() && data_it->second != ecu) {
        // Patterns transmitted first: Eq. (1) over the ECU's functional
        // messages (or their CAN FD upgrades).
        const auto tx_it = tx_messages.find(ecu);
        const std::span<const can::CanMessage> tx =
            tx_it == tx_messages.end()
                ? std::span<const can::CanMessage>{}
                : std::span<const can::CanMessage>(tx_it->second);
        double transfer_ms = 0.0;
        if (options.use_can_fd && !tx.empty()) {
          double bytes_per_ms = 0.0;
          for (const can::CanMessage& m : tx) {
            bytes_per_ms +=
                static_cast<double>(can::RoundUpFdPayload(
                    options.fd_payload_bytes)) /
                m.period_ms;
          }
          transfer_ms = static_cast<double>(data.data_bytes) / bytes_per_ms;
        } else {
          transfer_ms = can::MirroredTransferTimeMs(data.data_bytes, tx);
        }
        if (!std::isfinite(transfer_ms)) ++result.sessions_without_bandwidth;
        session_ms += transfer_ms;
        if (data_it->second == gateway) {
          gateway_profiles.insert(
              (static_cast<std::uint64_t>(prog.cut_type) << 32) |
              prog.profile_index);
        }
      } else if (data_it != bound_at.end()) {
        result.distributed_memory_bytes += data.data_bytes;
      }
      shutoff_ms = std::max(shutoff_ms, session_ms);
    }
  }

  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    if (r >= impl.allocation.size() || !impl.allocation[r]) continue;
    if (arch.GetResource(r).kind == model::ResourceKind::Ecu) {
      ++result.ecus_allocated;
    }
  }

  result.test_quality_percent =
      result.ecus_allocated == 0
          ? 0.0
          : coverage_sum / static_cast<double>(result.ecus_allocated);
  result.transition_quality_percent =
      result.ecus_allocated == 0
          ? 0.0
          : transition_sum / static_cast<double>(result.ecus_allocated);
  result.shutoff_time_ms = shutoff_ms;

  // --- monetary costs -----------------------------------------------------
  double cost = 0.0;
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    if (r < impl.allocation.size() && impl.allocation[r]) {
      cost += arch.GetResource(r).base_cost;
    }
  }
  // Distributed pattern memory: per-ECU copies at the ECU's byte cost.
  double memory_cost = 0.0;
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      const auto data_it = bound_at.find(prog.data_task);
      if (data_it == bound_at.end() || data_it->second != ecu) continue;
      memory_cost += arch.GetResource(ecu).cost_per_byte *
                     static_cast<double>(app.GetTask(prog.data_task).data_bytes);
    }
  }
  // Gateway pattern memory: one copy per distinct profile. Resolve the
  // distinct profile sizes via any program carrying that index.
  std::uint64_t gw_bytes = 0;
  std::map<std::uint64_t, std::uint64_t> profile_bytes;
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      profile_bytes[(static_cast<std::uint64_t>(prog.cut_type) << 32) |
                    prog.profile_index] =
          app.GetTask(prog.data_task).data_bytes;
    }
  }
  for (std::uint64_t p : gateway_profiles) gw_bytes += profile_bytes[p];
  result.gateway_memory_bytes = gw_bytes;
  memory_cost +=
      arch.GetResource(gateway).cost_per_byte * static_cast<double>(gw_bytes);

  result.pattern_memory_cost = memory_cost;
  result.monetary_cost = cost + memory_cost;
  return result;
}

}  // namespace bistdse::dse
