#include "dse/objectives.hpp"

#include "dse/evaluation_engine.hpp"

namespace bistdse::dse {

moea::ObjectiveVector Objectives::ToMinimizationVector(
    const StageList& stages) const {
  moea::ObjectiveVector out;
  for (const auto& stage : stages) stage->AppendMinimization(*this, out);
  return out;
}

Objectives EvaluateImplementation(const model::Specification& spec,
                                  const model::BistAugmentation& augmentation,
                                  const model::Implementation& impl,
                                  const EvaluationOptions& options) {
  return EvaluateWithStages(spec, augmentation, impl, options,
                            DefaultStages(false));
}

}  // namespace bistdse::dse
