#include "dse/decoder.hpp"

#include <chrono>
#include <stdexcept>

namespace bistdse::dse {

SatDecoder::SatDecoder(const model::Specification& spec,
                       const model::BistAugmentation& augmentation,
                       bool validate_each_decode,
                       const sat::SolverConfig& solver_config)
    : spec_(spec),
      problem_(spec, augmentation, solver_config),
      validate_each_decode_(validate_each_decode) {}

std::optional<model::Implementation> SatDecoder::Decode(
    const moea::Genotype& genotype) {
  ++stats_.decodes;
  if (genotype.Size() != GenotypeSize())
    throw std::invalid_argument("genotype size mismatch");

  const auto order = genotype.DecisionOrder();
  std::vector<sat::Var> var_order;
  std::vector<std::uint8_t> phases;
  var_order.reserve(order.size());
  phases.reserve(order.size());
  for (std::uint32_t gene : order) {
    var_order.push_back(problem_.MappingVars()[gene]);
    phases.push_back(genotype.phases[gene]);
  }
  problem_.SolverRef().SetDecisionPolicy(var_order, phases);

  const auto solve_start = std::chrono::steady_clock::now();
  const sat::SolveResult result = problem_.SolverRef().Solve();
  stats_.decode_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solve_start)
          .count();
  stats_.solver = problem_.SolverRef().Stats();
  if (result != sat::SolveResult::Sat) {
    ++stats_.infeasible;
    return std::nullopt;
  }

  model::Implementation impl;
  impl.binding = problem_.BindingFromModel();
  if (!model::CompleteRoutingAndAllocation(spec_, impl)) {
    ++stats_.infeasible;
    return std::nullopt;
  }
  if (validate_each_decode_) {
    const auto violations = model::ValidateImplementation(spec_, impl);
    if (!violations.empty()) {
      ++stats_.validation_failures;
      throw std::logic_error("decoded implementation violates constraints: " +
                             violations.front());
    }
  }
  return impl;
}

}  // namespace bistdse::dse
