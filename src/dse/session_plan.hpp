// Session planning: turns a selected BIST program of an implementation into
// the concrete execution timeline an ECU integrator deploys — pattern
// download over mirrored slots (Eq. 1), test application l(b), fail-data
// upload to the gateway collector b^R, and functional state restore.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bist/profile.hpp"
#include "bist/stumps.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::dse {

struct SessionPhase {
  std::string name;
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

struct SessionPlan {
  model::ResourceId ecu = model::kInvalidId;
  std::uint32_t profile_index = 0;
  bool patterns_local = false;
  /// False when the session needs a mirrored transfer but the ECU sends no
  /// functional messages: Eq. (1) diverges (+inf), so the program is
  /// explicitly rejected rather than planned with infinite phases.
  bool feasible = true;

  std::vector<SessionPhase> phases;  ///< Contiguous, in execution order.
  double total_ms = 0.0;

  /// CAN frames of the mirrored download (0 for local storage) and of the
  /// fail-data upload.
  std::uint64_t download_frames = 0;
  std::uint64_t fail_data_frames = 0;
};

struct SessionPlanOptions {
  double state_restore_ms = 0.05;
  /// Payload of fail-data frames (they reuse the mirrored slots as well).
  std::uint32_t fail_frame_payload = 8;
};

/// Plans the session of every selected BIST program in `impl`.
std::vector<SessionPlan> PlanSessions(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl, const SessionPlanOptions& options = {});

std::string FormatSessionPlan(const model::Specification& spec,
                              const SessionPlan& plan);

}  // namespace bistdse::dse
