// Diagnosis-related design objectives (paper §III-D): test quality (Eq. 4),
// shut-off time (Eq. 5 with the mirrored-transfer time of Eq. 1), and
// monetary costs with gateway pattern-memory sharing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "model/implementation.hpp"
#include "model/specification.hpp"
#include "moea/dominance.hpp"

namespace bistdse::dse {

class ObjectiveStage;

/// Ordered objective-stage pipeline (see dse/evaluation_engine.hpp). The
/// stage list is the single source of truth for the minimization vector's
/// dimensionality and layout.
using StageList = std::vector<std::shared_ptr<const ObjectiveStage>>;

struct Objectives {
  /// Eq. 4 [%]: average stuck-at coverage over allocated ECUs (maximize).
  double test_quality_percent = 0.0;
  /// Eq.-4 analog over the profiles' transition (TDF) coverage — the second
  /// fault model the paper's flow supports. 0 unless profiles carry TDF
  /// numbers.
  double transition_quality_percent = 0.0;
  /// Eq. 5 [ms]: max extra awake time over all BIST sessions (minimize).
  double shutoff_time_ms = 0.0;
  /// Allocated hardware + pattern memory (minimize). Virtual cost metric of
  /// the paper's footnote 1.
  double monetary_cost = 0.0;

  // Fig. 6 breakdowns:
  std::uint64_t gateway_memory_bytes = 0;      ///< Shared, deduplicated.
  std::uint64_t distributed_memory_bytes = 0;  ///< Local per-ECU copies.
  /// Cost share attributable to pattern memory — the "additional costs"
  /// of diagnosis relative to the same design without structural tests.
  double pattern_memory_cost = 0.0;
  std::uint32_t ecus_with_bist = 0;
  std::uint32_t ecus_allocated = 0;
  /// Selected remote-storage programs whose ECU sends no functional payload:
  /// Eq. (1) has no mirrored bandwidth to ride, so the session never
  /// completes. Such implementations carry an infinite shut-off time (they
  /// are dominated away) and this counter makes the rejection explicit.
  std::uint32_t sessions_without_bandwidth = 0;
  /// Sessions failing the frame-accurate operational cross-check. Only
  /// filled when the optional net::MakeSessionVerdictStage() is registered.
  std::uint32_t failed_sessions = 0;

  /// MOEA view: all minimized (quality negated). With
  /// `include_transition_quality` the vector has four dimensions (the
  /// dual-fault-model exploration). Shorthand for the DefaultStages()
  /// layouts of the stage-list overload below.
  moea::ObjectiveVector ToMinimizationVector(
      bool include_transition_quality = false) const {
    if (include_transition_quality) {
      return {-test_quality_percent, -transition_quality_percent,
              shutoff_time_ms, monetary_cost};
    }
    return {-test_quality_percent, shutoff_time_ms, monetary_cost};
  }

  /// MOEA view derived from an explicit stage list: each stage appends its
  /// dimensions in registration order, so the vector layout always matches
  /// what the evaluation engine computed.
  moea::ObjectiveVector ToMinimizationVector(const StageList& stages) const;
};

struct EvaluationOptions {
  /// Model the mirrored download over CAN FD: each functional slot carries a
  /// 64-byte FD payload instead of the classic frame's payload (the slot
  /// timing is unchanged — the FD frame is *shorter* on the wire thanks to
  /// its fast data phase, so the certified schedule still holds).
  bool use_can_fd = false;
  std::uint32_t fd_payload_bytes = 64;
};

/// Evaluates a feasible implementation through the default objective-stage
/// pipeline (see dse/evaluation_engine.hpp — this is the convenience wrapper
/// over DefaultStages()). Gateway-stored encoded pattern sets are
/// deduplicated per (CUT type, profile index) — identical silicon shares one
/// gateway copy (paper §III-D).
Objectives EvaluateImplementation(const model::Specification& spec,
                                  const model::BistAugmentation& augmentation,
                                  const model::Implementation& impl,
                                  const EvaluationOptions& options = {});

}  // namespace bistdse::dse
