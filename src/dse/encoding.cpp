#include "dse/encoding.hpp"

namespace bistdse::dse {

using model::ApplicationGraph;
using model::ResourceId;
using model::TaskId;
using model::TaskKind;
using sat::Lit;
using sat::PosLit;
using sat::NegLit;
using sat::Var;

EncodedProblem::EncodedProblem(const model::Specification& spec,
                               const model::BistAugmentation& augmentation,
                               const sat::SolverConfig& solver_config)
    : spec_(spec), solver_(solver_config) {
  const ApplicationGraph& app = spec.Application();
  const auto mappings = spec.Mappings();

  mapping_vars_.reserve(mappings.size());
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    mapping_vars_.push_back(solver_.NewVar());
  }

  // Functional tasks (incl. b^R): exactly one mapping ([17]).
  // Diagnosis tasks: at most one (Eq. 2a).
  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    const auto options = spec.MappingsOfTask(t);
    if (options.empty()) continue;
    std::vector<Lit> lits;
    lits.reserve(options.size());
    for (std::size_t m : options) lits.push_back(PosLit(mapping_vars_[m]));
    if (app.IsMandatory(t)) {
      solver_.AddExactlyOne(lits);
    } else {
      solver_.AddAtMostOne(lits);
    }
  }

  // Eq. 3a: at most one BIST test task per ECU.
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    std::vector<Lit> lits;
    for (const auto& prog : programs) {
      for (std::size_t m : spec.MappingsOfTask(prog.test_task)) {
        lits.push_back(PosLit(mapping_vars_[m]));
      }
    }
    solver_.AddAtMostOne(lits);
  }

  // Eq. 3b: b^D bound iff b^T bound —
  //   sum(m_bD) = sum(m_bT), with both sums already <= 1.
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      const auto test_opts = spec.MappingsOfTask(prog.test_task);
      const auto data_opts = spec.MappingsOfTask(prog.data_task);
      // b^T -> some b^D option.
      for (std::size_t mt : test_opts) {
        std::vector<Lit> clause{NegLit(mapping_vars_[mt])};
        for (std::size_t md : data_opts)
          clause.push_back(PosLit(mapping_vars_[md]));
        solver_.AddClause(clause);
      }
      // any b^D option -> b^T (test task has a single option).
      for (std::size_t md : data_opts) {
        std::vector<Lit> clause{NegLit(mapping_vars_[md])};
        for (std::size_t mt : test_opts)
          clause.push_back(PosLit(mapping_vars_[mt]));
        solver_.AddClause(clause);
      }
    }
  }

  // Eq. 2h: a diagnosis mapping on resource r requires some non-diagnosis
  // task mapped on r.
  for (ResourceId r = 0; r < spec.Architecture().ResourceCount(); ++r) {
    const auto on_resource = spec.MappingsOnResource(r);
    std::vector<Lit> normal;
    for (std::size_t m : on_resource) {
      if (!model::IsDiagnosis(app.GetTask(mappings[m].task).kind)) {
        normal.push_back(PosLit(mapping_vars_[m]));
      }
    }
    for (std::size_t m : on_resource) {
      if (!model::IsDiagnosis(app.GetTask(mappings[m].task).kind)) continue;
      std::vector<Lit> clause{NegLit(mapping_vars_[m])};
      clause.insert(clause.end(), normal.begin(), normal.end());
      solver_.AddClause(clause);
    }
  }
}

std::vector<std::size_t> EncodedProblem::BindingFromModel() const {
  std::vector<std::size_t> binding;
  for (std::size_t m = 0; m < mapping_vars_.size(); ++m) {
    if (solver_.IsTrue(mapping_vars_[m])) binding.push_back(m);
  }
  return binding;
}

}  // namespace bistdse::dse
