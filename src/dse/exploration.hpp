// The exploration driver: an MOEA (NSGA-II or SPEA2 behind the shared
// moea::Algorithm interface) over SAT-decoding genotypes, evaluated through
// the shared dse::EvaluationEngine — the full design flow of paper Fig. 2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dse/decoder.hpp"
#include "dse/evaluation_engine.hpp"
#include "dse/objectives.hpp"
#include "moea/algorithm.hpp"

namespace bistdse::dse {

/// The exploration's MOEA (see moea/algorithm.hpp for the name parsers).
using MoeaAlgorithm = moea::AlgorithmKind;

struct ExplorationConfig {
  MoeaAlgorithm algorithm = MoeaAlgorithm::Nsga2;
  std::size_t evaluations = 20000;
  std::size_t population_size = 100;
  /// Per-gene mutation probability; <= 0 selects the MOEA's 1/n default.
  /// Plumbed through moea::AlgorithmConfig, so every algorithm honors it.
  double mutation_rate = -1.0;
  std::uint64_t seed = 1;
  /// Validate every decoded implementation against the full constraint
  /// system (Eqs. 2a-2h, 3a, 3b). Costs ~10 % throughput; throws on the
  /// first violation, so it doubles as an internal consistency check.
  bool validate_each_decode = false;
  /// Seed the initial population with design-space corners (no BIST at all;
  /// fastest profile stored locally everywhere; cheapest and best profiles
  /// shared at the gateway), guaranteeing the front spans the whole quality
  /// axis from the first generation.
  bool seed_corners = true;
  /// Stop early when the archive accepts no new point for this many
  /// consecutive generations (0 = run the full evaluation budget).
  std::size_t stagnation_generations = 0;
  /// Optimize transition-test quality as a fourth objective (requires
  /// profiles carrying transition_coverage_percent). Shorthand for
  /// `stages = DefaultStages(true)`.
  bool include_transition_objective = false;
  /// Objective-evaluation options (e.g. CAN FD mirrored downloads).
  EvaluationOptions evaluation;
  /// Parallelism of batched objective evaluation (EvaluationEngineConfig::
  /// threads): 1 = strictly serial, 0 = one chunk per pool worker. The
  /// Pareto front is bit-identical for every value.
  std::size_t threads = 1;
  /// Explicit objective pipeline; empty derives it from
  /// `include_transition_objective` via DefaultStages().
  StageList stages;
  /// SAT-decoding core knobs (inprocessing, learned-clause reduction, tail
  /// decision policy) handed to every decoder session.
  sat::SolverConfig solver;
};

struct ExplorationEntry {
  Objectives objectives;
  model::Implementation implementation;
};

struct ExplorationResult {
  /// Pareto-optimal implementations (non-dominated in all objectives).
  std::vector<ExplorationEntry> pareto;
  std::size_t evaluations = 0;
  /// Evaluations answered from the engine's implementation-signature memo
  /// instead of a full objective evaluation (SAT decoding regularly
  /// reproduces the same implementation from different genotypes).
  std::size_t eval_cache_hits = 0;
  double wall_seconds = 0.0;
  DecoderStats decoder_stats;

  /// Evaluated implementations per second.
  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(evaluations) / wall_seconds
                            : 0.0;
  }
};

class Explorer {
 public:
  /// Owns a private EvaluationEngine configured from `config`.
  /// `spec`/`augmentation` must outlive the explorer.
  Explorer(const model::Specification& spec,
           const model::BistAugmentation& augmentation,
           ExplorationConfig config);

  /// Shares `engine` (and its memo/stages/options) with other explorations —
  /// the island-parallel path. The engine's evaluation settings win over the
  /// corresponding ExplorationConfig fields; `engine` must outlive the
  /// explorer.
  Explorer(EvaluationEngine& engine, ExplorationConfig config);

  ExplorationResult Run(const moea::GenerationCallback& on_generation = {});

  EvaluationEngine& Engine() { return *engine_; }

 private:
  std::unique_ptr<EvaluationEngine> owned_engine_;
  EvaluationEngine* engine_;
  ExplorationConfig config_;
};

}  // namespace bistdse::dse
