// The exploration driver: NSGA-II over SAT-decoding genotypes, evaluating
// test quality / shut-off time / monetary costs — the full design flow of
// paper Fig. 2.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "moea/nsga2.hpp"

namespace bistdse::dse {

enum class MoeaAlgorithm : std::uint8_t { Nsga2, Spea2 };

struct ExplorationConfig {
  MoeaAlgorithm algorithm = MoeaAlgorithm::Nsga2;
  std::size_t evaluations = 20000;
  std::size_t population_size = 100;
  /// Per-gene mutation probability; <= 0 selects the MOEA's 1/n default.
  double mutation_rate = -1.0;
  std::uint64_t seed = 1;
  /// Validate every decoded implementation against the full constraint
  /// system (Eqs. 2a-2h, 3a, 3b). Costs ~10 % throughput; throws on the
  /// first violation, so it doubles as an internal consistency check.
  bool validate_each_decode = false;
  /// Seed the initial population with design-space corners (no BIST at all;
  /// fastest profile stored locally everywhere; cheapest and best profiles
  /// shared at the gateway), guaranteeing the front spans the whole quality
  /// axis from the first generation.
  bool seed_corners = true;
  /// Stop early when the archive accepts no new point for this many
  /// consecutive generations (0 = run the full evaluation budget).
  std::size_t stagnation_generations = 0;
  /// Optimize transition-test quality as a fourth objective (requires
  /// profiles carrying transition_coverage_percent).
  bool include_transition_objective = false;
  /// Objective-evaluation options (e.g. CAN FD mirrored downloads).
  EvaluationOptions evaluation;
};

struct ExplorationEntry {
  Objectives objectives;
  model::Implementation implementation;
};

struct ExplorationResult {
  /// Pareto-optimal implementations (non-dominated in all three objectives).
  std::vector<ExplorationEntry> pareto;
  std::size_t evaluations = 0;
  /// Evaluations answered from the implementation-signature memo instead of
  /// a full objective evaluation (SAT decoding regularly reproduces the same
  /// implementation from different genotypes).
  std::size_t eval_cache_hits = 0;
  double wall_seconds = 0.0;
  DecoderStats decoder_stats;

  /// Evaluated implementations per second.
  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(evaluations) / wall_seconds
                            : 0.0;
  }
};

class Explorer {
 public:
  /// `spec`/`augmentation` must outlive the explorer.
  Explorer(const model::Specification& spec,
           const model::BistAugmentation& augmentation,
           ExplorationConfig config);

  ExplorationResult Run(const moea::GenerationCallback& on_generation = {});

 private:
  const model::Specification& spec_;
  const model::BistAugmentation& augmentation_;
  ExplorationConfig config_;
  SatDecoder decoder_;
};

}  // namespace bistdse::dse
