// The shared genotype -> SAT decode -> objective evaluation layer of the
// design flow (paper Fig. 2), factored out of the exploration drivers so
// every consumer (serial Explorer, island-parallel exploration, memetic
// refinement, benches, the CLI) runs the *same* pipeline:
//
//   * ObjectiveStage — one composable piece of the objective evaluation
//     (test quality Eq. 4, shut-off time Eq. 5 over the Eq.-1 bus loads,
//     monetary cost, optional transition quality, optional plug-in stages
//     such as the frame-accurate session verdict in src/net). The engine's
//     stage list determines both which Objectives fields are filled and the
//     layout of the minimization vector handed to the MOEA.
//   * EvaluationEngine — owns the stage list and a thread-safe,
//     content-addressed implementation-signature memo shared by all its
//     sessions (the SAT decoder maps many genotypes to few distinct
//     implementations; islands used to rebuild this cache per island).
//   * EvaluationEngine::Session — one single-threaded SAT decoder bound to
//     the shared engine. Each island/exploration drives its own session;
//     batched evaluation decodes sequentially (the decoder is stateful) and
//     evaluates distinct uncached implementations in parallel on the shared
//     util::ThreadPool.
//
// Determinism contract (mirrors the fault-simulation layer of PR 1): for a
// fixed seed the produced objective vectors — and therefore the Pareto
// front — are bit-identical for every `threads` setting, because stages are
// pure functions of the implementation and batch results are consumed in
// genotype order.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "can/message.hpp"
#include "dse/decoder.hpp"
#include "dse/objectives.hpp"
#include "moea/genotype.hpp"
#include "util/concurrent_memo.hpp"

namespace bistdse::dse {

/// Shared per-implementation intermediates, computed once and read by every
/// stage: task placements, the functional TX message sets of Eq. (1), and
/// the placement/transfer timing of each BIST program.
struct EvaluationContext {
  EvaluationContext(const model::Specification& spec,
                    const model::BistAugmentation& augmentation,
                    const model::Implementation& impl,
                    const EvaluationOptions& options);

  const model::Specification& spec;
  const model::BistAugmentation& augmentation;
  const model::Implementation& impl;
  const EvaluationOptions& options;

  /// Resource of every bound task (one pass over the binding).
  std::map<model::TaskId, model::ResourceId> bound_at;
  /// Functional TX messages per ECU — the set I of Eq. (1).
  std::map<model::ResourceId, std::vector<can::CanMessage>> tx_messages;

  /// Placement of one BIST program (in augmentation iteration order, which
  /// is deterministic — programs_by_ecu is an ordered map).
  struct ProgramPlacement {
    const model::BistProgram* program = nullptr;
    model::ResourceId ecu = model::kInvalidId;
    bool test_bound = false;
    bool data_bound = false;
    model::ResourceId data_at = model::kInvalidId;  ///< Valid if data_bound.
    /// Eq. (1) mirrored-transfer time (or its CAN FD variant); 0 for local
    /// storage, +inf when the ECU sends no functional payload to ride.
    double transfer_ms = 0.0;
    /// l(b) + transfer; 0 unless the test task is bound.
    double session_ms = 0.0;
  };
  std::vector<ProgramPlacement> programs;

  std::uint32_t ecus_allocated = 0;
};

/// One composable piece of the objective evaluation. Stages are stateless
/// and must be pure functions of the context; field writes into Objectives
/// must be idempotent assignments (never accumulations across stages), so a
/// stage list stays order-insensitive in the fields it fills.
class ObjectiveStage {
 public:
  virtual ~ObjectiveStage() = default;

  virtual std::string_view Name() const = 0;
  /// Dimensions this stage contributes to the minimization vector.
  virtual std::size_t Dimensions() const = 0;
  /// Fills this stage's Objectives fields from the shared context.
  virtual void Evaluate(const EvaluationContext& context,
                        Objectives& out) const = 0;
  /// Appends this stage's minimized dimensions (in a fixed order).
  virtual void AppendMinimization(const Objectives& objectives,
                                  moea::ObjectiveVector& out) const = 0;
};

/// Built-in stages of the paper's objective space.
std::shared_ptr<const ObjectiveStage> MakeTestQualityStage();       ///< Eq. 4
std::shared_ptr<const ObjectiveStage> MakeTransitionQualityStage(); ///< Eq.-4 TDF analog
std::shared_ptr<const ObjectiveStage> MakeShutoffStage();           ///< Eq. 5 over Eq. 1
std::shared_ptr<const ObjectiveStage> MakeMonetaryCostStage();      ///< footnote-1 costs

/// The canonical stage lists: {quality, shut-off, cost}, and with
/// `include_transition_quality` the dual-fault-model layout {quality,
/// transition quality, shut-off, cost} — both matching the historical
/// Objectives::ToMinimizationVector(bool) layouts.
StageList DefaultStages(bool include_transition_quality = false);

/// Runs `stages` over one implementation (no memo involved).
Objectives EvaluateWithStages(const model::Specification& spec,
                              const model::BistAugmentation& augmentation,
                              const model::Implementation& impl,
                              const EvaluationOptions& options,
                              const StageList& stages);

/// FNV-1a content hash of a decoded implementation (allocation + binding +
/// routing). Objective evaluation is a pure function of the implementation,
/// so equal signatures share one memoized evaluation.
std::uint64_t ImplementationSignature(const model::Implementation& impl);

struct EvaluationEngineConfig {
  /// Validate every decoded implementation against the full constraint
  /// system (Eqs. 2a-2h, 3a, 3b). Costs ~10 % throughput; throws on the
  /// first violation, so it doubles as an internal consistency check.
  bool validate_each_decode = false;
  /// Parallelism of batched objective evaluation on the shared
  /// util::ThreadPool. 1 = strictly serial (the bit-reference path);
  /// 0 = one chunk per pool worker. Results are identical for any value.
  std::size_t threads = 1;
  /// Objective-evaluation options (e.g. CAN FD mirrored downloads) passed to
  /// every stage via the context.
  EvaluationOptions evaluation;
  /// Objective pipeline; empty selects DefaultStages(false).
  StageList stages;
  /// Behavior knobs of the SAT-decoding core (inprocessing, learned-clause
  /// reduction, tail decision policy) used by every session's decoder.
  sat::SolverConfig solver;
};

class EvaluationEngine {
 public:
  /// One decoded + evaluated genotype.
  struct Evaluated {
    Objectives objectives;
    moea::ObjectiveVector vector;  ///< objectives through the stage list.
    model::Implementation implementation;
    bool cache_hit = false;  ///< Objectives answered from the shared memo.
  };

  /// `spec`/`augmentation` must outlive the engine (and its sessions).
  EvaluationEngine(const model::Specification& spec,
                   const model::BistAugmentation& augmentation,
                   EvaluationEngineConfig config = {});

  const model::Specification& Spec() const { return spec_; }
  const model::BistAugmentation& Augmentation() const { return augmentation_; }
  const EvaluationEngineConfig& Config() const { return config_; }
  const StageList& Stages() const { return config_.stages; }

  /// Total dimensions of the minimization vector (sum over stages).
  std::size_t ObjectiveDimensions() const;

  /// Stage-pipeline evaluation of one implementation, bypassing the memo
  /// (used for externally produced implementations, e.g. refinement moves).
  Objectives Evaluate(const model::Implementation& impl) const;
  /// Memoized variant keyed by ImplementationSignature().
  Objectives EvaluateCached(const model::Implementation& impl,
                            bool* cache_hit = nullptr);

  moea::ObjectiveVector Minimize(const Objectives& objectives) const {
    return objectives.ToMinimizationVector(config_.stages);
  }

  /// Memo hits across every session of this engine.
  std::uint64_t CacheHits() const { return cache_hits_.load(); }
  /// Distinct implementations evaluated so far.
  std::size_t CacheSize() const { return memo_.Size(); }

  /// One exploration's decode + evaluate front end: owns a (stateful,
  /// single-threaded) SAT decoder, shares the engine's memo and stages.
  /// Create one session per island/thread; a session itself must not be
  /// used concurrently.
  class Session {
   public:
    explicit Session(EvaluationEngine& engine);

    std::size_t GenotypeSize() const { return decoder_.GenotypeSize(); }
    const DecoderStats& Decoder() const { return decoder_.Stats(); }
    /// Memo hits scored by this session.
    std::uint64_t CacheHits() const { return cache_hits_; }
    EvaluationEngine& Engine() { return engine_; }

    /// Decodes + evaluates one genotype; nullopt when the decode is
    /// infeasible.
    std::optional<Evaluated> Evaluate(const moea::Genotype& genotype);

    /// Batched population evaluation: decodes sequentially, then evaluates
    /// the distinct uncached implementations in parallel (engine threads
    /// permitting). results[i] corresponds to genotypes[i]; the observable
    /// results are bit-identical to calling Evaluate() in a loop.
    std::vector<std::optional<Evaluated>> EvaluateBatch(
        std::span<const moea::Genotype> genotypes);

   private:
    EvaluationEngine& engine_;
    SatDecoder decoder_;
    std::uint64_t cache_hits_ = 0;
  };

  Session NewSession() { return Session(*this); }

 private:
  friend class Session;

  const model::Specification& spec_;
  const model::BistAugmentation& augmentation_;
  EvaluationEngineConfig config_;
  util::ConcurrentMemo<std::uint64_t, Objectives> memo_;
  std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace bistdse::dse
