#include "dse/refine.hpp"

#include <algorithm>
#include <deque>

#include "dse/evaluation_engine.hpp"
#include "moea/archive.hpp"
#include "util/rng.hpp"

namespace bistdse::dse {

using model::Implementation;
using model::ResourceId;

namespace {

/// Mapping index of `task` onto `resource`, or npos.
std::size_t MappingIndex(const model::Specification& spec, model::TaskId task,
                         ResourceId resource) {
  for (std::size_t m : spec.MappingsOfTask(task)) {
    if (spec.Mappings()[m].resource == resource) return m;
  }
  return static_cast<std::size_t>(-1);
}

/// Binding without any mapping whose task is in `tasks`.
std::vector<std::size_t> WithoutTasks(const model::Specification& spec,
                                      const std::vector<std::size_t>& binding,
                                      std::initializer_list<model::TaskId> tasks) {
  std::vector<std::size_t> out;
  out.reserve(binding.size());
  for (std::size_t m : binding) {
    bool drop = false;
    for (model::TaskId t : tasks) drop |= spec.Mappings()[m].task == t;
    if (!drop) out.push_back(m);
  }
  return out;
}

}  // namespace

RefineResult RefineFront(const model::Specification& spec,
                         const model::BistAugmentation& augmentation,
                         std::span<const ExplorationEntry> front,
                         const RefineOptions& options) {
  RefineResult result;
  util::SplitMix64 rng(options.seed);
  const ResourceId gateway = spec.Architecture().Gateway();

  // Refinement moves produce implementations directly (no genotypes), so
  // only the engine's stage pipeline and memo are used — same objective
  // arithmetic as the exploration that produced `front`.
  EvaluationEngine engine(spec, augmentation);

  moea::ParetoArchive archive;
  std::vector<ExplorationEntry> store;
  std::deque<std::size_t> worklist;  // indices into store

  auto offer = [&](ExplorationEntry entry) -> bool {
    const auto vec = engine.Minimize(entry.objectives);
    if (!archive.Offer(vec, store.size())) return false;
    worklist.push_back(store.size());
    store.push_back(std::move(entry));
    return true;
  };
  for (const auto& entry : front) offer(entry);
  result.improvements = 0;

  auto try_neighbor = [&](Implementation neighbor) {
    if (result.evaluations >= options.max_evaluations) return;
    if (!model::CompleteRoutingAndAllocation(spec, neighbor)) return;
    if (!model::ValidateImplementation(spec, neighbor).empty()) return;
    ++result.evaluations;
    const auto objectives = engine.EvaluateCached(neighbor);
    ExplorationEntry entry{objectives, std::move(neighbor)};
    if (offer(std::move(entry))) ++result.improvements;
  };

  while (!worklist.empty() &&
         result.evaluations < options.max_evaluations) {
    const std::size_t index = worklist.front();
    worklist.pop_front();
    const Implementation base = store[index].implementation;  // copy: store grows

    for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
      if (result.evaluations >= options.max_evaluations) break;
      // Currently selected program on this ECU, if any.
      const model::BistProgram* selected = nullptr;
      ResourceId data_at = model::kInvalidId;
      for (const auto& prog : programs) {
        if (base.IsBound(spec, prog.test_task)) {
          selected = &prog;
          if (auto r = base.BoundResource(spec, prog.data_task)) data_at = *r;
          break;
        }
      }
      if (selected == nullptr) continue;

      // Move 1: toggle the pattern store of the selected program.
      {
        Implementation n;
        n.binding = WithoutTasks(spec, base.binding, {selected->data_task});
        const ResourceId target = data_at == ecu ? gateway : ecu;
        n.binding.push_back(MappingIndex(spec, selected->data_task, target));
        try_neighbor(std::move(n));
      }
      // Move 2: drop BIST from this ECU.
      {
        Implementation n;
        n.binding = WithoutTasks(spec, base.binding,
                                 {selected->test_task, selected->data_task});
        try_neighbor(std::move(n));
      }
      // Move 3: switch to a few random alternative profiles (same store).
      for (int k = 0; k < 3; ++k) {
        const auto& alt = programs[rng.Below(programs.size())];
        if (alt.test_task == selected->test_task) continue;
        Implementation n;
        n.binding = WithoutTasks(spec, base.binding,
                                 {selected->test_task, selected->data_task});
        n.binding.push_back(MappingIndex(spec, alt.test_task, ecu));
        n.binding.push_back(MappingIndex(
            spec, alt.data_task, data_at == ecu ? ecu : gateway));
        try_neighbor(std::move(n));
      }
    }
  }

  for (const auto& entry : archive.Entries()) {
    result.pareto.push_back(store[entry.payload]);
  }
  return result;
}

}  // namespace bistdse::dse
