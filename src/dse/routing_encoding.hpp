// Complete ILP encoding of paper §III-C including the time-indexed routing
// variables:
//
//   m       — mapping selected                      (Theta, first block)
//   c_r     — message c routed over resource r      (second block)
//   c_{r,t} — ... at time step t                    (third block)
//
// with constraints Eqs. 2a-2h and 3a/3b exactly as printed. The default
// decoder (dse::SatDecoder) derives routes deterministically because they
// are unique on tree-shaped automotive topologies; this encoding searches
// them, which (a) certifies the derived router against the paper's
// characteristic function and (b) supports redundant (non-tree)
// architectures where several routes exist per message.
//
// Per-message resource candidates are pruned to the resources reachable
// within `max_hops` of any sender mapping (otherwise |C| x |R| x |T|
// variables explode); this is a standard model-pruning step that removes
// only provably unusable variables.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "dse/decoder.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"
#include "moea/genotype.hpp"
#include "sat/solver.hpp"

namespace bistdse::dse {

class RoutedEncodedProblem {
 public:
  RoutedEncodedProblem(const model::Specification& spec,
                       const model::BistAugmentation& augmentation,
                       std::uint32_t max_hops = 5,
                       const sat::SolverConfig& solver_config = {});

  sat::Solver& SolverRef() { return solver_; }
  const std::vector<sat::Var>& MappingVars() const { return mapping_vars_; }
  std::size_t VariableCount() const { return solver_.VarCount(); }

  /// Extracts the full implementation (binding + solver-chosen routes,
  /// ordered by time step) from a SAT model.
  model::Implementation ImplementationFromModel() const;

 private:
  struct MessageVars {
    std::vector<model::ResourceId> candidates;  // pruned resource set
    std::vector<sat::Var> on_resource;          // c_r, aligned with candidates
    std::vector<std::vector<sat::Var>> at_time;  // c_{r,t} [candidate][t]
  };

  void EncodeMappingConstraints(const model::BistAugmentation& augmentation);
  void EncodeRouting(model::MessageId c);

  const model::Specification& spec_;
  std::uint32_t max_hops_;
  sat::Solver solver_;
  std::vector<sat::Var> mapping_vars_;
  std::map<model::MessageId, MessageVars> message_vars_;
};

/// SAT decoder over the complete (routing-inclusive) encoding. Same genotype
/// convention as dse::SatDecoder: genes address the mapping variables; the
/// routing variables are decided by the solver (preferred phase false, so
/// routes stay minimal-ish).
class RoutedSatDecoder {
 public:
  RoutedSatDecoder(const model::Specification& spec,
                   const model::BistAugmentation& augmentation,
                   std::uint32_t max_hops = 5,
                   const sat::SolverConfig& solver_config = {});

  std::size_t GenotypeSize() const { return problem_.MappingVars().size(); }
  std::size_t VariableCount() const { return problem_.VariableCount(); }

  std::optional<model::Implementation> Decode(const moea::Genotype& genotype);

  const DecoderStats& Stats() const { return stats_; }

 private:
  const model::Specification& spec_;
  RoutedEncodedProblem problem_;
  DecoderStats stats_;
};

}  // namespace bistdse::dse
