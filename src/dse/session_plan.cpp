#include "dse/session_plan.hpp"

#include <cmath>
#include <sstream>

#include "can/mirroring.hpp"

namespace bistdse::dse {

using model::Message;
using model::ResourceId;
using model::TaskId;

std::vector<SessionPlan> PlanSessions(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl, const SessionPlanOptions& options) {
  const auto& app = spec.Application();
  std::vector<SessionPlan> plans;

  std::map<TaskId, ResourceId> bound_at;
  for (std::size_t m : impl.binding) {
    bound_at[spec.Mappings()[m].task] = spec.Mappings()[m].resource;
  }
  std::map<ResourceId, std::vector<can::CanMessage>> tx_messages;
  for (model::MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    const auto it = bound_at.find(msg.sender);
    if (it == bound_at.end()) continue;
    can::CanMessage cm;
    cm.name = msg.name;
    cm.payload_bytes = msg.payload_bytes;
    cm.period_ms = msg.period_ms;
    tx_messages[it->second].push_back(cm);
  }

  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : programs) {
      if (!bound_at.count(prog.test_task)) continue;
      const auto& test = app.GetTask(prog.test_task);
      const auto& data = app.GetTask(prog.data_task);

      SessionPlan plan;
      plan.ecu = ecu;
      plan.profile_index = prog.profile_index;
      const auto data_it = bound_at.find(prog.data_task);
      plan.patterns_local = data_it != bound_at.end() && data_it->second == ecu;

      const auto tx_it = tx_messages.find(ecu);
      const std::span<const can::CanMessage> tx =
          tx_it == tx_messages.end()
              ? std::span<const can::CanMessage>{}
              : std::span<const can::CanMessage>(tx_it->second);

      double t = 0.0;
      auto phase = [&](std::string name, double duration) {
        plan.phases.push_back({std::move(name), t, duration});
        t += duration;
      };

      if (!plan.patterns_local) {
        const double transfer =
            can::MirroredTransferTimeMs(data.data_bytes, tx);
        if (!std::isfinite(transfer)) {
          // No mirrored bandwidth (ECU sends nothing): casting the +inf
          // frame count below would be UB, so reject the plan explicitly.
          plan.feasible = false;
          plan.phases.push_back({"pattern download (mirrored slots)", t,
                                 transfer});
          plan.total_ms = transfer;
          plans.push_back(std::move(plan));
          continue;
        }
        phase("pattern download (mirrored slots)", transfer);
        // One frame per mirrored slot firing during the transfer.
        for (const can::CanMessage& m : tx) {
          plan.download_frames += static_cast<std::uint64_t>(
              std::ceil(transfer / m.period_ms));
        }
      }
      phase("BIST session (shift/capture + windows)", test.runtime_ms);

      // Fail-data upload: the fixed-size fail memory over the same slots.
      double upload = 0.0;
      if (!tx.empty()) {
        upload = can::MirroredTransferTimeMs(bist::kFailDataBytes, tx);
        if (!std::isfinite(upload)) {
          // Zero-payload functional set: same divergence as the download.
          plan.feasible = false;
          plan.phases.push_back({"fail-data upload to b^R", t, upload});
          plan.total_ms = upload;
          plans.push_back(std::move(plan));
          continue;
        }
        for (const can::CanMessage& m : tx) {
          plan.fail_data_frames += static_cast<std::uint64_t>(
              std::ceil(upload / m.period_ms));
        }
      }
      phase("fail-data upload to b^R", upload);
      phase("functional state restore", options.state_restore_ms);

      plan.total_ms = t;
      plans.push_back(std::move(plan));
    }
  }
  return plans;
}

std::string FormatSessionPlan(const model::Specification& spec,
                              const SessionPlan& plan) {
  std::ostringstream ss;
  ss << spec.Architecture().GetResource(plan.ecu).name << ", profile "
     << plan.profile_index + 1 << ", patterns "
     << (plan.patterns_local ? "local" : "remote") << ", total "
     << plan.total_ms << " ms\n";
  if (!plan.feasible) {
    ss << "  INFEASIBLE: no mirrored bandwidth"
          " (ECU sends no functional payload)\n";
  }
  for (const SessionPhase& phase : plan.phases) {
    ss << "  [" << phase.start_ms << " .. "
       << phase.start_ms + phase.duration_ms << " ms] " << phase.name << "\n";
  }
  if (plan.download_frames > 0) {
    ss << "  download frames: " << plan.download_frames << "\n";
  }
  ss << "  fail-data frames: " << plan.fail_data_frames << "\n";
  return ss.str();
}

}  // namespace bistdse::dse
