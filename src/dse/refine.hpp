// Memetic post-processing of an exploration front: implementation-level
// local moves that the gene-level MOEA reaches only slowly — switching one
// ECU's profile, toggling one pattern store between ECU and gateway, or
// dropping one BIST program. Neighbors are validated and offered to the
// Pareto archive; accepted points are refined further (budgeted).
//
// This is an *extension* over the paper's flow (a standard memetic layer on
// top of SAT-decoding); bench_convergence quantifies its effect.
#pragma once

#include <cstdint>

#include "dse/exploration.hpp"

namespace bistdse::dse {

struct RefineOptions {
  std::size_t max_evaluations = 10000;
  std::uint64_t seed = 1;
};

struct RefineResult {
  std::vector<ExplorationEntry> pareto;  ///< Refined non-dominated set.
  std::size_t evaluations = 0;           ///< Neighbor evaluations spent.
  std::size_t improvements = 0;          ///< Archive acceptances.
};

/// Refines `front` (e.g. ExplorationResult::pareto) by local search.
RefineResult RefineFront(const model::Specification& spec,
                         const model::BistAugmentation& augmentation,
                         std::span<const ExplorationEntry> front,
                         const RefineOptions& options = {});

}  // namespace bistdse::dse
