#include "dse/bus_load.hpp"

#include <algorithm>
#include <limits>

namespace bistdse::dse {

using model::Message;
using model::MessageId;
using model::ResourceId;
using model::ResourceKind;
using model::TaskId;

RoutedBusNetwork BuildRoutedBusNetwork(const model::Specification& spec,
                                       const model::Implementation& impl,
                                       std::uint32_t id_stride) {
  const auto& app = spec.Application();
  const auto& arch = spec.Architecture();
  RoutedBusNetwork net;

  // Functional messages per bus, ordered by (period, id) for priority
  // assignment: rate-monotonic-style, shorter period = higher priority.
  for (const auto& [c, path] : impl.routing) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    for (ResourceId r : path) {
      if (arch.GetResource(r).kind == ResourceKind::Bus) {
        net.per_bus[r].push_back(c);
      }
    }
  }

  // Gateways re-map identifiers per segment: a message crossing two buses
  // has one id per bus.
  for (auto& [bus_id, messages] : net.per_bus) {
    std::sort(messages.begin(), messages.end(),
              [&](MessageId a, MessageId b) {
                const auto& ma = app.GetMessage(a);
                const auto& mb = app.GetMessage(b);
                if (ma.period_ms != mb.period_ms)
                  return ma.period_ms < mb.period_ms;
                return a < b;
              });
    can::CanBus bus(arch.GetResource(bus_id).name,
                    arch.GetResource(bus_id).bus_bitrate_bps);
    can::CanId next_id = 0;
    for (MessageId c : messages) {
      const Message& msg = app.GetMessage(c);
      can::CanMessage cm;
      cm.name = msg.name;
      cm.id = next_id;
      cm.payload_bytes = msg.payload_bytes;
      cm.period_ms = msg.period_ms;
      bus.AddMessage(cm);
      net.id_of[{bus_id, c}] = next_id;
      next_id += id_stride;
    }
    net.buses.emplace(bus_id, std::move(bus));
  }
  return net;
}

BusLoadReport BusLoadValidator::Validate(
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl) const {
  const auto& app = spec_.Application();
  const auto& arch = spec_.Architecture();
  BusLoadReport report;

  std::map<TaskId, ResourceId> bound_at;
  for (std::size_t m : impl.binding) {
    bound_at[spec_.Mappings()[m].task] = spec_.Mappings()[m].resource;
  }

  RoutedBusNetwork routed = BuildRoutedBusNetwork(spec_, impl, id_stride_);
  auto& per_bus = routed.per_bus;
  auto& buses = routed.buses;
  auto& id_of = routed.id_of;
  for (const auto& [bus_id, messages] : per_bus) {
    const can::CanBus& bus = buses.at(bus_id);
    BusLoadEntry entry;
    entry.bus = bus_id;
    entry.utilization = bus.Utilization();
    entry.schedulable = bus.Schedulable();
    entry.message_count = messages.size();
    report.all_schedulable &= entry.schedulable;
    report.buses.push_back(entry);
  }

  // End-to-end latency per routed functional message: the sum of the WCRT
  // on every traversed bus plus a store-and-forward delay per gateway
  // crossing (deadline = period, the usual implicit-deadline assumption).
  for (const auto& [c, path] : impl.routing) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    EndToEndLatency e2e;
    e2e.message = c;
    for (ResourceId r : path) {
      if (arch.GetResource(r).kind == ResourceKind::Bus) {
        ++e2e.hops;
        const auto it = buses.find(r);
        if (it == buses.end()) continue;
        const auto rt = it->second.ResponseTime(id_of[{r, c}]);
        if (rt) {
          e2e.worst_case_ms += rt->worst_case_ms;
        } else {
          e2e.worst_case_ms = std::numeric_limits<double>::infinity();
        }
      } else if (arch.GetResource(r).kind == ResourceKind::Gateway) {
        e2e.worst_case_ms += gateway_delay_ms_;
      }
    }
    if (e2e.hops == 0) continue;  // local message, nothing on the wire
    e2e.within_period = e2e.worst_case_ms <= msg.period_ms;
    report.all_within_period &= e2e.within_period;
    report.end_to_end.push_back(e2e);
  }

  // Mirrored-transfer non-intrusiveness per selected remote-storage program.
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    // The ECU's attached bus (tree topology: exactly one).
    ResourceId ecu_bus = model::kInvalidId;
    for (ResourceId n : arch.Neighbors(ecu)) {
      if (arch.GetResource(n).kind == ResourceKind::Bus) {
        ecu_bus = n;
        break;
      }
    }
    if (ecu_bus == model::kInvalidId || !buses.count(ecu_bus)) continue;
    const can::CanBus& bus = buses.at(ecu_bus);

    // Functional TX messages of this ECU on its bus.
    std::vector<can::CanMessage> ecu_tx;
    for (MessageId c : per_bus[ecu_bus]) {
      const Message& msg = app.GetMessage(c);
      const auto it = bound_at.find(msg.sender);
      if (it == bound_at.end() || it->second != ecu) continue;
      for (const can::CanMessage& cm : bus.Messages()) {
        if (cm.id == id_of[{ecu_bus, c}]) {
          ecu_tx.push_back(cm);
          break;
        }
      }
    }
    if (ecu_tx.empty()) continue;

    for (const auto& prog : programs) {
      const auto data_it = bound_at.find(prog.data_task);
      if (!bound_at.count(prog.test_task) || data_it == bound_at.end() ||
          data_it->second == ecu) {
        continue;  // not selected, or local storage: nothing on the wire
      }
      const auto mirrored = can::MakeMirroredMessages(ecu_tx, 1);
      const auto verdict = can::CheckNonIntrusiveness(bus, ecu_tx, mirrored);
      ++report.mirrored_transfers_checked;
      if (!verdict.non_intrusive) ++report.mirrored_transfers_intrusive;
    }
  }
  return report;
}

}  // namespace bistdse::dse
