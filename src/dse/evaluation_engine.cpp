#include "dse/evaluation_engine.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "can/canfd.hpp"
#include "can/mirroring.hpp"
#include "util/thread_pool.hpp"

namespace bistdse::dse {

using model::ApplicationGraph;
using model::Message;
using model::ResourceId;
using model::Task;
using model::TaskId;

std::uint64_t ImplementationSignature(const model::Implementation& impl) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(impl.allocation.size());
  for (const bool a : impl.allocation) mix(a);
  mix(impl.binding.size());
  for (const std::size_t b : impl.binding) mix(b);
  mix(impl.routing.size());
  for (const auto& [msg, path] : impl.routing) {
    mix(msg);
    mix(path.size());
    for (const ResourceId r : path) mix(r);
  }
  return h;
}

EvaluationContext::EvaluationContext(const model::Specification& spec,
                                     const model::BistAugmentation& augmentation,
                                     const model::Implementation& impl,
                                     const EvaluationOptions& options)
    : spec(spec), augmentation(augmentation), impl(impl), options(options) {
  const ApplicationGraph& app = spec.Application();
  const auto& arch = spec.Architecture();

  for (std::size_t m : impl.binding) {
    bound_at[spec.Mappings()[m].task] = spec.Mappings()[m].resource;
  }

  for (model::MessageId c = 0; c < app.MessageCount(); ++c) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    const auto it = bound_at.find(msg.sender);
    if (it == bound_at.end()) continue;
    can::CanMessage cm;
    cm.name = msg.name;
    cm.payload_bytes = msg.payload_bytes;
    cm.period_ms = msg.period_ms;
    tx_messages[it->second].push_back(cm);
  }

  for (const auto& [ecu, ecu_programs] : augmentation.programs_by_ecu) {
    for (const auto& prog : ecu_programs) {
      ProgramPlacement placement;
      placement.program = &prog;
      placement.ecu = ecu;
      const auto test_it = bound_at.find(prog.test_task);
      placement.test_bound = test_it != bound_at.end();
      const auto data_it = bound_at.find(prog.data_task);
      placement.data_bound = data_it != bound_at.end();
      if (placement.data_bound) placement.data_at = data_it->second;

      if (placement.test_bound) {
        const Task& test = app.GetTask(prog.test_task);
        const Task& data = app.GetTask(prog.data_task);
        placement.session_ms = test.runtime_ms;
        if (placement.data_bound && placement.data_at != ecu) {
          // Patterns transmitted first: Eq. (1) over the ECU's functional
          // messages (or their CAN FD upgrades).
          const auto tx_it = tx_messages.find(ecu);
          const std::span<const can::CanMessage> tx =
              tx_it == tx_messages.end()
                  ? std::span<const can::CanMessage>{}
                  : std::span<const can::CanMessage>(tx_it->second);
          double transfer_ms = 0.0;
          if (options.use_can_fd && !tx.empty()) {
            double bytes_per_ms = 0.0;
            for (const can::CanMessage& m : tx) {
              bytes_per_ms +=
                  static_cast<double>(can::RoundUpFdPayload(
                      options.fd_payload_bytes)) /
                  m.period_ms;
            }
            transfer_ms = static_cast<double>(data.data_bytes) / bytes_per_ms;
          } else {
            transfer_ms = can::MirroredTransferTimeMs(data.data_bytes, tx);
          }
          placement.transfer_ms = transfer_ms;
          placement.session_ms += transfer_ms;
        }
      }
      programs.push_back(placement);
    }
  }

  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    if (r >= impl.allocation.size() || !impl.allocation[r]) continue;
    if (arch.GetResource(r).kind == model::ResourceKind::Ecu) ++ecus_allocated;
  }
}

namespace {

/// Gateway memory dedup key: (cut type, profile index) — identical silicon
/// shares one encoded copy.
std::uint64_t ProfileKey(const model::BistProgram& prog) {
  return (static_cast<std::uint64_t>(prog.cut_type) << 32) |
         prog.profile_index;
}

/// Eq. 4 average stuck-at coverage over allocated ECUs (maximized), plus the
/// ECU counters and the TDF analog (the transition field is also filled here
/// so Objectives stays fully populated whether or not the transition stage
/// is registered — matching the historical monolith).
class TestQualityStage final : public ObjectiveStage {
 public:
  std::string_view Name() const override { return "test_quality"; }
  std::size_t Dimensions() const override { return 1; }
  void Evaluate(const EvaluationContext& context,
                Objectives& out) const override {
    const ApplicationGraph& app = context.spec.Application();
    double coverage_sum = 0.0;
    double transition_sum = 0.0;
    std::uint32_t with_bist = 0;
    for (const auto& placement : context.programs) {
      if (!placement.test_bound) continue;
      const Task& test = app.GetTask(placement.program->test_task);
      coverage_sum += test.fault_coverage_percent;
      transition_sum += test.transition_coverage_percent;
      ++with_bist;
    }
    out.ecus_with_bist = with_bist;
    out.ecus_allocated = context.ecus_allocated;
    const auto ecus = static_cast<double>(context.ecus_allocated);
    out.test_quality_percent =
        context.ecus_allocated == 0 ? 0.0 : coverage_sum / ecus;
    out.transition_quality_percent =
        context.ecus_allocated == 0 ? 0.0 : transition_sum / ecus;
  }
  void AppendMinimization(const Objectives& objectives,
                          moea::ObjectiveVector& out) const override {
    out.push_back(-objectives.test_quality_percent);
  }
};

/// Eq.-4 analog over the profiles' transition (TDF) coverage — the second
/// fault model of the dual-model exploration. Evaluation is idempotent with
/// TestQualityStage's fill; this stage's reason to exist is the extra
/// minimization dimension.
class TransitionQualityStage final : public ObjectiveStage {
 public:
  std::string_view Name() const override { return "transition_quality"; }
  std::size_t Dimensions() const override { return 1; }
  void Evaluate(const EvaluationContext& context,
                Objectives& out) const override {
    const ApplicationGraph& app = context.spec.Application();
    double transition_sum = 0.0;
    for (const auto& placement : context.programs) {
      if (!placement.test_bound) continue;
      transition_sum +=
          app.GetTask(placement.program->test_task).transition_coverage_percent;
    }
    out.transition_quality_percent =
        context.ecus_allocated == 0
            ? 0.0
            : transition_sum / static_cast<double>(context.ecus_allocated);
  }
  void AppendMinimization(const Objectives& objectives,
                          moea::ObjectiveVector& out) const override {
    out.push_back(-objectives.transition_quality_percent);
  }
};

/// Eq. 5 shut-off time (maximum extra awake time over all BIST sessions,
/// minimized), riding on the Eq.-1 mirrored-transfer/bus-load timings the
/// context computed. Remote-storage programs whose ECU sends no functional
/// payload have no mirrored bandwidth to ride — infinite shut-off, counted
/// in sessions_without_bandwidth.
class ShutoffStage final : public ObjectiveStage {
 public:
  std::string_view Name() const override { return "shutoff_bus_load"; }
  std::size_t Dimensions() const override { return 1; }
  void Evaluate(const EvaluationContext& context,
                Objectives& out) const override {
    double shutoff_ms = 0.0;
    std::uint32_t without_bandwidth = 0;
    for (const auto& placement : context.programs) {
      if (!placement.test_bound) continue;
      if (placement.data_bound && placement.data_at != placement.ecu &&
          !std::isfinite(placement.transfer_ms)) {
        ++without_bandwidth;
      }
      shutoff_ms = std::max(shutoff_ms, placement.session_ms);
    }
    out.shutoff_time_ms = shutoff_ms;
    out.sessions_without_bandwidth = without_bandwidth;
  }
  void AppendMinimization(const Objectives& objectives,
                          moea::ObjectiveVector& out) const override {
    out.push_back(objectives.shutoff_time_ms);
  }
};

/// Allocated hardware + pattern memory (minimized) — the virtual cost metric
/// of the paper's footnote 1, with gateway pattern-memory deduplication per
/// (CUT type, profile index).
class MonetaryCostStage final : public ObjectiveStage {
 public:
  std::string_view Name() const override { return "monetary_cost"; }
  std::size_t Dimensions() const override { return 1; }
  void Evaluate(const EvaluationContext& context,
                Objectives& out) const override {
    const ApplicationGraph& app = context.spec.Application();
    const auto& arch = context.spec.Architecture();
    const ResourceId gateway = arch.Gateway();

    double cost = 0.0;
    for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
      if (r < context.impl.allocation.size() && context.impl.allocation[r]) {
        cost += arch.GetResource(r).base_cost;
      }
    }

    // Distributed pattern memory: per-ECU copies at the ECU's byte cost.
    double memory_cost = 0.0;
    std::uint64_t distributed_bytes = 0;
    std::set<std::uint64_t> gateway_profiles;
    std::map<std::uint64_t, std::uint64_t> profile_bytes;
    for (const auto& placement : context.programs) {
      const model::BistProgram& prog = *placement.program;
      profile_bytes[ProfileKey(prog)] = app.GetTask(prog.data_task).data_bytes;
      if (!placement.data_bound) continue;
      if (placement.data_at == placement.ecu) {
        memory_cost +=
            arch.GetResource(placement.ecu).cost_per_byte *
            static_cast<double>(app.GetTask(prog.data_task).data_bytes);
        if (placement.test_bound) {
          distributed_bytes += app.GetTask(prog.data_task).data_bytes;
        }
      } else if (placement.test_bound && placement.data_at == gateway) {
        gateway_profiles.insert(ProfileKey(prog));
      }
    }
    // Gateway pattern memory: one copy per distinct profile.
    std::uint64_t gw_bytes = 0;
    for (std::uint64_t p : gateway_profiles) gw_bytes += profile_bytes[p];
    memory_cost +=
        arch.GetResource(gateway).cost_per_byte * static_cast<double>(gw_bytes);

    out.distributed_memory_bytes = distributed_bytes;
    out.gateway_memory_bytes = gw_bytes;
    out.pattern_memory_cost = memory_cost;
    out.monetary_cost = cost + memory_cost;
  }
  void AppendMinimization(const Objectives& objectives,
                          moea::ObjectiveVector& out) const override {
    out.push_back(objectives.monetary_cost);
  }
};

}  // namespace

std::shared_ptr<const ObjectiveStage> MakeTestQualityStage() {
  return std::make_shared<const TestQualityStage>();
}
std::shared_ptr<const ObjectiveStage> MakeTransitionQualityStage() {
  return std::make_shared<const TransitionQualityStage>();
}
std::shared_ptr<const ObjectiveStage> MakeShutoffStage() {
  return std::make_shared<const ShutoffStage>();
}
std::shared_ptr<const ObjectiveStage> MakeMonetaryCostStage() {
  return std::make_shared<const MonetaryCostStage>();
}

StageList DefaultStages(bool include_transition_quality) {
  StageList stages;
  stages.push_back(MakeTestQualityStage());
  if (include_transition_quality) stages.push_back(MakeTransitionQualityStage());
  stages.push_back(MakeShutoffStage());
  stages.push_back(MakeMonetaryCostStage());
  return stages;
}

Objectives EvaluateWithStages(const model::Specification& spec,
                              const model::BistAugmentation& augmentation,
                              const model::Implementation& impl,
                              const EvaluationOptions& options,
                              const StageList& stages) {
  const EvaluationContext context(spec, augmentation, impl, options);
  Objectives out;
  for (const auto& stage : stages) stage->Evaluate(context, out);
  return out;
}

EvaluationEngine::EvaluationEngine(const model::Specification& spec,
                                   const model::BistAugmentation& augmentation,
                                   EvaluationEngineConfig config)
    : spec_(spec), augmentation_(augmentation), config_(std::move(config)) {
  if (config_.stages.empty()) config_.stages = DefaultStages(false);
}

std::size_t EvaluationEngine::ObjectiveDimensions() const {
  std::size_t dims = 0;
  for (const auto& stage : config_.stages) dims += stage->Dimensions();
  return dims;
}

Objectives EvaluationEngine::Evaluate(const model::Implementation& impl) const {
  return EvaluateWithStages(spec_, augmentation_, impl, config_.evaluation,
                            config_.stages);
}

Objectives EvaluationEngine::EvaluateCached(const model::Implementation& impl,
                                            bool* cache_hit) {
  bool hit = false;
  Objectives objectives = memo_.GetOrCompute(
      ImplementationSignature(impl), [&] { return Evaluate(impl); }, &hit);
  if (hit) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = hit;
  return objectives;
}

EvaluationEngine::Session::Session(EvaluationEngine& engine)
    : engine_(engine),
      decoder_(engine.spec_, engine.augmentation_,
               engine.config_.validate_each_decode, engine.config_.solver) {}

std::optional<EvaluationEngine::Evaluated>
EvaluationEngine::Session::Evaluate(const moea::Genotype& genotype) {
  auto impl = decoder_.Decode(genotype);
  if (!impl) return std::nullopt;
  Evaluated evaluated;
  evaluated.objectives = engine_.EvaluateCached(*impl, &evaluated.cache_hit);
  if (evaluated.cache_hit) ++cache_hits_;
  evaluated.vector = engine_.Minimize(evaluated.objectives);
  evaluated.implementation = std::move(*impl);
  return evaluated;
}

std::vector<std::optional<EvaluationEngine::Evaluated>>
EvaluationEngine::Session::EvaluateBatch(
    std::span<const moea::Genotype> genotypes) {
  struct Slot {
    model::Implementation impl;
    std::uint64_t signature = 0;
    bool hit = false;
  };
  std::vector<std::optional<Slot>> slots(genotypes.size());

  // Phase 1 (sequential — the SAT decoder is stateful): decode every
  // genotype, resolve memo hits, and collect the first occurrence of each
  // uncached signature as an evaluation job. A batch-internal duplicate of
  // an uncached signature is a hit, exactly as in the one-by-one path where
  // the first occurrence would have populated the memo already.
  std::unordered_map<std::uint64_t, Objectives> resolved;
  std::vector<std::pair<std::uint64_t, const model::Implementation*>> jobs;
  for (std::size_t i = 0; i < genotypes.size(); ++i) {
    auto impl = decoder_.Decode(genotypes[i]);
    if (!impl) continue;
    Slot slot;
    slot.signature = ImplementationSignature(*impl);
    slot.impl = std::move(*impl);
    if (resolved.count(slot.signature) > 0) {
      slot.hit = true;
    } else if (auto cached = engine_.memo_.Lookup(slot.signature)) {
      resolved.emplace(slot.signature, *std::move(cached));
      slot.hit = true;
    }
    slots[i] = std::move(slot);
    if (!slots[i]->hit) {
      // Placeholder so batch-internal duplicates score as hits; overwritten
      // with the computed value after phase 2.
      resolved.emplace(slots[i]->signature, Objectives{});
      jobs.emplace_back(slots[i]->signature, &slots[i]->impl);
    }
  }

  // Phase 2: evaluate the distinct uncached implementations — pure
  // functions, so chunk order cannot change any value. threads == 1 stays
  // strictly inline (the bit-reference path the determinism tests pin).
  std::vector<Objectives> computed(jobs.size());
  const auto evaluate_job = [&](std::size_t j) {
    computed[j] = engine_.Evaluate(*jobs[j].second);
  };
  if (engine_.config_.threads == 1 || jobs.size() <= 1) {
    for (std::size_t j = 0; j < jobs.size(); ++j) evaluate_job(j);
  } else {
    util::ThreadPool::Global().ParallelFor(
        0, jobs.size(), engine_.config_.threads,
        [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
          for (std::size_t j = begin; j < end; ++j) evaluate_job(j);
        });
  }
  // Publish in job order, adopting the canonical value on a lost race with
  // a concurrent session.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    resolved[jobs[j].first] = engine_.memo_.Insert(jobs[j].first, computed[j]);
  }

  // Phase 3 (sequential): assemble results in genotype order.
  std::vector<std::optional<Evaluated>> results(genotypes.size());
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < genotypes.size(); ++i) {
    if (!slots[i]) continue;
    Evaluated evaluated;
    evaluated.objectives = resolved.at(slots[i]->signature);
    evaluated.vector = engine_.Minimize(evaluated.objectives);
    evaluated.implementation = std::move(slots[i]->impl);
    evaluated.cache_hit = slots[i]->hit;
    hits += slots[i]->hit;
    results[i] = std::move(evaluated);
  }
  cache_hits_ += hits;
  if (hits > 0) engine_.cache_hits_.fetch_add(hits, std::memory_order_relaxed);
  return results;
}

}  // namespace bistdse::dse
