// Island-model parallel exploration: several independent explorations with
// distinct seeds run on worker threads; their archives merge into one
// non-dominated front. This is how the reproduction uses the paper's
// "8-core Intel Core i7" — SAT-decoding itself stays single-threaded per
// island, so every island remains bit-deterministic. All islands share one
// EvaluationEngine, so an implementation evaluated by any island is a memo
// hit for every other.
#pragma once

#include <cstdint>

#include "dse/exploration.hpp"

namespace bistdse::dse {

struct ParallelResult {
  std::vector<ExplorationEntry> pareto;  ///< Merged non-dominated set.
  std::size_t evaluations = 0;           ///< Sum over islands.
  /// Memo hits summed over islands (the shared engine makes cross-island
  /// hits possible; also available live via Explorer::Engine()).
  std::size_t eval_cache_hits = 0;
  double wall_seconds = 0.0;
  std::vector<std::size_t> island_front_sizes;
  /// Decoder statistics summed over islands.
  DecoderStats decoder_stats;

  /// Evaluated implementations per second (all islands).
  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(evaluations) / wall_seconds
                            : 0.0;
  }
};

/// Runs `islands` explorations with seeds config.seed, config.seed+1, ...
/// on up to `islands` threads, all sharing one EvaluationEngine; merges the
/// fronts. `config.evaluations` is the per-island budget. Deterministic
/// regardless of scheduling: islands are independent and the merge is
/// order-independent up to archive tie-breaking by (island, insertion)
/// order, which is fixed.
ParallelResult ExploreParallel(const model::Specification& spec,
                               const model::BistAugmentation& augmentation,
                               const ExplorationConfig& config,
                               std::size_t islands);

}  // namespace bistdse::dse
