// Island-model parallel exploration: several independent explorations with
// distinct seeds run on worker threads; their archives merge into one
// non-dominated front. This is how the reproduction uses the paper's
// "8-core Intel Core i7" — SAT-decoding itself stays single-threaded per
// island, so every island remains bit-deterministic.
#pragma once

#include <cstdint>

#include "dse/exploration.hpp"

namespace bistdse::dse {

struct ParallelResult {
  std::vector<ExplorationEntry> pareto;  ///< Merged non-dominated set.
  std::size_t evaluations = 0;           ///< Sum over islands.
  double wall_seconds = 0.0;
  std::vector<std::size_t> island_front_sizes;
};

/// Runs `islands` explorations with seeds config.seed, config.seed+1, ...
/// on up to `islands` threads; merges the fronts. `config.evaluations` is
/// the per-island budget. Deterministic regardless of scheduling: islands
/// are independent and the merge is order-independent up to archive
/// tie-breaking by (island, insertion) order, which is fixed.
ParallelResult ExploreParallel(const model::Specification& spec,
                               const model::BistAugmentation& augmentation,
                               const ExplorationConfig& config,
                               std::size_t islands);

}  // namespace bistdse::dse
