// ILP/PB encoding of the feasible-implementation set (paper §III-C).
//
// The Boolean selection structure of the paper — mapping variables m with
// the diagnosis constraints Eqs. 2a/2h/3a/3b and the functional binding
// constraints of [17] — is encoded into the PB/SAT solver. Routing (the
// c_r / c_{r,tau} variables of Eqs. 2b-2g) is *derived* instead of searched:
// on the tree-shaped automotive architectures targeted here every route is
// the unique shortest path, so the decoder constructs W deterministically
// from the binding and the full constraint system (including 2b-2g) is
// verified post-hoc by model::ValidateImplementation. This keeps decode
// throughput at the level the paper reports (100,000 evaluations in minutes)
// without weakening feasibility: every decoded implementation satisfies the
// complete characteristic function.
#pragma once

#include <cstdint>
#include <vector>

#include "model/implementation.hpp"
#include "model/specification.hpp"
#include "sat/solver.hpp"

namespace bistdse::dse {

class EncodedProblem {
 public:
  /// Builds the PB instance for `spec` (must outlive this object).
  /// `augmentation` links each b^T to its b^D for Eq. 3b.
  EncodedProblem(const model::Specification& spec,
                 const model::BistAugmentation& augmentation,
                 const sat::SolverConfig& solver_config = {});

  sat::Solver& SolverRef() { return solver_; }

  /// Decision variables, aligned with spec.Mappings().
  const std::vector<sat::Var>& MappingVars() const { return mapping_vars_; }

  /// Extracts the binding (selected mapping indices) from a SAT model.
  std::vector<std::size_t> BindingFromModel() const;

 private:
  const model::Specification& spec_;
  sat::Solver solver_;
  std::vector<sat::Var> mapping_vars_;
};

}  // namespace bistdse::dse
