#include "dse/exploration.hpp"

#include <chrono>
#include <limits>
#include <unordered_map>

#include "moea/archive.hpp"
#include "moea/spea2.hpp"

namespace bistdse::dse {

namespace {

/// FNV-1a content hash of a decoded implementation (allocation + binding +
/// routing). Objective evaluation is a pure function of the implementation,
/// so equal signatures let Run() reuse the memoized objectives.
std::uint64_t ImplementationSignature(const model::Implementation& impl) {
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(impl.allocation.size());
  for (const bool a : impl.allocation) mix(a);
  mix(impl.binding.size());
  for (const std::size_t b : impl.binding) mix(b);
  mix(impl.routing.size());
  for (const auto& [msg, path] : impl.routing) {
    mix(msg);
    mix(path.size());
    for (const model::ResourceId r : path) mix(r);
  }
  return h;
}

/// Corner genotypes: no BIST; per-ECU extreme profiles local/at-gateway.
/// Selector picks the program per ECU; `local` the b^D placement.
moea::Genotype CornerGenotype(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation, std::size_t genes,
    bool any_bist, bool local,
    const std::function<bool(const model::ApplicationGraph&,
                             const model::BistProgram&,
                             const model::BistProgram&)>& better) {
  moea::Genotype g;
  g.priorities.assign(genes, 0.5);
  g.phases.assign(genes, 0);
  if (!any_bist) return g;
  const model::ResourceId gateway = spec.Architecture().Gateway();
  const auto& app = spec.Application();
  const auto mappings = spec.Mappings();
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    if (programs.empty()) continue;
    const model::BistProgram* pick = &programs[0];
    for (const auto& prog : programs) {
      if (better(app, prog, *pick)) pick = &prog;
    }
    for (std::size_t m : spec.MappingsOfTask(pick->test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : spec.MappingsOfTask(pick->data_task)) {
      const bool is_local = mappings[m].resource != gateway;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  return g;
}

}  // namespace

Explorer::Explorer(const model::Specification& spec,
                   const model::BistAugmentation& augmentation,
                   ExplorationConfig config)
    : spec_(spec),
      augmentation_(augmentation),
      config_(config),
      decoder_(spec, augmentation, config.validate_each_decode) {}

ExplorationResult Explorer::Run(const moea::GenerationCallback& on_generation) {
  ExplorationResult result;
  const auto start = std::chrono::steady_clock::now();

  moea::ParetoArchive archive;
  std::vector<ExplorationEntry> store;

  // Objective memo: the SAT decoder maps many genotypes to few distinct
  // implementations, so whole-implementation memoization skips a large share
  // of the (dominant) objective-evaluation cost. The archive/store path below
  // is unchanged — hits produce the very vector a fresh evaluation would.
  std::unordered_map<std::uint64_t, Objectives> memo;

  const moea::Evaluator evaluator =
      [&](const moea::Genotype& genotype)
      -> std::optional<moea::ObjectiveVector> {
    auto impl = decoder_.Decode(genotype);
    if (!impl) return std::nullopt;
    const std::uint64_t signature = ImplementationSignature(*impl);
    const auto hit = memo.find(signature);
    if (hit != memo.end()) ++result.eval_cache_hits;
    const Objectives objectives =
        hit != memo.end()
            ? hit->second
            : memo
                  .emplace(signature,
                           EvaluateImplementation(spec_, augmentation_, *impl,
                                                  config_.evaluation))
                  .first->second;
    auto vec =
        objectives.ToMinimizationVector(config_.include_transition_objective);
    if (archive.Offer(vec, store.size())) {
      store.push_back({objectives, std::move(*impl)});
    }
    return vec;
  };

  moea::Nsga2Config moea_config;
  moea_config.population_size = config_.population_size;
  moea_config.genotype_size = decoder_.GenotypeSize();
  moea_config.mutation_rate = config_.mutation_rate;
  moea_config.seed = config_.seed;
  if (config_.seed_corners) {
    const std::size_t genes = decoder_.GenotypeSize();
    auto fastest = [](const model::ApplicationGraph& app,
                      const model::BistProgram& a,
                      const model::BistProgram& b) {
      return app.GetTask(a.test_task).runtime_ms <
             app.GetTask(b.test_task).runtime_ms;
    };
    auto smallest = [](const model::ApplicationGraph& app,
                       const model::BistProgram& a,
                       const model::BistProgram& b) {
      return app.GetTask(a.data_task).data_bytes <
             app.GetTask(b.data_task).data_bytes;
    };
    auto best_coverage = [](const model::ApplicationGraph& app,
                            const model::BistProgram& a,
                            const model::BistProgram& b) {
      return app.GetTask(a.test_task).fault_coverage_percent >
             app.GetTask(b.test_task).fault_coverage_percent;
    };
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec_, augmentation_, genes, false, false, fastest));  // no BIST
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec_, augmentation_, genes, true, true, fastest));  // local, fast
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec_, augmentation_, genes, true, false, smallest));  // gw, cheap
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec_, augmentation_, genes, true, false, best_coverage));  // gw, best
  }
  if (config_.stagnation_generations > 0) {
    moea_config.should_stop = [&store, last = std::size_t{0},
                               stagnant = std::size_t{0},
                               limit = config_.stagnation_generations](
                                  std::size_t,
                                  const moea::ParetoArchive&) mutable {
      if (store.size() == last) {
        ++stagnant;
      } else {
        stagnant = 0;
        last = store.size();
      }
      return stagnant >= limit;
    };
  }
  moea::Nsga2Result moea_result;
  if (config_.algorithm == MoeaAlgorithm::Spea2) {
    moea::Spea2Config spea_config;
    spea_config.population_size = moea_config.population_size;
    spea_config.archive_size = moea_config.population_size;
    spea_config.genotype_size = moea_config.genotype_size;
    spea_config.mutation_rate = moea_config.mutation_rate;
    spea_config.seed = moea_config.seed;
    spea_config.initial_genotypes = moea_config.initial_genotypes;
    spea_config.should_stop = moea_config.should_stop;
    moea::Spea2 spea2(spea_config);
    moea_result = spea2.Run(evaluator, config_.evaluations, on_generation);
  } else {
    moea::Nsga2 nsga2(moea_config);
    moea_result = nsga2.Run(evaluator, config_.evaluations, on_generation);
  }

  result.evaluations = moea_result.evaluations;
  for (const auto& entry : archive.Entries()) {
    result.pareto.push_back(store[entry.payload]);
  }
  result.decoder_stats = decoder_.Stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace bistdse::dse
