#include "dse/exploration.hpp"

#include <chrono>
#include <limits>
#include <utility>

#include "moea/archive.hpp"

namespace bistdse::dse {

namespace {

/// Corner genotypes: no BIST; per-ECU extreme profiles local/at-gateway.
/// Selector picks the program per ECU; `local` the b^D placement.
moea::Genotype CornerGenotype(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation, std::size_t genes,
    bool any_bist, bool local,
    const std::function<bool(const model::ApplicationGraph&,
                             const model::BistProgram&,
                             const model::BistProgram&)>& better) {
  moea::Genotype g;
  g.priorities.assign(genes, 0.5);
  g.phases.assign(genes, 0);
  if (!any_bist) return g;
  const model::ResourceId gateway = spec.Architecture().Gateway();
  const auto& app = spec.Application();
  const auto mappings = spec.Mappings();
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    if (programs.empty()) continue;
    const model::BistProgram* pick = &programs[0];
    for (const auto& prog : programs) {
      if (better(app, prog, *pick)) pick = &prog;
    }
    for (std::size_t m : spec.MappingsOfTask(pick->test_task)) {
      g.phases[m] = 1;
      g.priorities[m] = 0.9;
    }
    for (std::size_t m : spec.MappingsOfTask(pick->data_task)) {
      const bool is_local = mappings[m].resource != gateway;
      g.phases[m] = is_local == local ? 1 : 0;
      g.priorities[m] = is_local == local ? 0.8 : 0.1;
    }
  }
  return g;
}

EvaluationEngineConfig EngineConfigFrom(const ExplorationConfig& config) {
  EvaluationEngineConfig engine_config;
  engine_config.validate_each_decode = config.validate_each_decode;
  engine_config.threads = config.threads;
  engine_config.evaluation = config.evaluation;
  engine_config.stages =
      config.stages.empty() ? DefaultStages(config.include_transition_objective)
                            : config.stages;
  engine_config.solver = config.solver;
  return engine_config;
}

}  // namespace

Explorer::Explorer(const model::Specification& spec,
                   const model::BistAugmentation& augmentation,
                   ExplorationConfig config)
    : owned_engine_(std::make_unique<EvaluationEngine>(
          spec, augmentation, EngineConfigFrom(config))),
      engine_(owned_engine_.get()),
      config_(std::move(config)) {}

Explorer::Explorer(EvaluationEngine& engine, ExplorationConfig config)
    : engine_(&engine), config_(std::move(config)) {}

ExplorationResult Explorer::Run(const moea::GenerationCallback& on_generation) {
  ExplorationResult result;
  const auto start = std::chrono::steady_clock::now();

  EvaluationEngine::Session session = engine_->NewSession();
  const model::Specification& spec = engine_->Spec();
  const model::BistAugmentation& augmentation = engine_->Augmentation();

  moea::ParetoArchive archive;
  std::vector<ExplorationEntry> store;

  // Both paths offer to the archive in genotype order — batched evaluation
  // produces the exact Offer sequence of the one-by-one path, which is what
  // makes the front bit-identical across thread counts.
  const auto offer = [&archive, &store](EvaluationEngine::Evaluated&& evaluated)
      -> moea::ObjectiveVector {
    if (archive.Offer(evaluated.vector, store.size())) {
      store.push_back(
          {evaluated.objectives, std::move(evaluated.implementation)});
    }
    return std::move(evaluated.vector);
  };
  moea::PopulationEvaluator evaluator;
  evaluator.single = [&](const moea::Genotype& genotype)
      -> std::optional<moea::ObjectiveVector> {
    auto evaluated = session.Evaluate(genotype);
    if (!evaluated) return std::nullopt;
    return offer(std::move(*evaluated));
  };
  evaluator.batch = [&](std::span<const moea::Genotype> genotypes) {
    auto evaluated = session.EvaluateBatch(genotypes);
    std::vector<std::optional<moea::ObjectiveVector>> vectors(evaluated.size());
    for (std::size_t i = 0; i < evaluated.size(); ++i) {
      if (!evaluated[i]) continue;
      vectors[i] = offer(std::move(*evaluated[i]));
    }
    return vectors;
  };

  moea::AlgorithmConfig moea_config;
  moea_config.population_size = config_.population_size;
  moea_config.genotype_size = session.GenotypeSize();
  moea_config.mutation_rate = config_.mutation_rate;
  moea_config.seed = config_.seed;
  if (config_.seed_corners) {
    const std::size_t genes = session.GenotypeSize();
    auto fastest = [](const model::ApplicationGraph& app,
                      const model::BistProgram& a,
                      const model::BistProgram& b) {
      return app.GetTask(a.test_task).runtime_ms <
             app.GetTask(b.test_task).runtime_ms;
    };
    auto smallest = [](const model::ApplicationGraph& app,
                       const model::BistProgram& a,
                       const model::BistProgram& b) {
      return app.GetTask(a.data_task).data_bytes <
             app.GetTask(b.data_task).data_bytes;
    };
    auto best_coverage = [](const model::ApplicationGraph& app,
                            const model::BistProgram& a,
                            const model::BistProgram& b) {
      return app.GetTask(a.test_task).fault_coverage_percent >
             app.GetTask(b.test_task).fault_coverage_percent;
    };
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec, augmentation, genes, false, false, fastest));  // no BIST
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec, augmentation, genes, true, true, fastest));  // local, fast
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec, augmentation, genes, true, false, smallest));  // gw, cheap
    moea_config.initial_genotypes.push_back(CornerGenotype(
        spec, augmentation, genes, true, false, best_coverage));  // gw, best
  }
  if (config_.stagnation_generations > 0) {
    moea_config.should_stop = [&store, last = std::size_t{0},
                               stagnant = std::size_t{0},
                               limit = config_.stagnation_generations](
                                  std::size_t,
                                  const moea::ParetoArchive&) mutable {
      if (store.size() == last) {
        ++stagnant;
      } else {
        stagnant = 0;
        last = store.size();
      }
      return stagnant >= limit;
    };
  }

  const std::unique_ptr<moea::Algorithm> algorithm =
      moea::MakeAlgorithm(config_.algorithm, std::move(moea_config));
  const moea::MoeaResult moea_result =
      algorithm->Run(evaluator, config_.evaluations, on_generation);

  result.evaluations = moea_result.evaluations;
  for (const auto& entry : archive.Entries()) {
    result.pareto.push_back(store[entry.payload]);
  }
  result.eval_cache_hits = static_cast<std::size_t>(session.CacheHits());
  result.decoder_stats = session.Decoder();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace bistdse::dse
