// Bus-load / schedulability validation of decoded implementations.
//
// The paper's non-intrusiveness argument assumes the functional bus
// schedules are certified; this module closes the loop on the DSE side: the
// functional messages that an implementation routes over each CAN bus are
// assembled into a can::CanBus, worst-case response times are analyzed, and
// an implementation whose binding overloads a bus can be rejected or
// reported. It also verifies constructively that the mirrored test-data
// messages of every selected BIST program leave all functional response
// times untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "can/mirroring.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::dse {

struct BusLoadEntry {
  model::ResourceId bus = model::kInvalidId;
  double utilization = 0.0;
  bool schedulable = false;
  std::size_t message_count = 0;
};

struct EndToEndLatency {
  model::MessageId message = model::kInvalidId;
  std::size_t hops = 0;          ///< Number of bus segments traversed.
  double worst_case_ms = 0.0;    ///< Sum of per-bus WCRTs + gateway delays.
  bool within_period = false;
};

struct BusLoadReport {
  std::vector<BusLoadEntry> buses;
  bool all_schedulable = true;
  /// End-to-end latency of every routed functional message (store-and-
  /// forward gateways add `gateway_delay_ms` per crossing).
  std::vector<EndToEndLatency> end_to_end;
  bool all_within_period = true;
  /// Per selected BIST program whose data travels over a bus: the mirrored
  /// transfer's non-intrusiveness verdict.
  std::size_t mirrored_transfers_checked = 0;
  std::size_t mirrored_transfers_intrusive = 0;
};

class BusLoadValidator {
 public:
  /// CAN id assignment: functional messages get ids in routing order with
  /// `id_stride` spacing (priority ~ period: shorter period = higher
  /// priority); mirrored test messages use original id + 1.
  explicit BusLoadValidator(const model::Specification& spec,
                            std::uint32_t id_stride = 16,
                            double gateway_delay_ms = 1.0)
      : spec_(spec), id_stride_(id_stride), gateway_delay_ms_(gateway_delay_ms) {}

  /// Analyzes the functional traffic of `impl` per allocated bus and checks
  /// mirrored-transfer non-intrusiveness for every selected BIST program.
  BusLoadReport Validate(const model::BistAugmentation& augmentation,
                         const model::Implementation& impl) const;

 private:
  const model::Specification& spec_;
  std::uint32_t id_stride_;
  double gateway_delay_ms_;
};

}  // namespace bistdse::dse
