// Bus-load / schedulability validation of decoded implementations.
//
// The paper's non-intrusiveness argument assumes the functional bus
// schedules are certified; this module closes the loop on the DSE side: the
// functional messages that an implementation routes over each CAN bus are
// assembled into a can::CanBus, worst-case response times are analyzed, and
// an implementation whose binding overloads a bus can be rejected or
// reported. It also verifies constructively that the mirrored test-data
// messages of every selected BIST program leave all functional response
// times untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "can/mirroring.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"

namespace bistdse::dse {

struct BusLoadEntry {
  model::ResourceId bus = model::kInvalidId;
  double utilization = 0.0;
  bool schedulable = false;
  std::size_t message_count = 0;
};

struct EndToEndLatency {
  model::MessageId message = model::kInvalidId;
  std::size_t hops = 0;          ///< Number of bus segments traversed.
  double worst_case_ms = 0.0;    ///< Sum of per-bus WCRTs + gateway delays.
  bool within_period = false;
};

/// Verdict of the frame-accurate execution layer (src/net) when it is run
/// as an optional validation pass on top of the analytical report: the
/// simulated transfer times and observed response times must respect the
/// analytical bounds.
struct OperationalValidation {
  bool ran = false;
  bool all_sessions_completed = false;
  /// Observed worst response <= analytical WCRT for every (bus, id).
  bool wcrt_dominated = false;
  /// max |simulated - analytical q| / q over all mirrored downloads.
  double max_download_rel_error = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t frames_dropped = 0;
};

struct BusLoadReport {
  std::vector<BusLoadEntry> buses;
  bool all_schedulable = true;
  /// End-to-end latency of every routed functional message (store-and-
  /// forward gateways add `gateway_delay_ms` per crossing).
  std::vector<EndToEndLatency> end_to_end;
  bool all_within_period = true;
  /// Per selected BIST program whose data travels over a bus: the mirrored
  /// transfer's non-intrusiveness verdict.
  std::size_t mirrored_transfers_checked = 0;
  std::size_t mirrored_transfers_intrusive = 0;
  /// Filled by net::AttachOperationalValidation after a simulated pass.
  OperationalValidation operational;
};

/// The per-bus CAN view of an implementation's routed functional traffic —
/// the shared substrate of the analytical validator below and the
/// frame-accurate executor (src/net). Identifiers are assigned per segment
/// in routing order with `id_stride` spacing, rate-monotonic-style (shorter
/// period = higher priority); gateways re-map identifiers per crossing.
struct RoutedBusNetwork {
  std::map<model::ResourceId, can::CanBus> buses;
  std::map<std::pair<model::ResourceId, model::MessageId>, can::CanId> id_of;
  /// Functional messages per bus in priority order.
  std::map<model::ResourceId, std::vector<model::MessageId>> per_bus;
};

RoutedBusNetwork BuildRoutedBusNetwork(const model::Specification& spec,
                                       const model::Implementation& impl,
                                       std::uint32_t id_stride = 16);

class BusLoadValidator {
 public:
  /// CAN id assignment: functional messages get ids in routing order with
  /// `id_stride` spacing (priority ~ period: shorter period = higher
  /// priority); mirrored test messages use original id + 1.
  explicit BusLoadValidator(const model::Specification& spec,
                            std::uint32_t id_stride = 16,
                            double gateway_delay_ms = 1.0)
      : spec_(spec), id_stride_(id_stride), gateway_delay_ms_(gateway_delay_ms) {}

  /// Analyzes the functional traffic of `impl` per allocated bus and checks
  /// mirrored-transfer non-intrusiveness for every selected BIST program.
  BusLoadReport Validate(const model::BistAugmentation& augmentation,
                         const model::Implementation& impl) const;

 private:
  const model::Specification& spec_;
  std::uint32_t id_stride_;
  double gateway_delay_ms_;
};

}  // namespace bistdse::dse
