#include "dse/routing_encoding.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>

namespace bistdse::dse {

using model::ApplicationGraph;
using model::Message;
using model::MessageId;
using model::ResourceId;
using model::TaskId;
using sat::Lit;
using sat::NegLit;
using sat::PosLit;
using sat::Var;

RoutedEncodedProblem::RoutedEncodedProblem(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation, std::uint32_t max_hops,
    const sat::SolverConfig& solver_config)
    : spec_(spec), max_hops_(max_hops), solver_(solver_config) {
  for (std::size_t i = 0; i < spec.Mappings().size(); ++i) {
    mapping_vars_.push_back(solver_.NewVar());
  }
  EncodeMappingConstraints(augmentation);
  for (MessageId c = 0; c < spec.Application().MessageCount(); ++c) {
    EncodeRouting(c);
  }
}

void RoutedEncodedProblem::EncodeMappingConstraints(
    const model::BistAugmentation& augmentation) {
  const ApplicationGraph& app = spec_.Application();

  for (TaskId t = 0; t < app.TaskCount(); ++t) {
    const auto options = spec_.MappingsOfTask(t);
    if (options.empty()) continue;
    std::vector<Lit> lits;
    for (std::size_t m : options) lits.push_back(PosLit(mapping_vars_[m]));
    if (app.IsMandatory(t)) {
      solver_.AddExactlyOne(lits);
    } else {
      solver_.AddAtMostOne(lits);  // Eq. 2a
    }
  }

  // Eq. 3a / 3b.
  for (const auto& [ecu, programs] : augmentation.programs_by_ecu) {
    std::vector<Lit> per_ecu;
    for (const auto& prog : programs) {
      for (std::size_t m : spec_.MappingsOfTask(prog.test_task)) {
        per_ecu.push_back(PosLit(mapping_vars_[m]));
      }
      const auto test_opts = spec_.MappingsOfTask(prog.test_task);
      const auto data_opts = spec_.MappingsOfTask(prog.data_task);
      for (std::size_t mt : test_opts) {
        std::vector<Lit> clause{NegLit(mapping_vars_[mt])};
        for (std::size_t md : data_opts)
          clause.push_back(PosLit(mapping_vars_[md]));
        solver_.AddClause(clause);
      }
      for (std::size_t md : data_opts) {
        std::vector<Lit> clause{NegLit(mapping_vars_[md])};
        for (std::size_t mt : test_opts)
          clause.push_back(PosLit(mapping_vars_[mt]));
        solver_.AddClause(clause);
      }
    }
    solver_.AddAtMostOne(per_ecu);
  }

  // Eq. 2h.
  const auto mappings = spec_.Mappings();
  for (ResourceId r = 0; r < spec_.Architecture().ResourceCount(); ++r) {
    const auto on_resource = spec_.MappingsOnResource(r);
    std::vector<Lit> normal;
    for (std::size_t m : on_resource) {
      if (!model::IsDiagnosis(app.GetTask(mappings[m].task).kind)) {
        normal.push_back(PosLit(mapping_vars_[m]));
      }
    }
    for (std::size_t m : on_resource) {
      if (!model::IsDiagnosis(app.GetTask(mappings[m].task).kind)) continue;
      std::vector<Lit> clause{NegLit(mapping_vars_[m])};
      clause.insert(clause.end(), normal.begin(), normal.end());
      solver_.AddClause(clause);
    }
  }
}

void RoutedEncodedProblem::EncodeRouting(MessageId c) {
  const ApplicationGraph& app = spec_.Application();
  const auto& arch = spec_.Architecture();
  const Message& msg = app.GetMessage(c);
  const auto mappings = spec_.Mappings();

  // --- candidate pruning: resources within max_hops of any sender mapping.
  std::vector<std::uint8_t> reachable(arch.ResourceCount(), 0);
  std::deque<std::pair<ResourceId, std::uint32_t>> queue;
  for (std::size_t m : spec_.MappingsOfTask(msg.sender)) {
    const ResourceId r = mappings[m].resource;
    if (!reachable[r]) {
      reachable[r] = 1;
      queue.emplace_back(r, 0);
    }
  }
  while (!queue.empty()) {
    const auto [r, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_hops_) continue;
    for (ResourceId n : arch.Neighbors(r)) {
      if (!reachable[n]) {
        reachable[n] = 1;
        queue.emplace_back(n, depth + 1);
      }
    }
  }

  MessageVars mv;
  std::vector<std::int32_t> index_of(arch.ResourceCount(), -1);
  for (ResourceId r = 0; r < arch.ResourceCount(); ++r) {
    if (!reachable[r]) continue;
    index_of[r] = static_cast<std::int32_t>(mv.candidates.size());
    mv.candidates.push_back(r);
  }
  const std::uint32_t steps = max_hops_ + 1;
  for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
    mv.on_resource.push_back(solver_.NewVar());
    mv.at_time.emplace_back();
    for (std::uint32_t t = 0; t < steps; ++t) {
      mv.at_time.back().push_back(solver_.NewVar());
    }
  }

  // --- Eq. 2b: route starts where the sender is bound.
  std::vector<std::uint8_t> is_sender_target(mv.candidates.size(), 0);
  for (std::size_t m : spec_.MappingsOfTask(msg.sender)) {
    const std::int32_t i = index_of[mappings[m].resource];
    is_sender_target[i] = 1;
    // c_{r,0} <-> m.
    solver_.AddClause({NegLit(mv.at_time[i][0]), PosLit(mapping_vars_[m])});
    solver_.AddClause({NegLit(mapping_vars_[m]), PosLit(mv.at_time[i][0])});
  }
  for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
    if (!is_sender_target[i]) {
      solver_.AddClause({NegLit(mv.at_time[i][0])});
    }
  }

  // --- Eq. 2c: the message reaches every bound receiver.
  for (TaskId recv : msg.receivers) {
    for (std::size_t md : spec_.MappingsOfTask(msg.sender)) {
      for (std::size_t mt : spec_.MappingsOfTask(recv)) {
        const std::int32_t i = index_of[mappings[mt].resource];
        if (i < 0) {
          // Receiver resource unreachable within max_hops: forbid the combo.
          solver_.AddClause({NegLit(mapping_vars_[md]),
                             NegLit(mapping_vars_[mt])});
          continue;
        }
        solver_.AddClause({PosLit(mv.on_resource[i]),
                           NegLit(mapping_vars_[md]),
                           NegLit(mapping_vars_[mt])});
      }
    }
  }

  // --- Eqs. 2d/2e/2f.
  for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
    std::vector<Lit> taus;
    for (std::uint32_t t = 0; t < steps; ++t) {
      taus.push_back(PosLit(mv.at_time[i][t]));
      // 2f: c_{r,t} -> c_r.
      solver_.AddClause({NegLit(mv.at_time[i][t]), PosLit(mv.on_resource[i])});
    }
    solver_.AddAtMostOne(taus);  // 2d (per resource)
    // 2e: c_r -> some time step.
    std::vector<Lit> clause{NegLit(mv.on_resource[i])};
    clause.insert(clause.end(), taus.begin(), taus.end());
    solver_.AddClause(clause);
  }
  // 2d (per time step, as in the paper's prose: one resource per step).
  for (std::uint32_t t = 0; t < steps; ++t) {
    std::vector<Lit> at_t;
    for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
      at_t.push_back(PosLit(mv.at_time[i][t]));
    }
    solver_.AddAtMostOne(at_t);
  }

  // --- Eq. 2g: hops follow architecture links.
  for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
    for (std::uint32_t t = 0; t + 1 < steps; ++t) {
      std::vector<Lit> clause{NegLit(mv.at_time[i][t + 1])};
      for (ResourceId n : arch.Neighbors(mv.candidates[i])) {
        const std::int32_t j = index_of[n];
        if (j >= 0) clause.push_back(PosLit(mv.at_time[j][t]));
      }
      solver_.AddClause(clause);
    }
  }

  message_vars_.emplace(c, std::move(mv));
}

model::Implementation RoutedEncodedProblem::ImplementationFromModel() const {
  model::Implementation impl;
  for (std::size_t m = 0; m < mapping_vars_.size(); ++m) {
    if (solver_.IsTrue(mapping_vars_[m])) impl.binding.push_back(m);
  }
  for (const auto& [c, mv] : message_vars_) {
    std::vector<std::pair<std::uint32_t, ResourceId>> hops;
    for (std::size_t i = 0; i < mv.candidates.size(); ++i) {
      for (std::uint32_t t = 0; t < mv.at_time[i].size(); ++t) {
        if (solver_.IsTrue(mv.at_time[i][t])) {
          hops.emplace_back(t, mv.candidates[i]);
        }
      }
    }
    if (hops.empty()) continue;
    std::sort(hops.begin(), hops.end());
    std::vector<ResourceId> path;
    for (const auto& [t, r] : hops) path.push_back(r);
    impl.routing[c] = std::move(path);
  }

  impl.allocation.assign(spec_.Architecture().ResourceCount(), false);
  for (std::size_t m : impl.binding) {
    impl.allocation[spec_.Mappings()[m].resource] = true;
  }
  for (const auto& [c, path] : impl.routing) {
    for (ResourceId r : path) impl.allocation[r] = true;
  }
  return impl;
}

RoutedSatDecoder::RoutedSatDecoder(const model::Specification& spec,
                                   const model::BistAugmentation& augmentation,
                                   std::uint32_t max_hops,
                                   const sat::SolverConfig& solver_config)
    : spec_(spec), problem_(spec, augmentation, max_hops, solver_config) {}

std::optional<model::Implementation> RoutedSatDecoder::Decode(
    const moea::Genotype& genotype) {
  ++stats_.decodes;
  if (genotype.Size() != GenotypeSize())
    throw std::invalid_argument("genotype size mismatch");
  const auto order = genotype.DecisionOrder();
  std::vector<Var> var_order;
  std::vector<std::uint8_t> phases;
  for (std::uint32_t gene : order) {
    var_order.push_back(problem_.MappingVars()[gene]);
    phases.push_back(genotype.phases[gene]);
  }
  problem_.SolverRef().SetDecisionPolicy(var_order, phases);
  const auto solve_start = std::chrono::steady_clock::now();
  const sat::SolveResult result = problem_.SolverRef().Solve();
  stats_.decode_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    solve_start)
          .count();
  stats_.solver = problem_.SolverRef().Stats();
  if (result != sat::SolveResult::Sat) {
    ++stats_.infeasible;
    return std::nullopt;
  }
  return problem_.ImplementationFromModel();
}

}  // namespace bistdse::dse
