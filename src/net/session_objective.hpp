// An optional plug-in ObjectiveStage backed by the frame-accurate
// SessionExecutor: the number of BIST sessions that fail operationally
// (rejected plans, incomplete transfers, WCRT violations) becomes an extra
// minimization dimension. This is the "session verdict" stage of the
// engine's pluggable pipeline — it lives in src/net (not src/dse) because
// bistdse_net layers *on top of* the DSE library; the engine only sees the
// ObjectiveStage interface.
//
// Frame-accurate execution is orders of magnitude slower than the
// analytical objectives, so this stage is intended for small evaluation
// budgets (final-front re-scoring, focused explorations), not the main
// 20k-evaluation sweeps.
#pragma once

#include <memory>

#include "dse/evaluation_engine.hpp"
#include "net/session_executor.hpp"

namespace bistdse::net {

/// Creates the session-verdict stage. Registered like any built-in stage:
///
///   cfg.stages = dse::DefaultStages();
///   cfg.stages.push_back(net::MakeSessionVerdictStage(options));
///
/// Contributes one dimension: the count of sessions that fail the
/// operational cross-check (incomplete, rejected, or WCRT-violating),
/// stored in Objectives::failed_sessions. Deterministic — the executor is a
/// discrete-event simulation with a seeded fault injector — so memoized
/// evaluations remain valid.
std::shared_ptr<const dse::ObjectiveStage> MakeSessionVerdictStage(
    SessionExecutorOptions options = {});

}  // namespace bistdse::net
