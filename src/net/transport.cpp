#include "net/transport.hpp"

#include <algorithm>

namespace bistdse::net {

std::string FormatTransferAttribution(const TransferStats& stats) {
  return "retries=" + std::to_string(stats.retransmissions) +
         " dropped=" + std::to_string(stats.dropped) +
         " corrupted=" + std::to_string(stats.corrupted) +
         " reordered=" + std::to_string(stats.reordered) +
         " timeouts=" + std::to_string(stats.timeouts);
}

SegmentedTransfer::SegmentedTransfer(std::uint64_t transfer_id,
                                     std::string name,
                                     std::uint64_t total_bytes,
                                     const TransportConfig& config,
                                     EventTrace* trace)
    : id_(transfer_id),
      name_(std::move(name)),
      total_bytes_(total_bytes),
      config_(config),
      trace_(trace) {}

void SegmentedTransfer::Begin(double now_ms) {
  active_ = true;
  start_ms_ = now_ms;
  complete_ms_ = now_ms;
  if (trace_ != nullptr) {
    trace_->Record({now_ms, TraceEventKind::TransferStarted, "", 0, id_, 0,
                    name_ + " (" + std::to_string(total_bytes_) + " B)"});
    if (Done()) {
      trace_->Record(
          {now_ms, TraceEventKind::TransferCompleted, "", 0, id_, 0, name_});
    }
  }
}

void SegmentedTransfer::Fail(double now_ms, const std::string& reason) {
  failed_ = true;
  complete_ms_ = now_ms;
  if (trace_ != nullptr) {
    trace_->Record({now_ms, TraceEventKind::TransferFailed, "", 0, id_, 0,
                    name_ + ": " + reason + " (" +
                        FormatTransferAttribution(stats_) + ")"});
  }
}

bool SegmentedTransfer::FillFrame(double now_ms,
                                  std::uint32_t payload_capacity,
                                  FrameMeta& meta) {
  if (!active_ || Finished()) return false;
  if (now_ms - start_ms_ > config_.timeout_ms) {
    ++stats_.timeouts;
    Fail(now_ms, "transfer timeout");
    return false;
  }
  if (awaiting_fc_ || now_ms < blocked_until_ms_) return false;
  if (skip_slots_ > 0) {
    --skip_slots_;  // backoff: deliberately let this firing pass unused
    return false;
  }
  const std::uint32_t goodput =
      payload_capacity > config_.header_bytes
          ? payload_capacity - config_.header_bytes
          : 0;
  if (goodput == 0) return false;

  Chunk chunk;
  if (!retrans_queue_.empty()) {
    chunk = retrans_queue_.front();
    retrans_queue_.pop_front();
    if (chunk.bytes > goodput) {
      // Retransmitting over a smaller slot: ship what fits, requeue the rest
      // as a fresh chunk.
      retrans_queue_.push_front({chunk.bytes - goodput, chunk.retries});
      chunk.bytes = goodput;
    }
    ++stats_.retransmissions;
    if (trace_ != nullptr) {
      trace_->Record({now_ms, TraceEventKind::Retransmission, "", 0, id_,
                      next_seq_,
                      "retry " + std::to_string(chunk.retries) + ", " +
                          std::to_string(chunk.bytes) + " B"});
    }
  } else {
    if (bytes_covered_ >= total_bytes_) return false;  // all data in flight
    chunk.bytes = std::min<std::uint64_t>(goodput,
                                          total_bytes_ - bytes_covered_);
    bytes_covered_ += chunk.bytes;
  }

  meta.transfer = id_;
  meta.seq = next_seq_++;
  meta.data_bytes = static_cast<std::uint32_t>(chunk.bytes);
  meta.first_frame = stats_.frames_sent == 0;
  in_flight_[meta.seq] = chunk;
  ++stats_.frames_sent;
  if (++frames_since_grant_ >= config_.block_size) awaiting_fc_ = true;
  return true;
}

void SegmentedTransfer::OnOutcome(double now_ms, const FrameMeta& meta,
                                  FrameFate fate) {
  const auto it = in_flight_.find(meta.seq);
  if (it == in_flight_.end()) return;  // not ours (phase already switched)
  Chunk chunk = it->second;
  in_flight_.erase(it);

  switch (fate) {
    case FrameFate::Reordered:
      // Arrived intact but out of sequence: the receiver reassembles by
      // sequence number, so the chunk is acknowledged like a delivery.
      ++stats_.reordered;
      [[fallthrough]];
    case FrameFate::Delivered:
      ++stats_.delivered;
      bytes_acked_ += chunk.bytes;
      if (Done()) {
        complete_ms_ = now_ms;
        if (trace_ != nullptr) {
          trace_->Record({now_ms, TraceEventKind::TransferCompleted, "", 0,
                          id_, meta.seq,
                          name_ + " (" + FormatTransferAttribution(stats_) +
                              ")"});
        }
      }
      break;
    case FrameFate::Dropped:
    case FrameFate::Corrupted:
      fate == FrameFate::Dropped ? ++stats_.dropped : ++stats_.corrupted;
      ++chunk.retries;
      stats_.max_retry_burst = std::max(stats_.max_retry_burst, chunk.retries);
      if (chunk.retries > config_.max_retries) {
        Fail(now_ms, "chunk exceeded retry budget");
        break;
      }
      retrans_queue_.push_back(chunk);
      skip_slots_ = std::min(
          config_.max_backoff_slots,
          (1u << std::min(chunk.retries - 1, 5u)) - 1u);
      break;
  }

  if (awaiting_fc_ && in_flight_.empty() && !Finished()) {
    // Receiver acknowledges the block and grants the next one.
    awaiting_fc_ = false;
    frames_since_grant_ = 0;
    blocked_until_ms_ = now_ms + config_.fc_delay_ms;
    ++stats_.fc_grants;
    if (trace_ != nullptr) {
      trace_->Record({now_ms, TraceEventKind::FlowControl, "", 0, id_,
                      meta.seq, "grant next block"});
    }
  }
}

}  // namespace bistdse::net
