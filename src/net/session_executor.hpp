// Frame-accurate execution of diagnostic sessions.
//
// The analytical side of the repo (dse::PlanSessions, Eq. 1/Eq. 5,
// can::CanBus WCRT analysis) predicts how long a BIST session takes and
// promises that mirrored transfers leave the certified schedule untouched.
// The SessionExecutor *runs* those sessions in simulated time: it rebuilds
// the implementation's routed bus network (dse::BuildRoutedBusNetwork),
// shuts off the session ECU's functional messages, swaps in their mirrored
// copies (can::MakeMirroredMessages), drives the pattern download and the
// fail-data upload through the segmented transport, and records an event
// trace. The result is an operational cross-check of every analytical
// number we report:
//
//   * simulated download/upload times must land in [q, q + discretization
//     bound] of the Eq.-1 value over the ECU's on-wire slot set,
//   * the observed worst response time of every frame must stay below the
//     analytical WCRT (and mirrored traffic must not move anyone else's),
//   * under injected frame loss, sessions must still complete via the
//     transport's bounded retries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/bus_load.hpp"
#include "dse/session_plan.hpp"
#include "model/implementation.hpp"
#include "model/specification.hpp"
#include "net/engine.hpp"
#include "net/fault_injector.hpp"
#include "net/trace.hpp"
#include "net/transport.hpp"

namespace bistdse::net {

struct SessionExecutorOptions {
  dse::SessionPlanOptions plan;
  std::uint32_t id_stride = 16;       ///< Must match the analytical validator.
  double gateway_delay_ms = 1.0;
  TransportConfig transport;
  FaultInjectorConfig faults;
  bool trace_frames = false;          ///< Per-frame trace events (large!).
  /// Safety cap: a transfer phase aborts after `stall_factor` x its
  /// analytical time without completing (diverging retry storms).
  double stall_factor = 50.0;
};

struct WcrtSample {
  model::ResourceId bus = model::kInvalidId;
  std::string bus_name;
  can::CanId id = 0;
  double observed_ms = 0.0;
  /// +inf when the analytical busy period diverges (trivially dominates).
  double analytical_ms = 0.0;
  bool mirrored = false;
};

struct SessionExecution {
  /// The analytical timeline this execution cross-checks.
  dse::SessionPlan plan;
  bool executed = false;   ///< False when the plan was rejected up front.
  bool completed = false;
  std::string failure;     ///< Why the session did not complete.

  /// Eq.-1 times over the ECU's *on-wire* slot set. Messages consumed by a
  /// co-bound receiver never reach the bus, so this can exceed the plan's
  /// value, which counts every TX message of the ECU.
  double analytical_download_ms = 0.0;
  double analytical_upload_ms = 0.0;
  double simulated_download_ms = 0.0;
  double simulated_upload_ms = 0.0;
  double simulated_total_ms = 0.0;

  TransferStats download;
  TransferStats upload;
  std::vector<WcrtSample> wcrt;
  bool wcrt_dominated = true;
};

struct SessionExecutionReport {
  std::vector<SessionExecution> sessions;
  bool all_completed = true;
  bool all_wcrt_dominated = true;
  /// max |simulated - analytical| / analytical over executed downloads.
  double max_download_rel_error = 0.0;
  std::uint64_t total_retransmissions = 0;
  std::uint64_t total_frames_dropped = 0;
  std::uint64_t total_frames_corrupted = 0;
};

class SessionExecutor {
 public:
  /// `spec` and `augmentation` must outlive the executor.
  SessionExecutor(const model::Specification& spec,
                  const model::BistAugmentation& augmentation,
                  const SessionExecutorOptions& options = {});

  /// Plans every selected BIST session of `impl` and executes each one in
  /// its own discrete-event network (one ECU is shut off at a time, as in
  /// the paper's operational model). Infeasible plans (no mirrored
  /// bandwidth) are reported as rejected, not silently skipped.
  SessionExecutionReport Execute(const model::Implementation& impl,
                                 EventTrace* trace = nullptr) const;

 private:
  SessionExecution ExecuteOne(const model::Implementation& impl,
                              const dse::RoutedBusNetwork& routed,
                              const dse::SessionPlan& plan,
                              std::uint64_t transfer_id_base,
                              EventTrace* trace) const;

  const model::Specification& spec_;
  const model::BistAugmentation& augmentation_;
  SessionExecutorOptions options_;
};

/// Copies the executor's verdict into the analytical bus-load report so the
/// two validation layers travel together.
void AttachOperationalValidation(const SessionExecutionReport& report,
                                 dse::BusLoadReport& target);

std::string FormatSessionExecution(const model::Specification& spec,
                                   const SessionExecution& session);

}  // namespace bistdse::net
