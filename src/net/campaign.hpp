// Adversarial session campaigns: randomized fault schedules through the
// deterministic frame-level injector.
//
// The corpus sweep (arch::SweepCorpus) and the `corpus` CLI leg do not run
// one session execution but a *campaign*: a seeded sequence of fault
// schedules — a clean baseline round followed by randomized loss/corruption/
// reordering mixes — each replayed through net::SessionExecutor, with the
// three PERF.md invariants asserted per round:
//
//   1. Eq.-1 lower bound: no simulated transfer beats the analytical
//      sustained rate q (downloads strictly; uploads start mid-stream and
//      may land one slot period early). At zero loss downloads additionally
//      stay within the discretization band above q: 1.05 q plus a fixed
//      slack per flow-control block (see zero_loss_block_slack_ms).
//   2. WCRT domination: the observed worst response of every frame stays at
//      or below the analytical worst case.
//   3. Non-intrusiveness: slots that are not mirrored diagnosis carriers
//      (the certified functional schedule) are never pushed past their
//      analytical bound by diagnosis traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/implementation.hpp"
#include "model/specification.hpp"
#include "net/session_executor.hpp"

namespace bistdse::net {

/// Shape of one randomized campaign. Rates are *caps*: each adversarial
/// round draws its drop/corrupt/reorder mix uniformly below them from the
/// campaign seed, so a campaign is reproducible bit-for-bit.
struct CampaignScheduleSpec {
  std::size_t rounds = 4;  ///< Adversarial rounds after the clean baseline.
  double max_drop_rate = 0.04;
  double max_corrupt_rate = 0.02;
  double max_reorder_rate = 0.02;
  /// When false the functional background traffic stays lossless and only
  /// transport frames are judged.
  bool affect_functional = true;
  std::uint64_t seed = 1;
  /// Absolute slack per flow-control block added to the baseline round's
  /// 1.05 q upper band on downloads. Eq. 1 is a sustained-rate bound; each
  /// `block_size`-frame block additionally pays the FC round trip (grant
  /// latency, gateway store-and-forward each way, FC frame time, slot
  /// re-entry), a per-block cost that a purely relative band cannot absorb
  /// on short transfers. The Eq.-1 *lower* bound stays exact.
  double zero_loss_block_slack_ms = 2.5;
};

/// The concrete injector configs of a campaign: element 0 is always the
/// fault-free baseline (the only round where the 1.05 q upper band is a
/// valid assertion), followed by `spec.rounds` randomized schedules.
std::vector<FaultInjectorConfig> MakeCampaignSchedule(
    const CampaignScheduleSpec& spec);

struct CampaignRound {
  FaultInjectorConfig faults;
  SessionExecutionReport report;
  bool baseline = false;     ///< Round 0: fault-free, 5 % band asserted.
  bool completed = true;     ///< Every session finished within its stall cap.
  bool q_bounded = true;     ///< Invariant 1.
  bool wcrt_dominated = true;  ///< Invariant 2.
  bool non_intrusive = true;   ///< Invariant 3.
  std::string failure;       ///< First violated check, for diagnostics.

  bool Passed() const {
    return completed && q_bounded && wcrt_dominated && non_intrusive;
  }
};

struct CampaignReport {
  std::vector<CampaignRound> rounds;
  bool all_completed = true;
  bool all_q_bounded = true;
  bool all_wcrt_dominated = true;
  bool all_non_intrusive = true;
  std::uint64_t total_frames_dropped = 0;
  std::uint64_t total_frames_corrupted = 0;
  std::uint64_t total_retransmissions = 0;

  bool Passed() const {
    return all_completed && all_q_bounded && all_wcrt_dominated &&
           all_non_intrusive;
  }
};

/// Checks the three invariants of one executed report. `zero_loss` arms the
/// baseline-only upper band on downloads: 1.05 q plus `block_slack_ms` per
/// started `frames_per_block`-frame flow-control block.
CampaignRound JudgeExecution(SessionExecutionReport report,
                             const FaultInjectorConfig& faults,
                             bool zero_loss, double block_slack_ms = 2.5,
                             std::uint32_t frames_per_block = 16);

/// Replays every selected BIST session of `impl` under each schedule round
/// and judges the invariants. `base` supplies transport/plan options; its
/// fault config is overridden per round.
CampaignReport RunAdversarialCampaign(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl, const SessionExecutorOptions& base,
    const CampaignScheduleSpec& schedule);

}  // namespace bistdse::net
