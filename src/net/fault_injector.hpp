// Deterministic frame-level fault injection for the network executor.
//
// Automotive diagnosis traffic must survive lossy buses (EMI bursts, error
// frames, marginal transceivers). The injector decides the fate of every
// completed frame — delivered, dropped, or corrupted — from an explicitly
// seeded SplitMix64 stream, so a session execution under 1 % frame loss is
// reproducible bit-for-bit and the transport retry path can be asserted in
// tests rather than hoped for.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace bistdse::net {

enum class FrameFate {
  Delivered,
  Dropped,     ///< Frame destroyed on the wire (CRC error + no retransmit).
  Corrupted,   ///< Frame arrives but fails the receiver's integrity check.
  Reordered,   ///< Frame arrives intact but out of sequence; the receiver's
               ///< reassembly buffer absorbs it (ISO-TP sequence numbers).
};

struct FaultInjectorConfig {
  double drop_rate = 0.0;     ///< Probability a completed frame is lost.
  double corrupt_rate = 0.0;  ///< Probability it arrives corrupted instead.
  double reorder_rate = 0.0;  ///< Probability it arrives out of sequence.
  std::uint64_t seed = 1;
  /// When false, only transport frames (transfer != 0) are judged; the
  /// functional background traffic stays lossless.
  bool affect_functional = true;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultInjectorConfig& config = {})
      : config_(config), rng_(config.seed) {}

  /// Decides the fate of one completed frame. `is_transport` marks frames
  /// that carry a segmented transfer (as opposed to functional filler).
  FrameFate Judge(bool is_transport) {
    if (!is_transport && !config_.affect_functional) return FrameFate::Delivered;
    const double u = rng_.UnitReal();
    if (u < config_.drop_rate) {
      ++dropped_;
      return FrameFate::Dropped;
    }
    if (u < config_.drop_rate + config_.corrupt_rate) {
      ++corrupted_;
      return FrameFate::Corrupted;
    }
    if (u < config_.drop_rate + config_.corrupt_rate + config_.reorder_rate) {
      ++reordered_;
      return FrameFate::Reordered;
    }
    return FrameFate::Delivered;
  }

  const FaultInjectorConfig& Config() const { return config_; }
  std::uint64_t TotalDropped() const { return dropped_; }
  std::uint64_t TotalCorrupted() const { return corrupted_; }
  std::uint64_t TotalReordered() const { return reordered_; }

 private:
  FaultInjectorConfig config_;
  util::SplitMix64 rng_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace bistdse::net
