#include "net/session_objective.hpp"

#include <utility>

namespace bistdse::net {

namespace {

class SessionVerdictStage final : public dse::ObjectiveStage {
 public:
  explicit SessionVerdictStage(SessionExecutorOptions options)
      : options_(std::move(options)) {}

  std::string_view Name() const override { return "session_verdict"; }
  std::size_t Dimensions() const override { return 1; }

  void Evaluate(const dse::EvaluationContext& context,
                dse::Objectives& out) const override {
    const SessionExecutor executor(context.spec, context.augmentation,
                                   options_);
    const SessionExecutionReport report = executor.Execute(context.impl);
    std::uint32_t failed = 0;
    for (const SessionExecution& session : report.sessions) {
      if (!session.completed) ++failed;
      else if (!session.wcrt_dominated) ++failed;
    }
    out.failed_sessions = failed;
  }

  void AppendMinimization(const dse::Objectives& objectives,
                          moea::ObjectiveVector& out) const override {
    out.push_back(static_cast<double>(objectives.failed_sessions));
  }

 private:
  SessionExecutorOptions options_;
};

}  // namespace

std::shared_ptr<const dse::ObjectiveStage> MakeSessionVerdictStage(
    SessionExecutorOptions options) {
  return std::make_shared<const SessionVerdictStage>(std::move(options));
}

}  // namespace bistdse::net
