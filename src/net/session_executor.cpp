#include "net/session_executor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "bist/profile.hpp"
#include "can/mirroring.hpp"

namespace bistdse::net {

using model::Message;
using model::MessageId;
using model::ResourceId;
using model::ResourceKind;
using model::TaskId;

namespace {

std::map<TaskId, ResourceId> BoundAt(const model::Specification& spec,
                                     const model::Implementation& impl) {
  std::map<TaskId, ResourceId> bound_at;
  for (std::size_t m : impl.binding) {
    bound_at[spec.Mappings()[m].task] = spec.Mappings()[m].resource;
  }
  return bound_at;
}

void RecordPhase(EventTrace* trace, TraceEventKind kind, double now_ms,
                 const std::string& note) {
  if (trace != nullptr) trace->Record({now_ms, kind, "", 0, 0, 0, note});
}

}  // namespace

SessionExecutor::SessionExecutor(const model::Specification& spec,
                                 const model::BistAugmentation& augmentation,
                                 const SessionExecutorOptions& options)
    : spec_(spec), augmentation_(augmentation), options_(options) {}

SessionExecution SessionExecutor::ExecuteOne(
    const model::Implementation& impl, const dse::RoutedBusNetwork& routed,
    const dse::SessionPlan& plan, std::uint64_t transfer_id_base,
    EventTrace* trace) const {
  const auto& app = spec_.Application();
  const auto& arch = spec_.Architecture();
  const auto bound_at = BoundAt(spec_, impl);

  SessionExecution result;
  result.plan = plan;
  result.executed = true;

  // The BIST program behind this plan (profile indices are unique per ECU).
  const model::BistProgram* prog = nullptr;
  const auto progs_it = augmentation_.programs_by_ecu.find(plan.ecu);
  if (progs_it != augmentation_.programs_by_ecu.end()) {
    for (const auto& p : progs_it->second) {
      if (p.profile_index == plan.profile_index) {
        prog = &p;
        break;
      }
    }
  }
  if (prog == nullptr) {
    result.completed = false;
    result.failure = "plan has no matching BIST program";
    return result;
  }
  const std::uint64_t pattern_bytes = app.GetTask(prog->data_task).data_bytes;
  const double bist_runtime_ms = app.GetTask(prog->test_task).runtime_ms;

  // The ECU's attached bus (tree topology: exactly one).
  ResourceId ecu_bus = model::kInvalidId;
  for (ResourceId n : arch.Neighbors(plan.ecu)) {
    if (arch.GetResource(n).kind == ResourceKind::Bus) {
      ecu_bus = n;
      break;
    }
  }

  FaultInjectorConfig fault_config = options_.faults;
  fault_config.seed += transfer_id_base;  // Independent stream per session.
  FaultInjector injector(fault_config);
  NetworkEngine engine(&injector, trace, options_.trace_frames);
  engine.SetGatewayDelayMs(options_.gateway_delay_ms);

  std::map<ResourceId, BusIndex> bus_index;
  for (const auto& [r, bus] : routed.buses) {
    bus_index[r] = engine.AddBus(arch.GetResource(r).name,
                                 arch.GetResource(r).bus_bitrate_bps);
  }

  // Per engine slot: the (bus resource, on-wire id) of every hop, plus
  // whether the slot is a mirrored carrier (its analytical WCRT is the
  // functional counterpart's, id - 1).
  std::vector<std::vector<std::pair<ResourceId, can::CanId>>> slot_hops;
  std::vector<bool> slot_mirrored;

  // Functional background traffic: every routed message except the session
  // ECU's own TX set (those applications are shut off; their certified slots
  // are what the mirrored carriers ride). Released at t = 0: the critical
  // instant, so observed responses probe the analytical WCRT from below.
  for (const auto& [c, path] : impl.routing) {
    const Message& msg = app.GetMessage(c);
    if (msg.diagnostic) continue;
    const auto sender_it = bound_at.find(msg.sender);
    if (sender_it != bound_at.end() && sender_it->second == plan.ecu) continue;
    PeriodicSlot slot;
    std::vector<std::pair<ResourceId, can::CanId>> hops;
    for (ResourceId r : path) {
      if (arch.GetResource(r).kind != ResourceKind::Bus) continue;
      const can::CanId id = routed.id_of.at({r, c});
      slot.path.push_back(bus_index.at(r));
      slot.hop_ids.push_back(id);
      hops.emplace_back(r, id);
    }
    if (slot.path.empty()) continue;  // co-located, never on the wire
    slot.message.name = msg.name;
    slot.message.id = slot.hop_ids.front();
    slot.message.payload_bytes = msg.payload_bytes;
    slot.message.period_ms = msg.period_ms;
    engine.AddSlot(std::move(slot));
    slot_hops.push_back(std::move(hops));
    slot_mirrored.push_back(false);
  }

  // The ECU's on-wire TX set on its bus — the carriers' timing template.
  std::vector<can::CanMessage> ecu_tx;
  if (ecu_bus != model::kInvalidId && routed.buses.count(ecu_bus) > 0) {
    const can::CanBus& bus = routed.buses.at(ecu_bus);
    const auto per_bus_it = routed.per_bus.find(ecu_bus);
    if (per_bus_it != routed.per_bus.end()) {
      for (MessageId c : per_bus_it->second) {
        const Message& msg = app.GetMessage(c);
        const auto it = bound_at.find(msg.sender);
        if (it == bound_at.end() || it->second != plan.ecu) continue;
        for (const can::CanMessage& cm : bus.Messages()) {
          if (cm.id == routed.id_of.at({ecu_bus, c})) {
            ecu_tx.push_back(cm);
            break;
          }
        }
      }
    }
  }

  result.analytical_download_ms =
      plan.patterns_local ? 0.0
                          : can::MirroredTransferTimeMs(pattern_bytes, ecu_tx);
  result.analytical_upload_ms =
      ecu_tx.empty() ? 0.0
                     : can::MirroredTransferTimeMs(bist::kFailDataBytes, ecu_tx);

  const bool needs_wire = !plan.patterns_local || !ecu_tx.empty();
  if (!plan.patterns_local && (ecu_tx.empty() ||
                               !std::isfinite(result.analytical_download_ms))) {
    // The plan may count co-located TX messages that never reach the bus;
    // operationally there is nothing to mirror, so the session is rejected.
    result.completed = false;
    result.failure = "no on-wire mirrored bandwidth on the ECU's bus";
    return result;
  }

  // Mirrored carriers: identical payload/period, id + 1 (directly below the
  // functional slot's priority). First release one period in, so the carrier
  // never outpaces the sustained Eq.-1 byte rate and the simulated transfer
  // time stays at or above the analytical q.
  SlotClientMux mux;
  if (needs_wire && !ecu_tx.empty()) {
    for (const can::CanMessage& m : can::MakeMirroredMessages(ecu_tx, 1)) {
      PeriodicSlot slot;
      slot.message = m;
      slot.path = {bus_index.at(ecu_bus)};
      slot.hop_ids = {m.id};
      slot.first_release_ms = m.period_ms;
      slot.client = &mux;
      engine.AddSlot(std::move(slot));
      slot_hops.push_back({{ecu_bus, m.id}});
      slot_mirrored.push_back(true);
    }
  }

  const std::string ecu_name = arch.GetResource(plan.ecu).name;

  // --- phase 1: pattern download over the mirrored slots -------------------
  if (!plan.patterns_local) {
    SegmentedTransfer download(transfer_id_base, "pattern download " + ecu_name,
                               pattern_bytes, options_.transport, trace);
    mux.active = &download;
    RecordPhase(trace, TraceEventKind::PhaseStart, engine.NowMs(),
                "pattern download " + ecu_name);
    download.Begin(engine.NowMs());
    if (!download.Finished()) {
      const double cap =
          engine.NowMs() +
          options_.stall_factor * std::max(result.analytical_download_ms, 1.0);
      engine.Run(cap, [&] { return download.Finished(); });
    }
    RecordPhase(trace, TraceEventKind::PhaseEnd, engine.NowMs(),
                "pattern download " + ecu_name);
    mux.active = nullptr;
    result.download = download.Stats();
    result.simulated_download_ms = download.ElapsedMs();
    if (!download.Done()) {
      result.completed = false;
      result.failure = download.Failed()
                           ? "pattern download failed (retry budget)"
                           : "pattern download stalled past the safety cap";
    }
  }

  // --- phase 2: the BIST run itself (bus idles except background traffic) --
  if (result.failure.empty()) {
    RecordPhase(trace, TraceEventKind::PhaseStart, engine.NowMs(),
                "BIST session " + ecu_name);
    engine.Run(engine.NowMs() + bist_runtime_ms);
    RecordPhase(trace, TraceEventKind::PhaseEnd, engine.NowMs(),
                "BIST session " + ecu_name);
  }

  // --- phase 3: fail-data upload to b^R ------------------------------------
  if (result.failure.empty() && !ecu_tx.empty() &&
      std::isfinite(result.analytical_upload_ms)) {
    SegmentedTransfer upload(transfer_id_base + 1,
                             "fail-data upload " + ecu_name,
                             bist::kFailDataBytes, options_.transport, trace);
    mux.active = &upload;
    RecordPhase(trace, TraceEventKind::PhaseStart, engine.NowMs(),
                "fail-data upload " + ecu_name);
    upload.Begin(engine.NowMs());
    if (!upload.Finished()) {
      const double cap =
          engine.NowMs() +
          options_.stall_factor * std::max(result.analytical_upload_ms, 1.0);
      engine.Run(cap, [&] { return upload.Finished(); });
    }
    RecordPhase(trace, TraceEventKind::PhaseEnd, engine.NowMs(),
                "fail-data upload " + ecu_name);
    mux.active = nullptr;
    result.upload = upload.Stats();
    result.simulated_upload_ms = upload.ElapsedMs();
    if (!upload.Done()) {
      result.completed = false;
      result.failure = upload.Failed()
                           ? "fail-data upload failed (retry budget)"
                           : "fail-data upload stalled past the safety cap";
    }
  }

  // --- phase 4: functional state restore -----------------------------------
  if (result.failure.empty()) {
    engine.Run(engine.NowMs() + options_.plan.state_restore_ms);
    result.completed = true;
  }
  result.simulated_total_ms = engine.NowMs();

  // Observed worst responses vs the analytical WCRT of the routed network.
  // Mirrored carriers are checked against their functional counterpart's
  // bound (same timing by construction, id - 1).
  for (std::size_t s = 0; s < slot_hops.size(); ++s) {
    for (std::size_t h = 0; h < slot_hops[s].size(); ++h) {
      const auto [bus_res, id] = slot_hops[s][h];
      const SlotHopStats& stats = engine.StatsOf(s, h);
      if (stats.frames_sent == 0) continue;
      WcrtSample sample;
      sample.bus = bus_res;
      sample.bus_name = arch.GetResource(bus_res).name;
      sample.id = id;
      sample.mirrored = slot_mirrored[s];
      sample.observed_ms = stats.max_response_ms;
      const can::CanId analytical_id = slot_mirrored[s] ? id - 1 : id;
      const auto rt = routed.buses.at(bus_res).ResponseTime(analytical_id);
      sample.analytical_ms = rt ? rt->worst_case_ms
                                : std::numeric_limits<double>::infinity();
      if (sample.observed_ms > sample.analytical_ms + 1e-9) {
        result.wcrt_dominated = false;
      }
      result.wcrt.push_back(std::move(sample));
    }
  }
  return result;
}

SessionExecutionReport SessionExecutor::Execute(
    const model::Implementation& impl, EventTrace* trace) const {
  SessionExecutionReport report;
  const auto plans = dse::PlanSessions(spec_, augmentation_, impl,
                                       options_.plan);
  const dse::RoutedBusNetwork routed =
      dse::BuildRoutedBusNetwork(spec_, impl, options_.id_stride);

  std::uint64_t next_transfer_id = 1;
  for (const dse::SessionPlan& plan : plans) {
    SessionExecution session;
    if (!plan.feasible) {
      session.plan = plan;
      session.executed = false;
      session.failure = "rejected: no mirrored bandwidth (Eq. 1 diverges)";
    } else {
      session = ExecuteOne(impl, routed, plan, next_transfer_id, trace);
      next_transfer_id += 2;
    }

    report.all_completed &= session.completed;
    report.all_wcrt_dominated &= session.wcrt_dominated;
    if (session.executed && session.completed && !session.plan.patterns_local &&
        session.analytical_download_ms > 0.0 &&
        std::isfinite(session.analytical_download_ms)) {
      const double rel = std::abs(session.simulated_download_ms -
                                  session.analytical_download_ms) /
                         session.analytical_download_ms;
      report.max_download_rel_error =
          std::max(report.max_download_rel_error, rel);
    }
    report.total_retransmissions +=
        session.download.retransmissions + session.upload.retransmissions;
    report.total_frames_dropped +=
        session.download.dropped + session.upload.dropped;
    report.total_frames_corrupted +=
        session.download.corrupted + session.upload.corrupted;
    report.sessions.push_back(std::move(session));
  }
  return report;
}

void AttachOperationalValidation(const SessionExecutionReport& report,
                                 dse::BusLoadReport& target) {
  target.operational.ran = true;
  target.operational.all_sessions_completed = report.all_completed;
  target.operational.wcrt_dominated = report.all_wcrt_dominated;
  target.operational.max_download_rel_error = report.max_download_rel_error;
  target.operational.retransmissions = report.total_retransmissions;
  target.operational.frames_dropped = report.total_frames_dropped;
}

std::string FormatSessionExecution(const model::Specification& spec,
                                   const SessionExecution& session) {
  std::ostringstream ss;
  ss << spec.Architecture().GetResource(session.plan.ecu).name << ", profile "
     << session.plan.profile_index + 1 << ": ";
  if (!session.executed) {
    ss << "REJECTED (" << session.failure << ")\n";
    return ss.str();
  }
  if (!session.completed) {
    ss << "FAILED (" << session.failure << ")\n";
    return ss.str();
  }
  ss << "completed in " << session.simulated_total_ms << " ms";
  if (!session.plan.patterns_local) {
    ss << "; download " << session.simulated_download_ms << " ms (analytical "
       << session.analytical_download_ms << " ms)";
  }
  if (session.upload.frames_sent > 0) {
    ss << "; upload " << session.simulated_upload_ms << " ms (analytical "
       << session.analytical_upload_ms << " ms)";
  }
  const std::uint64_t retries =
      session.download.retransmissions + session.upload.retransmissions;
  if (retries > 0) ss << "; " << retries << " retransmissions";
  ss << "; WCRT " << (session.wcrt_dominated ? "dominated" : "VIOLATED")
     << "\n";
  return ss.str();
}

}  // namespace bistdse::net
