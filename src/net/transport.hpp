// Segmented transport over mirrored CAN slots (ISO-TP-style).
//
// Pattern downloads (gateway -> ECU) and fail-data uploads (ECU -> b^R) move
// far more bytes than one CAN frame carries, so they are segmented: a first
// frame announces the total length, consecutive frames carry the data with a
// rolling sequence number, and the receiver grants the next block of
// consecutive frames with a flow-control message after every `block_size`
// frames. Lost or corrupted frames are retransmitted at the next slot
// firing, with exponential slot-skipping backoff and a bounded per-chunk
// retry budget — the error handling a lossy automotive bus demands.
//
// Framing metadata (length, sequence, flow control) rides in the identifier
// space of the mirrored slot set and the otherwise-idle diagnostic response
// slot, so the full payload of every mirrored frame remains available to
// test data and the transfer-rate analysis of Eq. (1) applies unchanged.
// Set `header_bytes` > 0 to model in-payload ISO-TP headers instead.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>

#include "net/engine.hpp"
#include "net/trace.hpp"

namespace bistdse::net {

struct TransportConfig {
  /// Consecutive frames per flow-control block.
  std::uint32_t block_size = 16;
  /// Latency of the receiver's flow-control grant after a block completes.
  double fc_delay_ms = 0.1;
  /// Retransmissions allowed per chunk before the transfer fails.
  std::uint32_t max_retries = 8;
  /// Backoff cap: a chunk's k-th retransmission waits min(2^(k-1) - 1,
  /// max_backoff_slots) slot firings before re-entering the schedule.
  std::uint32_t max_backoff_slots = 8;
  /// Per-frame goodput overhead (0 = metadata rides out-of-band, see above).
  std::uint32_t header_bytes = 0;
  /// Per-transfer deadline measured from Begin(); infinite by default.
  double timeout_ms = std::numeric_limits<double>::infinity();
};

struct TransferStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t reordered = 0;  ///< Delivered out of sequence (reassembled).
  std::uint64_t retransmissions = 0;
  std::uint64_t fc_grants = 0;
  std::uint64_t timeouts = 0;   ///< Per-transfer deadline expiries (0 or 1).
  std::uint32_t max_retry_burst = 0;  ///< Worst consecutive failures of one chunk.
};

/// "retries=R dropped=D corrupted=C reordered=O timeouts=T" — the
/// per-transfer attribution suffix appended to transfer_completed /
/// transfer_failed trace notes so every server-side upload failure is
/// explainable from the JSONL trace alone.
std::string FormatTransferAttribution(const TransferStats& stats);

/// One segmented transfer riding a set of carrier slots. Attach it (directly
/// or through a SlotClientMux) as the SlotClient of every mirrored slot; the
/// engine then drains it at exactly the certified slot rate.
class SegmentedTransfer : public SlotClient {
 public:
  SegmentedTransfer(std::uint64_t transfer_id, std::string name,
                    std::uint64_t total_bytes, const TransportConfig& config,
                    EventTrace* trace = nullptr);

  /// Arms the transfer at simulated time `now_ms`. A zero-byte transfer
  /// completes immediately.
  void Begin(double now_ms);

  bool Done() const { return bytes_acked_ >= total_bytes_; }
  bool Failed() const { return failed_; }
  bool Finished() const { return Done() || Failed(); }

  double StartMs() const { return start_ms_; }
  double CompleteMs() const { return complete_ms_; }
  double ElapsedMs() const { return complete_ms_ - start_ms_; }
  std::uint64_t TotalBytes() const { return total_bytes_; }
  const TransferStats& Stats() const { return stats_; }

  // SlotClient:
  bool FillFrame(double now_ms, std::uint32_t payload_capacity,
                 FrameMeta& meta) override;
  void OnOutcome(double now_ms, const FrameMeta& meta,
                 FrameFate fate) override;

 private:
  struct Chunk {
    std::uint64_t bytes = 0;
    std::uint32_t retries = 0;
  };

  void Fail(double now_ms, const std::string& reason);

  std::uint64_t id_;
  std::string name_;
  std::uint64_t total_bytes_;
  TransportConfig config_;
  EventTrace* trace_;

  bool active_ = false;
  bool failed_ = false;
  double start_ms_ = 0.0;
  double complete_ms_ = 0.0;
  std::uint64_t bytes_acked_ = 0;
  std::uint64_t bytes_covered_ = 0;  ///< acked + in flight + awaiting retry.
  std::uint32_t next_seq_ = 0;
  std::uint32_t frames_since_grant_ = 0;
  bool awaiting_fc_ = false;
  double blocked_until_ms_ = 0.0;
  std::uint32_t skip_slots_ = 0;
  std::deque<Chunk> retrans_queue_;
  std::map<std::uint32_t, Chunk> in_flight_;  ///< By sequence number.
  TransferStats stats_;
};

/// Routes the carrier slots to whichever transfer is active in the current
/// session phase (download, then fail-data upload); carriers idle while
/// `active` is null (e.g. during the BIST run itself).
class SlotClientMux : public SlotClient {
 public:
  SlotClient* active = nullptr;

  bool FillFrame(double now_ms, std::uint32_t payload_capacity,
                 FrameMeta& meta) override {
    return active != nullptr && active->FillFrame(now_ms, payload_capacity, meta);
  }
  void OnOutcome(double now_ms, const FrameMeta& meta,
                 FrameFate fate) override {
    if (active != nullptr) active->OnOutcome(now_ms, meta, fate);
  }
};

}  // namespace bistdse::net
