#include "net/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::net {

BusIndex NetworkEngine::AddBus(std::string name, double bitrate_bps) {
  Bus bus;
  bus.name = std::move(name);
  bus.bitrate_bps = bitrate_bps;
  buses_.push_back(std::move(bus));
  return buses_.size() - 1;
}

std::size_t NetworkEngine::AddSlot(PeriodicSlot slot) {
  if (slot.path.empty() || slot.path.size() != slot.hop_ids.size()) {
    throw std::invalid_argument("slot path/hop_ids malformed");
  }
  for (BusIndex b : slot.path) {
    if (b >= buses_.size()) throw std::invalid_argument("unknown bus in path");
  }
  if (slot.message.period_ms <= 0.0) {
    throw std::invalid_argument("slot period must be positive");
  }
  if (slot.client != nullptr && slot.path.size() > 1) {
    // Forwarded frames re-enter with empty metadata; a segmented transfer
    // therefore spans exactly one segment (gateway <-> ECU), which is all
    // the mirrored download/upload paths of the paper need.
    throw std::invalid_argument("transport slots must be single-segment");
  }
  const auto index = static_cast<std::uint32_t>(slots_.size());
  stats_.emplace_back(slot.path.size());
  const double first = slot.first_release_ms;
  slots_.push_back(std::move(slot));
  Push(first, EventKind::Release, index, 0);
  return index;
}

void NetworkEngine::Push(double time_ms, EventKind kind, std::uint32_t slot,
                         std::uint32_t hop) {
  events_.push(Event{time_ms, order_counter_++, kind, slot, hop});
}

double NetworkEngine::Run(double until_ms, const std::function<bool()>& stop) {
  while (!events_.empty() && events_.top().time_ms <= until_ms) {
    const Event e = events_.top();
    events_.pop();
    now_ms_ = e.time_ms;
    switch (e.kind) {
      case EventKind::Release:
        HandleRelease(e.slot);
        break;
      case EventKind::HopArrival:
        Enqueue(e.slot, e.hop, FrameMeta{}, now_ms_);
        break;
      case EventKind::BusFree:
        HandleCompletion(e.hop);
        if (stop && stop()) return now_ms_;
        break;
    }
  }
  now_ms_ = std::max(now_ms_, until_ms);
  return now_ms_;
}

void NetworkEngine::HandleRelease(std::uint32_t slot_index) {
  const PeriodicSlot& slot = slots_[slot_index];
  Push(now_ms_ + slot.message.period_ms, EventKind::Release, slot_index, 0);

  FrameMeta meta;
  if (slot.client != nullptr) {
    // A still-queued previous instance means the slot's last frame has not
    // even started — do not offer the client a second in-flight frame on the
    // same id (the controller buffer holds one frame per object).
    Bus& bus = buses_[slot.path.front()];
    if (bus.ready.count(slot.hop_ids.front()) > 0) return;
    if (!slot.client->FillFrame(now_ms_, slot.message.payload_bytes, meta)) {
      return;  // transport has nothing to send: the mirrored slot idles
    }
  }
  Enqueue(slot_index, 0, meta, now_ms_);
}

void NetworkEngine::Enqueue(std::uint32_t slot_index, std::uint32_t hop,
                            const FrameMeta& meta, double release_ms) {
  const PeriodicSlot& slot = slots_[slot_index];
  const BusIndex bus_index = slot.path[hop];
  Bus& bus = buses_[bus_index];
  // Overload semantics as in can::CanSimulator: a new functional instance
  // replaces a previous one still queued on the same id.
  bus.ready[slot.hop_ids[hop]] =
      PendingFrame{slot_index, hop, release_ms, meta};
  TraceFrame(TraceEventKind::FrameReleased, bus_index, slot.hop_ids[hop],
             meta);
  TryStart(bus_index);
}

void NetworkEngine::TryStart(BusIndex bus_index) {
  Bus& bus = buses_[bus_index];
  if (bus.busy || bus.ready.empty()) return;
  const auto top = bus.ready.begin();
  bus.in_flight = top->second;
  bus.ready.erase(top);
  bus.busy = true;
  const PeriodicSlot& slot = slots_[bus.in_flight->slot];
  const double frame_time = slot.message.FrameTimeMs(bus.bitrate_bps);
  bus.busy_ms += frame_time;
  Push(now_ms_ + frame_time, EventKind::BusFree, 0,
       static_cast<std::uint32_t>(bus_index));
}

void NetworkEngine::HandleCompletion(BusIndex bus_index) {
  Bus& bus = buses_[bus_index];
  const PendingFrame frame = *bus.in_flight;
  bus.in_flight.reset();
  bus.busy = false;

  const PeriodicSlot& slot = slots_[frame.slot];
  const can::CanId id = slot.hop_ids[frame.hop];
  SlotHopStats& stats = stats_[frame.slot][frame.hop];
  ++stats.frames_sent;
  const double response = now_ms_ - frame.release_ms;
  stats.max_response_ms = std::max(stats.max_response_ms, response);
  stats.total_response_ms += response;

  const bool is_transport = frame.meta.transfer != 0;
  const FrameFate fate =
      injector_ != nullptr ? injector_->Judge(is_transport)
                           : FrameFate::Delivered;
  switch (fate) {
    case FrameFate::Reordered:
      // The frame reaches the receiver intact, just out of sequence; the
      // segmented transport reassembles by sequence number, so forwarding
      // and outcome delivery follow the Delivered path — only the counters
      // and trace attribute the event.
      ++stats.frames_reordered;
      if (trace_ != nullptr && (trace_frames_ || is_transport)) {
        trace_->Record({now_ms_, TraceEventKind::FrameReordered, bus.name, id,
                        frame.meta.transfer, frame.meta.seq, ""});
      }
      [[fallthrough]];
    case FrameFate::Delivered:
      TraceFrame(TraceEventKind::FrameCompleted, bus_index, id, frame.meta);
      if (frame.hop + 1 < slot.path.size()) {
        // Store-and-forward: the gateway re-releases the frame on the next
        // segment after its processing delay.
        Push(now_ms_ + gateway_delay_ms_, EventKind::HopArrival, frame.slot,
             frame.hop + 1);
        TraceFrame(TraceEventKind::GatewayForward, slot.path[frame.hop + 1],
                   slot.hop_ids[frame.hop + 1], frame.meta);
      } else if (slot.client != nullptr) {
        slot.client->OnOutcome(now_ms_, frame.meta, fate);
      }
      break;
    case FrameFate::Dropped:
      ++stats.frames_dropped;
      if (trace_ != nullptr && (trace_frames_ || is_transport)) {
        trace_->Record({now_ms_, TraceEventKind::FrameDropped, bus.name, id,
                        frame.meta.transfer, frame.meta.seq, ""});
      }
      if (slot.client != nullptr) {
        slot.client->OnOutcome(now_ms_, frame.meta, fate);
      }
      break;
    case FrameFate::Corrupted:
      ++stats.frames_corrupted;
      if (trace_ != nullptr && (trace_frames_ || is_transport)) {
        trace_->Record({now_ms_, TraceEventKind::FrameCorrupted, bus.name, id,
                        frame.meta.transfer, frame.meta.seq, ""});
      }
      if (slot.client != nullptr) {
        slot.client->OnOutcome(now_ms_, frame.meta, fate);
      }
      break;
  }
  TryStart(bus_index);
}

void NetworkEngine::TraceFrame(TraceEventKind kind, BusIndex bus,
                               can::CanId id, const FrameMeta& meta) {
  if (trace_ == nullptr || !trace_frames_) return;
  trace_->Record({now_ms_, kind, buses_[bus].name, id, meta.transfer,
                  meta.seq, ""});
}

}  // namespace bistdse::net
