// Discrete-event vehicle-network engine: multiple CAN segments with
// non-preemptive priority arbitration, worst-case stuff-bit frame times
// (can::CanMessage::FrameTimeMs), and gateway store-and-forward between
// segments.
//
// The engine executes *slots*: periodic transmission opportunities. A slot
// without a client models functional background traffic (it always
// transmits). A slot with a SlotClient asks the client for payload at every
// firing — this is how the segmented transport rides the mirrored copies of
// a shut-off ECU's functional messages without ever changing their timing.
//
// Unlike can::CanSimulator (single bus, closed-form critical instant), the
// engine runs open-ended in phases, spans bus segments, and reports the
// outcome of every frame to its producer, which is what the retry path of
// the transport layer needs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "can/message.hpp"
#include "net/fault_injector.hpp"
#include "net/trace.hpp"

namespace bistdse::net {

using BusIndex = std::size_t;

/// Transport metadata piggy-backed on a frame. Functional frames keep
/// transfer == 0.
struct FrameMeta {
  std::uint64_t transfer = 0;
  std::uint32_t seq = 0;
  std::uint32_t data_bytes = 0;  ///< Goodput carried by this frame.
  bool first_frame = false;      ///< ISO-TP-style first frame (length header).
};

/// Payload source/sink attached to a slot. FillFrame is called at each slot
/// firing; OnOutcome reports the fate of every frame the client filled.
class SlotClient {
 public:
  virtual ~SlotClient() = default;
  /// Return false to leave the slot idle this period.
  virtual bool FillFrame(double now_ms, std::uint32_t payload_capacity,
                         FrameMeta& meta) = 0;
  virtual void OnOutcome(double now_ms, const FrameMeta& meta,
                         FrameFate fate) = 0;
};

/// One periodic transmission slot, possibly routed over several bus
/// segments (the gateway forwards between consecutive path entries).
struct PeriodicSlot {
  can::CanMessage message;           ///< Payload size / period / jitter.
  std::vector<BusIndex> path;        ///< Bus segments in traversal order.
  std::vector<can::CanId> hop_ids;   ///< CAN id per segment (same size).
  double first_release_ms = 0.0;
  SlotClient* client = nullptr;      ///< nullptr: functional filler traffic.
};

struct SlotHopStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_reordered = 0;
  double max_response_ms = 0.0;
  double total_response_ms = 0.0;
};

class NetworkEngine {
 public:
  explicit NetworkEngine(FaultInjector* injector = nullptr,
                         EventTrace* trace = nullptr,
                         bool trace_frames = false)
      : injector_(injector), trace_(trace), trace_frames_(trace_frames) {}

  BusIndex AddBus(std::string name, double bitrate_bps);

  /// Registers a slot and schedules its first release. `path` and `hop_ids`
  /// must be non-empty and of equal size. Returns the slot index.
  std::size_t AddSlot(PeriodicSlot slot);

  void SetGatewayDelayMs(double delay_ms) { gateway_delay_ms_ = delay_ms; }

  /// Advances simulated time to `until_ms` (events at exactly `until_ms`
  /// are processed). When `stop` is given it is checked after every frame
  /// outcome; the engine then returns early at the stopping event's time.
  /// Run may be called repeatedly with increasing horizons — slot schedules
  /// and queued frames persist across calls (phased execution).
  double Run(double until_ms, const std::function<bool()>& stop = {});

  double NowMs() const { return now_ms_; }
  std::size_t SlotCount() const { return slots_.size(); }
  const PeriodicSlot& Slot(std::size_t i) const { return slots_[i]; }
  const SlotHopStats& StatsOf(std::size_t slot, std::size_t hop) const {
    return stats_[slot][hop];
  }
  const std::string& BusName(BusIndex bus) const { return buses_[bus].name; }
  double BusBusyMs(BusIndex bus) const { return buses_[bus].busy_ms; }

 private:
  enum class EventKind : std::uint8_t { Release, HopArrival, BusFree };

  struct Event {
    double time_ms;
    std::uint64_t order;  ///< FIFO tie-break for determinism.
    EventKind kind;
    std::uint32_t slot;
    std::uint32_t hop;  ///< For BusFree: the bus index.

    bool operator>(const Event& other) const {
      if (time_ms != other.time_ms) return time_ms > other.time_ms;
      return order > other.order;
    }
  };

  struct PendingFrame {
    std::uint32_t slot;
    std::uint32_t hop;
    double release_ms;
    FrameMeta meta;
  };

  struct Bus {
    std::string name;
    double bitrate_bps;
    std::map<can::CanId, PendingFrame> ready;  ///< Priority order by id.
    std::optional<PendingFrame> in_flight;
    bool busy = false;
    double busy_ms = 0.0;
  };

  void Push(double time_ms, EventKind kind, std::uint32_t slot,
            std::uint32_t hop);
  void HandleRelease(std::uint32_t slot_index);
  void Enqueue(std::uint32_t slot_index, std::uint32_t hop,
               const FrameMeta& meta, double release_ms);
  void TryStart(BusIndex bus_index);
  void HandleCompletion(BusIndex bus_index);
  void TraceFrame(TraceEventKind kind, BusIndex bus, can::CanId id,
                  const FrameMeta& meta);

  FaultInjector* injector_;
  EventTrace* trace_;
  bool trace_frames_;
  double gateway_delay_ms_ = 1.0;
  double now_ms_ = 0.0;
  std::uint64_t order_counter_ = 0;
  std::vector<Bus> buses_;
  std::vector<PeriodicSlot> slots_;
  std::vector<std::vector<SlotHopStats>> stats_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

}  // namespace bistdse::net
