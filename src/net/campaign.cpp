#include "net/campaign.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace bistdse::net {

std::vector<FaultInjectorConfig> MakeCampaignSchedule(
    const CampaignScheduleSpec& spec) {
  util::SplitMix64 rng(spec.seed);
  std::vector<FaultInjectorConfig> schedule;
  schedule.reserve(spec.rounds + 1);

  FaultInjectorConfig baseline;
  baseline.seed = spec.seed;
  baseline.affect_functional = spec.affect_functional;
  schedule.push_back(baseline);

  for (std::size_t r = 0; r < spec.rounds; ++r) {
    FaultInjectorConfig round;
    round.drop_rate = spec.max_drop_rate * rng.UnitReal();
    round.corrupt_rate = spec.max_corrupt_rate * rng.UnitReal();
    round.reorder_rate = spec.max_reorder_rate * rng.UnitReal();
    round.affect_functional = spec.affect_functional;
    // Distinct per-round injector stream: the same frame sequence must not
    // see correlated fates across rounds.
    round.seed = spec.seed ^ (0x9e3779b97f4a7c15ULL * (r + 1));
    schedule.push_back(round);
  }
  return schedule;
}

CampaignRound JudgeExecution(SessionExecutionReport report,
                             const FaultInjectorConfig& faults,
                             bool zero_loss, double block_slack_ms,
                             std::uint32_t frames_per_block) {
  CampaignRound round;
  round.faults = faults;
  round.baseline = zero_loss;

  for (const SessionExecution& s : report.sessions) {
    if (!s.executed) continue;  // Rejected up front (no mirrored bandwidth).
    if (!s.completed) {
      round.completed = false;
      if (round.failure.empty()) round.failure = "incomplete: " + s.failure;
      continue;
    }
    // Invariant 1: the simulation never beats Eq. 1. Downloads start with
    // the carrier schedule, so the bound is exact; uploads begin mid-stream
    // after the BIST run and may land one slot period early.
    if (s.simulated_download_ms < s.analytical_download_ms - 1e-9) {
      round.q_bounded = false;
      if (round.failure.empty()) round.failure = "download beat Eq. 1";
    }
    if (zero_loss && s.analytical_download_ms > 0.0) {
      // q is a sustained-rate bound; every started flow-control block also
      // pays the FC round trip (grant + gateway hops + slot re-entry).
      const double blocks =
          std::ceil(static_cast<double>(s.plan.download_frames) /
                    static_cast<double>(frames_per_block));
      if (s.simulated_download_ms >
          1.05 * s.analytical_download_ms + block_slack_ms * blocks) {
        round.q_bounded = false;
        if (round.failure.empty()) {
          round.failure = "zero-loss download outside the 5 % band";
        }
      }
    }
    if (s.simulated_upload_ms < 0.95 * s.analytical_upload_ms - 1e-9) {
      round.q_bounded = false;
      if (round.failure.empty()) round.failure = "upload beat Eq. 1";
    }
    // Invariant 2: per-frame WCRT domination.
    if (!s.wcrt_dominated) {
      round.wcrt_dominated = false;
      if (round.failure.empty()) round.failure = "observed response > WCRT";
    }
    // Invariant 3: the certified (non-mirrored) schedule is unperturbed by
    // diagnosis traffic. A subset of invariant 2, reported separately: a
    // mirrored carrier missing its own bound is a diagnosis problem, a
    // functional slot missing it breaks the paper's core claim.
    for (const WcrtSample& w : s.wcrt) {
      if (!w.mirrored && w.observed_ms > w.analytical_ms + 1e-9) {
        round.non_intrusive = false;
        if (round.failure.empty()) {
          round.failure = "functional slot " + w.bus_name + " perturbed";
        }
      }
    }
  }
  round.report = std::move(report);
  return round;
}

CampaignReport RunAdversarialCampaign(
    const model::Specification& spec,
    const model::BistAugmentation& augmentation,
    const model::Implementation& impl, const SessionExecutorOptions& base,
    const CampaignScheduleSpec& schedule) {
  CampaignReport campaign;
  const auto rounds = MakeCampaignSchedule(schedule);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    SessionExecutorOptions options = base;
    options.faults = rounds[r];
    const SessionExecutor executor(spec, augmentation, options);
    CampaignRound round = JudgeExecution(
        executor.Execute(impl), rounds[r], r == 0,
        schedule.zero_loss_block_slack_ms, base.transport.block_size);
    campaign.all_completed &= round.completed;
    campaign.all_q_bounded &= round.q_bounded;
    campaign.all_wcrt_dominated &= round.wcrt_dominated;
    campaign.all_non_intrusive &= round.non_intrusive;
    campaign.total_frames_dropped += round.report.total_frames_dropped;
    campaign.total_frames_corrupted += round.report.total_frames_corrupted;
    campaign.total_retransmissions += round.report.total_retransmissions;
    campaign.rounds.push_back(std::move(round));
  }
  return campaign;
}

}  // namespace bistdse::net
