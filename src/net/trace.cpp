#include "net/trace.hpp"

#include <algorithm>
#include <ostream>

namespace bistdse::net {

const char* ToString(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::PhaseStart: return "phase_start";
    case TraceEventKind::PhaseEnd: return "phase_end";
    case TraceEventKind::FrameReleased: return "frame_released";
    case TraceEventKind::FrameCompleted: return "frame_completed";
    case TraceEventKind::FrameDropped: return "frame_dropped";
    case TraceEventKind::FrameCorrupted: return "frame_corrupted";
    case TraceEventKind::FrameReordered: return "frame_reordered";
    case TraceEventKind::GatewayForward: return "gateway_forward";
    case TraceEventKind::TransferStarted: return "transfer_started";
    case TraceEventKind::TransferCompleted: return "transfer_completed";
    case TraceEventKind::TransferFailed: return "transfer_failed";
    case TraceEventKind::Retransmission: return "retransmission";
    case TraceEventKind::FlowControl: return "flow_control";
    case TraceEventKind::RequestAdmitted: return "request_admitted";
    case TraceEventKind::RequestRejected: return "request_rejected";
    case TraceEventKind::RequestAnswered: return "request_answered";
    case TraceEventKind::BatchDispatched: return "batch_dispatched";
    case TraceEventKind::DictReload: return "dict_reload";
  }
  return "unknown";
}

std::size_t EventTrace::CountKind(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [&](const TraceEvent& e) { return e.kind == kind; }));
}

namespace {

void WriteJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void EventTrace::WriteJsonl(std::ostream& out) const {
  for (const TraceEvent& e : events_) {
    out << "{\"t_ms\":" << e.time_ms << ",\"kind\":\"" << ToString(e.kind)
        << '"';
    if (!e.bus.empty()) {
      out << ",\"bus\":";
      WriteJsonString(out, e.bus);
      out << ",\"id\":" << e.id;
    }
    if (e.transfer != 0) {
      out << ",\"transfer\":" << e.transfer << ",\"seq\":" << e.seq;
    }
    if (!e.note.empty()) {
      out << ",\"note\":";
      WriteJsonString(out, e.note);
    }
    out << "}\n";
  }
}

}  // namespace bistdse::net
