// Machine-readable event trace of the vehicle-network executor.
//
// Every operationally relevant event — frame completions, drops,
// retransmissions, flow-control grants, phase boundaries — is recorded with
// its simulated timestamp so that a session execution can be replayed,
// audited, or diffed against the analytical timing model. The trace is the
// artifact the acceptance tests inspect: each transport retransmission under
// injected frame loss must appear here.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "can/message.hpp"

namespace bistdse::net {

enum class TraceEventKind {
  PhaseStart,
  PhaseEnd,
  FrameReleased,
  FrameCompleted,
  FrameDropped,
  FrameCorrupted,
  FrameReordered,
  GatewayForward,
  TransferStarted,
  TransferCompleted,
  TransferFailed,
  Retransmission,
  FlowControl,
  // Diagnosis-server request lifecycle (serve::DiagnosisServer).
  RequestAdmitted,
  RequestRejected,
  RequestAnswered,
  BatchDispatched,
  DictReload,
};

const char* ToString(TraceEventKind kind);

struct TraceEvent {
  double time_ms = 0.0;
  TraceEventKind kind = TraceEventKind::FrameCompleted;
  std::string bus;                ///< Bus segment name ("" for phase events).
  can::CanId id = 0;              ///< CAN id on that segment.
  std::uint64_t transfer = 0;     ///< Transport transfer id (0 = functional).
  std::uint32_t seq = 0;          ///< Transport sequence number.
  std::string note;               ///< Free-form context (phase name, reason).
};

/// Append-only event log. Frame-level events are recorded only when the
/// producer runs with frame tracing enabled; transport- and phase-level
/// events are always recorded, so the trace stays bounded even for
/// minutes-long simulated downloads.
class EventTrace {
 public:
  void Record(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& Events() const { return events_; }
  std::size_t CountKind(TraceEventKind kind) const;
  void Clear() { events_.clear(); }

  /// One JSON object per line (JSONL), stable key order — greppable and
  /// loadable with any JSON parser.
  void WriteJsonl(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace bistdse::net
