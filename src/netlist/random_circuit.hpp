// Deterministic generator of synthetic full-scan circuits.
//
// The generated circuits stand in for the Infineon automotive microprocessor
// used as CUT in the paper's case study (which we cannot obtain). They are
// shaped to reproduce the testability profile that drives mixed-mode BIST
// trade-offs: the bulk of the logic is random-pattern testable within a few
// hundred patterns, while embedded wide-AND/OR "decoder" blocks create
// random-pattern-resistant faults that require deterministic top-up patterns
// — exactly the structure that makes Table I's coverage/runtime/memory
// trade-off non-trivial.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

struct RandomCircuitSpec {
  std::uint32_t num_inputs = 32;       ///< Primary inputs.
  std::uint32_t num_outputs = 32;      ///< Primary outputs.
  std::uint32_t num_flops = 256;       ///< Scan flip-flops (PPIs/PPOs).
  std::uint32_t num_gates = 2000;      ///< Combinational gate budget (approx).
  std::uint32_t num_hard_blocks = 8;   ///< Wide-gate decoder blocks.
  std::uint32_t hard_block_width = 10; ///< Inputs per decoder block.
  std::uint64_t seed = 1;
};

/// Generates a finalized full-scan circuit according to `spec`. The same spec
/// always yields the identical netlist. Throws std::invalid_argument for
/// degenerate specs (no primary inputs, or zero gates).
Netlist GenerateRandomCircuit(const RandomCircuitSpec& spec);

}  // namespace bistdse::netlist
