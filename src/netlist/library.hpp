// Parametric generators of well-known combinational blocks.
//
// Unlike the random generator, these circuits have an arithmetic golden
// model, so the test suite can verify the entire simulation stack
// bit-for-bit (e.g. the ripple-carry adder against uint64 addition). They
// also serve as verifiable CUT building blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

/// In/out port bundles of a generated block.
struct BlockPorts {
  std::vector<NodeId> a;    ///< First operand (LSB first).
  std::vector<NodeId> b;    ///< Second operand (LSB first).
  std::vector<NodeId> out;  ///< Result (LSB first).
  NodeId carry_in = kInvalidNode;
  NodeId carry_out = kInvalidNode;
};

/// n-bit ripple-carry adder: out = a + b + cin, carry_out = overflow.
/// Creates 2n+1 primary inputs; marks sum bits and carry-out as outputs.
BlockPorts BuildRippleCarryAdder(Netlist& netlist, std::uint32_t bits);

/// n x n array multiplier: out (2n bits) = a * b.
BlockPorts BuildArrayMultiplier(Netlist& netlist, std::uint32_t bits);

/// n-bit equality comparator: out[0] = (a == b).
BlockPorts BuildEqualityComparator(Netlist& netlist, std::uint32_t bits);

/// Parity tree: out[0] = XOR of n fresh inputs (in `a`).
BlockPorts BuildParityTree(Netlist& netlist, std::uint32_t bits);

/// 2^sel_bits : 1 multiplexer; `a` holds data inputs, `b` the select lines.
BlockPorts BuildMuxTree(Netlist& netlist, std::uint32_t sel_bits);

}  // namespace bistdse::netlist
