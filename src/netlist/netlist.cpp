#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bistdse::netlist {

std::string_view ToString(GateType type) {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

GateType GateTypeFromString(std::string_view s) {
  std::string up(s);
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (up == "INPUT") return GateType::Input;
  if (up == "BUF" || up == "BUFF") return GateType::Buf;
  if (up == "NOT" || up == "INV") return GateType::Not;
  if (up == "AND") return GateType::And;
  if (up == "NAND") return GateType::Nand;
  if (up == "OR") return GateType::Or;
  if (up == "NOR") return GateType::Nor;
  if (up == "XOR") return GateType::Xor;
  if (up == "XNOR") return GateType::Xnor;
  if (up == "DFF") return GateType::Dff;
  throw std::invalid_argument("unknown gate type: " + std::string(s));
}

void Netlist::CheckArity(GateType type, std::size_t arity) const {
  switch (type) {
    case GateType::Input:
      if (arity != 0) throw std::invalid_argument("INPUT takes no fanins");
      break;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff:
      if (arity != 1)
        throw std::invalid_argument(std::string(ToString(type)) +
                                    " requires exactly 1 fanin");
      break;
    case GateType::Xor:
    case GateType::Xnor:
      if (arity < 2)
        throw std::invalid_argument(std::string(ToString(type)) +
                                    " requires >= 2 fanins");
      break;
    default:
      if (arity < 1)
        throw std::invalid_argument(std::string(ToString(type)) +
                                    " requires >= 1 fanin");
      break;
  }
}

NodeId Netlist::AddNode(Gate gate) {
  if (finalized_) throw std::logic_error("netlist already finalized");
  const auto id = static_cast<NodeId>(gates_.size());
  if (!gate.name.empty()) by_name_.emplace(gate.name, id);
  gates_.push_back(std::move(gate));
  return id;
}

NodeId Netlist::AddInput(std::string name) {
  const NodeId id = AddNode(Gate{GateType::Input, {}, std::move(name)});
  primary_inputs_.push_back(id);
  return id;
}

NodeId Netlist::AddGate(GateType type, std::span<const NodeId> fanins,
                        std::string name) {
  CheckArity(type, fanins.size());
  if (type == GateType::Input) return AddInput(std::move(name));
  if (type == GateType::Dff) return AddFlop(fanins[0], std::move(name));
  for (NodeId f : fanins) {
    if (f >= gates_.size()) throw std::invalid_argument("fanin id out of range");
  }
  return AddNode(Gate{type, {fanins.begin(), fanins.end()}, std::move(name)});
}

NodeId Netlist::AddGate(GateType type, std::initializer_list<NodeId> fanins,
                        std::string name) {
  return AddGate(type, std::span<const NodeId>(fanins.begin(), fanins.size()),
                 std::move(name));
}

NodeId Netlist::AddFlop(NodeId d, std::string name) {
  if (d >= gates_.size()) throw std::invalid_argument("fanin id out of range");
  const NodeId id = AddNode(Gate{GateType::Dff, {d}, std::move(name)});
  flops_.push_back(id);
  return id;
}

void Netlist::RebindFlopInput(NodeId flop, NodeId d) {
  if (finalized_) throw std::logic_error("netlist already finalized");
  if (flop >= gates_.size() || gates_[flop].type != GateType::Dff)
    throw std::invalid_argument("not a flop");
  if (d >= gates_.size()) throw std::invalid_argument("fanin id out of range");
  gates_[flop].fanins[0] = d;
}

void Netlist::MarkOutput(NodeId node) {
  if (node >= gates_.size()) throw std::invalid_argument("node id out of range");
  primary_outputs_.push_back(node);
}

void Netlist::Finalize() {
  if (finalized_) throw std::logic_error("netlist already finalized");

  fanouts_.assign(gates_.size(), {});
  for (NodeId id = 0; id < gates_.size(); ++id) {
    for (NodeId f : gates_[id].fanins) fanouts_[f].push_back(id);
  }

  // Levelize the combinational core: Input and Dff nodes are sources
  // (level 0); a Dff's D fanin edge is a sequential edge and is ignored,
  // which breaks all cycles through flops. Remaining cycles are
  // combinational and rejected.
  levels_.assign(gates_.size(), 0);
  std::vector<std::uint32_t> pending(gates_.size(), 0);
  std::vector<NodeId> ready;
  for (NodeId id = 0; id < gates_.size(); ++id) {
    const Gate& g = gates_[id];
    if (g.type == GateType::Input || g.type == GateType::Dff) {
      ready.push_back(id);
    } else {
      pending[id] = static_cast<std::uint32_t>(g.fanins.size());
      if (pending[id] == 0) ready.push_back(id);  // constant-less; impossible
    }
  }

  topo_order_.clear();
  std::size_t processed = 0;
  while (processed < ready.size()) {
    const NodeId id = ready[processed++];
    const Gate& g = gates_[id];
    if (g.type != GateType::Input && g.type != GateType::Dff) {
      std::uint32_t lvl = 0;
      for (NodeId f : g.fanins) lvl = std::max(lvl, levels_[f] + 1);
      levels_[id] = lvl;
      max_level_ = std::max(max_level_, lvl);
      topo_order_.push_back(id);
    }
    for (NodeId out : fanouts_[id]) {
      if (gates_[out].type == GateType::Dff) continue;  // sequential edge
      if (--pending[out] == 0) ready.push_back(out);
    }
  }

  std::size_t combinational = 0;
  for (const Gate& g : gates_) {
    if (g.type != GateType::Input && g.type != GateType::Dff) ++combinational;
  }
  if (topo_order_.size() != combinational) {
    throw std::logic_error("combinational cycle detected in netlist");
  }

  core_inputs_.clear();
  core_inputs_.insert(core_inputs_.end(), primary_inputs_.begin(),
                      primary_inputs_.end());
  core_inputs_.insert(core_inputs_.end(), flops_.begin(), flops_.end());

  core_outputs_.clear();
  core_outputs_.insert(core_outputs_.end(), primary_outputs_.begin(),
                       primary_outputs_.end());
  for (NodeId flop : flops_) core_outputs_.push_back(gates_[flop].fanins[0]);

  finalized_ = true;
  structure_ = BuildStructuralInfo(*this);
}

NodeId Netlist::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidNode : it->second;
}

std::uint64_t Netlist::ContentHash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(gates_.size());
  for (const Gate& g : gates_) {
    mix(static_cast<std::uint64_t>(g.type));
    mix(g.fanins.size());
    for (NodeId f : g.fanins) mix(f);
  }
  mix(primary_outputs_.size());
  for (NodeId out : primary_outputs_) mix(out);
  mix(flops_.size());
  for (NodeId flop : flops_) mix(flop);
  return h;
}

}  // namespace bistdse::netlist
