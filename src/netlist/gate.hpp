// Gate-level primitives for the bistdse netlist substrate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bistdse::netlist {

/// Index of a node (gate) inside a Netlist. Nodes and their output nets are
/// identified: node i drives net i.
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Supported gate types. `Input` is a primary input, `Dff` a (scan) flip-flop
/// whose Q output acts as a pseudo-primary input in the full-scan test model
/// and whose single D fanin acts as a pseudo-primary output.
enum class GateType : std::uint8_t {
  Input,
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Dff,
};

/// Human-readable gate type name (matches ISCAS .bench keywords).
std::string_view ToString(GateType type);

/// Parse a .bench gate keyword (case-insensitive). Throws std::invalid_argument
/// for unknown keywords.
GateType GateTypeFromString(std::string_view s);

/// True for types whose output inverts the "natural" (AND/OR/XOR/wire) value.
constexpr bool IsInverting(GateType type) {
  return type == GateType::Not || type == GateType::Nand ||
         type == GateType::Nor || type == GateType::Xnor;
}

/// Controlling input value of the gate, or -1 if the type has none
/// (XOR/XNOR/BUF/NOT/Input/Dff).
constexpr int ControllingValue(GateType type) {
  switch (type) {
    case GateType::And:
    case GateType::Nand:
      return 0;
    case GateType::Or:
    case GateType::Nor:
      return 1;
    default:
      return -1;
  }
}

/// One gate: its type and fanin node ids. Fanout lists are derived and stored
/// by the Netlist.
struct Gate {
  GateType type = GateType::Buf;
  std::vector<NodeId> fanins;
  std::string name;  ///< Optional symbolic name (from .bench or the builder).
};

}  // namespace bistdse::netlist
