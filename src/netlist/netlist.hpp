// Netlist: an in-memory gate-level circuit with full-scan test view.
//
// The netlist is a DAG of gates. In the full-scan test model used by the BIST
// engine, every Dff is a scan element: its Q output is a pseudo-primary input
// (PPI) and its D input a pseudo-primary output (PPO). The combinational core
// between (PIs + PPIs) and (POs + PPOs) is what logic/fault simulation and
// ATPG operate on.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"
#include "netlist/structure.hpp"

namespace bistdse::netlist {

class Netlist {
 public:
  // --- construction -------------------------------------------------------

  /// Adds a primary input; returns its node id.
  NodeId AddInput(std::string name = {});

  /// Adds a gate of `type` driven by `fanins`; returns its node id.
  /// Fanins may refer to any previously added node. Throws
  /// std::invalid_argument on arity violations (e.g. NOT with 2 fanins).
  NodeId AddGate(GateType type, std::span<const NodeId> fanins,
                 std::string name = {});
  NodeId AddGate(GateType type, std::initializer_list<NodeId> fanins,
                 std::string name = {});

  /// Adds a scan flip-flop with data input `d`; returns its node id (= Q net).
  NodeId AddFlop(NodeId d, std::string name = {});

  /// Marks an existing node as primary output.
  void MarkOutput(NodeId node);

  /// Reconnects the D input of an existing flop. Only allowed before
  /// Finalize(); used by parsers that see a flop before its fanin cone.
  void RebindFlopInput(NodeId flop, NodeId d);

  /// Finalizes the netlist: derives fanout lists, levelizes the combinational
  /// core, checks structural sanity. Must be called once after construction
  /// and before any query below. Throws std::logic_error on combinational
  /// cycles.
  void Finalize();

  // --- structure queries ---------------------------------------------------

  std::size_t NodeCount() const { return gates_.size(); }
  const Gate& GetGate(NodeId id) const { return gates_[id]; }
  GateType TypeOf(NodeId id) const { return gates_[id].type; }
  std::span<const NodeId> FaninsOf(NodeId id) const { return gates_[id].fanins; }
  std::span<const NodeId> FanoutsOf(NodeId id) const { return fanouts_[id]; }
  std::size_t FanoutCount(NodeId id) const { return fanouts_[id].size(); }

  std::span<const NodeId> PrimaryInputs() const { return primary_inputs_; }
  std::span<const NodeId> PrimaryOutputs() const { return primary_outputs_; }
  std::span<const NodeId> Flops() const { return flops_; }

  /// All circuit inputs of the combinational core: PIs followed by flop
  /// outputs (PPIs). Order is stable and defines the test-pattern layout.
  std::span<const NodeId> CoreInputs() const { return core_inputs_; }

  /// All observation points of the combinational core: POs followed by flop
  /// D-fanins (PPOs). Order is stable and defines the response layout.
  std::span<const NodeId> CoreOutputs() const { return core_outputs_; }

  /// Nodes of the combinational core in topological (levelized) order.
  /// Inputs and flops are not included; evaluating nodes in this order after
  /// assigning PI/PPI values yields a consistent simulation.
  std::span<const NodeId> TopologicalOrder() const { return topo_order_; }

  /// Topological level of a node (inputs/flops are level 0).
  std::uint32_t LevelOf(NodeId id) const { return levels_[id]; }
  std::uint32_t MaxLevel() const { return max_level_; }

  bool IsFinalized() const { return finalized_; }

  /// Number of combinational gates (excludes Input and Dff nodes).
  std::size_t CombinationalGateCount() const { return topo_order_.size(); }

  /// Structural shortcut metadata (FFR stems, immediate post-dominators),
  /// derived once in Finalize() and cached like the levelization.
  const StructuralInfo& Structure() const { return structure_; }

  /// Node lookup by symbolic name; returns kInvalidNode if absent.
  NodeId FindByName(const std::string& name) const;

  /// FNV-1a content hash over the finalized structure (gate types, fanins,
  /// outputs, flop order) — names excluded, so structurally identical
  /// netlists hash equal. Simulation results are pure functions of this
  /// structure, which is what lets campaign memos and serialized fault
  /// dictionaries key on it.
  std::uint64_t ContentHash() const;

 private:
  NodeId AddNode(Gate gate);
  void CheckArity(GateType type, std::size_t arity) const;

  std::vector<Gate> gates_;
  std::vector<std::vector<NodeId>> fanouts_;
  std::vector<NodeId> primary_inputs_;
  std::vector<NodeId> primary_outputs_;
  std::vector<NodeId> flops_;
  std::vector<NodeId> core_inputs_;
  std::vector<NodeId> core_outputs_;
  std::vector<NodeId> topo_order_;
  std::vector<std::uint32_t> levels_;
  std::unordered_map<std::string, NodeId> by_name_;
  StructuralInfo structure_;
  std::uint32_t max_level_ = 0;
  bool finalized_ = false;
};

}  // namespace bistdse::netlist
