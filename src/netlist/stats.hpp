// Structural statistics of a netlist — the numbers a test engineer checks
// before trusting a CUT model (gate mix, depth, fanout distribution, scan
// ratio).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

struct NetlistStats {
  std::size_t primary_inputs = 0;
  std::size_t primary_outputs = 0;
  std::size_t flops = 0;
  std::size_t combinational_gates = 0;
  std::uint32_t max_level = 0;
  double avg_fanin = 0.0;
  double avg_fanout = 0.0;
  std::size_t max_fanout = 0;
  std::size_t dangling_nodes = 0;  ///< No fanout and not a PO.
  /// Gate counts indexed by GateType.
  std::array<std::size_t, 10> by_type{};

  /// Scan ratio: flops / (flops + combinational gates).
  double ScanRatio() const {
    const auto total = static_cast<double>(flops + combinational_gates);
    return total > 0 ? static_cast<double>(flops) / total : 0.0;
  }
};

NetlistStats ComputeStats(const Netlist& netlist);

/// Multi-line human-readable report.
std::string FormatStats(const NetlistStats& stats);

}  // namespace bistdse::netlist
