// Structural shortcut metadata for fault simulation: fanout-free regions
// (FFRs) and immediate post-dominators of the combinational fanout graph.
//
// Both are pure functions of the netlist topology and are computed once in
// Netlist::Finalize() (cached like the levelization), so every simulator,
// campaign worker clone and ATPG engine shares one copy.
//
// FFR: a maximal region of the combinational core in which every node has a
// single combinational fanout. A fault effect anywhere inside the region can
// only leave it through the region's *stem* (the first node with fanout != 1
// when walking forward), so one stem propagation answers detection for every
// fault in the region — the classic FFR collapse.
//
// Immediate post-dominators: ipostdom(n) is the first node every sensitized
// path from n towards an observation point must pass through, computed on
// the combinational fanout DAG augmented with a virtual EXIT vertex that
// every observed node (primary output or flop D net) feeds. When an
// event-driven propagation wave collapses onto a single pending node whose
// observability under the current pattern block is already known, the
// remaining propagation is exactly `diff & obs` — the simulator cuts there
// (Cooper/Harvey/Kennedy "simple fast dominance" over the reverse graph).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/gate.hpp"

namespace bistdse::netlist {

class Netlist;

class StructuralInfo {
 public:
  /// Virtual observation sink in the post-dominator tree: the ipostdom of a
  /// node whose fault effects fan out directly to observation points (or to
  /// reconverging paths that only meet again at observation).
  static constexpr NodeId kExitNode = kInvalidNode - 1;

  /// Stem of the fanout-free region containing `n`: the first node reached
  /// from `n` (following single combinational fanouts) whose combinational
  /// fanout count differs from 1. FfrStemOf(stem) == stem.
  NodeId FfrStemOf(NodeId n) const { return ffr_stem_[n]; }

  /// Immediate post-dominator of `n` in the combinational fanout graph:
  /// kExitNode when observation itself is the first common point, and
  /// kInvalidNode when `n` cannot reach any observation point (dead logic —
  /// faults there are undetectable).
  NodeId IPostDomOf(NodeId n) const { return ipostdom_[n]; }

  /// True when `n` is a core output (primary output or flop D net).
  bool IsObserved(NodeId n) const { return observed_[n] != 0; }

  /// True when some path from `n` reaches an observation point.
  bool ReachesObservation(NodeId n) const { return ipostdom_[n] != kInvalidNode; }

  /// Number of distinct fanout-free regions (== number of stems).
  std::size_t FfrCount() const { return ffr_count_; }

  std::size_t NodeCount() const { return ffr_stem_.size(); }

 private:
  friend StructuralInfo BuildStructuralInfo(const Netlist& netlist);

  std::vector<NodeId> ffr_stem_;
  std::vector<NodeId> ipostdom_;
  std::vector<std::uint8_t> observed_;
  std::size_t ffr_count_ = 0;
};

/// Computes FFR stems and immediate post-dominators for a netlist whose
/// fanouts and levels are already derived. Called from Netlist::Finalize();
/// not part of the public construction API.
StructuralInfo BuildStructuralInfo(const Netlist& netlist);

}  // namespace bistdse::netlist
