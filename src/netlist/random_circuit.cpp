#include "netlist/random_circuit.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace bistdse::netlist {

namespace {

// The generator composes small datapath blocks instead of sprinkling
// unconstrained random gates: unconstrained random logic is massively
// redundant (correlated reconvergence masks half the faults), while block
// composition with XOR-rich structures yields the low-redundancy, mostly
// random-pattern-testable profile of real circuits. Observability is
// guaranteed by XOR-merging every otherwise-unconsumed signal into the
// outputs (XOR propagates every input change).
class BlockComposer {
 public:
  BlockComposer(Netlist& nl, util::SplitMix64& rng,
                std::vector<NodeId>& signals)
      : nl_(nl), rng_(rng), signals_(signals),
        use_count_(signals.size(), 0) {}

  std::uint32_t gates_emitted = 0;

  NodeId Pick() {
    // Bias toward rarely used signals so fanout spreads out and blocks stay
    // weakly correlated.
    const std::size_t n = signals_.size();
    std::size_t best = rng_.Below(n);
    for (int tries = 0; tries < 3; ++tries) {
      const std::size_t cand = rng_.Below(n);
      if (use_count_[cand] < use_count_[best]) best = cand;
    }
    ++use_count_[best];
    return signals_[best];
  }

  NodeId Emit(GateType type, std::initializer_list<NodeId> fanins) {
    ++gates_emitted;
    return nl_.AddGate(type, fanins);
  }

  void Publish(NodeId id) {
    signals_.push_back(id);
    use_count_.push_back(0);
  }

  // n-bit ripple-carry adder over 2n picked bits; publishes sum bits + carry.
  void AdderBlock(std::uint32_t bits) {
    NodeId carry = Pick();
    for (std::uint32_t i = 0; i < bits; ++i) {
      const NodeId a = Pick(), b = Pick();
      const NodeId axb = Emit(GateType::Xor, {a, b});
      const NodeId sum = Emit(GateType::Xor, {axb, carry});
      const NodeId c1 = Emit(GateType::And, {a, b});
      const NodeId c2 = Emit(GateType::And, {axb, carry});
      carry = Emit(GateType::Or, {c1, c2});
      Publish(sum);
    }
    Publish(carry);
  }

  // Bank of 2:1 muxes sharing one select signal (like a datapath bypass).
  void MuxBlock(std::uint32_t lanes) {
    const NodeId sel = Pick();
    const NodeId nsel = Emit(GateType::Not, {sel});
    for (std::uint32_t i = 0; i < lanes; ++i) {
      const NodeId a = Pick(), b = Pick();
      const NodeId pa = Emit(GateType::And, {a, sel});
      const NodeId pb = Emit(GateType::And, {b, nsel});
      Publish(Emit(GateType::Or, {pa, pb}));
    }
  }

  // Parity (XOR reduction) over `width` picked bits.
  void ParityBlock(std::uint32_t width) {
    NodeId acc = Pick();
    for (std::uint32_t i = 1; i < width; ++i) {
      acc = Emit(GateType::Xor, {acc, Pick()});
    }
    Publish(acc);
  }

  // n-bit equality comparator: XNOR per bit + AND tree.
  void ComparatorBlock(std::uint32_t bits) {
    std::vector<NodeId> eq;
    for (std::uint32_t i = 0; i < bits; ++i) {
      eq.push_back(Emit(GateType::Xnor, {Pick(), Pick()}));
    }
    while (eq.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < eq.size(); i += 2) {
        next.push_back(Emit(GateType::And, {eq[i], eq[i + 1]}));
      }
      if (eq.size() % 2) next.push_back(eq.back());
      eq = std::move(next);
    }
    Publish(eq[0]);
  }

  // Wide AND/OR decoder with random input inversions: its output is
  // sensitized by exactly one code word over the picked signals — the
  // random-pattern-resistant structure that motivates mixed-mode BIST.
  void DecoderBlock(std::uint32_t width, bool use_and) {
    std::vector<NodeId> layer;
    for (std::uint32_t i = 0; i < width; ++i) {
      NodeId s = Pick();
      if (rng_.Chance(0.5)) s = Emit(GateType::Not, {s});
      layer.push_back(s);
    }
    while (layer.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
        next.push_back(Emit(use_and ? GateType::And : GateType::Or,
                            {layer[i], layer[i + 1]}));
      }
      if (layer.size() % 2) next.push_back(layer.back());
      layer = std::move(next);
    }
    Publish(layer[0]);
  }

  // A small cluster of NAND/NOR random logic (control-logic flavor).
  void RandomClusterBlock(std::uint32_t gates) {
    for (std::uint32_t i = 0; i < gates; ++i) {
      const std::uint64_t roll = rng_.Below(4);
      const GateType type = roll == 0   ? GateType::Nand
                            : roll == 1 ? GateType::Nor
                            : roll == 2 ? GateType::And
                                        : GateType::Or;
      const NodeId a = Pick();
      NodeId b = Pick();
      // Avoid the heavy correlation of a gate fed twice by the same net.
      for (int t = 0; t < 4 && b == a; ++t) b = Pick();
      Publish(Emit(type, {a, b}));
    }
  }

  /// Signals never consumed as a fanin (use_count 0). Excludes index ranges
  /// belonging to primary inputs/flops when asked.
  std::vector<NodeId> UnusedSignals(std::size_t skip_first) const {
    std::vector<NodeId> unused;
    for (std::size_t i = skip_first; i < signals_.size(); ++i) {
      if (use_count_[i] == 0) unused.push_back(signals_[i]);
    }
    return unused;
  }

 private:
  Netlist& nl_;
  util::SplitMix64& rng_;
  std::vector<NodeId>& signals_;
  std::vector<std::uint32_t> use_count_;
};

}  // namespace

Netlist GenerateRandomCircuit(const RandomCircuitSpec& spec) {
  if (spec.num_inputs == 0)
    throw std::invalid_argument("circuit needs at least one primary input");
  if (spec.num_gates == 0)
    throw std::invalid_argument("circuit needs at least one gate");

  util::SplitMix64 rng(spec.seed);
  Netlist nl;
  std::vector<NodeId> signals;

  for (std::uint32_t i = 0; i < spec.num_inputs; ++i)
    signals.push_back(nl.AddInput("pi" + std::to_string(i)));

  std::vector<NodeId> flops;
  for (std::uint32_t i = 0; i < spec.num_flops; ++i) {
    const NodeId q = nl.AddFlop(signals[0], "ff" + std::to_string(i));
    flops.push_back(q);
    signals.push_back(q);
  }

  BlockComposer composer(nl, rng, signals);

  // Interleave the requested number of decoder (hard) blocks with the
  // regular datapath blocks.
  std::uint32_t hard_blocks_left = spec.num_hard_blocks;
  const std::uint32_t hard_interval =
      spec.num_hard_blocks > 0
          ? std::max<std::uint32_t>(1, spec.num_gates / (spec.num_hard_blocks + 1))
          : 0;
  std::uint32_t next_hard_at = hard_interval;

  while (composer.gates_emitted < spec.num_gates) {
    if (hard_blocks_left > 0 && composer.gates_emitted >= next_hard_at) {
      composer.DecoderBlock(spec.hard_block_width, rng.Chance(0.5));
      --hard_blocks_left;
      next_hard_at += hard_interval;
      continue;
    }
    switch (rng.Below(5)) {
      case 0:
        composer.AdderBlock(2 + static_cast<std::uint32_t>(rng.Below(5)));
        break;
      case 1:
        composer.MuxBlock(3 + static_cast<std::uint32_t>(rng.Below(6)));
        break;
      case 2:
        composer.ParityBlock(4 + static_cast<std::uint32_t>(rng.Below(9)));
        break;
      case 3:
        composer.ComparatorBlock(2 + static_cast<std::uint32_t>(rng.Below(5)));
        break;
      default:
        composer.RandomClusterBlock(4 + static_cast<std::uint32_t>(rng.Below(8)));
        break;
    }
  }
  while (hard_blocks_left > 0) {
    composer.DecoderBlock(spec.hard_block_width, rng.Chance(0.5));
    --hard_blocks_left;
  }

  // Observability closure: every signal never consumed as a fanin is XOR-
  // merged into one of the sinks (POs and flop D inputs). XOR trees never
  // mask, so all block logic stays observable; only in-block masking can
  // make faults hard or redundant — as in real designs.
  const std::size_t num_sinks =
      static_cast<std::size_t>(spec.num_outputs) + flops.size();
  std::vector<std::vector<NodeId>> sink_groups(num_sinks);
  const auto unused = composer.UnusedSignals(0);
  for (std::size_t i = 0; i < unused.size(); ++i) {
    sink_groups[i % num_sinks].push_back(unused[i]);
  }

  std::vector<NodeId> sink_drivers;
  for (std::size_t s = 0; s < num_sinks; ++s) {
    auto& group = sink_groups[s];
    if (group.empty()) group.push_back(composer.Pick());
    NodeId acc = group[0];
    for (std::size_t i = 1; i < group.size(); ++i) {
      acc = nl.AddGate(GateType::Xor, {acc, group[i]});
    }
    sink_drivers.push_back(acc);
  }

  for (std::uint32_t i = 0; i < spec.num_outputs; ++i) {
    nl.MarkOutput(sink_drivers[i]);
  }
  for (std::size_t i = 0; i < flops.size(); ++i) {
    nl.RebindFlopInput(flops[i], sink_drivers[spec.num_outputs + i]);
  }

  nl.Finalize();
  return nl;
}

}  // namespace bistdse::netlist
