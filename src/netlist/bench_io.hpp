// Reader/writer for the ISCAS-85/89 ".bench" netlist format.
//
// Supported grammar (comments start with '#'):
//   INPUT(name)
//   OUTPUT(name)
//   name = GATE(op1, op2, ...)     GATE in {BUF(F), NOT, AND, NAND, OR,
//                                           NOR, XOR, XNOR, DFF}
//
// OUTPUT lines may precede the definition of the referenced net.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

/// Parses a .bench description. Throws std::runtime_error with a line number
/// on syntax errors, undefined nets, or duplicate definitions. The returned
/// netlist is finalized.
Netlist ParseBench(std::istream& in);
Netlist ParseBenchString(const std::string& text);
Netlist ParseBenchFile(const std::string& path);

/// Writes `netlist` in .bench format. Unnamed nodes get generated names
/// ("n<id>").
void WriteBench(const Netlist& netlist, std::ostream& out);
std::string WriteBenchString(const Netlist& netlist);

}  // namespace bistdse::netlist
