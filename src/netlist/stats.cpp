#include "netlist/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace bistdse::netlist {

NetlistStats ComputeStats(const Netlist& netlist) {
  NetlistStats stats;
  stats.primary_inputs = netlist.PrimaryInputs().size();
  stats.primary_outputs = netlist.PrimaryOutputs().size();
  stats.flops = netlist.Flops().size();
  stats.combinational_gates = netlist.CombinationalGateCount();
  stats.max_level = netlist.MaxLevel();

  const std::set<NodeId> outputs(netlist.PrimaryOutputs().begin(),
                                 netlist.PrimaryOutputs().end());
  std::size_t fanin_sum = 0, fanout_sum = 0, fanout_nodes = 0;
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    const GateType type = netlist.TypeOf(id);
    stats.by_type[static_cast<std::size_t>(type)]++;
    if (type != GateType::Input) fanin_sum += netlist.FaninsOf(id).size();
    const std::size_t fanout = netlist.FanoutCount(id);
    fanout_sum += fanout;
    ++fanout_nodes;
    stats.max_fanout = std::max(stats.max_fanout, fanout);
    if (fanout == 0 && !outputs.count(id)) ++stats.dangling_nodes;
  }
  const std::size_t non_inputs = netlist.NodeCount() - stats.primary_inputs;
  stats.avg_fanin =
      non_inputs ? static_cast<double>(fanin_sum) / non_inputs : 0.0;
  stats.avg_fanout =
      fanout_nodes ? static_cast<double>(fanout_sum) / fanout_nodes : 0.0;
  return stats;
}

std::string FormatStats(const NetlistStats& stats) {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "PIs %zu, POs %zu, flops %zu, gates %zu, depth %u\n",
                stats.primary_inputs, stats.primary_outputs, stats.flops,
                stats.combinational_gates, stats.max_level);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "avg fanin %.2f, avg fanout %.2f (max %zu), dangling %zu, "
                "scan ratio %.2f\n",
                stats.avg_fanin, stats.avg_fanout, stats.max_fanout,
                stats.dangling_nodes, stats.ScanRatio());
  out += buf;
  out += "gate mix:";
  for (std::size_t t = 0; t < stats.by_type.size(); ++t) {
    if (stats.by_type[t] == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s=%zu",
                  std::string(ToString(static_cast<GateType>(t))).c_str(),
                  stats.by_type[t]);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace bistdse::netlist
