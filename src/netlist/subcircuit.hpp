// Fanin-cone extraction: the standalone subcircuit a failure analyst pulls
// out once diagnosis has localized a defect candidate.
#pragma once

#include <map>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

struct ExtractedCone {
  Netlist circuit;  ///< Finalized; boundary nets become primary inputs.
  /// Original node id -> node id in `circuit` (cone members and boundary).
  std::map<NodeId, NodeId> node_map;
};

/// Extracts the transitive fanin cone of `root` (up to and including core
/// inputs; flop Q pins become plain inputs). The root is marked as the
/// single primary output.
ExtractedCone ExtractFaninCone(const Netlist& netlist, NodeId root);

}  // namespace bistdse::netlist
