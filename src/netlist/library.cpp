#include "netlist/library.hpp"

#include <string>

namespace bistdse::netlist {

namespace {

/// Full adder over (x, y, cin); returns {sum, cout}.
std::pair<NodeId, NodeId> FullAdder(Netlist& nl, NodeId x, NodeId y,
                                    NodeId cin) {
  const NodeId axb = nl.AddGate(GateType::Xor, {x, y});
  const NodeId sum = nl.AddGate(GateType::Xor, {axb, cin});
  const NodeId c1 = nl.AddGate(GateType::And, {x, y});
  const NodeId c2 = nl.AddGate(GateType::And, {axb, cin});
  const NodeId cout = nl.AddGate(GateType::Or, {c1, c2});
  return {sum, cout};
}

}  // namespace

BlockPorts BuildRippleCarryAdder(Netlist& nl, std::uint32_t bits) {
  BlockPorts ports;
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.a.push_back(nl.AddInput("a" + std::to_string(i)));
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.b.push_back(nl.AddInput("b" + std::to_string(i)));
  ports.carry_in = nl.AddInput("cin");

  NodeId carry = ports.carry_in;
  for (std::uint32_t i = 0; i < bits; ++i) {
    auto [sum, cout] = FullAdder(nl, ports.a[i], ports.b[i], carry);
    ports.out.push_back(sum);
    nl.MarkOutput(sum);
    carry = cout;
  }
  ports.carry_out = carry;
  nl.MarkOutput(carry);
  return ports;
}

BlockPorts BuildArrayMultiplier(Netlist& nl, std::uint32_t bits) {
  BlockPorts ports;
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.a.push_back(nl.AddInput("a" + std::to_string(i)));
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.b.push_back(nl.AddInput("b" + std::to_string(i)));

  // Partial products pp[i][j] = a[j] & b[i], accumulated row by row with
  // ripple adders (classic array multiplier).
  std::vector<NodeId> acc;  // running sum, LSB first
  for (std::uint32_t i = 0; i < bits; ++i) {
    std::vector<NodeId> row;
    for (std::uint32_t j = 0; j < bits; ++j) {
      row.push_back(nl.AddGate(GateType::And, {ports.a[j], ports.b[i]}));
    }
    if (i == 0) {
      acc = row;
      continue;
    }
    // Add `row` shifted left by i onto acc: bits below i are final already.
    NodeId carry = kInvalidNode;
    std::vector<NodeId> next_acc(acc.begin(), acc.begin() + i);
    for (std::uint32_t j = 0; j < bits; ++j) {
      const NodeId acc_bit =
          (i + j) < acc.size() ? acc[i + j] : kInvalidNode;
      if (acc_bit == kInvalidNode) {
        // No accumulated bit here: half-add row bit with carry.
        if (carry == kInvalidNode) {
          next_acc.push_back(row[j]);
        } else {
          const NodeId s = nl.AddGate(GateType::Xor, {row[j], carry});
          carry = nl.AddGate(GateType::And, {row[j], carry});
          next_acc.push_back(s);
        }
        continue;
      }
      if (carry == kInvalidNode) {
        const NodeId s = nl.AddGate(GateType::Xor, {acc_bit, row[j]});
        carry = nl.AddGate(GateType::And, {acc_bit, row[j]});
        next_acc.push_back(s);
      } else {
        auto [s, c] = FullAdder(nl, acc_bit, row[j], carry);
        next_acc.push_back(s);
        carry = c;
      }
    }
    if (carry != kInvalidNode) next_acc.push_back(carry);
    acc = std::move(next_acc);
  }

  // Pad to 2n bits with constant-0? Array multiplier naturally yields up to
  // 2n bits; acc size is exactly 2n for bits >= 1 except the top carry may
  // be absent for bits == 1.
  ports.out = acc;
  for (NodeId bit : ports.out) nl.MarkOutput(bit);
  return ports;
}

BlockPorts BuildEqualityComparator(Netlist& nl, std::uint32_t bits) {
  BlockPorts ports;
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.a.push_back(nl.AddInput("a" + std::to_string(i)));
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.b.push_back(nl.AddInput("b" + std::to_string(i)));
  std::vector<NodeId> eq;
  for (std::uint32_t i = 0; i < bits; ++i) {
    eq.push_back(nl.AddGate(GateType::Xnor, {ports.a[i], ports.b[i]}));
  }
  while (eq.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < eq.size(); i += 2) {
      next.push_back(nl.AddGate(GateType::And, {eq[i], eq[i + 1]}));
    }
    if (eq.size() % 2) next.push_back(eq.back());
    eq = std::move(next);
  }
  ports.out = {eq[0]};
  nl.MarkOutput(eq[0]);
  return ports;
}

BlockPorts BuildParityTree(Netlist& nl, std::uint32_t bits) {
  BlockPorts ports;
  for (std::uint32_t i = 0; i < bits; ++i)
    ports.a.push_back(nl.AddInput("x" + std::to_string(i)));
  std::vector<NodeId> layer = ports.a;
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.AddGate(GateType::Xor, {layer[i], layer[i + 1]}));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  ports.out = {layer[0]};
  nl.MarkOutput(layer[0]);
  return ports;
}

BlockPorts BuildMuxTree(Netlist& nl, std::uint32_t sel_bits) {
  BlockPorts ports;
  const std::uint32_t n = 1u << sel_bits;
  for (std::uint32_t i = 0; i < n; ++i)
    ports.a.push_back(nl.AddInput("d" + std::to_string(i)));
  for (std::uint32_t i = 0; i < sel_bits; ++i)
    ports.b.push_back(nl.AddInput("s" + std::to_string(i)));

  std::vector<NodeId> layer = ports.a;
  for (std::uint32_t level = 0; level < sel_bits; ++level) {
    const NodeId sel = ports.b[level];
    const NodeId nsel = nl.AddGate(GateType::Not, {sel});
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const NodeId p0 = nl.AddGate(GateType::And, {layer[i], nsel});
      const NodeId p1 = nl.AddGate(GateType::And, {layer[i + 1], sel});
      next.push_back(nl.AddGate(GateType::Or, {p0, p1}));
    }
    layer = std::move(next);
  }
  ports.out = {layer[0]};
  nl.MarkOutput(layer[0]);
  return ports;
}

}  // namespace bistdse::netlist
