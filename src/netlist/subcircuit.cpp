#include "netlist/subcircuit.hpp"

#include <stdexcept>
#include <vector>

namespace bistdse::netlist {

ExtractedCone ExtractFaninCone(const Netlist& netlist, NodeId root) {
  if (root >= netlist.NodeCount())
    throw std::invalid_argument("root out of range");

  // Collect the cone (DFS over fanins; stop at Inputs and flop Qs).
  std::vector<std::uint8_t> in_cone(netlist.NodeCount(), 0);
  std::vector<NodeId> stack{root};
  in_cone[root] = 1;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const GateType type = netlist.TypeOf(id);
    if (type == GateType::Input || type == GateType::Dff) continue;
    for (NodeId f : netlist.FaninsOf(id)) {
      if (!in_cone[f]) {
        in_cone[f] = 1;
        stack.push_back(f);
      }
    }
  }

  ExtractedCone result;
  // Create boundary inputs first, then gates in topological order.
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    if (!in_cone[id]) continue;
    const GateType type = netlist.TypeOf(id);
    if (type == GateType::Input || type == GateType::Dff) {
      const std::string& name = netlist.GetGate(id).name;
      result.node_map[id] = result.circuit.AddInput(
          name.empty() ? "b" + std::to_string(id) : name);
    }
  }
  for (NodeId id : netlist.TopologicalOrder()) {
    if (!in_cone[id]) continue;
    std::vector<NodeId> fanins;
    for (NodeId f : netlist.FaninsOf(id)) {
      fanins.push_back(result.node_map.at(f));
    }
    result.node_map[id] = result.circuit.AddGate(
        netlist.TypeOf(id), fanins, netlist.GetGate(id).name);
  }
  result.circuit.MarkOutput(result.node_map.at(root));
  result.circuit.Finalize();
  return result;
}

}  // namespace bistdse::netlist
