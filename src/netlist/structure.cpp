#include "netlist/structure.hpp"

#include <cstdint>

#include "netlist/netlist.hpp"

namespace bistdse::netlist {

namespace {

/// Combinational fanouts of `id` (sequential Dff edges are observed at the
/// driver and do not carry fault effects forward within a cycle).
template <typename Fn>
void ForEachCombFanout(const Netlist& netlist, NodeId id, Fn&& fn) {
  for (NodeId out : netlist.FanoutsOf(id)) {
    if (netlist.TypeOf(out) == GateType::Dff) continue;
    fn(out);
  }
}

}  // namespace

StructuralInfo BuildStructuralInfo(const Netlist& netlist) {
  const std::size_t n = netlist.NodeCount();
  StructuralInfo info;
  info.observed_.assign(n, 0);
  for (NodeId id : netlist.CoreOutputs()) info.observed_[id] = 1;

  // Forward topological order over *all* nodes: sources (inputs and flop Q
  // nets) first, then the levelized combinational core. Position in this
  // order gives the comparison key for the dominator meet; the virtual EXIT
  // vertex sits past the end (maximal position).
  std::vector<NodeId> order;
  order.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    const GateType t = netlist.TypeOf(id);
    if (t == GateType::Input || t == GateType::Dff) order.push_back(id);
  }
  for (NodeId id : netlist.TopologicalOrder()) order.push_back(id);

  std::vector<std::uint32_t> pos(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = static_cast<std::uint32_t>(i);
  }
  const std::uint32_t exit_pos = static_cast<std::uint32_t>(order.size());
  const auto pos_of = [&](NodeId x) {
    return x == StructuralInfo::kExitNode ? exit_pos : pos[x];
  };

  // FFR stems: reverse topological sweep, so the single fanout's stem is
  // already known when a chain node asks for it.
  info.ffr_stem_.assign(n, kInvalidNode);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    NodeId single = kInvalidNode;
    std::size_t comb_fanouts = 0;
    ForEachCombFanout(netlist, id, [&](NodeId out) {
      ++comb_fanouts;
      single = out;
    });
    info.ffr_stem_[id] =
        comb_fanouts == 1 ? info.ffr_stem_[single] : id;
  }
  for (NodeId id = 0; id < n; ++id) {
    if (info.ffr_stem_[id] == id) ++info.ffr_count_;
  }

  // Immediate post-dominators (Cooper/Harvey/Kennedy on the reverse graph,
  // single pass — the graph is a DAG, so one reverse-topological sweep with
  // already-final successor entries converges immediately). The meet climbs
  // the partially built dominator tree towards EXIT; every ipostdom lies
  // strictly later in topological order, so the climb always terminates.
  info.ipostdom_.assign(n, kInvalidNode);
  const auto meet = [&](NodeId a, NodeId b) {
    while (a != b) {
      if (pos_of(a) < pos_of(b)) {
        a = info.ipostdom_[a];
      } else {
        b = info.ipostdom_[b];
      }
    }
    return a;
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    NodeId idom = kInvalidNode;
    if (info.observed_[id]) idom = StructuralInfo::kExitNode;
    ForEachCombFanout(netlist, id, [&](NodeId out) {
      if (info.ipostdom_[out] == kInvalidNode && !info.observed_[out]) {
        return;  // dead fanout: no path to observation, contributes nothing
      }
      idom = idom == kInvalidNode ? out : meet(idom, out);
    });
    info.ipostdom_[id] = idom;
  }

  return info;
}

}  // namespace bistdse::netlist
