#include "netlist/bench_io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bistdse::netlist {

namespace {

struct PendingGate {
  std::string name;
  GateType type = GateType::Buf;
  std::vector<std::string> operands;
  std::size_t line = 0;
};

[[noreturn]] void Fail(std::size_t line, const std::string& msg) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " + msg);
}

std::string Strip(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

Netlist ParseBench(std::istream& in) {
  std::vector<std::string> inputs;
  std::vector<std::pair<std::string, std::size_t>> outputs;
  std::vector<PendingGate> pending;

  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (auto hash = raw.find('#'); hash != std::string::npos) raw.resize(hash);
    const std::string line = Strip(raw);
    if (line.empty()) continue;

    if (line.rfind("INPUT", 0) == 0 || line.rfind("OUTPUT", 0) == 0) {
      const bool is_input = line[0] == 'I';
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        Fail(lineno, "malformed I/O declaration");
      }
      std::string name = Strip(line.substr(open + 1, close - open - 1));
      if (name.empty()) Fail(lineno, "empty net name");
      if (is_input) {
        inputs.push_back(std::move(name));
      } else {
        outputs.emplace_back(std::move(name), lineno);
      }
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) Fail(lineno, "expected '='");
    PendingGate g;
    g.name = Strip(line.substr(0, eq));
    g.line = lineno;
    const std::string rhs = Strip(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      Fail(lineno, "malformed gate expression");
    try {
      g.type = GateTypeFromString(Strip(rhs.substr(0, open)));
    } catch (const std::invalid_argument& e) {
      Fail(lineno, e.what());
    }
    std::stringstream ss(rhs.substr(open + 1, close - open - 1));
    std::string op;
    while (std::getline(ss, op, ',')) {
      op = Strip(op);
      if (op.empty()) Fail(lineno, "empty operand");
      g.operands.push_back(std::move(op));
    }
    if (g.name.empty()) Fail(lineno, "empty gate name");
    if (g.type == GateType::Dff && g.operands.size() != 1)
      Fail(lineno, "DFF requires exactly 1 operand");
    pending.push_back(std::move(g));
  }

  Netlist nl;
  std::map<std::string, NodeId> defined;
  for (const std::string& name : inputs) {
    if (defined.count(name)) throw std::runtime_error("duplicate net: " + name);
    defined[name] = nl.AddInput(name);
  }
  std::map<std::string, const PendingGate*> by_name;
  for (const PendingGate& g : pending) {
    if (defined.count(g.name) || by_name.count(g.name))
      Fail(g.line, "duplicate net: " + g.name);
    by_name[g.name] = &g;
  }

  // Flops usually precede their fanin cone in .bench files, and feedback
  // through flops is legal. Materialize every flop up-front with a
  // placeholder D connection, patch after the combinational gates exist.
  std::vector<std::pair<NodeId, const PendingGate*>> flop_patches;
  for (const PendingGate& g : pending) {
    if (g.type != GateType::Dff) continue;
    // Placeholder fanin: any existing node; node 0 exists whenever the file
    // has at least one input or earlier gate. A flop whose netlist is
    // otherwise empty would be degenerate anyway.
    if (nl.NodeCount() == 0) Fail(g.line, "flop with no possible fanin");
    const NodeId id = nl.AddFlop(0, g.name);
    defined[g.name] = id;
    flop_patches.emplace_back(id, &g);
  }

  // Kahn's algorithm over combinational gates; flop outputs count as defined.
  std::map<std::string, std::vector<const PendingGate*>> waiters;
  std::map<const PendingGate*, std::size_t> missing;
  std::vector<const PendingGate*> ready;
  for (const PendingGate& g : pending) {
    if (g.type == GateType::Dff) continue;
    std::size_t need = 0;
    for (const std::string& op : g.operands) {
      if (defined.count(op)) continue;
      if (!by_name.count(op)) Fail(g.line, "undefined net: " + op);
      ++need;
      waiters[op].push_back(&g);
    }
    missing[&g] = need;
    if (need == 0) ready.push_back(&g);
  }

  std::size_t processed = 0;
  while (processed < ready.size()) {
    const PendingGate* g = ready[processed++];
    std::vector<NodeId> fanins;
    fanins.reserve(g->operands.size());
    for (const std::string& op : g->operands) fanins.push_back(defined.at(op));
    NodeId id;
    try {
      id = nl.AddGate(g->type, fanins, g->name);
    } catch (const std::invalid_argument& e) {
      Fail(g->line, e.what());
    }
    defined[g->name] = id;
    if (auto it = waiters.find(g->name); it != waiters.end()) {
      for (const PendingGate* w : it->second) {
        if (--missing[w] == 0) ready.push_back(w);
      }
    }
  }
  if (processed != missing.size()) {
    throw std::runtime_error(".bench: combinational cycle detected");
  }

  for (auto& [flop, g] : flop_patches) {
    auto it = defined.find(g->operands[0]);
    if (it == defined.end()) Fail(g->line, "undefined net: " + g->operands[0]);
    nl.RebindFlopInput(flop, it->second);
  }

  for (const auto& [name, line] : outputs) {
    auto it = defined.find(name);
    if (it == defined.end())
      Fail(line, "OUTPUT references undefined net: " + name);
    nl.MarkOutput(it->second);
  }

  nl.Finalize();
  return nl;
}

Netlist ParseBenchString(const std::string& text) {
  std::istringstream ss(text);
  return ParseBench(ss);
}

Netlist ParseBenchFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  return ParseBench(f);
}

void WriteBench(const Netlist& netlist, std::ostream& out) {
  auto name_of = [&](NodeId id) {
    const std::string& n = netlist.GetGate(id).name;
    return n.empty() ? "n" + std::to_string(id) : n;
  };
  for (NodeId id : netlist.PrimaryInputs())
    out << "INPUT(" << name_of(id) << ")\n";
  for (NodeId id : netlist.PrimaryOutputs())
    out << "OUTPUT(" << name_of(id) << ")\n";
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    const Gate& g = netlist.GetGate(id);
    if (g.type == GateType::Input) continue;
    out << name_of(id) << " = " << ToString(g.type) << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << name_of(g.fanins[i]);
    }
    out << ")\n";
  }
}

std::string WriteBenchString(const Netlist& netlist) {
  std::ostringstream ss;
  WriteBench(netlist, ss);
  return ss.str();
}

}  // namespace bistdse::netlist
