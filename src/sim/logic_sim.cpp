#include "sim/logic_sim.hpp"

#include <stdexcept>

namespace bistdse::sim {

using netlist::GateType;

PatternWord EvalGate(GateType type, std::span<const PatternWord> fanins) {
  switch (type) {
    case GateType::Buf:
      return fanins[0];
    case GateType::Not:
      return ~fanins[0];
    case GateType::And:
    case GateType::Nand: {
      PatternWord v = ~PatternWord{0};
      for (PatternWord f : fanins) v &= f;
      return type == GateType::And ? v : ~v;
    }
    case GateType::Or:
    case GateType::Nor: {
      PatternWord v = 0;
      for (PatternWord f : fanins) v |= f;
      return type == GateType::Or ? v : ~v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PatternWord v = 0;
      for (PatternWord f : fanins) v ^= f;
      return type == GateType::Xor ? v : ~v;
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("EvalGate called on source node");
  }
  return 0;
}

template <std::size_t W>
LogicSimulatorT<W>::LogicSimulatorT(const netlist::Netlist& netlist)
    : netlist_(netlist), values_(netlist.NodeCount(), Word::Zero()) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
}

template <std::size_t W>
void LogicSimulatorT<W>::Simulate(std::span<const PatternWord> words) {
  const auto inputs = netlist_.CoreInputs();
  if (words.size() != inputs.size() * W)
    throw std::invalid_argument("input word count mismatch");
  ++generation_;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[inputs[i]] = Word::Load(words.data() + i * W);
  }

  std::vector<const Word*> fanin_ptrs;
  for (netlist::NodeId id : netlist_.TopologicalOrder()) {
    const auto fanins = netlist_.FaninsOf(id);
    fanin_ptrs.clear();
    for (netlist::NodeId f : fanins) fanin_ptrs.push_back(&values_[f]);
    values_[id] = EvalGateWide<W>(netlist_.TypeOf(id), fanin_ptrs);
  }
}

template <std::size_t W>
std::vector<PatternWord> LogicSimulatorT<W>::CoreOutputValues() const {
  const auto outs = netlist_.CoreOutputs();
  std::vector<PatternWord> result;
  result.reserve(outs.size() * W);
  for (netlist::NodeId id : outs) {
    for (std::size_t l = 0; l < W; ++l) result.push_back(values_[id].lane[l]);
  }
  return result;
}

template class LogicSimulatorT<1>;
template class LogicSimulatorT<2>;
template class LogicSimulatorT<4>;
template class LogicSimulatorT<8>;
template class LogicSimulatorT<16>;

}  // namespace bistdse::sim
