#include "sim/logic_sim.hpp"

#include <stdexcept>

namespace bistdse::sim {

using netlist::GateType;

PatternWord EvalGate(GateType type, std::span<const PatternWord> fanins) {
  switch (type) {
    case GateType::Buf:
      return fanins[0];
    case GateType::Not:
      return ~fanins[0];
    case GateType::And:
    case GateType::Nand: {
      PatternWord v = ~PatternWord{0};
      for (PatternWord f : fanins) v &= f;
      return type == GateType::And ? v : ~v;
    }
    case GateType::Or:
    case GateType::Nor: {
      PatternWord v = 0;
      for (PatternWord f : fanins) v |= f;
      return type == GateType::Or ? v : ~v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      PatternWord v = 0;
      for (PatternWord f : fanins) v ^= f;
      return type == GateType::Xor ? v : ~v;
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("EvalGate called on source node");
  }
  return 0;
}

LogicSimulator::LogicSimulator(const netlist::Netlist& netlist)
    : netlist_(netlist), values_(netlist.NodeCount(), 0) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
}

void LogicSimulator::Simulate(std::span<const PatternWord> words) {
  const auto inputs = netlist_.CoreInputs();
  if (words.size() != inputs.size())
    throw std::invalid_argument("input word count mismatch");
  for (std::size_t i = 0; i < inputs.size(); ++i) values_[inputs[i]] = words[i];

  std::vector<PatternWord> fanin_vals;
  for (netlist::NodeId id : netlist_.TopologicalOrder()) {
    const auto fanins = netlist_.FaninsOf(id);
    fanin_vals.clear();
    for (netlist::NodeId f : fanins) fanin_vals.push_back(values_[f]);
    values_[id] = EvalGate(netlist_.TypeOf(id), fanin_vals);
  }
}

std::vector<PatternWord> LogicSimulator::CoreOutputValues() const {
  const auto outs = netlist_.CoreOutputs();
  std::vector<PatternWord> result;
  result.reserve(outs.size());
  for (netlist::NodeId id : outs) result.push_back(values_[id]);
  return result;
}

}  // namespace bistdse::sim
