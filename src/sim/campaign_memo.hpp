// Campaign memoization: first-detect drop campaigns keyed by (netlist
// content, pattern stream, tracked fault list). Repeated campaigns over the
// same stream are pure replays — the campaign kernel's determinism contract
// makes their results a function of the key alone — so a shared memo lets a
// second profile sweep, a DSE re-evaluation, or a grown-session rerun skip
// the fault-simulation entirely.
//
// Prefix reuse: a first-detection index is prefix-stable (a fault first
// detected at pattern p is first detected at p in every campaign of length
// > p), so a cached campaign covering M patterns answers any request for
// max_patterns <= M by truncating later detections to "undetected".
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/campaign.hpp"

namespace bistdse::sim {

/// FNV-1a over a fault list (node, pin, polarity per entry, count-mixed).
std::uint64_t HashFaultList(std::span<const StuckAtFault> faults);

struct FirstDetectKey {
  std::uint64_t netlist_hash = 0;  ///< netlist::Netlist::ContentHash().
  std::uint64_t stream_key = 0;    ///< Pattern stream identity (e.g. bist::PrpgStreamKey).
  std::uint64_t faults_hash = 0;   ///< HashFaultList over the tracked faults.

  bool operator==(const FirstDetectKey&) const = default;
};

}  // namespace bistdse::sim

template <>
struct std::hash<bistdse::sim::FirstDetectKey> {
  std::size_t operator()(const bistdse::sim::FirstDetectKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t v : {k.netlist_hash, k.stream_key, k.faults_hash}) {
      h = (h ^ v) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

namespace bistdse::sim {

/// Cached outcome of one first-detect drop campaign: entry i is the global
/// stream index of tracked fault i's first detection (UINT64_MAX =
/// undetected within `covered_patterns`). `covered_patterns` is the stream
/// prefix the entries answer; UINT64_MAX when the campaign ended by source
/// exhaustion or by dropping every fault — final for every longer prefix.
struct FirstDetectResult {
  std::vector<std::uint64_t> first_detect;
  std::uint64_t covered_patterns = 0;
};

/// Concurrency-safe memo of first-detect campaigns, with hit-rate counters
/// and a bounded footprint: when constructed with a capacity, the memo holds
/// at most that many campaigns and evicts the least-recently-used one past
/// the bound (a fleet-long DSE sweep touches far more (netlist, stream,
/// fault-list) keys than are worth keeping resident — recency is the reuse
/// signal, since re-evaluations cluster around the current frontier).
/// Values are shared_ptr-held and immutable once stored, so an evicted
/// result stays valid for any caller still holding it.
class CampaignMemo {
 public:
  /// `capacity` = maximum cached campaigns; 0 = unbounded (the pre-existing
  /// behavior, right for single-session reuse).
  explicit CampaignMemo(std::size_t capacity = 0) : capacity_(capacity) {}

  /// A cached result covering at least `max_patterns`, or nullptr. Counts
  /// toward Hits()/Misses(); a covering hit refreshes the entry's recency.
  std::shared_ptr<const FirstDetectResult> Lookup(const FirstDetectKey& key,
                                                  std::uint64_t max_patterns);

  /// Stores `result`, keeping whichever of (stored, new) covers the longer
  /// prefix; either way the entry becomes most-recently-used. May evict the
  /// LRU entry when the memo is at capacity.
  void Store(const FirstDetectKey& key, FirstDetectResult result);

  std::uint64_t Hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t Misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t Evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  double HitRate() const {
    const std::uint64_t h = Hits(), m = Misses();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }

  std::size_t Capacity() const { return capacity_; }
  std::size_t Size() const;

 private:
  struct Entry {
    FirstDetectKey key;
    std::shared_ptr<const FirstDetectResult> result;
  };

  /// Splices `it` to the MRU (front) position. Caller holds mutex_.
  void Touch(std::list<Entry>::iterator it);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<FirstDetectKey, std::list<Entry>::iterator> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// The canonical memoized first-detect drop campaign: on a memo hit (same
/// key, covering prefix) fills `first_detect` from the cache and returns
/// synthesized stats with stats.patterns == 0 — nothing is simulated; on a
/// miss (or with `memo == nullptr`) runs the drop campaign via
/// FirstDetectSink and stores the outcome. `first_detect.size()` must equal
/// `track.size()`; every entry is (re)written, undetected ones to
/// UINT64_MAX. stats.dropped / stats.survivors are correct on both paths.
CampaignStats RunFirstDetectMemoized(CampaignRunner& runner,
                                     PatternSource& source,
                                     std::uint64_t stream_key,
                                     std::span<const StuckAtFault> track,
                                     std::span<std::uint64_t> first_detect,
                                     std::uint64_t max_patterns, bool warmup,
                                     CampaignMemo* memo);

}  // namespace bistdse::sim
