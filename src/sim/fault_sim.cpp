#include "sim/fault_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

constexpr PatternWord Mask(bool v) { return v ? ~PatternWord{0} : PatternWord{0}; }

template <std::size_t W>
constexpr WideWord<W> MaskWide(bool v) {
  return v ? WideWord<W>::Ones() : WideWord<W>::Zero();
}

}  // namespace

template <std::size_t W>
FaultSimulatorT<W>::FaultSimulatorT(const Netlist& netlist)
    : FaultSimulatorT(netlist, nullptr) {}

template <std::size_t W>
FaultSimulatorT<W>::FaultSimulatorT(const Netlist& netlist,
                                    const LogicSimulatorT<W>* shared_good)
    : netlist_(netlist),
      good_owned_(shared_good ? nullptr
                              : std::make_unique<LogicSimulatorT<W>>(netlist)),
      good_(shared_good ? shared_good : good_owned_.get()),
      fval_(netlist.NodeCount(), Word::Zero()),
      is_touched_(netlist.NodeCount(), 0),
      observed_count_(netlist.NodeCount(), 0),
      level_buckets_(netlist.MaxLevel() + 1),
      in_queue_(netlist.NodeCount(), 0) {
  for (NodeId id : netlist.CoreOutputs()) ++observed_count_[id];
}

template <std::size_t W>
FaultSimulatorT<W> FaultSimulatorT<W>::WorkerClone(
    const FaultSimulatorT<W>& parent) {
  return FaultSimulatorT(parent.netlist_, parent.good_);
}

template <std::size_t W>
void FaultSimulatorT<W>::SetPatternBlock(std::span<const PatternWord> words) {
  if (!good_owned_) {
    throw std::logic_error(
        "worker clones share the parent's pattern block; call "
        "SetPatternBlock() on the owning simulator");
  }
  good_owned_->Simulate(words);
}

template <std::size_t W>
void FaultSimulatorT<W>::Reset() {
  for (NodeId id : touched_) is_touched_[id] = 0;
  touched_.clear();
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::Propagate(const StuckAtFault& fault) {
  const NodeId site = fault.node;
  const GateType site_type = netlist_.TypeOf(site);

  // Flop D-branch faults only corrupt the captured PPO value; the effect
  // does not propagate combinationally in the same cycle.
  if (site_type == GateType::Dff && !fault.IsStem()) {
    const NodeId driver = netlist_.FaninsOf(site)[0];
    return good_->BlockOf(driver) ^ MaskWide<W>(fault.stuck_value);
  }

  Word site_value;
  if (fault.IsStem()) {
    site_value = MaskWide<W>(fault.stuck_value);
  } else {
    const auto fanins = netlist_.FaninsOf(site);
    if (fault.fanin_index >= static_cast<int>(fanins.size()))
      throw std::invalid_argument("fault pin out of range");
    std::vector<Word> vals;
    vals.reserve(fanins.size());
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      vals.push_back(static_cast<int>(i) == fault.fanin_index
                         ? MaskWide<W>(fault.stuck_value)
                         : good_->BlockOf(fanins[i]));
    }
    site_value = EvalGateWide<W>(site_type, vals);
  }

  const Word site_diff = site_value ^ good_->BlockOf(site);
  if (!site_diff.Any()) return Word::Zero();

  fval_[site] = site_value;
  is_touched_[site] = 1;
  touched_.push_back(site);
  Word detect = observed_count_[site] ? site_diff : Word::Zero();

  auto value_of = [&](NodeId id) -> const Word& {
    return is_touched_[id] ? fval_[id] : good_->BlockOf(id);
  };
  std::vector<const Word*> fanin_ptrs;

  std::uint32_t min_level = netlist_.MaxLevel() + 1;
  std::uint32_t max_pending = 0;
  auto enqueue_fanouts = [&](NodeId id) {
    for (NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;  // observed at driver
      if (in_queue_[out]) continue;
      in_queue_[out] = 1;
      const std::uint32_t lvl = netlist_.LevelOf(out);
      level_buckets_[lvl].push_back(out);
      min_level = std::min(min_level, lvl);
      max_pending = std::max(max_pending, lvl);
    }
  };
  enqueue_fanouts(site);

  for (std::uint32_t lvl = min_level; lvl <= max_pending; ++lvl) {
    auto& bucket = level_buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      in_queue_[id] = 0;
      const auto fanins = netlist_.FaninsOf(id);
      fanin_ptrs.clear();
      for (NodeId f : fanins) fanin_ptrs.push_back(&value_of(f));
      const Word nv = EvalGateWide<W>(netlist_.TypeOf(id), fanin_ptrs);
      const Word old = value_of(id);
      if (nv == old) continue;
      if (!is_touched_[id]) {
        is_touched_[id] = 1;
        touched_.push_back(id);
      }
      fval_[id] = nv;
      if (observed_count_[id]) detect |= nv ^ good_->BlockOf(id);
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  return detect;
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::DetectBlock(const StuckAtFault& fault) {
  const Word det = Propagate(fault);
  Reset();
  return det;
}

template <std::size_t W>
std::vector<PatternWord> FaultSimulatorT<W>::FaultyResponse(
    const StuckAtFault& fault) {
  const GateType site_type = netlist_.TypeOf(fault.node);
  std::vector<PatternWord> response;
  const auto outs = netlist_.CoreOutputs();
  response.reserve(outs.size() * W);

  if (site_type == GateType::Dff && !fault.IsStem()) {
    // Only the faulted flop's captured bit is corrupted — and it is stuck.
    for (NodeId id : outs) {
      for (std::size_t l = 0; l < W; ++l) {
        response.push_back(good_->BlockOf(id).lane[l]);
      }
    }
    // The PPO for flop f is listed at position PrimaryOutputs().size() +
    // index_of(f) and reads the driver's value; overwrite that slot.
    const auto flops = netlist_.Flops();
    for (std::size_t i = 0; i < flops.size(); ++i) {
      if (flops[i] == fault.node) {
        const std::size_t slot = netlist_.PrimaryOutputs().size() + i;
        for (std::size_t l = 0; l < W; ++l) {
          response[slot * W + l] = Mask(fault.stuck_value);
        }
      }
    }
    return response;
  }

  Propagate(fault);
  for (NodeId id : outs) {
    const Word& v = is_touched_[id] ? fval_[id] : good_->BlockOf(id);
    for (std::size_t l = 0; l < W; ++l) response.push_back(v.lane[l]);
  }
  Reset();
  return response;
}

template class FaultSimulatorT<1>;
template class FaultSimulatorT<2>;
template class FaultSimulatorT<4>;
template class FaultSimulatorT<8>;

// CountDetectedFaults lives in campaign.cpp: it is a stored-source drop
// campaign on the streaming CampaignRunner kernel.

}  // namespace bistdse::sim
