#include "sim/fault_sim.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bistdse::sim {

using netlist::GateType;
using netlist::kInvalidNode;
using netlist::Netlist;
using netlist::NodeId;
using netlist::StructuralInfo;

namespace {

constexpr PatternWord Mask(bool v) { return v ? ~PatternWord{0} : PatternWord{0}; }

template <std::size_t W>
constexpr WideWord<W> MaskWide(bool v) {
  return v ? WideWord<W>::Ones() : WideWord<W>::Zero();
}

constexpr std::uint64_t kNoEpoch = std::numeric_limits<std::uint64_t>::max();

}  // namespace

template <std::size_t W>
FaultSimulatorT<W>::FaultSimulatorT(const Netlist& netlist,
                                    bool structural_shortcuts)
    : FaultSimulatorT(netlist, nullptr, structural_shortcuts) {}

template <std::size_t W>
FaultSimulatorT<W>::FaultSimulatorT(const Netlist& netlist,
                                    const LogicSimulatorT<W>* shared_good,
                                    bool structural_shortcuts)
    : netlist_(netlist),
      structure_(&netlist.Structure()),
      good_owned_(shared_good ? nullptr
                              : std::make_unique<LogicSimulatorT<W>>(netlist)),
      good_(shared_good ? shared_good : good_owned_.get()),
      shortcuts_(structural_shortcuts),
      fval_(netlist.NodeCount(), Word::Zero()),
      is_touched_(netlist.NodeCount(), 0),
      observed_count_(netlist.NodeCount(), 0),
      level_buckets_(netlist.MaxLevel() + 1),
      in_queue_(netlist.NodeCount(), 0),
      obs_(structural_shortcuts ? netlist.NodeCount() : 0, Word::Zero()),
      obs_epoch_(structural_shortcuts ? netlist.NodeCount() : 0, kNoEpoch) {
  for (NodeId id : netlist.CoreOutputs()) ++observed_count_[id];
}

template <std::size_t W>
FaultSimulatorT<W> FaultSimulatorT<W>::WorkerClone(
    const FaultSimulatorT<W>& parent) {
  return FaultSimulatorT(parent.netlist_, parent.good_, parent.shortcuts_);
}

template <std::size_t W>
void FaultSimulatorT<W>::SetPatternBlock(std::span<const PatternWord> words) {
  if (!good_owned_) {
    throw std::logic_error(
        "worker clones share the parent's pattern block; call "
        "SetPatternBlock() on the owning simulator");
  }
  good_owned_->Simulate(words);
}

template <std::size_t W>
void FaultSimulatorT<W>::Reset() {
  for (NodeId id : touched_) is_touched_[id] = 0;
  touched_.clear();
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::SiteValue(const StuckAtFault& fault) {
  if (fault.IsStem()) return MaskWide<W>(fault.stuck_value);
  const NodeId site = fault.node;
  const auto fanins = netlist_.FaninsOf(site);
  if (fault.fanin_index >= static_cast<int>(fanins.size()))
    throw std::invalid_argument("fault pin out of range");
  site_vals_.clear();
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    site_vals_.push_back(static_cast<int>(i) == fault.fanin_index
                             ? MaskWide<W>(fault.stuck_value)
                             : good_->BlockOf(fanins[i]));
  }
  return EvalGateWide<W>(netlist_.TypeOf(site), site_vals_);
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::EvalWithOverride(NodeId id, NodeId node,
                                                 const Word& val) {
  const auto fanins = netlist_.FaninsOf(id);
  fanin_ptrs_.clear();
  for (NodeId f : fanins) {
    fanin_ptrs_.push_back(f == node ? &val : &good_->BlockOf(f));
  }
  return EvalGateWide<W>(netlist_.TypeOf(id), fanin_ptrs_);
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::Propagate(const StuckAtFault& fault) {
  const NodeId site = fault.node;
  const GateType site_type = netlist_.TypeOf(site);

  // Flop D-branch faults only corrupt the captured PPO value; the effect
  // does not propagate combinationally in the same cycle.
  if (site_type == GateType::Dff && !fault.IsStem()) {
    const NodeId driver = netlist_.FaninsOf(site)[0];
    return good_->BlockOf(driver) ^ MaskWide<W>(fault.stuck_value);
  }

  const Word site_value = SiteValue(fault);
  const Word site_diff = site_value ^ good_->BlockOf(site);
  if (!site_diff.Any()) return Word::Zero();

  fval_[site] = site_value;
  is_touched_[site] = 1;
  touched_.push_back(site);
  Word detect = observed_count_[site] ? site_diff : Word::Zero();

  auto value_of = [&](NodeId id) -> const Word& {
    return is_touched_[id] ? fval_[id] : good_->BlockOf(id);
  };

  std::uint32_t min_level = netlist_.MaxLevel() + 1;
  std::uint32_t max_pending = 0;
  auto enqueue_fanouts = [&](NodeId id) {
    for (NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;  // observed at driver
      if (in_queue_[out]) continue;
      in_queue_[out] = 1;
      const std::uint32_t lvl = netlist_.LevelOf(out);
      level_buckets_[lvl].push_back(out);
      min_level = std::min(min_level, lvl);
      max_pending = std::max(max_pending, lvl);
    }
  };
  enqueue_fanouts(site);

  for (std::uint32_t lvl = min_level; lvl <= max_pending; ++lvl) {
    auto& bucket = level_buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      in_queue_[id] = 0;
      const auto fanins = netlist_.FaninsOf(id);
      fanin_ptrs_.clear();
      for (NodeId f : fanins) fanin_ptrs_.push_back(&value_of(f));
      const Word nv = EvalGateWide<W>(netlist_.TypeOf(id), fanin_ptrs_);
      const Word old = value_of(id);
      if (nv == old) continue;
      if (!is_touched_[id]) {
        is_touched_[id] = 1;
        touched_.push_back(id);
      }
      fval_[id] = nv;
      if (observed_count_[id]) detect |= nv ^ good_->BlockOf(id);
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  return detect;
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::PropagateFlip(NodeId node) {
  const std::uint64_t gen = good_->Generation();

  // Flipping an observed node changes that output on every pattern.
  Word detect = observed_count_[node] ? Word::Ones() : Word::Zero();

  fval_[node] = ~good_->BlockOf(node);
  is_touched_[node] = 1;
  touched_.push_back(node);

  auto value_of = [&](NodeId id) -> const Word& {
    return is_touched_[id] ? fval_[id] : good_->BlockOf(id);
  };

  std::uint32_t min_level = netlist_.MaxLevel() + 1;
  std::uint32_t max_pending = 0;
  std::size_t pending = 0;
  auto enqueue_fanouts = [&](NodeId id) {
    for (NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;
      if (in_queue_[out]) continue;
      in_queue_[out] = 1;
      ++pending;
      const std::uint32_t lvl = netlist_.LevelOf(out);
      level_buckets_[lvl].push_back(out);
      min_level = std::min(min_level, lvl);
      max_pending = std::max(max_pending, lvl);
    }
  };
  enqueue_fanouts(node);

  for (std::uint32_t lvl = min_level; lvl <= max_pending; ++lvl) {
    // Dominator cut: when exactly one node is pending (at any level), no
    // wave-reachable gate has a touched side fanin — every fanout of a
    // differing node would itself be pending. The remaining propagation is
    // therefore the single pending node's diff masked by its own
    // observability; if that observability is already cached for this
    // block, finish here instead of walking the whole downstream cone.
    if (pending == 1) {
      std::uint32_t dl = lvl;
      while (level_buckets_[dl].empty()) ++dl;
      const NodeId d = level_buckets_[dl].back();
      if (obs_epoch_[d] == gen) {
        const Word nv = [&] {
          const auto fanins = netlist_.FaninsOf(d);
          fanin_ptrs_.clear();
          for (NodeId f : fanins) fanin_ptrs_.push_back(&value_of(f));
          return EvalGateWide<W>(netlist_.TypeOf(d), fanin_ptrs_);
        }();
        detect |= (nv ^ good_->BlockOf(d)) & obs_[d];
        in_queue_[d] = 0;
        level_buckets_[dl].clear();
        return detect;
      }
    }
    auto& bucket = level_buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      in_queue_[id] = 0;
      --pending;
      const auto fanins = netlist_.FaninsOf(id);
      fanin_ptrs_.clear();
      for (NodeId f : fanins) fanin_ptrs_.push_back(&value_of(f));
      const Word nv = EvalGateWide<W>(netlist_.TypeOf(id), fanin_ptrs_);
      const Word old = value_of(id);
      if (nv == old) continue;
      if (!is_touched_[id]) {
        is_touched_[id] = 1;
        touched_.push_back(id);
      }
      fval_[id] = nv;
      if (observed_count_[id]) detect |= nv ^ good_->BlockOf(id);
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  return detect;
}

template <std::size_t W>
const WideWord<W>& FaultSimulatorT<W>::ObsOf(NodeId node) {
  const std::uint64_t gen = good_->Generation();
  if (obs_epoch_[node] != gen) {
    // Warm the cache along the immediate-post-dominator chain, furthest
    // dominator first, so every flip propagation below can cut as soon as
    // its frontier collapses onto an already-cached dominator.
    obs_chain_.clear();
    for (NodeId d = node; d != StructuralInfo::kExitNode &&
                          d != kInvalidNode && obs_epoch_[d] != gen;
         d = structure_->IPostDomOf(d)) {
      obs_chain_.push_back(d);
    }
    for (auto it = obs_chain_.rbegin(); it != obs_chain_.rend(); ++it) {
      const Word o = PropagateFlip(*it);
      Reset();
      obs_[*it] = o;
      obs_epoch_[*it] = gen;
    }
  }
  return obs_[node];
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::DetectShortcut(const StuckAtFault& fault) {
  const NodeId site = fault.node;
  const GateType site_type = netlist_.TypeOf(site);

  // Flop D-branch faults only corrupt the captured PPO value.
  if (site_type == GateType::Dff && !fault.IsStem()) {
    const NodeId driver = netlist_.FaninsOf(site)[0];
    return good_->BlockOf(driver) ^ MaskWide<W>(fault.stuck_value);
  }

  // Walk the fanout-free chain from the site to the region stem. Every node
  // on the way has exactly one combinational fanout, so the fault effect is
  // a single moving diff re-evaluated gate by gate — no event queue, no
  // touched bookkeeping.
  Word val = SiteValue(fault);
  Word diff = val ^ good_->BlockOf(site);
  Word detect = Word::Zero();
  NodeId n = site;
  for (;;) {
    if (!diff.Any()) return detect;
    if (structure_->FfrStemOf(n) == n) {
      return detect | (diff & ObsOf(n));
    }
    if (observed_count_[n]) detect |= diff;
    NodeId next = kInvalidNode;
    for (NodeId out : netlist_.FanoutsOf(n)) {
      if (netlist_.TypeOf(out) != GateType::Dff) {
        next = out;
        break;
      }
    }
    val = EvalWithOverride(next, n, val);
    diff = val ^ good_->BlockOf(next);
    n = next;
  }
}

template <std::size_t W>
WideWord<W> FaultSimulatorT<W>::DetectBlock(const StuckAtFault& fault) {
  if (shortcuts_) return DetectShortcut(fault);
  const Word det = Propagate(fault);
  Reset();
  return det;
}

template <std::size_t W>
std::vector<PatternWord> FaultSimulatorT<W>::FaultyResponse(
    const StuckAtFault& fault) {
  const GateType site_type = netlist_.TypeOf(fault.node);
  std::vector<PatternWord> response;
  const auto outs = netlist_.CoreOutputs();
  response.reserve(outs.size() * W);

  if (site_type == GateType::Dff && !fault.IsStem()) {
    // Only the faulted flop's captured bit is corrupted — and it is stuck.
    for (NodeId id : outs) {
      for (std::size_t l = 0; l < W; ++l) {
        response.push_back(good_->BlockOf(id).lane[l]);
      }
    }
    // The PPO for flop f is listed at position PrimaryOutputs().size() +
    // index_of(f) and reads the driver's value; overwrite that slot.
    const auto flops = netlist_.Flops();
    for (std::size_t i = 0; i < flops.size(); ++i) {
      if (flops[i] == fault.node) {
        const std::size_t slot = netlist_.PrimaryOutputs().size() + i;
        for (std::size_t l = 0; l < W; ++l) {
          response[slot * W + l] = Mask(fault.stuck_value);
        }
      }
    }
    return response;
  }

  Propagate(fault);
  for (NodeId id : outs) {
    const Word& v = is_touched_[id] ? fval_[id] : good_->BlockOf(id);
    for (std::size_t l = 0; l < W; ++l) response.push_back(v.lane[l]);
  }
  Reset();
  return response;
}

template class FaultSimulatorT<1>;
template class FaultSimulatorT<2>;
template class FaultSimulatorT<4>;
template class FaultSimulatorT<8>;
template class FaultSimulatorT<16>;

// CountDetectedFaults lives in campaign.cpp: it is a stored-source drop
// campaign on the streaming CampaignRunner kernel.

}  // namespace bistdse::sim
