#include "sim/fault_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace bistdse::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

namespace {

constexpr PatternWord Mask(bool v) { return v ? ~PatternWord{0} : PatternWord{0}; }

}  // namespace

FaultSimulator::FaultSimulator(const Netlist& netlist)
    : FaultSimulator(netlist, nullptr) {}

FaultSimulator::FaultSimulator(const Netlist& netlist,
                               const LogicSimulator* shared_good)
    : netlist_(netlist),
      good_owned_(shared_good ? nullptr
                              : std::make_unique<LogicSimulator>(netlist)),
      good_(shared_good ? shared_good : good_owned_.get()),
      fval_(netlist.NodeCount(), 0),
      is_touched_(netlist.NodeCount(), 0),
      observed_count_(netlist.NodeCount(), 0),
      level_buckets_(netlist.MaxLevel() + 1),
      in_queue_(netlist.NodeCount(), 0) {
  for (NodeId id : netlist.CoreOutputs()) ++observed_count_[id];
}

FaultSimulator FaultSimulator::WorkerClone(const FaultSimulator& parent) {
  return FaultSimulator(parent.netlist_, parent.good_);
}

void FaultSimulator::SetPatternBlock(std::span<const PatternWord> words) {
  if (!good_owned_) {
    throw std::logic_error(
        "worker clones share the parent's pattern block; call "
        "SetPatternBlock() on the owning simulator");
  }
  good_owned_->Simulate(words);
}

void FaultSimulator::Reset() {
  for (NodeId id : touched_) is_touched_[id] = 0;
  touched_.clear();
}

PatternWord FaultSimulator::Propagate(const StuckAtFault& fault) {
  const NodeId site = fault.node;
  const GateType site_type = netlist_.TypeOf(site);

  // Flop D-branch faults only corrupt the captured PPO value; the effect
  // does not propagate combinationally in the same cycle.
  if (site_type == GateType::Dff && !fault.IsStem()) {
    const NodeId driver = netlist_.FaninsOf(site)[0];
    return good_->ValueOf(driver) ^ Mask(fault.stuck_value);
  }

  PatternWord site_value;
  if (fault.IsStem()) {
    site_value = Mask(fault.stuck_value);
  } else {
    const auto fanins = netlist_.FaninsOf(site);
    if (fault.fanin_index >= static_cast<int>(fanins.size()))
      throw std::invalid_argument("fault pin out of range");
    std::vector<PatternWord> vals;
    vals.reserve(fanins.size());
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      vals.push_back(static_cast<int>(i) == fault.fanin_index
                         ? Mask(fault.stuck_value)
                         : good_->ValueOf(fanins[i]));
    }
    site_value = EvalGate(site_type, vals);
  }

  const PatternWord site_diff = site_value ^ good_->ValueOf(site);
  if (site_diff == 0) return 0;

  fval_[site] = site_value;
  is_touched_[site] = 1;
  touched_.push_back(site);
  PatternWord detect = observed_count_[site] ? site_diff : 0;

  auto value_of = [&](NodeId id) {
    return is_touched_[id] ? fval_[id] : good_->ValueOf(id);
  };

  std::uint32_t min_level = netlist_.MaxLevel() + 1;
  std::uint32_t max_pending = 0;
  auto enqueue_fanouts = [&](NodeId id) {
    for (NodeId out : netlist_.FanoutsOf(id)) {
      if (netlist_.TypeOf(out) == GateType::Dff) continue;  // observed at driver
      if (in_queue_[out]) continue;
      in_queue_[out] = 1;
      const std::uint32_t lvl = netlist_.LevelOf(out);
      level_buckets_[lvl].push_back(out);
      min_level = std::min(min_level, lvl);
      max_pending = std::max(max_pending, lvl);
    }
  };
  enqueue_fanouts(site);

  std::vector<PatternWord> vals;
  for (std::uint32_t lvl = min_level; lvl <= max_pending; ++lvl) {
    auto& bucket = level_buckets_[lvl];
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const NodeId id = bucket[i];
      in_queue_[id] = 0;
      const auto fanins = netlist_.FaninsOf(id);
      vals.clear();
      for (NodeId f : fanins) vals.push_back(value_of(f));
      const PatternWord nv = EvalGate(netlist_.TypeOf(id), vals);
      const PatternWord old = value_of(id);
      if (nv == old) continue;
      if (!is_touched_[id]) {
        is_touched_[id] = 1;
        touched_.push_back(id);
      }
      fval_[id] = nv;
      if (observed_count_[id]) detect |= nv ^ good_->ValueOf(id);
      enqueue_fanouts(id);
    }
    bucket.clear();
  }
  return detect;
}

PatternWord FaultSimulator::DetectWord(const StuckAtFault& fault) {
  const PatternWord det = Propagate(fault);
  Reset();
  return det;
}

std::vector<PatternWord> FaultSimulator::FaultyResponse(const StuckAtFault& fault) {
  const GateType site_type = netlist_.TypeOf(fault.node);
  std::vector<PatternWord> response;
  const auto outs = netlist_.CoreOutputs();
  response.reserve(outs.size());

  if (site_type == GateType::Dff && !fault.IsStem()) {
    // Only the faulted flop's captured bit is corrupted — and it is stuck.
    for (NodeId id : outs) response.push_back(good_->ValueOf(id));
    // The PPO for flop f is listed at position PrimaryOutputs().size() +
    // index_of(f) and reads the driver's value; overwrite that slot.
    const auto flops = netlist_.Flops();
    for (std::size_t i = 0; i < flops.size(); ++i) {
      if (flops[i] == fault.node) {
        response[netlist_.PrimaryOutputs().size() + i] = Mask(fault.stuck_value);
      }
    }
    return response;
  }

  Propagate(fault);
  for (NodeId id : outs) {
    response.push_back(is_touched_[id] ? fval_[id] : good_->ValueOf(id));
  }
  Reset();
  return response;
}

std::size_t CountDetectedFaults(const netlist::Netlist& netlist,
                                std::span<const BitPattern> patterns,
                                std::span<const StuckAtFault> faults) {
  FaultSimulator fsim(netlist);
  const std::size_t width = netlist.CoreInputs().size();
  std::vector<StuckAtFault> remaining(faults.begin(), faults.end());
  for (std::size_t base = 0; base < patterns.size() && !remaining.empty();
       base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    fsim.SetPatternBlock(PackPatternBlock(patterns, base, count, width));
    const PatternWord mask = BlockMask(count);
    std::vector<StuckAtFault> still;
    still.reserve(remaining.size());
    for (const StuckAtFault& f : remaining) {
      if ((fsim.DetectWord(f) & mask) == 0) still.push_back(f);
    }
    remaining = std::move(still);
  }
  return faults.size() - remaining.size();
}

}  // namespace bistdse::sim
