// Streaming fault-simulation campaign kernel — the one inner loop behind
// every BIST pattern campaign (profile coverage curves, fault-dictionary
// rows, MISR signature tracking, diagnosis window prediction, ATPG drop
// scans).
//
// A campaign pulls W*64-pattern blocks from a pluggable PatternSource,
// fault-simulates them on the shared ThreadPool via
// ParallelFaultSimulatorT<W>, and feeds one or more pluggable CampaignSinks
// with a width-erased view of each simulated block. Runtime `block_width`
// dispatch, thread-count plumbing, the narrow warm-up for drop-heavy heads,
// and fault-drop bookkeeping all live here — consumers only describe where
// patterns come from and what to do with each block.
//
// Determinism contract (inherited from the wide datapath and the pool): a
// campaign's observable results are bit-identical for every (block_width,
// threads) pair. Tracked detect blocks are produced per fault index and
// merged serially in index order; sinks observe blocks in stream order on
// the calling thread; ParallelFor sweeps hand each index to exactly one
// worker. Lane l, bit k of a block is pattern BaseIndex() + l*64 + k, so
// lane-then-bit iteration reproduces the serial pattern order exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault_sim.hpp"
#include "sim/parallel_fault_sim.hpp"

namespace bistdse::sim {

/// A source of fully specified test patterns, pulled block by block.
/// Implementations exist for every campaign flavor: the PRPG LFSR /
/// STUMPS phase-shifter stream and the full session stream with reseeding
/// expansion live in src/bist (bist::PrpgSource, bist::SessionStreamSource);
/// stored pattern lists (ATPG top-up, window replays) use
/// StoredPatternSource below.
class PatternSource {
 public:
  virtual ~PatternSource() = default;

  /// Appends up to `max_patterns` next patterns of the stream to `out`.
  /// Returning fewer than `max_patterns` (including 0) means the stream is
  /// exhausted; the runner never calls Fill again after a short read.
  virtual std::size_t Fill(std::size_t max_patterns,
                           std::vector<BitPattern>& out) = 0;
};

/// PatternSource over a stored pattern list, in order or reversed (the
/// reverse-order compaction walk of atpg::CompactPatterns). The span must
/// outlive the source.
class StoredPatternSource final : public PatternSource {
 public:
  explicit StoredPatternSource(std::span<const BitPattern> patterns,
                               bool reversed = false)
      : patterns_(patterns), reversed_(reversed) {}

  std::size_t Fill(std::size_t max_patterns,
                   std::vector<BitPattern>& out) override {
    std::size_t emitted = 0;
    while (emitted < max_patterns && next_ < patterns_.size()) {
      const std::size_t i =
          reversed_ ? patterns_.size() - 1 - next_ : next_;
      out.push_back(patterns_[i]);
      ++next_;
      ++emitted;
    }
    return emitted;
  }

 private:
  std::span<const BitPattern> patterns_;
  std::size_t next_ = 0;
  bool reversed_;
};

/// Width-erased per-worker handle to the simulator holding the current
/// block. Passed to CampaignBlock::ParallelFor bodies; each call simulates
/// against the block the runner loaded, with the partial-block mask applied
/// to detection results. Valid only inside the ParallelFor body.
class FaultView {
 public:
  virtual ~FaultView() = default;

  /// True iff any pattern of the block detects `fault` (masked).
  virtual bool DetectAny(const StuckAtFault& fault) = 0;

  /// Masked detection lanes of `fault`: Lanes() words, lane l bit k set iff
  /// pattern l*64+k of the block detects it. `out.size()` must be >= Lanes().
  virtual void DetectLanes(const StuckAtFault& fault,
                           std::span<PatternWord> out) = 0;

  /// Faulty response at all core outputs: Lanes() contiguous words (lane 0
  /// first) per output, in core-output order. Lane bits past the block fill
  /// are unspecified — iterate with CampaignBlock::LaneCount.
  virtual std::vector<PatternWord> FaultyResponse(
      const StuckAtFault& fault) = 0;
};

/// Width-erased view of one simulated block, handed to sinks. Alive only
/// for the duration of CampaignSink::OnBlock.
class CampaignBlock {
 public:
  virtual ~CampaignBlock() = default;

  /// The block's patterns, in stream order.
  std::span<const BitPattern> Patterns() const { return patterns_; }
  /// Global stream index of Patterns()[0].
  std::uint64_t BaseIndex() const { return base_; }
  std::size_t Count() const { return patterns_.size(); }
  /// Lane words per value (the running segment's W; 1 during warm-up).
  virtual std::size_t Lanes() const = 0;
  /// How many of the block's patterns land in `lane`.
  std::size_t LaneCount(std::size_t lane) const {
    return LanePatternCount(Count(), lane);
  }

  // --- Tracked faults (runner-managed detect sweep + drop bookkeeping) ---
  // Entry i refers to the i-th *surviving* tracked fault; TrackedIndex maps
  // it back to the position in RunOptions::track.

  std::size_t TrackedCount() const { return survivors_->size(); }
  std::size_t TrackedIndex(std::size_t i) const { return (*survivors_)[i]; }
  /// Masked detection lanes of surviving tracked fault i (Lanes() words).
  virtual std::span<const PatternWord> TrackedDetect(std::size_t i) const = 0;
  bool TrackedDetected(std::size_t i) const {
    for (PatternWord w : TrackedDetect(i)) {
      if (w != 0) return true;
    }
    return false;
  }
  /// In-block index (lane*64 + bit) of the first pattern detecting tracked
  /// fault i, or -1 — the index a serial sweep would have reported first.
  int TrackedFirstDetect(std::size_t i) const {
    const auto lanes = TrackedDetect(i);
    for (std::size_t l = 0; l < lanes.size(); ++l) {
      if (lanes[l] != 0) {
        return static_cast<int>(l * 64) + std::countr_zero(lanes[l]);
      }
    }
    return -1;
  }

  /// Fault-free values of all core outputs under the block: Lanes()
  /// contiguous words per output (lane 0 first), in core-output order.
  virtual std::span<const PatternWord> GoodOutputLanes() = 0;

  /// Fault-partitioned parallel sweep against the loaded block: runs
  /// fn(i, view) for every i in [0, n) on the runner's worker slots. fn must
  /// only write state owned by index i; the per-index MISR / counter pattern
  /// of the legacy loops carries over unchanged.
  virtual void ParallelFor(
      std::size_t n,
      const std::function<void(std::size_t, FaultView&)>& fn) = 0;

 protected:
  CampaignBlock(std::span<const BitPattern> patterns, std::uint64_t base,
                const std::vector<std::size_t>* survivors)
      : patterns_(patterns), base_(base), survivors_(survivors) {}

 private:
  std::span<const BitPattern> patterns_;
  std::uint64_t base_;
  const std::vector<std::size_t>* survivors_;
};

/// Uniform campaign accounting, reported to sinks at the end of a run and
/// returned by CampaignRunner::Run.
struct CampaignStats {
  std::uint64_t patterns = 0;  ///< Patterns simulated (warm-up included).
  std::uint64_t blocks = 0;
  std::uint64_t warmup_patterns = 0;  ///< Leading patterns run at W = 1.
  std::uint64_t dropped = 0;    ///< Tracked faults dropped (drop mode only).
  std::size_t survivors = 0;    ///< Tracked faults still undropped at the end.
  double wall_seconds = 0.0;

  double PatternsPerSecond() const {
    return wall_seconds > 0.0 ? static_cast<double>(patterns) / wall_seconds
                              : 0.0;
  }
};

/// Consumer of simulated blocks. Sinks run on the calling thread, in
/// registration order, before the runner's drop merge for the block.
class CampaignSink {
 public:
  virtual ~CampaignSink() = default;
  /// Returns false to stop the campaign after this block (e.g. a coverage
  /// target was reached mid-stream).
  virtual bool OnBlock(CampaignBlock& block) = 0;
  virtual void OnEnd(const CampaignStats& stats) { (void)stats; }
};

/// Records the global stream index of each tracked fault's first detection:
/// `first_detect[TrackedIndex(i)] = BaseIndex() + TrackedFirstDetect(i)`.
/// Entries of never-detected faults keep their initial value. Combine with
/// drop mode so each fault is swept only until its first detection — the
/// coverage-curve builder of the profile generator and the drop scans of
/// atpg::tpg are exactly this sink.
class FirstDetectSink final : public CampaignSink {
 public:
  explicit FirstDetectSink(std::span<std::uint64_t> first_detect)
      : first_detect_(first_detect) {}

  bool OnBlock(CampaignBlock& block) override {
    for (std::size_t i = 0; i < block.TrackedCount(); ++i) {
      const int first = block.TrackedFirstDetect(i);
      if (first >= 0) {
        first_detect_[block.TrackedIndex(i)] =
            block.BaseIndex() + static_cast<std::uint64_t>(first);
      }
    }
    return true;
  }

 private:
  std::span<std::uint64_t> first_detect_;
};

struct CampaignConfig {
  /// Simulation block width W: W*64 patterns per sweep (W in
  /// {1, 2, 4, 8, 16}).
  std::size_t block_width = 4;
  /// Sweep parallelism: 1 = serial on the caller, 0 = full pool width.
  std::size_t threads = 0;
  /// Leading patterns of a warm-up-enabled run simulated at W = 1 (see
  /// RunOptions::warmup); drop-heavy random-phase heads drain faster narrow.
  std::uint64_t narrow_warmup_patterns = 0;
  /// FFR-collapse + dominator-cut detection (netlist::StructuralInfo) in
  /// the slot simulators. Bit-identical results either way; off is an
  /// ablation/validation knob.
  bool structural_shortcuts = true;
};

/// The streaming campaign kernel. A runner is bound to one netlist and one
/// (block_width, threads) configuration; its per-width simulator state is
/// built lazily on first use and reused across Run() calls, so repeated
/// campaigns (diagnosis queries, per-pattern ATPG drop scans, per-window
/// dictionary passes) pay no reconstruction cost. Not thread-safe: one
/// runner serves one caller at a time.
class CampaignRunner {
 public:
  struct RunOptions {
    /// Pattern budget; the source may dry up earlier.
    std::uint64_t max_patterns = UINT64_MAX;
    /// Faults whose masked detect blocks the runner computes (in parallel)
    /// for every block, exposed as TrackedDetect to sinks.
    std::span<const StuckAtFault> track;
    /// Drop tracked faults after their first detected block (serial merge in
    /// fault order — bit-identical to the serial drop loop).
    bool drop_detected = false;
    /// In drop mode, end the campaign once every tracked fault is dropped.
    bool stop_when_all_dropped = true;
    /// Run the configured narrow warm-up head at W = 1 before switching to
    /// the configured width. No-op when block_width == 1.
    bool warmup = false;
  };

  CampaignRunner(const netlist::Netlist& netlist, CampaignConfig config);
  ~CampaignRunner();

  CampaignStats Run(PatternSource& source,
                    std::span<CampaignSink* const> sinks,
                    const RunOptions& options);
  CampaignStats Run(PatternSource& source, std::span<CampaignSink* const> sinks);
  CampaignStats Run(PatternSource& source, CampaignSink& sink,
                    const RunOptions& options);
  CampaignStats Run(PatternSource& source, CampaignSink& sink);
  /// Sink-less run: drop accounting only (e.g. counting detected faults).
  CampaignStats Run(PatternSource& source, const RunOptions& options);

  const netlist::Netlist& Circuit() const { return netlist_; }
  const CampaignConfig& Config() const { return config_; }

 private:
  class Engine;
  template <std::size_t W>
  class EngineT;
  struct RunState;

  Engine& EngineFor(std::size_t width);

  const netlist::Netlist& netlist_;
  CampaignConfig config_;
  std::unique_ptr<Engine> wide_;    ///< Engine at config_.block_width.
  std::unique_ptr<Engine> narrow_;  ///< W = 1 warm-up engine (lazy).
};

}  // namespace bistdse::sim
