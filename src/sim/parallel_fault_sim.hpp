// Fault-partitioned parallel simulation over a shared good-machine block.
//
// Per-fault detection under one W*64-pattern block only reads the
// fault-free node values, so the sweep over the fault list is
// embarrassingly parallel: one FaultSimulatorT<W> owns the good machine,
// per-slot worker clones share its values read-only, and the fault index
// range is chunked across the shared thread pool. Every sweep writes its
// results per fault index and merges them in index order, which makes the
// outcome bit-identical to the serial path for any thread count and any
// scheduling. The thread fan-out composes multiplicatively with the wide
// datapath: each worker sweeps W*64 patterns per fault visit.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault_sim.hpp"
#include "util/thread_pool.hpp"

namespace bistdse::sim {

template <std::size_t W>
class ParallelFaultSimulatorT {
 public:
  using Word = WideWord<W>;
  static constexpr std::size_t kLanes = W;

  /// `threads` caps the sweep parallelism: 1 runs inline on the caller
  /// (bit-for-bit the serial path), 0 uses the executor's full width.
  /// `pool` defaults to util::ThreadPool::Global(); tests inject their own.
  /// `structural_shortcuts` is forwarded to every slot simulator (results
  /// are bit-identical either way — see FaultSimulatorT).
  explicit ParallelFaultSimulatorT(const netlist::Netlist& netlist,
                                   std::size_t threads = 0,
                                   util::ThreadPool* pool = nullptr,
                                   bool structural_shortcuts = true);

  /// Loads the fault-free block once; all slots observe it.
  void SetPatternBlock(std::span<const PatternWord> core_input_words);

  const LogicSimulatorT<W>& Good() const { return primary_.Good(); }
  const netlist::Netlist& Circuit() const { return primary_.Circuit(); }

  /// The owning serial simulator (slot 0) for callers that mix in serial
  /// queries between parallel sweeps.
  FaultSimulatorT<W>& Primary() { return primary_; }

  /// detect[i] = DetectBlock(faults[i]) under the current block, computed
  /// in parallel. `detect.size()` must equal `faults.size()`.
  void DetectBlocks(std::span<const StuckAtFault> faults,
                    std::span<Word> detect);

  /// Lane-0 detect words (the full result at W = 1); see DetectBlocks.
  void DetectWords(std::span<const StuckAtFault> faults,
                   std::span<PatternWord> detect);

  /// Generic fault-partitioned sweep: runs fn(i, sim) for every i in [0, n)
  /// where `sim` is the executing chunk's simulator sharing the current
  /// block. fn must only write state owned by index i.
  void ForEachFault(
      std::size_t n,
      const std::function<void(std::size_t, FaultSimulatorT<W>&)>& fn);

 private:
  std::size_t ChunkCount(std::size_t n) const;
  void EnsureSlots(std::size_t count);

  util::ThreadPool& pool_;
  std::size_t threads_;
  FaultSimulatorT<W> primary_;
  std::vector<std::unique_ptr<FaultSimulatorT<W>>> clones_;  ///< Slots 1, 2, ...
};

extern template class ParallelFaultSimulatorT<1>;
extern template class ParallelFaultSimulatorT<2>;
extern template class ParallelFaultSimulatorT<4>;
extern template class ParallelFaultSimulatorT<8>;
extern template class ParallelFaultSimulatorT<16>;

using ParallelFaultSimulator = ParallelFaultSimulatorT<1>;

/// Parallel CountDetectedFaults: same result as the serial helper
/// (identical drop order, superblock by superblock), with each block's
/// sweep fault-partitioned across `threads` workers and each worker
/// simulating `block_width`*64 patterns per fault visit.
std::size_t ParallelCountDetectedFaults(const netlist::Netlist& netlist,
                                        std::span<const BitPattern> patterns,
                                        std::span<const StuckAtFault> faults,
                                        std::size_t threads = 0,
                                        std::size_t block_width = 1);

}  // namespace bistdse::sim
