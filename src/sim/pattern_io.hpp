// Text serialization of test patterns and fault lists — the hand-off
// artifacts between the ATPG/BIST flow and external tooling (a STIL-like
// minimal format).
//
//   patterns file:  one line per pattern, '0'/'1' per core input, comments
//                   with '#'
//   faults file:    one fault per line in sim::ToString notation
//                   (n42/SA1, n42.in2/SA0)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::sim {

void WritePatterns(std::span<const BitPattern> patterns, std::ostream& out);
std::string PatternsToString(std::span<const BitPattern> patterns);

/// Parses patterns; every line must have exactly `width` bits. Throws
/// std::runtime_error with a line number otherwise.
std::vector<BitPattern> ReadPatterns(std::istream& in, std::size_t width);
std::vector<BitPattern> PatternsFromString(const std::string& text,
                                           std::size_t width);

void WriteFaults(const netlist::Netlist& netlist,
                 std::span<const StuckAtFault> faults, std::ostream& out);

/// Parses a fault list against `netlist` (names resolved via FindByName or
/// the generated "n<id>" fallback). Throws std::runtime_error on unknown
/// nodes or malformed entries.
std::vector<StuckAtFault> ReadFaults(const netlist::Netlist& netlist,
                                     std::istream& in);

}  // namespace bistdse::sim
