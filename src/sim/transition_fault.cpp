#include "sim/transition_fault.hpp"

#include "sim/pattern_set.hpp"

namespace bistdse::sim {

using netlist::Netlist;
using netlist::NodeId;

std::string ToString(const Netlist& netlist, const TransitionFault& fault) {
  const std::string& raw = netlist.GetGate(fault.node).name;
  std::string name = raw.empty() ? "n" + std::to_string(fault.node) : raw;
  return name + (fault.slow_to_rise ? "/STR" : "/STF");
}

std::vector<TransitionFault> TransitionFaults(const Netlist& netlist) {
  std::vector<TransitionFault> faults;
  faults.reserve(2 * netlist.NodeCount());
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    faults.push_back({id, true});
    faults.push_back({id, false});
  }
  return faults;
}

TransitionFaultSimulator::TransitionFaultSimulator(const Netlist& netlist)
    : netlist_(netlist), init_sim_(netlist), launch_sim_(netlist) {}

void TransitionFaultSimulator::SetPatternPairBlock(
    std::span<const PatternWord> v1, std::span<const PatternWord> v2) {
  init_sim_.Simulate(v1);
  launch_sim_.SetPatternBlock(v2);
}

PatternWord TransitionFaultSimulator::DetectWord(const TransitionFault& fault) {
  // Initialization: the net holds the pre-transition value under v1.
  const PatternWord init_value = init_sim_.ValueOf(fault.node);
  const PatternWord initialized =
      fault.slow_to_rise ? ~init_value : init_value;
  // Launch + observe: the late value behaves as the corresponding stuck-at
  // fault under v2 (slow-to-rise holds 0, slow-to-fall holds 1).
  const StuckAtFault equivalent{fault.node, -1, !fault.slow_to_rise};
  return initialized & launch_sim_.DetectWord(equivalent);
}

std::vector<PatternWord> TransitionFaultSimulator::LaunchOnCapture(
    const Netlist& netlist, std::span<const PatternWord> v1) {
  LogicSimulator simulator(netlist);
  simulator.Simulate(v1);
  std::vector<PatternWord> v2(v1.begin(), v1.end());
  const std::size_t num_pis = netlist.PrimaryInputs().size();
  const auto flops = netlist.Flops();
  for (std::size_t f = 0; f < flops.size(); ++f) {
    const NodeId d = netlist.FaninsOf(flops[f])[0];
    v2[num_pis + f] = simulator.ValueOf(d);
  }
  return v2;
}

double MeasureLocTransitionCoverage(const Netlist& netlist,
                                    std::span<const BitPattern> patterns) {
  const std::size_t width = netlist.CoreInputs().size();
  TransitionFaultSimulator tsim(netlist);
  std::vector<TransitionFault> remaining = TransitionFaults(netlist);
  const std::size_t total = remaining.size();

  for (std::size_t base = 0; base < patterns.size() && !remaining.empty();
       base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const auto v1 = PackPatternBlock(patterns, base, count, width);
    const auto v2 = TransitionFaultSimulator::LaunchOnCapture(netlist, v1);
    tsim.SetPatternPairBlock(v1, v2);
    const PatternWord mask = BlockMask(count);
    std::vector<TransitionFault> still;
    still.reserve(remaining.size());
    for (const TransitionFault& f : remaining) {
      if ((tsim.DetectWord(f) & mask) == 0) still.push_back(f);
    }
    remaining = std::move(still);
  }
  return total == 0
             ? 0.0
             : 1.0 - static_cast<double>(remaining.size()) /
                         static_cast<double>(total);
}

}  // namespace bistdse::sim
