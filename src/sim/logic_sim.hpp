// Parallel-pattern logic simulation of the combinational core.
//
// Each node value is a WideWord<W>: W contiguous 64-bit lanes, bit k of
// lane l holding the node's logic value under pattern l*64+k of the current
// pattern block — so one sweep evaluates W*64 patterns. The per-node lanes
// are contiguous, which lets the per-gate lane loops auto-vectorize.
// Full-scan view: values are assigned to CoreInputs() (PIs + flop Qs) and
// observed at CoreOutputs() (POs + flop D nets).
//
// `LogicSimulator` (= LogicSimulatorT<1>) is the classic 64-way simulator;
// its results and API are unchanged. Wider instantiations (W in
// {2, 4, 8, 16}) are selected at runtime via DispatchBlockWidth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/wide_word.hpp"

namespace bistdse::sim {

/// Evaluates one gate from already-computed fanin words.
PatternWord EvalGate(netlist::GateType type, std::span<const PatternWord> fanins);

/// Wide-gate evaluation core over any fanin accessor `get(i) -> const
/// WideWord<W>&`; the lane loops inside each operator vectorize.
template <std::size_t W, typename Get>
WideWord<W> EvalGateWideImpl(netlist::GateType type, std::size_t num_fanins,
                             Get&& get) {
  using netlist::GateType;
  switch (type) {
    case GateType::Buf:
      return get(0);
    case GateType::Not:
      return ~get(0);
    case GateType::And:
    case GateType::Nand: {
      WideWord<W> v = WideWord<W>::Ones();
      for (std::size_t i = 0; i < num_fanins; ++i) v &= get(i);
      return type == GateType::And ? v : ~v;
    }
    case GateType::Or:
    case GateType::Nor: {
      WideWord<W> v = WideWord<W>::Zero();
      for (std::size_t i = 0; i < num_fanins; ++i) v |= get(i);
      return type == GateType::Or ? v : ~v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      WideWord<W> v = WideWord<W>::Zero();
      for (std::size_t i = 0; i < num_fanins; ++i) v ^= get(i);
      return type == GateType::Xor ? v : ~v;
    }
    case GateType::Input:
    case GateType::Dff:
      throw std::logic_error("EvalGateWide called on source node");
  }
  return WideWord<W>::Zero();
}

template <std::size_t W>
WideWord<W> EvalGateWide(netlist::GateType type,
                         std::span<const WideWord<W>> fanins) {
  return EvalGateWideImpl<W>(
      type, fanins.size(),
      [&](std::size_t i) -> const WideWord<W>& { return fanins[i]; });
}

/// Pointer-gather variant for hot loops: fanin blocks stay where they live
/// (good-machine or faulty values) instead of being copied into a scratch
/// vector, which matters once a block is W words wide.
template <std::size_t W>
WideWord<W> EvalGateWide(netlist::GateType type,
                         std::span<const WideWord<W>* const> fanins) {
  return EvalGateWideImpl<W>(
      type, fanins.size(),
      [&](std::size_t i) -> const WideWord<W>& { return *fanins[i]; });
}

template <std::size_t W>
class LogicSimulatorT {
 public:
  using Word = WideWord<W>;
  static constexpr std::size_t kLanes = W;

  /// The netlist must be finalized and must outlive the simulator.
  explicit LogicSimulatorT(const netlist::Netlist& netlist);

  /// Assigns the W words starting at `words[i * W]` (lane 0 first) to
  /// CoreInputs()[i] and evaluates the combinational core. `words.size()`
  /// must equal CoreInputs().size() * W. At W = 1 this is the classic
  /// one-word-per-input interface.
  void Simulate(std::span<const PatternWord> words);

  /// Lane-0 value word of any node after Simulate() — the full value at
  /// W = 1.
  PatternWord ValueOf(netlist::NodeId node) const {
    return values_[node].lane[0];
  }

  /// All W lanes of a node.
  const Word& BlockOf(netlist::NodeId node) const { return values_[node]; }
  std::span<const PatternWord> LanesOf(netlist::NodeId node) const {
    return {values_[node].lane, W};
  }

  /// Direct access to the full value vector (indexed by NodeId).
  std::span<const Word> Values() const { return values_; }

  /// Collects the response at CoreOutputs() in order: W contiguous words
  /// (lane 0 first) per output.
  std::vector<PatternWord> CoreOutputValues() const;

  /// Monotonic counter bumped by every Simulate() call. Consumers that cache
  /// derived per-block data (e.g. the fault simulator's stem-observability
  /// blocks — including worker clones sharing this good machine read-only)
  /// compare generations instead of being notified. Starts at 0 (no block
  /// loaded yet).
  std::uint64_t Generation() const { return generation_; }

  const netlist::Netlist& Circuit() const { return netlist_; }

 private:
  const netlist::Netlist& netlist_;
  std::vector<Word> values_;
  std::uint64_t generation_ = 0;
};

extern template class LogicSimulatorT<1>;
extern template class LogicSimulatorT<2>;
extern template class LogicSimulatorT<4>;
extern template class LogicSimulatorT<8>;
extern template class LogicSimulatorT<16>;

/// The classic 64-pattern simulator — unchanged semantics and layout.
using LogicSimulator = LogicSimulatorT<1>;

}  // namespace bistdse::sim
