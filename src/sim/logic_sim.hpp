// 64-way parallel-pattern logic simulation of the combinational core.
//
// Each node value is a 64-bit word: bit k holds the node's logic value under
// pattern k of the current pattern block. Full-scan view: values are assigned
// to CoreInputs() (PIs + flop Qs) and observed at CoreOutputs() (POs + flop D
// nets).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace bistdse::sim {

using PatternWord = std::uint64_t;

/// Evaluates one gate from already-computed fanin words.
PatternWord EvalGate(netlist::GateType type, std::span<const PatternWord> fanins);

class LogicSimulator {
 public:
  /// The netlist must be finalized and must outlive the simulator.
  explicit LogicSimulator(const netlist::Netlist& netlist);

  /// Assigns `words[i]` to CoreInputs()[i] and evaluates the combinational
  /// core. `words.size()` must equal CoreInputs().size().
  void Simulate(std::span<const PatternWord> words);

  /// Value word of any node after Simulate().
  PatternWord ValueOf(netlist::NodeId node) const { return values_[node]; }

  /// Direct access to the full value vector (indexed by NodeId).
  std::span<const PatternWord> Values() const { return values_; }

  /// Collects the response at CoreOutputs() in order.
  std::vector<PatternWord> CoreOutputValues() const;

  const netlist::Netlist& Circuit() const { return netlist_; }

 private:
  const netlist::Netlist& netlist_;
  std::vector<PatternWord> values_;
};

}  // namespace bistdse::sim
