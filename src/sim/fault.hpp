// Single stuck-at fault model with structural equivalence collapsing.
//
// A fault is located either at a node's output net ("stem", fanin_index < 0)
// or at one of a gate's input pins ("branch", fanin_index >= 0). Collapsing
// follows the textbook equivalence rules:
//   * a branch fault on a fanout-free wire is equivalent to the driver's
//     stem fault -> dropped;
//   * an input stuck-at-controlling fault of AND/NAND/OR/NOR is equivalent
//     to the gate's own stem fault -> dropped;
//   * BUF/NOT input faults are equivalent to the gate's stem faults ->
//     dropped;
//   * everything else (stems everywhere, non-controlling branch faults on
//     true fanout branches, all XOR/XNOR branch faults on fanout branches,
//     flop-D branch faults on fanout branches) is kept.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace bistdse::sim {

struct StuckAtFault {
  netlist::NodeId node = netlist::kInvalidNode;
  std::int8_t fanin_index = -1;  ///< -1: stem at node output; >=0: branch at pin.
  bool stuck_value = false;

  bool IsStem() const { return fanin_index < 0; }

  friend bool operator==(const StuckAtFault&, const StuckAtFault&) = default;
};

/// Human-readable fault name, e.g. "n42/SA1" or "n42.in2/SA0".
std::string ToString(const netlist::Netlist& netlist, const StuckAtFault& fault);

/// The collapsed fault universe of a finalized netlist. Order is
/// deterministic (node-major, stems first).
std::vector<StuckAtFault> CollapsedFaults(const netlist::Netlist& netlist);

/// The uncollapsed fault universe (every stem and every branch, both
/// polarities) — used by tests to cross-check collapsing ratios.
std::vector<StuckAtFault> AllFaults(const netlist::Netlist& netlist);

}  // namespace bistdse::sim
