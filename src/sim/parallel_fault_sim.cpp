#include "sim/parallel_fault_sim.hpp"

#include <algorithm>

namespace bistdse::sim {

namespace {

/// Below this many faults per slot a sweep is not worth fanning out; the
/// chunk count shrinks so each slot keeps a useful grain. Results do not
/// depend on the chunking, only wall-clock does.
constexpr std::size_t kMinFaultsPerSlot = 64;

}  // namespace

template <std::size_t W>
ParallelFaultSimulatorT<W>::ParallelFaultSimulatorT(
    const netlist::Netlist& netlist, std::size_t threads,
    util::ThreadPool* pool, bool structural_shortcuts)
    : pool_(pool ? *pool : util::ThreadPool::Global()),
      threads_(threads ? threads : pool_.WorkerCount() + 1),
      primary_(netlist, structural_shortcuts) {}

template <std::size_t W>
void ParallelFaultSimulatorT<W>::SetPatternBlock(
    std::span<const PatternWord> core_input_words) {
  primary_.SetPatternBlock(core_input_words);
}

template <std::size_t W>
std::size_t ParallelFaultSimulatorT<W>::ChunkCount(std::size_t n) const {
  const std::size_t by_grain = std::max<std::size_t>(1, n / kMinFaultsPerSlot);
  return std::min(threads_, by_grain);
}

template <std::size_t W>
void ParallelFaultSimulatorT<W>::EnsureSlots(std::size_t count) {
  while (clones_.size() + 1 < count) {
    clones_.push_back(std::make_unique<FaultSimulatorT<W>>(
        FaultSimulatorT<W>::WorkerClone(primary_)));
  }
}

template <std::size_t W>
void ParallelFaultSimulatorT<W>::ForEachFault(
    std::size_t n,
    const std::function<void(std::size_t, FaultSimulatorT<W>&)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = ChunkCount(n);
  if (chunks == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, primary_);
    return;
  }
  EnsureSlots(chunks);
  pool_.ParallelFor(0, n, chunks,
                    [&](std::size_t begin, std::size_t end, std::size_t slot) {
                      FaultSimulatorT<W>& sim =
                          slot == 0 ? primary_ : *clones_[slot - 1];
                      for (std::size_t i = begin; i < end; ++i) fn(i, sim);
                    });
}

template <std::size_t W>
void ParallelFaultSimulatorT<W>::DetectBlocks(
    std::span<const StuckAtFault> faults, std::span<Word> detect) {
  ForEachFault(faults.size(), [&](std::size_t i, FaultSimulatorT<W>& sim) {
    detect[i] = sim.DetectBlock(faults[i]);
  });
}

template <std::size_t W>
void ParallelFaultSimulatorT<W>::DetectWords(
    std::span<const StuckAtFault> faults, std::span<PatternWord> detect) {
  ForEachFault(faults.size(), [&](std::size_t i, FaultSimulatorT<W>& sim) {
    detect[i] = sim.DetectBlock(faults[i]).lane[0];
  });
}

template class ParallelFaultSimulatorT<1>;
template class ParallelFaultSimulatorT<2>;
template class ParallelFaultSimulatorT<4>;
template class ParallelFaultSimulatorT<8>;
template class ParallelFaultSimulatorT<16>;

// ParallelCountDetectedFaults lives in campaign.cpp: it is a stored-source
// drop campaign on the streaming CampaignRunner kernel.

}  // namespace bistdse::sim
