// Multi-word parallel-pattern blocks: W consecutive 64-bit lanes simulated
// together, so one sweep through the circuit evaluates W*64 patterns.
//
// Lane l, bit k of a WideWord holds pattern l*64+k of the current block —
// i.e. the wide block is W narrow 64-pattern blocks laid out contiguously
// per node. The bitwise operators route through the explicit SIMD backend
// in wide_word_simd.hpp (AVX-512/AVX2 when the build targets them, scalar
// lane loops otherwise); the scalar path doubles as the constant-evaluation
// path, so the operators stay constexpr.
//
// Determinism contract: every wide computation must equal the W sequential
// narrow blocks it replaces, with reductions in block-then-lane-then-index
// order. FirstSetBit() encodes that order for first-detection accounting.
// The SIMD backends are pure bitwise lane ops and cannot change any bit.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "sim/wide_word_simd.hpp"

namespace bistdse::sim {

using PatternWord = std::uint64_t;

/// Widths the runtime dispatch accepts (see DispatchBlockWidth).
inline constexpr std::array<std::size_t, 5> kSupportedBlockWidths = {1, 2, 4,
                                                                    8, 16};

template <std::size_t W>
struct alignas(W * sizeof(PatternWord)) WideWord {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8 || W == 16,
                "block width must be 1, 2, 4, 8, or 16 lanes");
  static constexpr std::size_t kLanes = W;
  static constexpr std::size_t kPatterns = W * 64;

  // Natural alignment of the whole block (16/32/64/128 bytes for
  // W = 2/4/8/16) keeps the SIMD lane ops on aligned full-width loads.
  PatternWord lane[W];

  static constexpr WideWord Zero() {
    WideWord w{};
    return w;
  }
  static constexpr WideWord Fill(PatternWord v) {
    WideWord w{};
    for (std::size_t l = 0; l < W; ++l) w.lane[l] = v;
    return w;
  }
  static constexpr WideWord Ones() { return Fill(~PatternWord{0}); }

  /// Loads W contiguous words (lane 0 first).
  static WideWord Load(const PatternWord* src) {
    WideWord w;
    for (std::size_t l = 0; l < W; ++l) w.lane[l] = src[l];
    return w;
  }
  void Store(PatternWord* dst) const {
    for (std::size_t l = 0; l < W; ++l) dst[l] = lane[l];
  }

  constexpr bool Any() const {
    if (!std::is_constant_evaluated()) return simd::AnyLane<W>(lane);
    PatternWord acc = 0;
    for (std::size_t l = 0; l < W; ++l) acc |= lane[l];
    return acc != 0;
  }

  /// Index (lane*64 + bit) of the lowest set bit in lane-then-bit order, or
  /// -1 when no bit is set. This is the pattern index a sequential sweep of
  /// W narrow blocks would have reported first.
  constexpr int FirstSetBit() const {
    for (std::size_t l = 0; l < W; ++l) {
      if (lane[l] != 0) {
        return static_cast<int>(l * 64) + std::countr_zero(lane[l]);
      }
    }
    return -1;
  }

  constexpr WideWord& operator&=(const WideWord& o) {
    if (!std::is_constant_evaluated()) {
      simd::AndLanes<W>(lane, o.lane);
      return *this;
    }
    for (std::size_t l = 0; l < W; ++l) lane[l] &= o.lane[l];
    return *this;
  }
  constexpr WideWord& operator|=(const WideWord& o) {
    if (!std::is_constant_evaluated()) {
      simd::OrLanes<W>(lane, o.lane);
      return *this;
    }
    for (std::size_t l = 0; l < W; ++l) lane[l] |= o.lane[l];
    return *this;
  }
  constexpr WideWord& operator^=(const WideWord& o) {
    if (!std::is_constant_evaluated()) {
      simd::XorLanes<W>(lane, o.lane);
      return *this;
    }
    for (std::size_t l = 0; l < W; ++l) lane[l] ^= o.lane[l];
    return *this;
  }
  friend constexpr WideWord operator&(WideWord a, const WideWord& b) {
    return a &= b;
  }
  friend constexpr WideWord operator|(WideWord a, const WideWord& b) {
    return a |= b;
  }
  friend constexpr WideWord operator^(WideWord a, const WideWord& b) {
    return a ^= b;
  }
  friend constexpr WideWord operator~(WideWord a) {
    if (!std::is_constant_evaluated()) {
      simd::NotLanes<W>(a.lane);
      return a;
    }
    for (std::size_t l = 0; l < W; ++l) a.lane[l] = ~a.lane[l];
    return a;
  }
  friend constexpr bool operator==(const WideWord&, const WideWord&) = default;
};

/// Is `block_width` one of kSupportedBlockWidths?
constexpr bool IsSupportedBlockWidth(std::size_t block_width) {
  for (std::size_t w : kSupportedBlockWidths) {
    if (w == block_width) return true;
  }
  return false;
}

/// "1, 2, 4, 8, 16" — for error messages and CLI help.
inline std::string SupportedBlockWidthList() {
  std::string s;
  for (std::size_t w : kSupportedBlockWidths) {
    if (!s.empty()) s += ", ";
    s += std::to_string(w);
  }
  return s;
}

/// Calls `fn(std::integral_constant<std::size_t, W>{})` for the requested
/// runtime width. All per-width code is stamped out at compile time; this is
/// the single point where a config/CLI `block_width` enters the templates.
template <typename Fn>
decltype(auto) DispatchBlockWidth(std::size_t block_width, Fn&& fn) {
  switch (block_width) {
    case 1:
      return fn(std::integral_constant<std::size_t, 1>{});
    case 2:
      return fn(std::integral_constant<std::size_t, 2>{});
    case 4:
      return fn(std::integral_constant<std::size_t, 4>{});
    case 8:
      return fn(std::integral_constant<std::size_t, 8>{});
    case 16:
      return fn(std::integral_constant<std::size_t, 16>{});
    default:
      throw std::invalid_argument("unsupported block width " +
                                  std::to_string(block_width) +
                                  " (supported: " + SupportedBlockWidthList() +
                                  ")");
  }
}

}  // namespace bistdse::sim
