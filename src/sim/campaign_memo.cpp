#include "sim/campaign_memo.hpp"

#include "netlist/netlist.hpp"

namespace bistdse::sim {

std::uint64_t HashFaultList(std::span<const StuckAtFault> faults) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(faults.size());
  for (const StuckAtFault& f : faults) {
    mix(f.node);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(f.fanin_index)));
    mix(f.stuck_value ? 1 : 0);
  }
  return h;
}

void CampaignMemo::Touch(std::list<Entry>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

std::shared_ptr<const FirstDetectResult> CampaignMemo::Lookup(
    const FirstDetectKey& key, std::uint64_t max_patterns) {
  {
    std::lock_guard lock(mutex_);
    const auto found = index_.find(key);
    if (found != index_.end() &&
        found->second->result->covered_patterns >= max_patterns) {
      Touch(found->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return found->second->result;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void CampaignMemo::Store(const FirstDetectKey& key, FirstDetectResult result) {
  std::lock_guard lock(mutex_);
  const auto found = index_.find(key);
  if (found != index_.end()) {
    // Keep whichever campaign covers the longer prefix (it answers a
    // superset of requests); the racing shorter result is discarded.
    if (result.covered_patterns > found->second->result->covered_patterns) {
      found->second->result =
          std::make_shared<const FirstDetectResult>(std::move(result));
    }
    Touch(found->second);
    return;
  }
  lru_.push_front(
      {key, std::make_shared<const FirstDetectResult>(std::move(result))});
  index_.emplace(key, lru_.begin());
  if (capacity_ != 0 && lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t CampaignMemo::Size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

CampaignStats RunFirstDetectMemoized(CampaignRunner& runner,
                                     PatternSource& source,
                                     std::uint64_t stream_key,
                                     std::span<const StuckAtFault> track,
                                     std::span<std::uint64_t> first_detect,
                                     std::uint64_t max_patterns, bool warmup,
                                     CampaignMemo* memo) {
  FirstDetectKey key;
  if (memo != nullptr) {
    key = {runner.Circuit().ContentHash(), stream_key, HashFaultList(track)};
    const auto cached = memo->Lookup(key, max_patterns);
    if (cached != nullptr && cached->first_detect.size() == track.size()) {
      CampaignStats stats;  // patterns == 0: nothing was simulated.
      for (std::size_t i = 0; i < track.size(); ++i) {
        const std::uint64_t fd = cached->first_detect[i];
        // Detections at or past the requested budget happened outside this
        // (shorter) campaign: report undetected, exactly as a fresh run
        // of max_patterns would.
        if (fd < max_patterns) {
          first_detect[i] = fd;
          ++stats.dropped;
        } else {
          first_detect[i] = UINT64_MAX;
        }
      }
      stats.survivors = track.size() - static_cast<std::size_t>(stats.dropped);
      return stats;
    }
  }

  for (std::uint64_t& fd : first_detect) fd = UINT64_MAX;
  FirstDetectSink sink(first_detect);
  const CampaignStats stats = runner.Run(source, sink,
                                         {.max_patterns = max_patterns,
                                          .track = track,
                                          .drop_detected = true,
                                          .warmup = warmup});
  if (memo != nullptr) {
    FirstDetectResult result;
    result.first_detect.assign(first_detect.begin(), first_detect.end());
    // A campaign that stopped short of its budget ran out of stream or out
    // of undropped faults — either way the entries are final for every
    // longer prefix.
    result.covered_patterns =
        stats.patterns < max_patterns ? UINT64_MAX : max_patterns;
    memo->Store(key, std::move(result));
  }
  return stats;
}

}  // namespace bistdse::sim
