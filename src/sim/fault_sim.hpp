// Event-driven parallel-pattern single-fault propagation (PPSFP).
//
// Usage: load a block of up to W*64 patterns with SetPatternBlock(), then
// query DetectBlock(fault) for each still-undetected fault. Bit k of lane l
// of the returned block is 1 iff pattern l*64+k of the block detects the
// fault at a primary output or a flop D input (PPO). Callers implement
// fault dropping by removing faults whose block is non-zero.
//
// Structural shortcuts (on by default, netlist::StructuralInfo):
//   * FFR collapse — a fault effect inside a fanout-free region can only
//     leave through the region's stem, so DetectBlock() walks the single-
//     fanout chain to the stem with plain gate re-evaluations (no event
//     queue) and finishes with one AND against the stem's observability.
//   * Stem observability cache — the stem's observability under the current
//     block is a full flip propagation, computed at most once per stem per
//     pattern block (keyed on the good machine's Generation()) and shared
//     by every fault in the region.
//   * Dominator cut — during a flip propagation, when the event frontier
//     collapses onto a single pending node whose observability is already
//     cached, the remaining propagation is exactly `diff & obs` and the
//     wave stops there. Warming the cache along the immediate-post-dominator
//     chain before propagating makes these cuts hit in practice.
// All three are exact per pattern: every bit position of a block is an
// independent simulation, so the returned blocks are bit-identical to the
// unshortcut event-driven propagation (tests/test_structure.cpp asserts
// this on seeded random netlists).
//
// `FaultSimulator` (= FaultSimulatorT<1>) is the classic 64-way simulator;
// its DetectWord()/FaultyResponse() results are unchanged. A wide block is
// equivalent to W sequential narrow blocks: every lane carries exactly the
// detect word the narrow path would have produced for that 64-pattern slice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::sim {

template <std::size_t W>
class FaultSimulatorT {
 public:
  using Word = WideWord<W>;
  static constexpr std::size_t kLanes = W;

  /// `structural_shortcuts` selects the FFR/dominator detection path; the
  /// returned blocks are bit-identical either way (keep it on — `false`
  /// exists for A/B validation and perf ablation).
  explicit FaultSimulatorT(const netlist::Netlist& netlist,
                           bool structural_shortcuts = true);
  FaultSimulatorT(FaultSimulatorT&&) = default;

  /// Cheap per-thread clone for fault-partitioned parallel sweeps: shares
  /// `parent`'s netlist and good-machine block read-only and only allocates
  /// its own propagation scratch (including its own stem-observability
  /// cache). The parent must outlive the clone and owns the pattern block —
  /// SetPatternBlock() on a clone throws; the clone sees whatever block the
  /// parent loaded last.
  static FaultSimulatorT WorkerClone(const FaultSimulatorT& parent);

  /// Simulates the fault-free circuit for a block of patterns (W words per
  /// core input, lane 0 first — see LogicSimulatorT<W>::Simulate).
  void SetPatternBlock(std::span<const PatternWord> core_input_words);

  /// Detection block of `fault` under the current block: one detect word
  /// per lane.
  Word DetectBlock(const StuckAtFault& fault);

  /// Lane-0 detection word — the full detection result at W = 1.
  PatternWord DetectWord(const StuckAtFault& fault) {
    return DetectBlock(fault).lane[0];
  }

  /// Faulty response at all core outputs under the current block, W
  /// contiguous words (lane 0 first) per output — the same layout as
  /// LogicSimulatorT<W>::CoreOutputValues(). Used by the diagnosis engine
  /// to build per-fault response signatures. Always a full propagation:
  /// the response needs faulty values at every output, not just a detect
  /// mask, so the structural shortcuts do not apply.
  std::vector<PatternWord> FaultyResponse(const StuckAtFault& fault);

  bool StructuralShortcuts() const { return shortcuts_; }

  const LogicSimulatorT<W>& Good() const { return *good_; }
  const netlist::Netlist& Circuit() const { return netlist_; }

 private:
  FaultSimulatorT(const netlist::Netlist& netlist,
                  const LogicSimulatorT<W>* shared_good,
                  bool structural_shortcuts);

  /// Faulty value at the fault site under the current block (gate output
  /// after injecting a stem or pin fault).
  Word SiteValue(const StuckAtFault& fault);

  /// Propagates the fault effect and returns the detection block; leaves
  /// faulty values in fval_/touched_ (caller must call Reset()).
  Word Propagate(const StuckAtFault& fault);

  /// FFR-collapsed detection: chain-walk to the region stem, then AND with
  /// the cached stem observability. Bit-identical to Propagate()+Reset().
  Word DetectShortcut(const StuckAtFault& fault);

  /// Observability of `node` under the current block: bit p is 1 iff
  /// flipping `node`'s value on pattern p changes some core output. Cached
  /// per good-machine generation; computes along the ipostdom chain so the
  /// flip propagations can cut at their dominators.
  const Word& ObsOf(netlist::NodeId node);

  /// Full flip propagation for the observability cache, with the dominator
  /// frontier-collapse cut.
  Word PropagateFlip(netlist::NodeId node);

  /// Re-evaluates `id` with `node`'s value replaced by `val` and all other
  /// fanins at good values (valid on single-fanout chains where the fault
  /// effect cannot reach any side fanin).
  Word EvalWithOverride(netlist::NodeId id, netlist::NodeId node,
                        const Word& val);

  void Reset();

  const netlist::Netlist& netlist_;
  const netlist::StructuralInfo* structure_;
  std::unique_ptr<LogicSimulatorT<W>> good_owned_;  ///< Null in worker clones.
  const LogicSimulatorT<W>* good_;                  ///< Owned or the parent's.
  bool shortcuts_;
  std::vector<Word> fval_;
  std::vector<std::uint8_t> is_touched_;
  std::vector<netlist::NodeId> touched_;
  std::vector<std::uint32_t> observed_count_;  // #observation points per node
  std::vector<std::vector<netlist::NodeId>> level_buckets_;
  std::vector<std::uint8_t> in_queue_;
  // Member scratch (hoisted out of the per-fault hot path so propagation
  // performs no heap allocation after warm-up).
  std::vector<const Word*> fanin_ptrs_;
  std::vector<Word> site_vals_;
  std::vector<netlist::NodeId> obs_chain_;
  // Stem observability cache, valid while obs_epoch_[n] == good_->Generation().
  std::vector<Word> obs_;
  std::vector<std::uint64_t> obs_epoch_;
};

extern template class FaultSimulatorT<1>;
extern template class FaultSimulatorT<2>;
extern template class FaultSimulatorT<4>;
extern template class FaultSimulatorT<8>;
extern template class FaultSimulatorT<16>;

/// The classic 64-pattern fault simulator — unchanged semantics.
using FaultSimulator = FaultSimulatorT<1>;

/// Fraction bookkeeping helper used across the library: how many of
/// `faults` are detected by `patterns` (with fault dropping). `block_width`
/// selects the wide datapath (W in {1, 2, 4, 8, 16} — W*64 patterns per
/// sweep); the count is identical for every width.
std::size_t CountDetectedFaults(const netlist::Netlist& netlist,
                                std::span<const BitPattern> patterns,
                                std::span<const StuckAtFault> faults,
                                std::size_t block_width = 1);

}  // namespace bistdse::sim
