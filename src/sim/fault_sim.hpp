// Event-driven parallel-pattern single-fault propagation (PPSFP).
//
// Usage: load a block of up to 64 patterns with SetPatternBlock(), then query
// DetectWord(fault) for each still-undetected fault. Bit k of the returned
// word is 1 iff pattern k of the block detects the fault at a primary output
// or a flop D input (PPO). Callers implement fault dropping by removing
// faults whose word is non-zero.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::sim {

class FaultSimulator {
 public:
  explicit FaultSimulator(const netlist::Netlist& netlist);
  FaultSimulator(FaultSimulator&&) = default;

  /// Cheap per-thread clone for fault-partitioned parallel sweeps: shares
  /// `parent`'s netlist and good-machine block read-only and only allocates
  /// its own propagation scratch. The parent must outlive the clone and owns
  /// the pattern block — SetPatternBlock() on a clone throws; the clone sees
  /// whatever block the parent loaded last.
  static FaultSimulator WorkerClone(const FaultSimulator& parent);

  /// Simulates the fault-free circuit for a block of patterns (words aligned
  /// with CoreInputs()).
  void SetPatternBlock(std::span<const PatternWord> core_input_words);

  /// Detection word of `fault` under the current block.
  PatternWord DetectWord(const StuckAtFault& fault);

  /// Faulty response at all core outputs under the current block. Used by
  /// the diagnosis engine to build per-fault response signatures.
  std::vector<PatternWord> FaultyResponse(const StuckAtFault& fault);

  const LogicSimulator& Good() const { return *good_; }
  const netlist::Netlist& Circuit() const { return netlist_; }

 private:
  FaultSimulator(const netlist::Netlist& netlist, const LogicSimulator* shared_good);

  /// Propagates the fault effect and returns the detection word; leaves
  /// faulty values in fval_/touched_ (caller must call Reset()).
  PatternWord Propagate(const StuckAtFault& fault);
  void Reset();

  const netlist::Netlist& netlist_;
  std::unique_ptr<LogicSimulator> good_owned_;  ///< Null in worker clones.
  const LogicSimulator* good_;                  ///< Owned or the parent's.
  std::vector<PatternWord> fval_;
  std::vector<std::uint8_t> is_touched_;
  std::vector<netlist::NodeId> touched_;
  std::vector<std::uint32_t> observed_count_;  // #observation points per node
  std::vector<std::vector<netlist::NodeId>> level_buckets_;
  std::vector<std::uint8_t> in_queue_;
};

/// Fraction bookkeeping helper used across the library: how many of
/// `faults` are detected by `patterns` (with fault dropping).
std::size_t CountDetectedFaults(const netlist::Netlist& netlist,
                                std::span<const BitPattern> patterns,
                                std::span<const StuckAtFault> faults);

}  // namespace bistdse::sim
