// Event-driven parallel-pattern single-fault propagation (PPSFP).
//
// Usage: load a block of up to W*64 patterns with SetPatternBlock(), then
// query DetectBlock(fault) for each still-undetected fault. Bit k of lane l
// of the returned block is 1 iff pattern l*64+k of the block detects the
// fault at a primary output or a flop D input (PPO). Callers implement
// fault dropping by removing faults whose block is non-zero.
//
// `FaultSimulator` (= FaultSimulatorT<1>) is the classic 64-way simulator;
// its DetectWord()/FaultyResponse() results are unchanged. A wide block is
// equivalent to W sequential narrow blocks: every lane carries exactly the
// detect word the narrow path would have produced for that 64-pattern slice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sim/fault.hpp"
#include "sim/logic_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::sim {

template <std::size_t W>
class FaultSimulatorT {
 public:
  using Word = WideWord<W>;
  static constexpr std::size_t kLanes = W;

  explicit FaultSimulatorT(const netlist::Netlist& netlist);
  FaultSimulatorT(FaultSimulatorT&&) = default;

  /// Cheap per-thread clone for fault-partitioned parallel sweeps: shares
  /// `parent`'s netlist and good-machine block read-only and only allocates
  /// its own propagation scratch. The parent must outlive the clone and owns
  /// the pattern block — SetPatternBlock() on a clone throws; the clone sees
  /// whatever block the parent loaded last.
  static FaultSimulatorT WorkerClone(const FaultSimulatorT& parent);

  /// Simulates the fault-free circuit for a block of patterns (W words per
  /// core input, lane 0 first — see LogicSimulatorT<W>::Simulate).
  void SetPatternBlock(std::span<const PatternWord> core_input_words);

  /// Detection block of `fault` under the current block: one detect word
  /// per lane.
  Word DetectBlock(const StuckAtFault& fault);

  /// Lane-0 detection word — the full detection result at W = 1.
  PatternWord DetectWord(const StuckAtFault& fault) {
    return DetectBlock(fault).lane[0];
  }

  /// Faulty response at all core outputs under the current block, W
  /// contiguous words (lane 0 first) per output — the same layout as
  /// LogicSimulatorT<W>::CoreOutputValues(). Used by the diagnosis engine
  /// to build per-fault response signatures.
  std::vector<PatternWord> FaultyResponse(const StuckAtFault& fault);

  const LogicSimulatorT<W>& Good() const { return *good_; }
  const netlist::Netlist& Circuit() const { return netlist_; }

 private:
  FaultSimulatorT(const netlist::Netlist& netlist,
                  const LogicSimulatorT<W>* shared_good);

  /// Propagates the fault effect and returns the detection block; leaves
  /// faulty values in fval_/touched_ (caller must call Reset()).
  Word Propagate(const StuckAtFault& fault);
  void Reset();

  const netlist::Netlist& netlist_;
  std::unique_ptr<LogicSimulatorT<W>> good_owned_;  ///< Null in worker clones.
  const LogicSimulatorT<W>* good_;                  ///< Owned or the parent's.
  std::vector<Word> fval_;
  std::vector<std::uint8_t> is_touched_;
  std::vector<netlist::NodeId> touched_;
  std::vector<std::uint32_t> observed_count_;  // #observation points per node
  std::vector<std::vector<netlist::NodeId>> level_buckets_;
  std::vector<std::uint8_t> in_queue_;
};

extern template class FaultSimulatorT<1>;
extern template class FaultSimulatorT<2>;
extern template class FaultSimulatorT<4>;
extern template class FaultSimulatorT<8>;

/// The classic 64-pattern fault simulator — unchanged semantics.
using FaultSimulator = FaultSimulatorT<1>;

/// Fraction bookkeeping helper used across the library: how many of
/// `faults` are detected by `patterns` (with fault dropping). `block_width`
/// selects the wide datapath (W in {1, 2, 4, 8} — W*64 patterns per sweep);
/// the count is identical for every width.
std::size_t CountDetectedFaults(const netlist::Netlist& netlist,
                                std::span<const BitPattern> patterns,
                                std::span<const StuckAtFault> faults,
                                std::size_t block_width = 1);

}  // namespace bistdse::sim
