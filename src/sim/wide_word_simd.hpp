// Explicit SIMD backend for the WideWord lane operators.
//
// The backend is selected once at configure time from the compiler's target
// feature macros (build with -DBISTDSE_SIMD=ON to add -mavx2, or pass
// -march=native yourself):
//
//   __AVX512F__  -> 512-bit zmm ops for W >= 8 (and ymm for W = 4)
//   __AVX2__     -> 256-bit ymm ops for W >= 4
//   otherwise    -> portable scalar lane loops (what the compiler already
//                   auto-vectorizes when the target allows)
//
// Every backend computes the exact same bits: these are pure bitwise lane
// ops, so the bit-identity contract of wide_word.hpp is untouched — only
// the instructions issued per block change. The scalar path is also the
// constant-evaluation path, which keeps the WideWord operators constexpr.
//
// Lane buffers handed to these helpers are the `lane[W]` arrays of
// WideWord<W>, which is alignas(W * 8) — at least 32-byte aligned for every
// vectorized width. Unaligned loads are used anyway (zero penalty on aligned
// data with AVX2+) so stack copies with weaker provenance stay safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace bistdse::sim::simd {

#if defined(__AVX512F__)
inline constexpr const char* kBackendName = "avx512";
#elif defined(__AVX2__)
inline constexpr const char* kBackendName = "avx2";
#else
inline constexpr const char* kBackendName = "scalar";
#endif

/// The backend compiled into this binary ("avx512", "avx2" or "scalar").
inline const char* SimdBackendName() { return kBackendName; }

/// Runtime CPU feature string (independent of what was compiled in), e.g.
/// "sse2+avx+avx2+avx512f+avx512bw". Emitted into the bench JSON so perf
/// trajectories stay attributable across runners.
inline std::string CpuFeatureString() {
#if defined(__x86_64__) || defined(__i386__)
  std::string s;
  const auto add = [&s](const char* name, bool have) {
    if (!have) return;
    if (!s.empty()) s += '+';
    s += name;
  };
  add("sse2", __builtin_cpu_supports("sse2"));
  add("sse4.2", __builtin_cpu_supports("sse4.2"));
  add("avx", __builtin_cpu_supports("avx"));
  add("avx2", __builtin_cpu_supports("avx2"));
  add("avx512f", __builtin_cpu_supports("avx512f"));
  add("avx512bw", __builtin_cpu_supports("avx512bw"));
  return s.empty() ? "none" : s;
#else
  return "non-x86";
#endif
}

// --- lane-op kernels -------------------------------------------------------
//
// Each helper applies one bitwise op across the W 64-bit lanes of dst/src.
// W is a compile-time constant, so the chunk loops fully unroll.

template <std::size_t W>
inline void AndLanes(std::uint64_t* dst, const std::uint64_t* src) {
#if defined(__AVX512F__)
  if constexpr (W >= 8) {
    for (std::size_t l = 0; l < W; l += 8) {
      const __m512i a = _mm512_loadu_si512(dst + l);
      const __m512i b = _mm512_loadu_si512(src + l);
      _mm512_storeu_si512(dst + l, _mm512_and_si512(a, b));
    }
    return;
  }
#endif
#if defined(__AVX2__)
  if constexpr (W >= 4) {
    for (std::size_t l = 0; l < W; l += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + l));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + l));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + l),
                          _mm256_and_si256(a, b));
    }
    return;
  }
#endif
  for (std::size_t l = 0; l < W; ++l) dst[l] &= src[l];
}

template <std::size_t W>
inline void OrLanes(std::uint64_t* dst, const std::uint64_t* src) {
#if defined(__AVX512F__)
  if constexpr (W >= 8) {
    for (std::size_t l = 0; l < W; l += 8) {
      const __m512i a = _mm512_loadu_si512(dst + l);
      const __m512i b = _mm512_loadu_si512(src + l);
      _mm512_storeu_si512(dst + l, _mm512_or_si512(a, b));
    }
    return;
  }
#endif
#if defined(__AVX2__)
  if constexpr (W >= 4) {
    for (std::size_t l = 0; l < W; l += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + l));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + l));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + l),
                          _mm256_or_si256(a, b));
    }
    return;
  }
#endif
  for (std::size_t l = 0; l < W; ++l) dst[l] |= src[l];
}

template <std::size_t W>
inline void XorLanes(std::uint64_t* dst, const std::uint64_t* src) {
#if defined(__AVX512F__)
  if constexpr (W >= 8) {
    for (std::size_t l = 0; l < W; l += 8) {
      const __m512i a = _mm512_loadu_si512(dst + l);
      const __m512i b = _mm512_loadu_si512(src + l);
      _mm512_storeu_si512(dst + l, _mm512_xor_si512(a, b));
    }
    return;
  }
#endif
#if defined(__AVX2__)
  if constexpr (W >= 4) {
    for (std::size_t l = 0; l < W; l += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + l));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + l));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + l),
                          _mm256_xor_si256(a, b));
    }
    return;
  }
#endif
  for (std::size_t l = 0; l < W; ++l) dst[l] ^= src[l];
}

template <std::size_t W>
inline void NotLanes(std::uint64_t* dst) {
#if defined(__AVX512F__)
  if constexpr (W >= 8) {
    const __m512i ones = _mm512_set1_epi64(-1);
    for (std::size_t l = 0; l < W; l += 8) {
      const __m512i a = _mm512_loadu_si512(dst + l);
      _mm512_storeu_si512(dst + l, _mm512_xor_si512(a, ones));
    }
    return;
  }
#endif
#if defined(__AVX2__)
  if constexpr (W >= 4) {
    const __m256i ones = _mm256_set1_epi64x(-1);
    for (std::size_t l = 0; l < W; l += 4) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + l));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + l),
                          _mm256_xor_si256(a, ones));
    }
    return;
  }
#endif
  for (std::size_t l = 0; l < W; ++l) dst[l] = ~dst[l];
}

template <std::size_t W>
inline bool AnyLane(const std::uint64_t* src) {
#if defined(__AVX512F__)
  if constexpr (W >= 8) {
    __m512i acc = _mm512_loadu_si512(src);
    for (std::size_t l = 8; l < W; l += 8) {
      acc = _mm512_or_si512(acc, _mm512_loadu_si512(src + l));
    }
    return _mm512_test_epi64_mask(acc, acc) != 0;
  }
#endif
#if defined(__AVX2__)
  if constexpr (W >= 4) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
    for (std::size_t l = 4; l < W; l += 4) {
      acc = _mm256_or_si256(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + l)));
    }
    return _mm256_testz_si256(acc, acc) == 0;
  }
#endif
  std::uint64_t acc = 0;
  for (std::size_t l = 0; l < W; ++l) acc |= src[l];
  return acc != 0;
}

}  // namespace bistdse::sim::simd
