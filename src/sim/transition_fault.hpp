// Transition-delay fault (TDF) model under launch-on-capture (LOC) testing.
//
// The paper notes its diagnosis flow "is not limited to this [stuck-at]
// fault model"; this module provides the canonical second model. A
// slow-to-rise (slow-to-fall) fault at a net is detected by a pattern pair
// (v1, v2) iff v1 initializes the net to 0 (1), v2 launches the opposite
// value, and the late value is observed — equivalently, the corresponding
// stuck-at fault is detected under v2. Under LOC, v2 is not a free scan
// load but the functional capture response of v1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::sim {

struct TransitionFault {
  netlist::NodeId node = netlist::kInvalidNode;
  bool slow_to_rise = false;  ///< false: slow-to-fall.

  friend bool operator==(const TransitionFault&, const TransitionFault&) =
      default;
};

std::string ToString(const netlist::Netlist& netlist,
                     const TransitionFault& fault);

/// Both polarities at every node output (stem TDFs).
std::vector<TransitionFault> TransitionFaults(const netlist::Netlist& netlist);

class TransitionFaultSimulator {
 public:
  explicit TransitionFaultSimulator(const netlist::Netlist& netlist);

  /// Loads a block of initialization patterns v1 and their launch patterns
  /// v2 (words aligned with CoreInputs()).
  void SetPatternPairBlock(std::span<const PatternWord> v1,
                           std::span<const PatternWord> v2);

  /// Detection word of `fault` under the current pair block.
  PatternWord DetectWord(const TransitionFault& fault);

  /// Derives the launch-on-capture successor of `v1`: primary inputs hold
  /// their values, flops take their captured (functional) next state.
  static std::vector<PatternWord> LaunchOnCapture(
      const netlist::Netlist& netlist, std::span<const PatternWord> v1);

 private:
  const netlist::Netlist& netlist_;
  LogicSimulator init_sim_;    // values under v1
  FaultSimulator launch_sim_;  // good values + stuck-at detection under v2
};

/// LOC transition coverage of `num_pairs` pseudo-random pattern pairs
/// (v1 drawn from `patterns`, v2 = capture successor), with fault dropping.
/// Returns detected / total over the collapsed-stem TDF universe.
double MeasureLocTransitionCoverage(const netlist::Netlist& netlist,
                                    std::span<const BitPattern> patterns);

}  // namespace bistdse::sim
