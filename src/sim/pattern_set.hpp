// Helpers for packing scan patterns into 64-way simulation words.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/logic_sim.hpp"

namespace bistdse::sim {

/// A fully specified test pattern: one bit (0/1) per core input.
using BitPattern = std::vector<std::uint8_t>;

/// Packs up to 64 patterns (patterns[begin] .. patterns[begin+count-1]) into
/// per-input words: word[i] bit k = patterns[begin+k][i]. `count` <= 64.
inline std::vector<PatternWord> PackPatternBlock(
    std::span<const BitPattern> patterns, std::size_t begin, std::size_t count,
    std::size_t width) {
  std::vector<PatternWord> words(width, 0);
  for (std::size_t k = 0; k < count; ++k) {
    const BitPattern& p = patterns[begin + k];
    for (std::size_t i = 0; i < width; ++i) {
      words[i] |= static_cast<PatternWord>(p[i] & 1) << k;
    }
  }
  return words;
}

/// Mask with the low `count` bits set; used to ignore unused slots in a
/// partially filled block.
inline constexpr PatternWord BlockMask(std::size_t count) {
  return count >= 64 ? ~PatternWord{0} : ((PatternWord{1} << count) - 1);
}

}  // namespace bistdse::sim
