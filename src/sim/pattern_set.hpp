// Helpers for packing scan patterns into parallel simulation words — the
// classic 64-way blocks and the wide W*64-pattern blocks of WideWord<W>.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/logic_sim.hpp"

namespace bistdse::sim {

/// A fully specified test pattern: one bit (0/1) per core input.
using BitPattern = std::vector<std::uint8_t>;

/// Packs up to `lanes`*64 patterns (patterns[begin] ..
/// patterns[begin+count-1]) into per-input lane words: for pattern index k,
/// bit k%64 of word [i*lanes + k/64] = patterns[begin+k][i]. The layout is
/// exactly what LogicSimulatorT<lanes>::Simulate expects; `lanes` = 1 is the
/// classic 64-way packing.
inline std::vector<PatternWord> PackPatternBlockWide(
    std::span<const BitPattern> patterns, std::size_t begin, std::size_t count,
    std::size_t width, std::size_t lanes) {
  std::vector<PatternWord> words(width * lanes, 0);
  for (std::size_t k = 0; k < count; ++k) {
    const BitPattern& p = patterns[begin + k];
    const std::size_t lane = k / 64;
    const std::size_t bit = k % 64;
    for (std::size_t i = 0; i < width; ++i) {
      words[i * lanes + lane] |= static_cast<PatternWord>(p[i] & 1) << bit;
    }
  }
  return words;
}

/// Packs up to 64 patterns into one word per input (lanes = 1).
inline std::vector<PatternWord> PackPatternBlock(
    std::span<const BitPattern> patterns, std::size_t begin, std::size_t count,
    std::size_t width) {
  return PackPatternBlockWide(patterns, begin, count, width, 1);
}

/// Mask with the low `count` bits set; used to ignore unused slots in a
/// partially filled block.
inline constexpr PatternWord BlockMask(std::size_t count) {
  return count >= 64 ? ~PatternWord{0} : ((PatternWord{1} << count) - 1);
}

/// How many of the `count` patterns of a wide block land in `lane`
/// (0 for lanes past the fill, up to 64 for fully covered lanes).
inline constexpr std::size_t LanePatternCount(std::size_t count,
                                              std::size_t lane) {
  return count <= lane * 64 ? 0 : std::min<std::size_t>(64, count - lane * 64);
}

/// Per-lane BlockMask of a wide block holding `count` <= W*64 patterns; the
/// mask of a partially filled last block has all-ones lanes up to the fill
/// boundary, one partial lane, and zero lanes after it.
template <std::size_t W>
constexpr WideWord<W> BlockMaskWide(std::size_t count) {
  WideWord<W> mask{};
  for (std::size_t l = 0; l < W; ++l) {
    mask.lane[l] = BlockMask(LanePatternCount(count, l));
  }
  return mask;
}

}  // namespace bistdse::sim
