#include "sim/pattern_io.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bistdse::sim {

void WritePatterns(std::span<const BitPattern> patterns, std::ostream& out) {
  for (const BitPattern& p : patterns) {
    for (std::uint8_t b : p) out << (b ? '1' : '0');
    out << '\n';
  }
}

std::string PatternsToString(std::span<const BitPattern> patterns) {
  std::ostringstream ss;
  WritePatterns(patterns, ss);
  return ss.str();
}

std::vector<BitPattern> ReadPatterns(std::istream& in, std::size_t width) {
  std::vector<BitPattern> patterns;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r'))
      line.pop_back();
    if (line.empty()) continue;
    if (line.size() != width) {
      throw std::runtime_error("patterns line " + std::to_string(lineno) +
                               ": expected " + std::to_string(width) +
                               " bits, got " + std::to_string(line.size()));
    }
    BitPattern p(width);
    for (std::size_t i = 0; i < width; ++i) {
      if (line[i] != '0' && line[i] != '1') {
        throw std::runtime_error("patterns line " + std::to_string(lineno) +
                                 ": invalid character");
      }
      p[i] = line[i] == '1';
    }
    patterns.push_back(std::move(p));
  }
  return patterns;
}

std::vector<BitPattern> PatternsFromString(const std::string& text,
                                           std::size_t width) {
  std::istringstream ss(text);
  return ReadPatterns(ss, width);
}

void WriteFaults(const netlist::Netlist& netlist,
                 std::span<const StuckAtFault> faults, std::ostream& out) {
  for (const StuckAtFault& f : faults) out << ToString(netlist, f) << '\n';
}

std::vector<StuckAtFault> ReadFaults(const netlist::Netlist& netlist,
                                     std::istream& in) {
  std::vector<StuckAtFault> faults;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (auto hash = line.find('#'); hash != std::string::npos)
      line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r'))
      line.pop_back();
    if (line.empty()) continue;

    const auto slash = line.rfind('/');
    if (slash == std::string::npos || slash + 4 != line.size() ||
        line.compare(slash + 1, 2, "SA") != 0 ||
        (line[slash + 3] != '0' && line[slash + 3] != '1')) {
      throw std::runtime_error("faults line " + std::to_string(lineno) +
                               ": expected <net>[.inK]/SA0|1");
    }
    StuckAtFault fault;
    fault.stuck_value = line[slash + 3] == '1';

    std::string name = line.substr(0, slash);
    const auto dot = name.rfind(".in");
    if (dot != std::string::npos) {
      fault.fanin_index =
          static_cast<std::int8_t>(std::stoi(name.substr(dot + 3)));
      name.resize(dot);
    }

    netlist::NodeId node = netlist.FindByName(name);
    if (node == netlist::kInvalidNode && name.size() > 1 && name[0] == 'n' &&
        name.find_first_not_of("0123456789", 1) == std::string::npos) {
      // Generated fallback name "n<id>".
      const auto id = std::strtoul(name.c_str() + 1, nullptr, 10);
      if (id < netlist.NodeCount()) node = static_cast<netlist::NodeId>(id);
    }
    if (node == netlist::kInvalidNode) {
      throw std::runtime_error("faults line " + std::to_string(lineno) +
                               ": unknown node " + name);
    }
    if (fault.fanin_index >= 0 &&
        fault.fanin_index >=
            static_cast<std::int8_t>(netlist.FaninsOf(node).size())) {
      throw std::runtime_error("faults line " + std::to_string(lineno) +
                               ": pin out of range");
    }
    fault.node = node;
    faults.push_back(fault);
  }
  return faults;
}

}  // namespace bistdse::sim
