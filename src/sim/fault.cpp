#include "sim/fault.hpp"

namespace bistdse::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::NodeId;

std::string ToString(const Netlist& netlist, const StuckAtFault& fault) {
  const std::string& raw = netlist.GetGate(fault.node).name;
  std::string name;
  if (raw.empty()) {
    name = "n";
    name += std::to_string(fault.node);
  } else {
    name = raw;
  }
  if (!fault.IsStem()) {
    name += ".in";
    name += std::to_string(fault.fanin_index);
  }
  name += fault.stuck_value ? "/SA1" : "/SA0";
  return name;
}

std::vector<StuckAtFault> CollapsedFaults(const Netlist& netlist) {
  std::vector<StuckAtFault> faults;
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    const GateType type = netlist.TypeOf(id);

    // Stem faults at every node output. A node with no fanout and no PO
    // marking is unobservable; keep it anyway (it counts as undetectable,
    // exactly like dangling logic in a real design).
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});

    if (type == GateType::Input) continue;

    const auto fanins = netlist.FaninsOf(id);
    const int ctrl = netlist::ControllingValue(type);
    for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
      if (netlist.FanoutCount(fanins[pin]) <= 1) continue;  // wire equivalence
      switch (type) {
        case GateType::Buf:
        case GateType::Not:
          // Branch fault equivalent to this gate's stem fault.
          break;
        case GateType::And:
        case GateType::Nand:
        case GateType::Or:
        case GateType::Nor:
          // Stuck-at-controlling is equivalent to the gate's stem fault;
          // keep only stuck-at-non-controlling.
          faults.push_back({id, static_cast<std::int8_t>(pin), ctrl == 0});
          break;
        case GateType::Xor:
        case GateType::Xnor:
        case GateType::Dff:
          faults.push_back({id, static_cast<std::int8_t>(pin), false});
          faults.push_back({id, static_cast<std::int8_t>(pin), true});
          break;
        case GateType::Input:
          break;
      }
    }
  }
  return faults;
}

std::vector<StuckAtFault> AllFaults(const Netlist& netlist) {
  std::vector<StuckAtFault> faults;
  for (NodeId id = 0; id < netlist.NodeCount(); ++id) {
    faults.push_back({id, -1, false});
    faults.push_back({id, -1, true});
    if (netlist.TypeOf(id) == GateType::Input) continue;
    const auto fanins = netlist.FaninsOf(id);
    for (std::size_t pin = 0; pin < fanins.size(); ++pin) {
      faults.push_back({id, static_cast<std::int8_t>(pin), false});
      faults.push_back({id, static_cast<std::int8_t>(pin), true});
    }
  }
  return faults;
}

}  // namespace bistdse::sim
