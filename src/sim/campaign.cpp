#include "sim/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

namespace bistdse::sim {

/// Mutable state threaded through the warm-up and wide segments of one
/// campaign. The narrow and wide engines advance the same stream position
/// and survivor set, so the warm-up/wide split is invisible to sinks.
struct CampaignRunner::RunState {
  RunState(PatternSource& source_in, std::span<CampaignSink* const> sinks_in,
           const RunOptions& options_in)
      : source(source_in), sinks(sinks_in), options(options_in) {}

  PatternSource& source;
  std::span<CampaignSink* const> sinks;
  const RunOptions& options;
  std::uint64_t next_index = 0;
  bool stop = false;       ///< A sink returned false.
  bool exhausted = false;  ///< The source returned a short read.
  std::vector<std::size_t> survivors;  ///< Indices into options.track.
  std::vector<BitPattern> patterns;    ///< Per-block scratch.
  CampaignStats stats;
};

class CampaignRunner::Engine {
 public:
  virtual ~Engine() = default;
  /// Streams blocks until the global pattern index reaches `end_index`, the
  /// source dries up, a sink stops the campaign, or (in drop mode) every
  /// tracked fault is dropped.
  virtual void RunSegment(RunState& st, std::uint64_t end_index) = 0;
};

template <std::size_t W>
class CampaignRunner::EngineT final : public Engine {
 public:
  EngineT(const netlist::Netlist& netlist, std::size_t threads,
          bool structural_shortcuts)
      : psim_(netlist, threads, nullptr, structural_shortcuts) {}

  void RunSegment(RunState& st, std::uint64_t end_index) override {
    const RunOptions& opts = st.options;
    const WideWord<W> zero = WideWord<W>::Zero();
    while (!st.stop && st.next_index < end_index) {
      if (opts.drop_detected && opts.stop_when_all_dropped &&
          !opts.track.empty() && st.survivors.empty()) {
        break;
      }
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(W * 64, end_index - st.next_index));
      st.patterns.clear();
      const std::size_t got = st.source.Fill(want, st.patterns);
      if (got == 0) {
        st.exhausted = true;
        break;
      }
      const std::vector<PatternWord> words = PackPatternBlockWide(
          st.patterns, 0, got, st.patterns[0].size(), W);
      psim_.SetPatternBlock(words);
      const WideWord<W> mask = BlockMaskWide<W>(got);

      detect_.assign(st.survivors.size(), zero);
      if (!st.survivors.empty()) {
        const std::span<const StuckAtFault> track = opts.track;
        WideWord<W>* detect = detect_.data();
        const std::size_t* surv = st.survivors.data();
        psim_.ForEachFault(
            st.survivors.size(),
            [&](std::size_t i, FaultSimulatorT<W>& sim) {
              detect[i] = sim.DetectBlock(track[surv[i]]) & mask;
            });
      }

      BlockT block(*this, st.patterns, st.next_index, &st.survivors, mask);
      for (CampaignSink* sink : st.sinks) {
        if (!sink->OnBlock(block)) st.stop = true;
      }

      if (opts.drop_detected && !st.survivors.empty()) {
        // Serial merge in fault-index order: identical drop sets and counts
        // for every thread count.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < st.survivors.size(); ++i) {
          if (detect_[i].Any()) {
            ++st.stats.dropped;
          } else {
            st.survivors[kept++] = st.survivors[i];
          }
        }
        st.survivors.resize(kept);
      }

      st.next_index += got;
      st.stats.patterns += got;
      ++st.stats.blocks;
      if (got < want) {
        st.exhausted = true;
        break;
      }
    }
  }

 private:
  class ViewT final : public FaultView {
   public:
    ViewT(FaultSimulatorT<W>& sim, const WideWord<W>& mask)
        : sim_(sim), mask_(mask) {}

    bool DetectAny(const StuckAtFault& fault) override {
      return (sim_.DetectBlock(fault) & mask_).Any();
    }

    void DetectLanes(const StuckAtFault& fault,
                     std::span<PatternWord> out) override {
      const WideWord<W> block = sim_.DetectBlock(fault) & mask_;
      block.Store(out.data());
    }

    std::vector<PatternWord> FaultyResponse(
        const StuckAtFault& fault) override {
      return sim_.FaultyResponse(fault);
    }

   private:
    FaultSimulatorT<W>& sim_;
    const WideWord<W>& mask_;
  };

  class BlockT final : public CampaignBlock {
   public:
    BlockT(EngineT& engine, std::span<const BitPattern> patterns,
           std::uint64_t base, const std::vector<std::size_t>* survivors,
           const WideWord<W>& mask)
        : CampaignBlock(patterns, base, survivors),
          engine_(engine),
          mask_(mask) {}

    std::size_t Lanes() const override { return W; }

    std::span<const PatternWord> TrackedDetect(std::size_t i) const override {
      return {engine_.detect_[i].lane, W};
    }

    std::span<const PatternWord> GoodOutputLanes() override {
      if (!good_valid_) {
        good_ = engine_.psim_.Good().CoreOutputValues();
        good_valid_ = true;
      }
      return good_;
    }

    void ParallelFor(
        std::size_t n,
        const std::function<void(std::size_t, FaultView&)>& fn) override {
      const WideWord<W>& mask = mask_;
      engine_.psim_.ForEachFault(
          n, [&](std::size_t i, FaultSimulatorT<W>& sim) {
            ViewT view(sim, mask);
            fn(i, view);
          });
    }

   private:
    EngineT& engine_;
    const WideWord<W>& mask_;
    std::vector<PatternWord> good_;
    bool good_valid_ = false;
  };

  ParallelFaultSimulatorT<W> psim_;
  std::vector<WideWord<W>> detect_;  ///< Per-survivor masked detect blocks.
};

CampaignRunner::CampaignRunner(const netlist::Netlist& netlist,
                               CampaignConfig config)
    : netlist_(netlist), config_(config) {
  DispatchBlockWidth(config_.block_width, [](auto) {});  // Validate eagerly.
}

CampaignRunner::~CampaignRunner() = default;

CampaignRunner::Engine& CampaignRunner::EngineFor(std::size_t width) {
  std::unique_ptr<Engine>& slot =
      width == config_.block_width ? wide_ : narrow_;
  if (!slot) {
    DispatchBlockWidth(width, [&](auto w) {
      slot = std::make_unique<EngineT<decltype(w)::value>>(
          netlist_, config_.threads, config_.structural_shortcuts);
    });
  }
  return *slot;
}

CampaignStats CampaignRunner::Run(PatternSource& source,
                                  std::span<CampaignSink* const> sinks,
                                  const RunOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  RunState st{source, sinks, options};
  st.survivors.resize(options.track.size());
  std::iota(st.survivors.begin(), st.survivors.end(), std::size_t{0});

  if (config_.block_width > 1 && options.warmup &&
      config_.narrow_warmup_patterns > 0) {
    const std::uint64_t head = std::min<std::uint64_t>(
        config_.narrow_warmup_patterns, options.max_patterns);
    EngineFor(1).RunSegment(st, head);
    st.stats.warmup_patterns = st.stats.patterns;
  }
  if (!st.stop && !st.exhausted) {
    EngineFor(config_.block_width).RunSegment(st, options.max_patterns);
  }

  st.stats.survivors = st.survivors.size();
  st.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (CampaignSink* sink : sinks) sink->OnEnd(st.stats);
  return st.stats;
}

CampaignStats CampaignRunner::Run(PatternSource& source,
                                  std::span<CampaignSink* const> sinks) {
  return Run(source, sinks, RunOptions{});
}

CampaignStats CampaignRunner::Run(PatternSource& source, CampaignSink& sink,
                                  const RunOptions& options) {
  CampaignSink* const sinks[] = {&sink};
  return Run(source, std::span<CampaignSink* const>(sinks), options);
}

CampaignStats CampaignRunner::Run(PatternSource& source, CampaignSink& sink) {
  return Run(source, sink, RunOptions{});
}

CampaignStats CampaignRunner::Run(PatternSource& source,
                                  const RunOptions& options) {
  return Run(source, std::span<CampaignSink* const>(), options);
}

// The fault-count helpers declared in fault_sim.hpp / parallel_fault_sim.hpp
// are thin campaigns: a stored source, drop mode, and the drop counter.

std::size_t ParallelCountDetectedFaults(const netlist::Netlist& netlist,
                                        std::span<const BitPattern> patterns,
                                        std::span<const StuckAtFault> faults,
                                        std::size_t threads,
                                        std::size_t block_width) {
  CampaignRunner runner(netlist,
                        {.block_width = block_width, .threads = threads});
  StoredPatternSource source(patterns);
  const CampaignStats stats = runner.Run(
      source, CampaignRunner::RunOptions{.track = faults,
                                         .drop_detected = true});
  return static_cast<std::size_t>(stats.dropped);
}

std::size_t CountDetectedFaults(const netlist::Netlist& netlist,
                                std::span<const BitPattern> patterns,
                                std::span<const StuckAtFault> faults,
                                std::size_t block_width) {
  return ParallelCountDetectedFaults(netlist, patterns, faults,
                                     /*threads=*/1, block_width);
}

}  // namespace bistdse::sim
