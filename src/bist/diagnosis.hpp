// Signature-based logic diagnosis from BIST fail data.
//
// Implements the flow of Cook et al. (ETS'11/'12) at the abstraction level of
// this library: the fail memory holds the indices of failing strong windows;
// each candidate stuck-at fault predicts a set of failing windows via fault
// simulation of the very pattern stream the session applied; candidates are
// ranked by the match between predicted and observed failing windows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/stumps.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"

namespace bistdse::bist {

struct DiagnosisCandidate {
  sim::StuckAtFault fault;
  double score = 0.0;  ///< Jaccard index of predicted vs. observed windows.
};

class SignatureDiagnosis {
 public:
  /// Describes the session whose fail data will be diagnosed (same pattern
  /// stream parameters as the StumpsSession that produced it).
  /// `block_width` (W in {1, 2, 4, 8, 16}) selects the wide simulation datapath
  /// — W*64 patterns per fault-simulation sweep — and `threads` the
  /// candidate-level parallelism of each query (1 = serial, 0 = full pool
  /// width); the ranking is bit-identical for every width and thread count.
  SignatureDiagnosis(const netlist::Netlist& netlist, StumpsConfig config,
                     std::uint64_t num_random,
                     std::span<const EncodedPattern> deterministic,
                     std::size_t block_width = 4, std::size_t threads = 1);

  /// Ranks `candidates` against the observed fail data; returns the top_k
  /// best-matching candidates, best first. Ties keep fault-list order.
  /// Reuses the instance's cached simulator state across calls (no per-query
  /// simulator construction), so one SignatureDiagnosis must not serve
  /// concurrent Diagnose calls — use one instance per thread.
  std::vector<DiagnosisCandidate> Diagnose(
      std::span<const FailDatum> fail_data,
      std::span<const sim::StuckAtFault> candidates, std::size_t top_k) const;

  std::uint32_t WindowCount() const { return window_count_; }

 private:
  const netlist::Netlist& netlist_;
  StumpsConfig config_;
  std::uint64_t num_random_;
  std::vector<EncodedPattern> deterministic_;
  std::uint64_t window_ = 0;  ///< Effective patterns per window.
  std::uint32_t window_count_ = 0;
  /// The query campaign kernel; mutable so const queries can reuse its
  /// cached simulator state (see Diagnose's thread-safety note).
  mutable sim::CampaignRunner runner_;
};

}  // namespace bistdse::bist
