#include "bist/diagnosis_eval.hpp"

namespace bistdse::bist {

DiagnosisAccuracy EvaluateDiagnosisAccuracy(
    const netlist::Netlist& netlist, const StumpsConfig& config,
    const DiagnosisEvalOptions& options) {
  DiagnosisAccuracy accuracy;
  accuracy.k = options.top_k;

  const auto faults = sim::CollapsedFaults(netlist);
  StumpsSession session(netlist, config);
  SignatureDiagnosis diagnosis(netlist, config, options.num_random_patterns,
                               {});

  double rank_sum = 0.0;
  std::size_t sampled = 0;
  for (std::size_t fi = 0; fi < faults.size() && sampled < options.max_samples;
       fi += options.sample_stride) {
    ++sampled;
    const auto result =
        session.Run(options.num_random_patterns, {}, faults[fi]);
    if (result.fail_data.empty()) {
      ++accuracy.escaped;
      continue;
    }
    ++accuracy.injected;
    // Rank against the full candidate universe.
    const auto ranked =
        diagnosis.Diagnose(result.fail_data, faults, faults.size());
    std::size_t rank = ranked.size();
    for (std::size_t r = 0; r < ranked.size(); ++r) {
      if (ranked[r].fault == faults[fi]) {
        rank = r + 1;
        break;
      }
    }
    rank_sum += static_cast<double>(rank);
    if (rank == 1 ||
        (ranked.size() > 1 && rank <= ranked.size() &&
         ranked[0].score == ranked[rank - 1].score)) {
      ++accuracy.top1;  // first or tied with the first
    }
    if (rank <= options.top_k) ++accuracy.topk;
  }
  accuracy.mean_rank =
      accuracy.injected ? rank_sum / static_cast<double>(accuracy.injected)
                        : 0.0;
  return accuracy;
}

}  // namespace bistdse::bist
