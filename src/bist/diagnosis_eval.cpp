#include "bist/diagnosis_eval.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace bistdse::bist {

namespace {

struct SampleOutcome {
  bool escaped = false;
  bool top1 = false;
  bool topk = false;
  std::size_t rank = 0;
};

}  // namespace

DiagnosisAccuracy EvaluateDiagnosisAccuracy(
    const netlist::Netlist& netlist, const StumpsConfig& config,
    const DiagnosisEvalOptions& options) {
  DiagnosisAccuracy accuracy;
  accuracy.k = options.top_k;

  const auto faults = sim::CollapsedFaults(netlist);
  std::vector<std::size_t> samples;
  for (std::size_t fi = 0;
       fi < faults.size() && samples.size() < options.max_samples;
       fi += options.sample_stride) {
    samples.push_back(fi);
  }

  // Every sample is an independent inject -> session -> diagnose run; chunks
  // carry their own session/diagnosis engines (their golden caches are not
  // shareable across threads) and write one outcome slot per sample.
  std::vector<SampleOutcome> outcomes(samples.size());
  auto& pool = util::ThreadPool::Global();
  const std::size_t chunks =
      std::min(samples.empty() ? std::size_t{1} : samples.size(),
               options.threads ? options.threads : pool.WorkerCount() + 1);
  pool.ParallelFor(
      0, samples.size(), chunks,
      [&](std::size_t begin, std::size_t end, std::size_t /*slot*/) {
        // Each chunk already occupies one pool worker, so its engines
        // simulate serially (a nested ParallelFor would run inline anyway)
        // but share the evaluation's block width. Signatures and rankings
        // are bit-identical for every width/thread combination.
        StumpsConfig chunk_config = config;
        chunk_config.sim_threads = 1;
        chunk_config.sim_block_width = options.block_width;
        StumpsSession session(netlist, chunk_config);
        SignatureDiagnosis diagnosis(netlist, chunk_config,
                                     options.num_random_patterns, {},
                                     options.block_width, /*threads=*/1);
        for (std::size_t s = begin; s < end; ++s) {
          SampleOutcome& outcome = outcomes[s];
          const auto result =
              session.Run(options.num_random_patterns, {}, faults[samples[s]]);
          if (result.fail_data.empty()) {
            outcome.escaped = true;
            continue;
          }
          // Rank against the full candidate universe.
          const auto ranked =
              diagnosis.Diagnose(result.fail_data, faults, faults.size());
          std::size_t rank = ranked.size();
          for (std::size_t r = 0; r < ranked.size(); ++r) {
            if (ranked[r].fault == faults[samples[s]]) {
              rank = r + 1;
              break;
            }
          }
          outcome.rank = rank;
          outcome.top1 =
              rank == 1 ||
              (ranked.size() > 1 && rank <= ranked.size() &&
               ranked[0].score == ranked[rank - 1].score);
          outcome.topk = rank <= options.top_k;
        }
      });

  // Serial reduction in sample order — identical to the serial loop.
  double rank_sum = 0.0;
  for (const SampleOutcome& outcome : outcomes) {
    if (outcome.escaped) {
      ++accuracy.escaped;
      continue;
    }
    ++accuracy.injected;
    rank_sum += static_cast<double>(outcome.rank);
    if (outcome.top1) ++accuracy.top1;
    if (outcome.topk) ++accuracy.topk;
  }
  accuracy.mean_rank =
      accuracy.injected ? rank_sum / static_cast<double>(accuracy.injected)
                        : 0.0;
  return accuracy;
}

}  // namespace bistdse::bist
