// Bit-accurate scan-chain emulation.
//
// Everything else in the library uses the standard full-scan *abstraction*:
// flop outputs are pseudo-primary inputs, flop D nets pseudo-primary
// outputs, and a "pattern" assigns all of them at once. This module emulates
// what the silicon actually does — shift registers moving one bit per test
// clock through the scan chains, a capture cycle, and the shifted-out
// response — and the test suite proves the abstraction exact against it.
// It also grounds the session runtime model: exactly
// (max chain length + 1) cycles per pattern with shift-out overlapped.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::bist {

class ScanChainSimulator {
 public:
  /// Partitions the flops into `num_chains` balanced chains (round-robin
  /// over Flops() order; lengths differ by at most one).
  ScanChainSimulator(const netlist::Netlist& netlist, std::uint32_t num_chains);

  std::uint32_t ChainCount() const {
    return static_cast<std::uint32_t>(chains_.size());
  }
  std::uint32_t MaxChainLength() const { return max_chain_length_; }

  /// Cycles consumed per pattern: shift-in of the longest chain + capture
  /// (shift-out overlaps the next shift-in).
  std::uint32_t CyclesPerPattern() const { return max_chain_length_ + 1; }

  /// Applies one test pattern through real shift/capture emulation:
  ///  1. shift the flop-load part of `pattern` into the chains bit by bit
  ///     (primary inputs are applied combinationally),
  ///  2. pulse one functional capture cycle,
  ///  3. shift the captured state out again (recording each scan-out bit).
  /// Returns the observed response in CoreOutputs() order (POs sampled at
  /// capture, then per-flop captured values recovered from the scan-out
  /// streams). `pattern` is in CoreInputs() order.
  sim::BitPattern ApplyAndObserve(const sim::BitPattern& pattern);

  /// Total test clock cycles spent so far (shift + capture).
  std::uint64_t CyclesElapsed() const { return cycles_; }

  /// Current flop contents (Flops() order).
  const std::vector<std::uint8_t>& FlopState() const { return flop_state_; }

  /// State-restore procedure (paper §II: after test "the state ... has to be
  /// restored to a known state before the enclosing ECU can make use of the
  /// chip"): shifts the saved functional state back into the chains. Costs
  /// MaxChainLength() cycles — the l(b) model's restore term.
  void RestoreState(std::span<const std::uint8_t> state);

 private:
  void ShiftOneCycle(const std::vector<std::uint8_t>& scan_in,
                     std::vector<std::uint8_t>* scan_out);

  const netlist::Netlist& netlist_;
  std::vector<std::vector<std::uint32_t>> chains_;  // flop indices, scan-in first
  std::vector<std::uint8_t> flop_state_;            // per flop index
  std::uint32_t max_chain_length_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace bistdse::bist
