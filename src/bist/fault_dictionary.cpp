#include "bist/fault_dictionary.hpp"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <type_traits>

#include "bist/campaign_sources.hpp"
#include "bist/misr.hpp"

namespace bistdse::bist {

using sim::BitPattern;
using sim::PatternWord;

namespace {

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

std::uint64_t FnvBytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) h = FnvMix(h, p[i]);
  return h;
}

// --- on-disk format (version 1) -------------------------------------------
//
// Little-/host-endian, 8-byte-aligned sections in file order:
//   [DictHeader][fault table][window bitmask words][signature offsets]
//   [sparse signature payload]
// The header carries the session identity, the section layout, the total
// file size (truncation check) and an FNV checksum over its own bytes
// (corruption check). Section layout is fully derivable from the counts, so
// a reader re-derives it and rejects any mismatch. The payload itself is
// never touched at open time — that is what keeps Map() O(1).

constexpr char kMagic[8] = {'B', 'D', 'S', 'E', 'F', 'D', '0', '1'};

struct DictHeader {
  char magic[8];
  std::uint64_t file_bytes;
  std::uint64_t netlist_hash;
  std::uint64_t config_hash;
  std::uint64_t num_random;
  std::uint64_t det_count;
  std::uint64_t det_hash;
  std::uint64_t total_patterns;
  std::uint64_t window;
  std::uint64_t fault_count;
  std::uint64_t words_per_fault;
  std::uint64_t sig_words;
  std::uint32_t window_count;
  std::uint32_t misr_width;
  std::uint64_t faults_off;
  std::uint64_t windows_off;
  std::uint64_t offsets_off;
  std::uint64_t sigs_off;
  std::uint64_t header_hash;  ///< FNV over the header bytes before this field.
};
static_assert(sizeof(DictHeader) == 144, "padding crept into DictHeader");
static_assert(std::is_trivially_copyable_v<DictHeader>);

/// Padding-free fault record: the in-memory StuckAtFault has alignment
/// padding whose bytes would make the artifact nondeterministic.
struct DiskFault {
  std::uint32_t node;
  std::int8_t fanin_index;
  std::uint8_t stuck_value;
  std::uint16_t reserved;
};
static_assert(sizeof(DiskFault) == 8);
static_assert(std::is_trivially_copyable_v<DiskFault>);

std::uint64_t HeaderHash(const DictHeader& h) {
  return FnvBytes(&h, offsetof(DictHeader, header_hash));
}

[[noreturn]] void Corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("fault dictionary '" + path + "': " + what);
}

/// Pass 1: cheap detection sweep marking the faults whose signature can
/// differ in this window at all. Each fault index is owned by one chunk, so
/// the parallel sweep writes is_active without contention.
class ActiveScanSink final : public sim::CampaignSink {
 public:
  ActiveScanSink(std::span<const sim::StuckAtFault> faults,
                 std::vector<std::uint8_t>& is_active)
      : faults_(faults), is_active_(is_active) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    block.ParallelFor(faults_.size(),
                      [&](std::size_t f, sim::FaultView& view) {
                        if (!is_active_[f] && view.DetectAny(faults_[f])) {
                          is_active_[f] = 1;
                        }
                      });
    return true;
  }

 private:
  std::span<const sim::StuckAtFault> faults_;
  std::vector<std::uint8_t>& is_active_;
};

/// Pass 2: golden MISR plus faulty MISRs of the window's active faults.
/// Each active fault's MISR is advanced by its owning chunk only; blocks
/// arrive serially, so absorb order per fault is unchanged.
class WindowMisrSink final : public sim::CampaignSink {
 public:
  WindowMisrSink(std::span<const sim::StuckAtFault> faults,
                 const std::vector<std::size_t>& active, Misr& golden_misr,
                 std::vector<Misr>& fault_misrs, std::size_t num_outputs)
      : faults_(faults),
        active_(active),
        golden_misr_(golden_misr),
        fault_misrs_(fault_misrs),
        num_outputs_(num_outputs) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    AbsorbBlockResponse(golden_misr_, block.GoodOutputLanes(), num_outputs_,
                        block);
    block.ParallelFor(active_.size(),
                      [&](std::size_t a, sim::FaultView& view) {
                        const std::vector<PatternWord> response =
                            view.FaultyResponse(faults_[active_[a]]);
                        AbsorbBlockResponse(fault_misrs_[a], response,
                                            num_outputs_, block);
                      });
    return true;
  }

 private:
  std::span<const sim::StuckAtFault> faults_;
  const std::vector<std::size_t>& active_;
  Misr& golden_misr_;
  std::vector<Misr>& fault_misrs_;
  std::size_t num_outputs_;
};

}  // namespace

std::uint64_t SessionStreamConfigHash(const StumpsConfig& config) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = FnvMix(h, config.num_scan_chains);
  h = FnvMix(h, config.max_chain_length);
  h = FnvMix(h, config.signature_window);
  h = FnvMix(h, config.max_windows_per_session);
  h = FnvMix(h, config.prpg_degree);
  h = FnvMix(h, config.prpg_seed);
  h = FnvMix(h, config.use_phase_shifter ? 1 : 0);
  h = FnvMix(h, config.phase_shifter_seed);
  h = FnvMix(h, config.misr_width);
  h = FnvMix(h, config.reset_misr_per_window ? 1 : 0);
  return h;
}

FaultDictionary::FaultDictionary(const netlist::Netlist& netlist,
                                 const StumpsConfig& config,
                                 std::uint64_t num_random,
                                 std::span<const EncodedPattern> deterministic,
                                 std::vector<sim::StuckAtFault> faults,
                                 std::size_t threads, std::size_t block_width)
    : faults_(std::move(faults)) {
  if (!config.reset_misr_per_window) {
    throw std::invalid_argument(
        "fault dictionary requires strong windows (per-window MISR reset)");
  }
  netlist_hash_ = netlist.ContentHash();
  config_hash_ = SessionStreamConfigHash(config);
  num_random_ = num_random;
  det_count_ = deterministic.size();
  det_hash_ = HashEncodedPatterns(deterministic);
  total_patterns_ = num_random + det_count_;
  window_ = config.EffectiveWindow(total_patterns_);
  window_count_ =
      static_cast<std::uint32_t>((total_patterns_ + window_ - 1) / window_);
  misr_width_ = config.misr_width;
  words_per_fault_ = (window_count_ + 63) / 64;
  owned_windows_.assign(faults_.size() * words_per_fault_, 0);
  windows_ = owned_windows_;

  std::vector<std::vector<std::uint64_t>> sig_tail(faults_.size());
  BuildWindows(netlist, config, num_random, deterministic, threads,
               block_width, 0, sig_tail);
  const std::vector<std::size_t> keep(faults_.size(), 0);
  FlattenSignatures(keep, sig_tail);
}

void FaultDictionary::BuildWindows(
    const netlist::Netlist& netlist, const StumpsConfig& config,
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    std::size_t threads, std::size_t block_width, std::uint32_t start_window,
    std::vector<std::vector<std::uint64_t>>& sig_tail) {
  const std::size_t width = netlist.CoreInputs().size();
  const std::size_t num_outputs = netlist.CoreOutputs().size();

  // The full session stream, materialized window by window; one runner
  // (cached simulator state) serves every per-window campaign. Windows are
  // independent under strong windows (per-window MISR reset), so the build
  // can start at any window boundary — the stream is regenerated and the
  // already-built head is skipped at pattern-generation cost only, no
  // simulation.
  ReseedingEncoder expander(static_cast<std::uint32_t>(width));
  SessionStreamSource stream(config, width, expander, num_random,
                             deterministic);
  sim::CampaignRunner runner(
      netlist, {.block_width = block_width, .threads = threads});

  std::vector<BitPattern> patterns;
  std::uint64_t skip = static_cast<std::uint64_t>(start_window) * window_;
  while (skip > 0) {
    patterns.clear();
    const std::size_t got = stream.Fill(
        static_cast<std::size_t>(std::min<std::uint64_t>(skip, 4096)),
        patterns);
    if (got == 0) return;  // Stream shorter than the already-built head.
    skip -= got;
  }

  for (std::uint32_t w = start_window; w < window_count_; ++w) {
    patterns.clear();
    stream.Fill(static_cast<std::size_t>(window_), patterns);
    if (patterns.empty()) break;

    std::vector<std::size_t> active;  // fault indices detected in this window
    {
      std::vector<std::uint8_t> is_active(faults_.size(), 0);
      sim::StoredPatternSource source(patterns);
      ActiveScanSink sink(faults_, is_active);
      runner.Run(source, sink);
      for (std::size_t f = 0; f < faults_.size(); ++f) {
        if (is_active[f]) active.push_back(f);
      }
    }

    Misr golden_misr(misr_width_);
    std::vector<Misr> fault_misrs(active.size(), Misr(misr_width_));
    {
      sim::StoredPatternSource source(patterns);
      WindowMisrSink sink(faults_, active, golden_misr, fault_misrs,
                         num_outputs);
      runner.Run(source, sink);
    }

    const std::uint64_t golden_signature = golden_misr.Signature();
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::uint64_t sig = fault_misrs[a].Signature();
      if (sig != golden_signature) {
        const std::size_t f = active[a];
        owned_windows_[f * words_per_fault_ + w / 64] |= std::uint64_t{1}
                                                         << (w % 64);
        sig_tail[f].push_back(sig);
      }
    }
  }
}

void FaultDictionary::FlattenSignatures(
    std::span<const std::size_t> keep_sigs,
    const std::vector<std::vector<std::uint64_t>>& tails) {
  std::vector<std::uint64_t> offsets(faults_.size() + 1, 0);
  std::vector<std::uint64_t> flat;
  std::size_t total = 0;
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    total += keep_sigs[f] + tails[f].size();
  }
  flat.reserve(total);
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    offsets[f] = flat.size();
    if (keep_sigs[f] > 0) {
      const auto old = signatures_.subspan(sig_offsets_[f], keep_sigs[f]);
      flat.insert(flat.end(), old.begin(), old.end());
    }
    flat.insert(flat.end(), tails[f].begin(), tails[f].end());
  }
  offsets[faults_.size()] = flat.size();
  owned_signatures_ = std::move(flat);
  owned_sig_offsets_ = std::move(offsets);
  signatures_ = owned_signatures_;
  sig_offsets_ = owned_sig_offsets_;
}

void FaultDictionary::EnsureOwned() {
  if (mapping_.Size() == 0) return;  // Built or Load()ed: already owned.
  owned_windows_.assign(windows_.begin(), windows_.end());
  owned_sig_offsets_.assign(sig_offsets_.begin(), sig_offsets_.end());
  owned_signatures_.assign(signatures_.begin(), signatures_.end());
  windows_ = owned_windows_;
  sig_offsets_ = owned_sig_offsets_;
  signatures_ = owned_signatures_;
  mapping_ = util::MmapFile();
}

void FaultDictionary::CheckFaultIndex(std::size_t i) const {
  if (i >= faults_.size()) {
    throw std::out_of_range("FaultDictionary: fault index " +
                            std::to_string(i) + " out of range (count " +
                            std::to_string(faults_.size()) + ")");
  }
}

void FaultDictionary::Save(const std::string& path) const {
  DictHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.netlist_hash = netlist_hash_;
  h.config_hash = config_hash_;
  h.num_random = num_random_;
  h.det_count = det_count_;
  h.det_hash = det_hash_;
  h.total_patterns = total_patterns_;
  h.window = window_;
  h.fault_count = faults_.size();
  h.words_per_fault = words_per_fault_;
  h.sig_words = signatures_.size();
  h.window_count = window_count_;
  h.misr_width = misr_width_;
  h.faults_off = sizeof(DictHeader);
  h.windows_off = h.faults_off + h.fault_count * sizeof(DiskFault);
  h.offsets_off = h.windows_off + windows_.size() * sizeof(std::uint64_t);
  h.sigs_off = h.offsets_off + (h.fault_count + 1) * sizeof(std::uint64_t);
  h.file_bytes = h.sigs_off + h.sig_words * sizeof(std::uint64_t);
  h.header_hash = HeaderHash(h);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Corrupt(path, "cannot open for writing");
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));

  std::vector<DiskFault> disk_faults(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    disk_faults[f] = {faults_[f].node, faults_[f].fanin_index,
                      static_cast<std::uint8_t>(faults_[f].stuck_value), 0};
  }
  out.write(reinterpret_cast<const char*>(disk_faults.data()),
            static_cast<std::streamsize>(disk_faults.size() *
                                         sizeof(DiskFault)));
  out.write(reinterpret_cast<const char*>(windows_.data()),
            static_cast<std::streamsize>(windows_.size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(sig_offsets_.data()),
            static_cast<std::streamsize>(sig_offsets_.size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(signatures_.data()),
            static_cast<std::streamsize>(signatures_.size() *
                                         sizeof(std::uint64_t)));
  if (!out) Corrupt(path, "write failed");
}

FaultDictionary FaultDictionary::Load(const std::string& path) {
  return Open(path, /*keep_mapping=*/false);
}

FaultDictionary FaultDictionary::Map(const std::string& path) {
  return Open(path, /*keep_mapping=*/true);
}

FaultDictionary FaultDictionary::Open(const std::string& path,
                                      bool keep_mapping) {
  util::MmapFile file(path);
  const std::span<const std::byte> bytes = file.Bytes();
  if (bytes.size() < sizeof(DictHeader)) {
    Corrupt(path, "truncated file (smaller than the header)");
  }
  DictHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    Corrupt(path, "bad magic (not a fault dictionary, or wrong version)");
  }
  if (h.header_hash != HeaderHash(h)) {
    Corrupt(path, "corrupted header (checksum mismatch)");
  }
  if (h.file_bytes != bytes.size()) {
    Corrupt(path, "truncated or padded file (header declares " +
                      std::to_string(h.file_bytes) + " bytes, file has " +
                      std::to_string(bytes.size()) + ")");
  }
  // Re-derive the section layout from the counts; any disagreement with the
  // stored offsets means corruption.
  const std::uint64_t faults_off = sizeof(DictHeader);
  const std::uint64_t windows_off =
      faults_off + h.fault_count * sizeof(DiskFault);
  const std::uint64_t offsets_off =
      windows_off + h.fault_count * h.words_per_fault * sizeof(std::uint64_t);
  const std::uint64_t sigs_off =
      offsets_off + (h.fault_count + 1) * sizeof(std::uint64_t);
  const std::uint64_t end = sigs_off + h.sig_words * sizeof(std::uint64_t);
  if (h.faults_off != faults_off || h.windows_off != windows_off ||
      h.offsets_off != offsets_off || h.sigs_off != sigs_off ||
      h.file_bytes != end ||
      h.words_per_fault != (h.window_count + 63) / 64 ||
      h.total_patterns != h.num_random + h.det_count ||
      h.window == 0 ||
      h.window_count !=
          (h.total_patterns + h.window - 1) / h.window) {
    Corrupt(path, "inconsistent section layout (corrupted header)");
  }

  FaultDictionary d;
  d.netlist_hash_ = h.netlist_hash;
  d.config_hash_ = h.config_hash;
  d.num_random_ = h.num_random;
  d.det_count_ = h.det_count;
  d.det_hash_ = h.det_hash;
  d.total_patterns_ = h.total_patterns;
  d.window_ = h.window;
  d.window_count_ = h.window_count;
  d.misr_width_ = h.misr_width;
  d.words_per_fault_ = static_cast<std::size_t>(h.words_per_fault);

  // The fault table is always materialized — it is the metadata-scale part
  // of the artifact (8 bytes per fault vs the multi-word rows + signatures).
  const auto* disk_faults =
      reinterpret_cast<const DiskFault*>(bytes.data() + faults_off);
  d.faults_.resize(static_cast<std::size_t>(h.fault_count));
  for (std::size_t f = 0; f < d.faults_.size(); ++f) {
    d.faults_[f].node = disk_faults[f].node;
    d.faults_[f].fanin_index = disk_faults[f].fanin_index;
    d.faults_[f].stuck_value = disk_faults[f].stuck_value != 0;
  }

  const auto* windows =
      reinterpret_cast<const std::uint64_t*>(bytes.data() + windows_off);
  const auto* offsets =
      reinterpret_cast<const std::uint64_t*>(bytes.data() + offsets_off);
  const auto* sigs =
      reinterpret_cast<const std::uint64_t*>(bytes.data() + sigs_off);
  const std::size_t window_words =
      static_cast<std::size_t>(h.fault_count * h.words_per_fault);

  // Offset-table sanity (metadata-scale read; the signature payload itself
  // stays untouched): monotone, starts at 0, ends at sig_words.
  if (offsets[0] != 0 || offsets[h.fault_count] != h.sig_words) {
    Corrupt(path, "corrupted signature offsets (bad bounds)");
  }
  for (std::size_t f = 0; f < h.fault_count; ++f) {
    if (offsets[f] > offsets[f + 1]) {
      Corrupt(path, "corrupted signature offsets (not monotone)");
    }
  }

  if (keep_mapping) {
    d.mapping_ = std::move(file);
    // Re-derive the base pointer from the moved-to mapping: spans must point
    // into storage owned by `d`.
    const std::byte* base = d.mapping_.Bytes().data();
    d.windows_ = {reinterpret_cast<const std::uint64_t*>(base + windows_off),
                  window_words};
    d.sig_offsets_ = {
        reinterpret_cast<const std::uint64_t*>(base + offsets_off),
        static_cast<std::size_t>(h.fault_count + 1)};
    d.signatures_ = {reinterpret_cast<const std::uint64_t*>(base + sigs_off),
                     static_cast<std::size_t>(h.sig_words)};
  } else {
    d.owned_windows_.assign(windows, windows + window_words);
    d.owned_sig_offsets_.assign(offsets, offsets + h.fault_count + 1);
    d.owned_signatures_.assign(sigs, sigs + h.sig_words);
    d.windows_ = d.owned_windows_;
    d.sig_offsets_ = d.owned_sig_offsets_;
    d.signatures_ = d.owned_signatures_;
  }
  return d;
}

void FaultDictionary::Extend(const netlist::Netlist& netlist,
                             const StumpsConfig& config,
                             std::uint64_t num_random,
                             std::span<const EncodedPattern> deterministic,
                             std::size_t threads, std::size_t block_width) {
  if (netlist.ContentHash() != netlist_hash_) {
    throw std::invalid_argument(
        "FaultDictionary::Extend: netlist differs from the dictionary's");
  }
  if (SessionStreamConfigHash(config) != config_hash_) {
    throw std::invalid_argument(
        "FaultDictionary::Extend: session config differs from the "
        "dictionary's");
  }
  const std::uint64_t new_total = num_random + deterministic.size();
  if (new_total < total_patterns_) {
    throw std::invalid_argument(
        "FaultDictionary::Extend: session shrank (only growth is supported)");
  }
  // The old stream must be a prefix of the grown one. Two shapes qualify:
  // the random phase is unchanged and the old deterministic list is a prefix
  // of the new one, or the old session was purely random and the random
  // phase grew (an LFSR stream's first N patterns are length-invariant).
  const bool same_head =
      num_random == num_random_ && deterministic.size() >= det_count_ &&
      HashEncodedPatterns(deterministic.first(
          static_cast<std::size_t>(det_count_))) == det_hash_;
  const bool random_growth = det_count_ == 0 && num_random >= num_random_;
  if (!same_head && !random_growth) {
    throw std::invalid_argument(
        "FaultDictionary::Extend: grown session does not extend this "
        "dictionary's pattern stream");
  }
  if (config.EffectiveWindow(new_total) != window_) {
    throw std::invalid_argument(
        "FaultDictionary::Extend: the grown session changes the effective "
        "window width (max_windows_per_session rewidening); a full rebuild "
        "is required");
  }
  if (new_total == total_patterns_) return;  // ΔN == 0: nothing to do.

  EnsureOwned();

  // Complete windows keep their rows; a trailing partial window is
  // re-simulated from its first pattern (extending a mid-window MISR would
  // need per-fault mid-states for *all* faults, which costs more than the
  // one-window replay).
  const std::uint32_t start_w =
      total_patterns_ % window_ == 0
          ? window_count_
          : window_count_ - 1;
  const std::uint32_t new_count =
      static_cast<std::uint32_t>((new_total + window_ - 1) / window_);
  const std::size_t new_words = (new_count + 63) / 64;
  const std::size_t old_words = words_per_fault_;

  // Re-stride the bitmask rows to the new word count, clearing every bit at
  // or past start_w (the rebuilt region).
  std::vector<std::uint64_t> grown(faults_.size() * new_words, 0);
  const std::size_t copy_words = std::min(old_words, new_words);
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    for (std::size_t ww = 0; ww < copy_words; ++ww) {
      grown[f * new_words + ww] = owned_windows_[f * old_words + ww];
    }
    for (std::uint32_t w = start_w; w < window_count_; ++w) {
      grown[f * new_words + w / 64] &= ~(std::uint64_t{1} << (w % 64));
    }
  }

  // Signatures to keep per fault = failing windows below start_w (their
  // sparse entries are a prefix of the old row, in window order).
  std::vector<std::size_t> keep(faults_.size(), 0);
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    std::size_t kept = 0;
    for (std::size_t ww = 0; ww < new_words; ++ww) {
      kept += static_cast<std::size_t>(std::popcount(grown[f * new_words + ww]));
    }
    keep[f] = kept;
  }

  owned_windows_ = std::move(grown);
  windows_ = owned_windows_;
  words_per_fault_ = new_words;
  window_count_ = new_count;
  num_random_ = num_random;
  det_count_ = deterministic.size();
  det_hash_ = HashEncodedPatterns(deterministic);
  total_patterns_ = new_total;

  std::vector<std::vector<std::uint64_t>> sig_tail(faults_.size());
  BuildWindows(netlist, config, num_random, deterministic, threads,
               block_width, start_w, sig_tail);
  FlattenSignatures(keep, sig_tail);
}

std::vector<DiagnosisCandidate> FaultDictionary::Diagnose(
    std::span<const FailDatum> fail_data, std::size_t top_k) const {
  // No fail evidence ranks no candidates, and a zero-sized ranking needs no
  // scoring pass; both are defined results, not incidental loop behavior.
  if (fail_data.empty() || top_k == 0) return {};

  std::vector<std::uint64_t> observed(words_per_fault_, 0);
  for (const FailDatum& fd : fail_data) {
    observed[fd.window_index / 64] |= std::uint64_t{1} << (fd.window_index % 64);
  }

  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    const auto fw = windows_.subspan(f * words_per_fault_, words_per_fault_);
    std::uint64_t inter = 0, uni = 0;
    for (std::size_t w = 0; w < words_per_fault_; ++w) {
      inter += std::popcount(fw[w] & observed[w]);
      uni += std::popcount(fw[w] | observed[w]);
    }
    double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);

    // Signature bonus: fraction of observed failing windows whose stored
    // faulty signature matches exactly.
    const std::uint64_t row_begin = sig_offsets_[f];
    const std::uint64_t row_size = sig_offsets_[f + 1] - row_begin;
    std::size_t matches = 0;
    for (const FailDatum& fd : fail_data) {
      const std::uint32_t w = fd.window_index;
      if (!((fw[w / 64] >> (w % 64)) & 1)) continue;
      // Rank of window w among this fault's failing windows (popcount of
      // the row below w).
      std::size_t rank = 0;
      for (std::size_t ww = 0; ww < w / 64; ++ww) {
        rank += static_cast<std::size_t>(std::popcount(fw[ww]));
      }
      if (w % 64 != 0) {
        rank += static_cast<std::size_t>(std::popcount(
            fw[w / 64] & ((std::uint64_t{1} << (w % 64)) - 1)));
      }
      if (rank < row_size &&
          signatures_[row_begin + rank] == fd.observed_signature) {
        ++matches;
      }
    }
    score +=
        static_cast<double>(matches) / static_cast<double>(fail_data.size());
    ranked.push_back({faults_[f], score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });
  // top_k past the candidate count returns every candidate.
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace bistdse::bist
