#include "bist/fault_dictionary.hpp"

#include <algorithm>
#include <stdexcept>
#include <bit>

#include "bist/misr.hpp"
#include "bist/pattern_source.hpp"
#include "sim/fault_sim.hpp"
#include "sim/parallel_fault_sim.hpp"

namespace bistdse::bist {

using sim::BitPattern;
using sim::FaultSimulator;
using sim::ParallelFaultSimulator;
using sim::PatternWord;

FaultDictionary::FaultDictionary(const netlist::Netlist& netlist,
                                 const StumpsConfig& config,
                                 std::uint64_t num_random,
                                 std::span<const EncodedPattern> deterministic,
                                 std::vector<sim::StuckAtFault> faults,
                                 std::size_t threads, std::size_t block_width)
    : faults_(std::move(faults)) {
  if (!config.reset_misr_per_window) {
    throw std::invalid_argument(
        "fault dictionary requires strong windows (per-window MISR reset)");
  }
  sim::DispatchBlockWidth(block_width, [&](auto width) {
    Build<width()>(netlist, config, num_random, deterministic, threads);
  });
}

template <std::size_t W>
void FaultDictionary::Build(const netlist::Netlist& netlist,
                            const StumpsConfig& config,
                            std::uint64_t num_random,
                            std::span<const EncodedPattern> deterministic,
                            std::size_t threads) {
  using Word = sim::WideWord<W>;
  const std::size_t width = netlist.CoreInputs().size();
  const std::size_t num_outputs = netlist.CoreOutputs().size();
  const std::uint64_t total = num_random + deterministic.size();
  const std::uint64_t window = config.EffectiveWindow(total);
  window_count_ = static_cast<std::uint32_t>((total + window - 1) / window);
  words_per_fault_ = (window_count_ + 63) / 64;
  windows_.assign(faults_.size() * words_per_fault_, 0);
  signatures_.resize(faults_.size());

  // Materialize the full pattern stream window by window.
  PatternSource source(config, width);
  ReseedingEncoder expander(static_cast<std::uint32_t>(width));
  std::size_t det_next = 0;
  std::uint64_t emitted = 0;
  auto next_pattern = [&]() -> BitPattern {
    if (emitted < num_random) {
      ++emitted;
      return source.Next();
    }
    ++emitted;
    return expander.Expand(deterministic[det_next++]);
  };

  sim::ParallelFaultSimulatorT<W> fsim(netlist, threads);
  for (std::uint32_t w = 0; w < window_count_; ++w) {
    const std::uint64_t remaining = total - static_cast<std::uint64_t>(w) * window;
    const std::size_t in_window =
        static_cast<std::size_t>(std::min<std::uint64_t>(window, remaining));
    std::vector<BitPattern> patterns;
    patterns.reserve(in_window);
    for (std::size_t i = 0; i < in_window; ++i) patterns.push_back(next_pattern());

    // Pass 1: detection blocks (cheap fault propagation, W*64 patterns per
    // sweep) identify the faults whose signature can differ in this window
    // at all. Each fault index is owned by one chunk, so the parallel sweep
    // writes is_active without contention and `active` keeps its serial
    // order.
    const std::size_t num_blocks = (in_window + W * 64 - 1) / (W * 64);
    std::vector<std::size_t> active;  // fault indices detected in this window
    {
      std::vector<std::uint8_t> is_active(faults_.size(), 0);
      for (std::size_t b = 0; b < num_blocks; ++b) {
        const std::size_t base = b * W * 64;
        const std::size_t count =
            std::min<std::size_t>(W * 64, in_window - base);
        fsim.SetPatternBlock(
            sim::PackPatternBlockWide(patterns, base, count, width, W));
        const Word mask = sim::BlockMaskWide<W>(count);
        fsim.ForEachFault(faults_.size(),
                          [&](std::size_t f, sim::FaultSimulatorT<W>& sim) {
                            if (!is_active[f] &&
                                (sim.DetectBlock(faults_[f]) & mask).Any()) {
                              is_active[f] = 1;
                            }
                          });
      }
      for (std::size_t f = 0; f < faults_.size(); ++f) {
        if (is_active[f]) active.push_back(f);
      }
    }

    // Pass 2: golden signature plus faulty signatures of the active faults.
    // Lanes are absorbed in block-then-lane-then-pattern order, which is
    // exactly the serial pattern order — the MISR states are bit-identical
    // to the narrow build.
    Misr golden_misr(config.misr_width);
    std::vector<Misr> fault_misrs(active.size(), Misr(config.misr_width));
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t base = b * W * 64;
      const std::size_t count = std::min<std::size_t>(W * 64, in_window - base);
      fsim.SetPatternBlock(
          sim::PackPatternBlockWide(patterns, base, count, width, W));
      std::vector<PatternWord> good;
      good.reserve(num_outputs * W);
      for (netlist::NodeId id : netlist.CoreOutputs()) {
        const auto lanes = fsim.Good().LanesOf(id);
        good.insert(good.end(), lanes.begin(), lanes.end());
      }
      for (std::size_t l = 0; l < W; ++l) {
        const std::size_t lane_count = sim::LanePatternCount(count, l);
        for (std::size_t k = 0; k < lane_count; ++k) {
          for (std::size_t j = 0; j < num_outputs; ++j) {
            golden_misr.AbsorbBit((good[j * W + l] >> k) & 1);
          }
        }
      }
      // Each active fault's MISR is advanced by its owning chunk only; the
      // block loop stays serial, so absorb order per fault is unchanged.
      fsim.ForEachFault(
          active.size(), [&](std::size_t a, sim::FaultSimulatorT<W>& sim) {
            const auto response = sim.FaultyResponse(faults_[active[a]]);
            for (std::size_t l = 0; l < W; ++l) {
              const std::size_t lane_count = sim::LanePatternCount(count, l);
              for (std::size_t k = 0; k < lane_count; ++k) {
                for (std::size_t j = 0; j < num_outputs; ++j) {
                  fault_misrs[a].AbsorbBit((response[j * W + l] >> k) & 1);
                }
              }
            }
          });
    }

    const std::uint64_t golden_signature = golden_misr.Signature();
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::uint64_t sig = fault_misrs[a].Signature();
      if (sig != golden_signature) {
        const std::size_t f = active[a];
        windows_[f * words_per_fault_ + w / 64] |= std::uint64_t{1} << (w % 64);
        signatures_[f].push_back(sig);
      }
    }
  }
}

std::vector<DiagnosisCandidate> FaultDictionary::Diagnose(
    std::span<const FailDatum> fail_data, std::size_t top_k) const {
  std::vector<std::uint64_t> observed(words_per_fault_, 0);
  for (const FailDatum& fd : fail_data) {
    observed[fd.window_index / 64] |= std::uint64_t{1} << (fd.window_index % 64);
  }

  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    const auto fw = WindowsOf(f);
    std::uint64_t inter = 0, uni = 0;
    for (std::size_t w = 0; w < words_per_fault_; ++w) {
      inter += std::popcount(fw[w] & observed[w]);
      uni += std::popcount(fw[w] | observed[w]);
    }
    double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);

    // Signature bonus: fraction of observed failing windows whose stored
    // faulty signature matches exactly.
    if (!fail_data.empty()) {
      std::size_t matches = 0;
      for (const FailDatum& fd : fail_data) {
        const std::uint32_t w = fd.window_index;
        if (!((fw[w / 64] >> (w % 64)) & 1)) continue;
        // Rank of window w among this fault's failing windows.
        std::size_t rank = 0;
        for (std::uint32_t ww = 0; ww < w; ++ww) {
          if ((fw[ww / 64] >> (ww % 64)) & 1) ++rank;
        }
        if (rank < signatures_[f].size() &&
            signatures_[f][rank] == fd.observed_signature) {
          ++matches;
        }
      }
      score += static_cast<double>(matches) /
               static_cast<double>(fail_data.size());
    }
    ranked.push_back({faults_[f], score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace bistdse::bist
