#include "bist/fault_dictionary.hpp"

#include <algorithm>
#include <stdexcept>
#include <bit>

#include "bist/campaign_sources.hpp"
#include "bist/misr.hpp"

namespace bistdse::bist {

using sim::BitPattern;
using sim::PatternWord;

namespace {

/// Pass 1: cheap detection sweep marking the faults whose signature can
/// differ in this window at all. Each fault index is owned by one chunk, so
/// the parallel sweep writes is_active without contention.
class ActiveScanSink final : public sim::CampaignSink {
 public:
  ActiveScanSink(std::span<const sim::StuckAtFault> faults,
                 std::vector<std::uint8_t>& is_active)
      : faults_(faults), is_active_(is_active) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    block.ParallelFor(faults_.size(),
                      [&](std::size_t f, sim::FaultView& view) {
                        if (!is_active_[f] && view.DetectAny(faults_[f])) {
                          is_active_[f] = 1;
                        }
                      });
    return true;
  }

 private:
  std::span<const sim::StuckAtFault> faults_;
  std::vector<std::uint8_t>& is_active_;
};

/// Pass 2: golden MISR plus faulty MISRs of the window's active faults.
/// Each active fault's MISR is advanced by its owning chunk only; blocks
/// arrive serially, so absorb order per fault is unchanged.
class WindowMisrSink final : public sim::CampaignSink {
 public:
  WindowMisrSink(std::span<const sim::StuckAtFault> faults,
                 const std::vector<std::size_t>& active, Misr& golden_misr,
                 std::vector<Misr>& fault_misrs, std::size_t num_outputs)
      : faults_(faults),
        active_(active),
        golden_misr_(golden_misr),
        fault_misrs_(fault_misrs),
        num_outputs_(num_outputs) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    AbsorbBlockResponse(golden_misr_, block.GoodOutputLanes(), num_outputs_,
                        block);
    block.ParallelFor(active_.size(),
                      [&](std::size_t a, sim::FaultView& view) {
                        const std::vector<PatternWord> response =
                            view.FaultyResponse(faults_[active_[a]]);
                        AbsorbBlockResponse(fault_misrs_[a], response,
                                            num_outputs_, block);
                      });
    return true;
  }

 private:
  std::span<const sim::StuckAtFault> faults_;
  const std::vector<std::size_t>& active_;
  Misr& golden_misr_;
  std::vector<Misr>& fault_misrs_;
  std::size_t num_outputs_;
};

}  // namespace

FaultDictionary::FaultDictionary(const netlist::Netlist& netlist,
                                 const StumpsConfig& config,
                                 std::uint64_t num_random,
                                 std::span<const EncodedPattern> deterministic,
                                 std::vector<sim::StuckAtFault> faults,
                                 std::size_t threads, std::size_t block_width)
    : faults_(std::move(faults)) {
  if (!config.reset_misr_per_window) {
    throw std::invalid_argument(
        "fault dictionary requires strong windows (per-window MISR reset)");
  }
  Build(netlist, config, num_random, deterministic, threads, block_width);
}

void FaultDictionary::Build(const netlist::Netlist& netlist,
                            const StumpsConfig& config,
                            std::uint64_t num_random,
                            std::span<const EncodedPattern> deterministic,
                            std::size_t threads, std::size_t block_width) {
  const std::size_t width = netlist.CoreInputs().size();
  const std::size_t num_outputs = netlist.CoreOutputs().size();
  const std::uint64_t total = num_random + deterministic.size();
  const std::uint64_t window = config.EffectiveWindow(total);
  window_count_ = static_cast<std::uint32_t>((total + window - 1) / window);
  words_per_fault_ = (window_count_ + 63) / 64;
  windows_.assign(faults_.size() * words_per_fault_, 0);
  signatures_.resize(faults_.size());

  // The full session stream, materialized window by window; one runner
  // (cached simulator state) serves every per-window campaign.
  ReseedingEncoder expander(static_cast<std::uint32_t>(width));
  SessionStreamSource stream(config, width, expander, num_random,
                             deterministic);
  sim::CampaignRunner runner(
      netlist, {.block_width = block_width, .threads = threads});

  std::vector<BitPattern> patterns;
  for (std::uint32_t w = 0; w < window_count_; ++w) {
    patterns.clear();
    stream.Fill(static_cast<std::size_t>(window), patterns);
    const std::size_t in_window = patterns.size();
    if (in_window == 0) break;

    std::vector<std::size_t> active;  // fault indices detected in this window
    {
      std::vector<std::uint8_t> is_active(faults_.size(), 0);
      sim::StoredPatternSource source(patterns);
      ActiveScanSink sink(faults_, is_active);
      runner.Run(source, sink);
      for (std::size_t f = 0; f < faults_.size(); ++f) {
        if (is_active[f]) active.push_back(f);
      }
    }

    Misr golden_misr(config.misr_width);
    std::vector<Misr> fault_misrs(active.size(), Misr(config.misr_width));
    {
      sim::StoredPatternSource source(patterns);
      WindowMisrSink sink(faults_, active, golden_misr, fault_misrs,
                          num_outputs);
      runner.Run(source, sink);
    }

    const std::uint64_t golden_signature = golden_misr.Signature();
    for (std::size_t a = 0; a < active.size(); ++a) {
      const std::uint64_t sig = fault_misrs[a].Signature();
      if (sig != golden_signature) {
        const std::size_t f = active[a];
        windows_[f * words_per_fault_ + w / 64] |= std::uint64_t{1} << (w % 64);
        signatures_[f].push_back(sig);
      }
    }
  }
}

std::vector<DiagnosisCandidate> FaultDictionary::Diagnose(
    std::span<const FailDatum> fail_data, std::size_t top_k) const {
  std::vector<std::uint64_t> observed(words_per_fault_, 0);
  for (const FailDatum& fd : fail_data) {
    observed[fd.window_index / 64] |= std::uint64_t{1} << (fd.window_index % 64);
  }

  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(faults_.size());
  for (std::size_t f = 0; f < faults_.size(); ++f) {
    const auto fw = WindowsOf(f);
    std::uint64_t inter = 0, uni = 0;
    for (std::size_t w = 0; w < words_per_fault_; ++w) {
      inter += std::popcount(fw[w] & observed[w]);
      uni += std::popcount(fw[w] | observed[w]);
    }
    double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);

    // Signature bonus: fraction of observed failing windows whose stored
    // faulty signature matches exactly.
    if (!fail_data.empty()) {
      std::size_t matches = 0;
      for (const FailDatum& fd : fail_data) {
        const std::uint32_t w = fd.window_index;
        if (!((fw[w / 64] >> (w % 64)) & 1)) continue;
        // Rank of window w among this fault's failing windows.
        std::size_t rank = 0;
        for (std::uint32_t ww = 0; ww < w; ++ww) {
          if ((fw[ww / 64] >> (ww % 64)) & 1) ++rank;
        }
        if (rank < signatures_[f].size() &&
            signatures_[f][rank] == fd.observed_signature) {
          ++matches;
        }
      }
      score += static_cast<double>(matches) /
               static_cast<double>(fail_data.size());
    }
    ranked.push_back({faults_[f], score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });
  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace bistdse::bist
