// Fault dictionary: precomputed per-fault failing-window sets (and window
// signatures) for one session configuration. Building it costs one full
// fault-simulation sweep; afterwards each diagnosis is a dictionary match —
// the classic trade when many field returns of the same ECU generation are
// diagnosed against the same BIST session.
//
// Serving-layer lifecycle: a built dictionary is Save()d to a compact
// versioned binary artifact once; server processes then either Load() it
// (owned copy) or Map() it — an mmap-backed read path whose span views point
// straight into the file mapping, so opening a multi-gigabyte dictionary is
// O(1) with no deserialization copy (pages fault in on first query). When
// the session later grows by ΔN patterns, Extend() appends the new windows'
// rows (re-simulating only the trailing partial window, if any) instead of
// rebuilding from pattern 0 — bit-identical to a from-scratch build.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bist/diagnosis.hpp"
#include "bist/stumps.hpp"
#include "util/mmap_file.hpp"

namespace bistdse::bist {

/// FNV-1a over the StumpsConfig fields that determine the session's pattern
/// stream and signature semantics (PRPG, phase shifter, window layout, MISR).
/// Simulation-only knobs (threads, block width, shortcuts) are excluded:
/// they never change results.
std::uint64_t SessionStreamConfigHash(const StumpsConfig& config);

class FaultDictionary {
 public:
  /// Builds the dictionary for the given session (pattern stream defined by
  /// `config`, `num_random`, `deterministic`) over the candidate `faults`.
  /// The build fault-simulates in parallel over `threads` workers (1 =
  /// serial, 0 = full pool width) with `block_width`*64 patterns per sweep
  /// (block_width in {1, 2, 4, 8, 16}); the dictionary is bit-identical for
  /// every thread count and block width.
  FaultDictionary(const netlist::Netlist& netlist, const StumpsConfig& config,
                  std::uint64_t num_random,
                  std::span<const EncodedPattern> deterministic,
                  std::vector<sim::StuckAtFault> faults,
                  std::size_t threads = 0, std::size_t block_width = 4);

  /// Writes the dictionary as a versioned binary artifact (header, fault
  /// table, window bitmask words, sparse signature payload). Throws
  /// std::runtime_error when the file cannot be written.
  void Save(const std::string& path) const;

  /// Reads a Save()d artifact into owned storage (full payload copy).
  /// Throws std::runtime_error on missing, truncated, corrupted, or
  /// version-mismatched files, naming the defect.
  static FaultDictionary Load(const std::string& path);

  /// Opens a Save()d artifact zero-copy: payload accessors are span views
  /// into the file mapping; only the (small) fault table is materialized.
  /// Same validation and errors as Load().
  static FaultDictionary Map(const std::string& path);

  /// Incremental ΔN update: extends the dictionary to the grown session
  /// (`num_random` + `deterministic`, which must have this dictionary's
  /// session stream as a prefix). Only the windows at and past the old
  /// session's end are (re)simulated — the trailing partial window, if any,
  /// plus the appended windows — and the result is bit-identical to a
  /// from-scratch build of the grown session. Throws std::invalid_argument
  /// when the netlist/config/stream do not match, when the session shrinks,
  /// or when the grown session changes the effective window width (a
  /// max_windows_per_session rewidening requires a full rebuild). A mapped
  /// dictionary is materialized to owned storage first.
  void Extend(const netlist::Netlist& netlist, const StumpsConfig& config,
              std::uint64_t num_random,
              std::span<const EncodedPattern> deterministic,
              std::size_t threads = 0, std::size_t block_width = 4);

  std::size_t FaultCount() const { return faults_.size(); }
  std::uint32_t WindowCount() const { return window_count_; }
  std::uint64_t TotalPatterns() const { return total_patterns_; }
  std::uint64_t NetlistHash() const { return netlist_hash_; }
  std::uint64_t ConfigHash() const { return config_hash_; }
  /// True when the payload views point into a file mapping (Map() path).
  bool IsMapped() const { return mapping_.IsMapped(); }
  std::span<const sim::StuckAtFault> Faults() const { return faults_; }

  /// Ranks candidates against observed fail data by failing-window-set
  /// Jaccard match plus a signature bonus (fraction of observed failing
  /// windows whose stored faulty signature matches exactly). Equivalent to
  /// SignatureDiagnosis but O(candidates) per query with no re-simulation.
  ///
  /// Edge cases are defined explicitly: empty `fail_data` returns an empty
  /// ranking (no fail evidence ranks no candidates), `top_k == 0` returns
  /// empty, and `top_k` past the candidate count returns every candidate.
  /// Pure and const: any number of threads may Diagnose concurrently.
  std::vector<DiagnosisCandidate> Diagnose(
      std::span<const FailDatum> fail_data, std::size_t top_k) const;

  /// Failing-window bitmask words of fault `i` (testing/inspection).
  /// Throws std::out_of_range when `i >= FaultCount()`.
  std::span<const std::uint64_t> WindowsOf(std::size_t i) const {
    CheckFaultIndex(i);
    return windows_.subspan(i * words_per_fault_, words_per_fault_);
  }

  /// Sparse faulty signatures of fault `i`, aligned with the set bits of
  /// WindowsOf(i) in window order. Throws std::out_of_range like WindowsOf.
  std::span<const std::uint64_t> SignaturesOf(std::size_t i) const {
    CheckFaultIndex(i);
    return signatures_.subspan(sig_offsets_[i],
                               sig_offsets_[i + 1] - sig_offsets_[i]);
  }

 private:
  FaultDictionary() = default;  ///< Load()/Map() shell.

  static FaultDictionary Open(const std::string& path, bool keep_mapping);

  /// (Re)simulates windows [start_window, window_count_): sets failing-window
  /// bits in `owned_windows_` and appends the per-fault sparse signatures of
  /// those windows to `sig_tail`.
  void BuildWindows(const netlist::Netlist& netlist,
                    const StumpsConfig& config, std::uint64_t num_random,
                    std::span<const EncodedPattern> deterministic,
                    std::size_t threads, std::size_t block_width,
                    std::uint32_t start_window,
                    std::vector<std::vector<std::uint64_t>>& sig_tail);

  /// Rebuilds the flat signature arrays from per-fault kept prefixes
  /// (first `keep_sigs[f]` old entries) plus appended tails.
  void FlattenSignatures(std::span<const std::size_t> keep_sigs,
                         const std::vector<std::vector<std::uint64_t>>& tails);

  /// Copies mapped payload views into owned vectors and drops the mapping.
  void EnsureOwned();

  void CheckFaultIndex(std::size_t i) const;

  // --- session identity (serialized) ---------------------------------------
  std::uint64_t netlist_hash_ = 0;
  std::uint64_t config_hash_ = 0;
  std::uint64_t num_random_ = 0;
  std::uint64_t det_count_ = 0;
  std::uint64_t det_hash_ = 0;
  std::uint64_t total_patterns_ = 0;
  std::uint64_t window_ = 0;  ///< Effective patterns per window.
  std::uint32_t window_count_ = 0;
  std::uint32_t misr_width_ = 0;
  std::size_t words_per_fault_ = 0;

  // --- payload: span views over owned buffers or the file mapping ----------
  std::vector<sim::StuckAtFault> faults_;  ///< Always materialized (small).
  std::span<const std::uint64_t> windows_;      ///< faults x words_per_fault.
  std::span<const std::uint64_t> sig_offsets_;  ///< faults + 1 entries.
  std::span<const std::uint64_t> signatures_;   ///< Flat sparse payload.
  std::vector<std::uint64_t> owned_windows_;
  std::vector<std::uint64_t> owned_sig_offsets_;
  std::vector<std::uint64_t> owned_signatures_;
  util::MmapFile mapping_;  ///< Backs the views on the Map() path.
};

}  // namespace bistdse::bist
