// Fault dictionary: precomputed per-fault failing-window sets (and window
// signatures) for one session configuration. Building it costs one full
// fault-simulation sweep; afterwards each diagnosis is a dictionary match —
// the classic trade when many field returns of the same ECU generation are
// diagnosed against the same BIST session.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/diagnosis.hpp"
#include "bist/stumps.hpp"

namespace bistdse::bist {

class FaultDictionary {
 public:
  /// Builds the dictionary for the given session (pattern stream defined by
  /// `config`, `num_random`, `deterministic`) over the candidate `faults`.
  /// The build fault-simulates in parallel over `threads` workers (1 =
  /// serial, 0 = full pool width) with `block_width`*64 patterns per sweep
  /// (block_width in {1, 2, 4, 8, 16}); the dictionary is bit-identical for
  /// every thread count and block width.
  FaultDictionary(const netlist::Netlist& netlist, const StumpsConfig& config,
                  std::uint64_t num_random,
                  std::span<const EncodedPattern> deterministic,
                  std::vector<sim::StuckAtFault> faults,
                  std::size_t threads = 0, std::size_t block_width = 4);

  std::size_t FaultCount() const { return faults_.size(); }
  std::uint32_t WindowCount() const { return window_count_; }

  /// Ranks candidates against observed fail data by failing-window-set
  /// Jaccard match (ties broken by stored-signature equality on the listed
  /// windows). Equivalent to SignatureDiagnosis but O(candidates) per query
  /// with no re-simulation.
  std::vector<DiagnosisCandidate> Diagnose(
      std::span<const FailDatum> fail_data, std::size_t top_k) const;

  /// Failing-window bitmask words of fault `i` (testing/inspection).
  std::span<const std::uint64_t> WindowsOf(std::size_t i) const {
    return {windows_.data() + i * words_per_fault_, words_per_fault_};
  }

 private:
  void Build(const netlist::Netlist& netlist, const StumpsConfig& config,
             std::uint64_t num_random,
             std::span<const EncodedPattern> deterministic,
             std::size_t threads, std::size_t block_width);

  std::vector<sim::StuckAtFault> faults_;
  std::uint32_t window_count_ = 0;
  std::size_t words_per_fault_ = 0;
  std::vector<std::uint64_t> windows_;  // faults x words_per_fault_
  /// Per fault, per *failing* window: the faulty MISR signature (sparse,
  /// aligned with the set bits of `windows_` in window order).
  std::vector<std::vector<std::uint64_t>> signatures_;
};

}  // namespace bistdse::bist
