// LFSR reseeding: encoding of deterministic test cubes as LFSR seeds.
//
// A cube with s care bits is encoded as a seed of an L-stage LFSR with
// L >= s + margin; expanding the seed reproduces the care bits exactly while
// don't-care positions receive pseudo-random fill. The per-pattern storage is
// ceil(L/8) bytes instead of ceil(width/8) — this is the "encoded
// deterministic test data" of the paper's BIST data task b^D.
//
// The encoder solves the GF(2) linear system relating seed bits to emitted
// stream bits by Gaussian elimination. The stream/seed relation is obtained
// by concrete simulation of the very Lfsr class used for expansion, so
// encode/expand are consistent by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "atpg/podem.hpp"
#include "bist/lfsr.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::bist {

struct EncodedPattern {
  std::uint32_t lfsr_degree = 0;
  std::vector<std::uint8_t> seed_bits;  ///< size == lfsr_degree

  /// Stored size in bytes (seed plus a 2-byte degree/length header).
  std::size_t StorageBytes() const { return (lfsr_degree + 7) / 8 + 2; }
};

/// FNV-1a over the encoded seed content (degree + seed bits, count-mixed).
/// Caches keying a deterministic pattern list (the golden-signature cache,
/// fault-dictionary session identity) hash *content*, not just count.
std::uint64_t HashEncodedPatterns(std::span<const EncodedPattern> patterns);

class ReseedingEncoder {
 public:
  /// `margin`: extra seed stages beyond the care-bit count (the classic
  /// s_max + 20 rule); `width`: emitted bits per pattern (number of core
  /// inputs / scan cells).
  explicit ReseedingEncoder(std::uint32_t width, std::uint32_t margin = 20);

  /// Encodes one cube. Returns nullopt only if the system stays unsolvable
  /// after growing the seed to `width` stages (practically impossible).
  std::optional<EncodedPattern> Encode(const atpg::TestCube& cube);

  /// Expands an encoded pattern to a fully specified test pattern.
  sim::BitPattern Expand(const EncodedPattern& encoded) const;

 private:
  /// Emits the stream of basis seed e_i for degree L (cached per degree).
  const std::vector<sim::BitPattern>& BasisStreams(std::uint32_t degree);

  std::uint32_t width_;
  std::uint32_t margin_;
  // degree -> per-basis-bit emitted stream
  std::vector<std::pair<std::uint32_t, std::vector<sim::BitPattern>>> cache_;
};

}  // namespace bistdse::bist
