#include "bist/profile_generator.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "bist/campaign_sources.hpp"
#include "bist/pattern_source.hpp"
#include "sim/pattern_set.hpp"
#include "sim/transition_fault.hpp"

namespace bistdse::bist {

using atpg::DeterministicTpgOptions;
using atpg::GenerateDeterministicPatterns;
using netlist::Netlist;
using sim::BitPattern;
using sim::PatternWord;
using sim::StuckAtFault;

std::string ToString(const BistProfile& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "profile %2u: %8llu PRPs  c=%6.2f%%  l=%9.2f ms  s=%12llu B",
                p.profile_number,
                static_cast<unsigned long long>(p.num_random_patterns),
                p.fault_coverage_percent, p.runtime_ms,
                static_cast<unsigned long long>(p.data_bytes));
  return buf;
}

std::string FormatProfileTable(const std::vector<BistProfile>& profiles) {
  bool has_tdf = false;
  for (const BistProfile& p : profiles) {
    has_tdf |= p.transition_coverage_percent > 0.0;
  }
  std::string out =
      has_tdf
          ? "profile |   #PRPs   |  c(b) [%] | tdf [%] |  l(b) [ms] |  s(b) "
            "[Bytes]\n"
            "--------+-----------+-----------+---------+------------+-------"
            "-------\n"
          : "profile |   #PRPs   |  c(b) [%] |  l(b) [ms] |  s(b) [Bytes]\n"
            "--------+-----------+-----------+------------+--------------\n";
  for (const BistProfile& p : profiles) {
    char buf[160];
    if (has_tdf) {
      std::snprintf(buf, sizeof(buf),
                    "%7u | %9llu | %9.2f | %7.2f | %10.2f | %13llu\n",
                    p.profile_number,
                    static_cast<unsigned long long>(p.num_random_patterns),
                    p.fault_coverage_percent, p.transition_coverage_percent,
                    p.runtime_ms,
                    static_cast<unsigned long long>(p.data_bytes));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%7u | %9llu | %9.2f | %10.2f | %13llu\n",
                    p.profile_number,
                    static_cast<unsigned long long>(p.num_random_patterns),
                    p.fault_coverage_percent, p.runtime_ms,
                    static_cast<unsigned long long>(p.data_bytes));
    }
    out += buf;
  }
  return out;
}

ProfileGenerator::ProfileGenerator(const Netlist& netlist,
                                   ProfileGeneratorConfig config)
    : netlist_(netlist),
      config_(std::move(config)),
      runner_(netlist,
              sim::CampaignConfig{
                  .block_width = config_.block_width,
                  .threads = config_.threads,
                  .narrow_warmup_patterns = config_.narrow_warmup_patterns,
                  .structural_shortcuts = config_.structural_shortcuts}) {
  if (config_.coverage_targets_percent.size() != config_.fill_seeds.size())
    throw std::invalid_argument("one fill seed per coverage target required");
  if (config_.prp_counts.empty() || config_.coverage_targets_percent.empty())
    throw std::invalid_argument("empty profile matrix");
  if (!std::is_sorted(config_.prp_counts.begin(), config_.prp_counts.end()))
    throw std::invalid_argument("prp_counts must be ascending");
  faults_ = sim::CollapsedFaults(netlist_);
  stats_.total_collapsed_faults = faults_.size();
}

void ProfileGenerator::RunRandomPhase() {
  if (random_phase_done_) return;
  const std::uint64_t max_prps = config_.prp_counts.back();
  first_detect_.assign(faults_.size(), UINT64_MAX);

  // Drop campaign over the PRPG stream. The runner handles the narrow
  // warm-up head (drop-heavy start runs at W = 1, sparse survivor tail runs
  // wide — see docs/PERF.md) and the serial fault-order drop merge, so
  // first_detect_ is bit-identical for every width x thread combination —
  // which is also what makes the result memoizable across generators.
  const std::size_t width = netlist_.CoreInputs().size();
  PrpgSource source(config_.stumps, width);
  const sim::CampaignStats stats = sim::RunFirstDetectMemoized(
      runner_, source, PrpgStreamKey(config_.stumps, width), faults_,
      first_detect_, max_prps, /*warmup=*/true, config_.memo);
  stats_.random_detected_at_max_prps =
      static_cast<std::size_t>(stats.dropped);
  random_phase_done_ = true;
}

void ProfileGenerator::SurvivorsAt(std::uint64_t prps,
                                   std::vector<StuckAtFault>* undetected,
                                   std::size_t* random_detected) const {
  undetected->clear();
  *random_detected = 0;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (first_detect_[i] < prps) {
      ++*random_detected;
    } else {
      undetected->push_back(faults_[i]);
    }
  }
}

GeneratedProfile ProfileGenerator::GenerateOne(std::uint64_t prps,
                                               double target_percent,
                                               std::uint64_t fill_seed) {
  if (prps > config_.prp_counts.back()) {
    // The cached random phase stops at the configured maximum; a longer
    // session needs a fresh phase over the longer PRPG stream.
    ProfileGeneratorConfig config = config_;
    config.prp_counts = {prps};
    config.coverage_targets_percent = {target_percent};
    config.fill_seeds = {fill_seed};
    ProfileGenerator generator(netlist_, config);
    return generator.GenerateOne(prps, target_percent, fill_seed);
  }

  RunRandomPhase();
  std::vector<StuckAtFault> undetected;
  std::size_t random_detected = 0;
  SurvivorsAt(prps, &undetected, &random_detected);

  const std::size_t width = netlist_.CoreInputs().size();
  ReseedingEncoder encoder(static_cast<std::uint32_t>(width));

  GeneratedProfile out;
  out.profile =
      GenerateVariant(prps, target_percent, fill_seed, 1, undetected,
                      random_detected, encoder, &out.encoded_patterns);
  return out;
}

std::vector<BistProfile> ProfileGenerator::GenerateAll() {
  RunRandomPhase();

  const std::size_t width = netlist_.CoreInputs().size();
  ReseedingEncoder encoder(static_cast<std::uint32_t>(width));

  std::vector<BistProfile> profiles;
  std::uint32_t number = 1;

  for (std::uint64_t prps : config_.prp_counts) {
    // Faults surviving the random phase of length `prps`.
    std::vector<StuckAtFault> undetected;
    std::size_t random_detected = 0;
    SurvivorsAt(prps, &undetected, &random_detected);

    for (std::size_t v = 0; v < config_.coverage_targets_percent.size(); ++v) {
      profiles.push_back(GenerateVariant(
          prps, config_.coverage_targets_percent[v], config_.fill_seeds[v],
          number++, undetected, random_detected, encoder, nullptr));
    }
  }
  return profiles;
}

namespace {

/// Per-pattern detection gains of the deterministic top-up stream: each
/// tracked fault contributes to the pattern that first detects it, and the
/// campaign stops once the running coverage reaches the target (at block
/// granularity — gains past the chosen prefix are never read).
class TopUpSink final : public sim::CampaignSink {
 public:
  TopUpSink(std::vector<std::size_t>& gain_per_pattern, std::size_t covered,
            std::size_t total, double target_percent)
      : gain_per_pattern_(gain_per_pattern),
        covered_(covered),
        total_(total),
        target_percent_(target_percent) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    for (std::size_t i = 0; i < block.TrackedCount(); ++i) {
      const int first = block.TrackedFirstDetect(i);
      if (first >= 0) {
        ++gain_per_pattern_[static_cast<std::size_t>(block.BaseIndex()) +
                            static_cast<std::size_t>(first)];
        ++covered_;
      }
    }
    return 100.0 * static_cast<double>(covered_) /
               static_cast<double>(total_) <
           target_percent_;
  }

 private:
  std::vector<std::size_t>& gain_per_pattern_;
  std::size_t covered_;
  std::size_t total_;
  double target_percent_;
};

}  // namespace

BistProfile ProfileGenerator::GenerateVariant(
    std::uint64_t prps, double target_percent, std::uint64_t fill_seed,
    std::uint32_t number, const std::vector<StuckAtFault>& undetected,
    std::size_t random_detected,
    ReseedingEncoder& encoder, std::vector<EncodedPattern>* encoded_sink) {
  const std::size_t total = faults_.size();
  const std::size_t width = netlist_.CoreInputs().size();
  const bool already_met = 100.0 * static_cast<double>(random_detected) /
                               static_cast<double>(total) >=
                           target_percent;

  atpg::DeterministicTpgResult tpg;
  if (!already_met) {
    DeterministicTpgOptions opts;
    opts.seed = fill_seed * 1000003 + prps;
    opts.backtrack_limit = config_.podem_backtrack_limit;
    opts.reverse_compaction = true;
    tpg = GenerateDeterministicPatterns(netlist_, undetected, opts);
    stats_.untestable = std::max(stats_.untestable, tpg.untestable);
    stats_.aborted = std::max(stats_.aborted, tpg.aborted);
  }

  // Order of `tpg.patterns` is generation order; walk it with fault
  // dropping to find the shortest prefix reaching the target coverage. A
  // fault's gain lands on its first-detecting pattern, so the drop campaign
  // reproduces the per-pattern drop walk exactly.
  std::vector<std::size_t> gain_per_pattern(tpg.patterns.size(), 0);
  if (!already_met && !tpg.patterns.empty()) {
    sim::StoredPatternSource source(tpg.patterns);
    TopUpSink sink(gain_per_pattern, random_detected, total, target_percent);
    runner_.Run(source, sink,
                {.track = undetected, .drop_detected = true});
  }
  std::size_t covered = random_detected;
  std::size_t prefix = 0;
  for (std::size_t p = 0; !already_met && p < tpg.patterns.size(); ++p) {
    covered += gain_per_pattern[p];
    prefix = p + 1;
    if (100.0 * static_cast<double>(covered) / static_cast<double>(total) >=
        target_percent) {
      break;
    }
  }

  // Recompute achieved coverage for the chosen prefix.
  std::size_t achieved = random_detected;
  for (std::size_t p = 0; p < prefix; ++p) achieved += gain_per_pattern[p];

  BistProfile prof;
  prof.profile_number = number;
  prof.num_random_patterns = prps;
  prof.num_deterministic_patterns = prefix;
  prof.fault_coverage_percent =
      100.0 * static_cast<double>(achieved) / static_cast<double>(total);
  prof.runtime_ms =
      config_.stumps.PatternTimeMs(prps + prefix) + config_.state_restore_ms;

  std::uint64_t encoded_bytes = 0;
  std::uint64_t care = 0;
  for (std::size_t p = 0; p < prefix; ++p) {
    care += tpg.cubes[p].CareBitCount();
    if (auto enc = encoder.Encode(tpg.cubes[p])) {
      encoded_bytes += enc->StorageBytes();
      if (encoded_sink) encoded_sink->push_back(std::move(*enc));
    } else {
      // Unencodable cube (practically unreachable): store it verbatim.
      encoded_bytes += (width + 7) / 8;
    }
  }
  prof.care_bits = care;
  if (config_.measure_transition_coverage) {
    // Assemble the session's applied patterns (random prefix capped,
    // then the deterministic top-up) and measure LOC TDF coverage.
    std::vector<BitPattern> applied;
    const std::uint64_t random_take =
        std::min<std::uint64_t>(prps, config_.transition_pairs_cap);
    PatternSource source(config_.stumps, width);
    for (std::uint64_t i = 0; i < random_take; ++i) {
      applied.push_back(source.Next());
    }
    for (std::size_t p = 0; p < prefix; ++p) {
      applied.push_back(tpg.patterns[p]);
    }
    prof.transition_coverage_percent =
        100.0 * sim::MeasureLocTransitionCoverage(netlist_, applied);
  }
  const std::uint64_t response_bytes =
      StumpsSession(netlist_, config_.stumps)
          .ResponseDataBytes(prps + prefix);
  prof.data_bytes = static_cast<std::uint64_t>(
      static_cast<double>(encoded_bytes + response_bytes) *
      config_.byte_scale);
  return prof;
}

}  // namespace bistdse::bist
