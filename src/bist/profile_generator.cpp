#include "bist/profile_generator.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

#include "bist/pattern_source.hpp"
#include "sim/fault_sim.hpp"
#include "sim/parallel_fault_sim.hpp"
#include "sim/pattern_set.hpp"
#include "sim/transition_fault.hpp"

namespace bistdse::bist {

using atpg::DeterministicTpgOptions;
using atpg::GenerateDeterministicPatterns;
using netlist::Netlist;
using sim::BitPattern;
using sim::ParallelFaultSimulator;
using sim::PatternWord;
using sim::StuckAtFault;

std::string ToString(const BistProfile& p) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "profile %2u: %8llu PRPs  c=%6.2f%%  l=%9.2f ms  s=%12llu B",
                p.profile_number,
                static_cast<unsigned long long>(p.num_random_patterns),
                p.fault_coverage_percent, p.runtime_ms,
                static_cast<unsigned long long>(p.data_bytes));
  return buf;
}

std::string FormatProfileTable(const std::vector<BistProfile>& profiles) {
  bool has_tdf = false;
  for (const BistProfile& p : profiles) {
    has_tdf |= p.transition_coverage_percent > 0.0;
  }
  std::string out =
      has_tdf
          ? "profile |   #PRPs   |  c(b) [%] | tdf [%] |  l(b) [ms] |  s(b) "
            "[Bytes]\n"
            "--------+-----------+-----------+---------+------------+-------"
            "-------\n"
          : "profile |   #PRPs   |  c(b) [%] |  l(b) [ms] |  s(b) [Bytes]\n"
            "--------+-----------+-----------+------------+--------------\n";
  for (const BistProfile& p : profiles) {
    char buf[160];
    if (has_tdf) {
      std::snprintf(buf, sizeof(buf),
                    "%7u | %9llu | %9.2f | %7.2f | %10.2f | %13llu\n",
                    p.profile_number,
                    static_cast<unsigned long long>(p.num_random_patterns),
                    p.fault_coverage_percent, p.transition_coverage_percent,
                    p.runtime_ms,
                    static_cast<unsigned long long>(p.data_bytes));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%7u | %9llu | %9.2f | %10.2f | %13llu\n",
                    p.profile_number,
                    static_cast<unsigned long long>(p.num_random_patterns),
                    p.fault_coverage_percent, p.runtime_ms,
                    static_cast<unsigned long long>(p.data_bytes));
    }
    out += buf;
  }
  return out;
}

ProfileGenerator::ProfileGenerator(const Netlist& netlist,
                                   ProfileGeneratorConfig config)
    : netlist_(netlist), config_(std::move(config)) {
  if (config_.coverage_targets_percent.size() != config_.fill_seeds.size())
    throw std::invalid_argument("one fill seed per coverage target required");
  if (config_.prp_counts.empty() || config_.coverage_targets_percent.empty())
    throw std::invalid_argument("empty profile matrix");
  if (!std::is_sorted(config_.prp_counts.begin(), config_.prp_counts.end()))
    throw std::invalid_argument("prp_counts must be ascending");
  faults_ = sim::CollapsedFaults(netlist_);
  stats_.total_collapsed_faults = faults_.size();
}

void ProfileGenerator::RunRandomPhase() {
  if (random_phase_done_) return;
  const std::uint64_t max_prps = config_.prp_counts.back();
  first_detect_.assign(faults_.size(), UINT64_MAX);
  std::vector<std::size_t> remaining(faults_.size());
  for (std::size_t i = 0; i < faults_.size(); ++i) remaining[i] = i;

  PatternSource prpg(config_.stumps, netlist_.CoreInputs().size());
  // The drop-heavy head runs narrow: a wide block walks the union of W
  // narrow activity cones for every fault a narrow sweep would already have
  // dropped, which costs more than the W-fold sweep reduction saves. Once
  // the survivor set is sparse, the wide tail wins (see docs/PERF.md).
  // Detection outcomes are width-independent, so the split point does not
  // change any result.
  const std::uint64_t warmup =
      config_.block_width > 1
          ? std::min<std::uint64_t>(config_.narrow_warmup_patterns, max_prps)
          : 0;
  if (warmup > 0) RunRandomPhaseSegment<1>(prpg, 0, warmup, remaining);
  sim::DispatchBlockWidth(config_.block_width, [&](auto width) {
    RunRandomPhaseSegment<width()>(prpg, warmup, max_prps, remaining);
  });
  stats_.random_detected_at_max_prps = faults_.size() - remaining.size();
  random_phase_done_ = true;
}

template <std::size_t W>
void ProfileGenerator::RunRandomPhaseSegment(
    PatternSource& prpg, std::uint64_t base, std::uint64_t end,
    std::vector<std::size_t>& remaining) {
  using Word = sim::WideWord<W>;
  const std::size_t width = netlist_.CoreInputs().size();
  sim::ParallelFaultSimulatorT<W> fsim(netlist_, config_.threads);

  std::vector<BitPattern> block;
  block.reserve(W * 64);
  std::vector<Word> detect;
  while (base < end && !remaining.empty()) {
    block.clear();
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(W * 64, end - base));
    for (std::size_t k = 0; k < count; ++k) block.push_back(prpg.Next());
    const auto words = sim::PackPatternBlockWide(block, 0, count, width, W);
    fsim.SetPatternBlock(words);
    const Word mask = sim::BlockMaskWide<W>(count);

    // Fault-partitioned sweep: detection of each surviving fault only reads
    // the shared good-machine block, so the loop fans out across the pool.
    detect.assign(remaining.size(), Word::Zero());
    fsim.ForEachFault(remaining.size(),
                      [&](std::size_t i, sim::FaultSimulatorT<W>& sim) {
                        detect[i] =
                            sim.DetectBlock(faults_[remaining[i]]) & mask;
                      });

    // Serial merge in fault order keeps first_detect_ and the drop list
    // bit-identical to the serial sweep for any thread count; FirstSetBit
    // walks lanes in block order, so the first-detection index equals the
    // one W sequential narrow blocks would have recorded.
    std::vector<std::size_t> still;
    still.reserve(remaining.size());
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const std::size_t idx = remaining[i];
      const int first = detect[i].FirstSetBit();
      if (first >= 0) {
        first_detect_[idx] = base + static_cast<std::uint64_t>(first);
      } else {
        still.push_back(idx);
      }
    }
    remaining = std::move(still);
    base += count;
  }
}

void ProfileGenerator::SurvivorsAt(std::uint64_t prps,
                                   std::vector<StuckAtFault>* undetected,
                                   std::size_t* random_detected) const {
  undetected->clear();
  *random_detected = 0;
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (first_detect_[i] < prps) {
      ++*random_detected;
    } else {
      undetected->push_back(faults_[i]);
    }
  }
}

GeneratedProfile ProfileGenerator::GenerateOne(std::uint64_t prps,
                                               double target_percent,
                                               std::uint64_t fill_seed) {
  if (prps > config_.prp_counts.back()) {
    // The cached random phase stops at the configured maximum; a longer
    // session needs a fresh phase over the longer PRPG stream.
    ProfileGeneratorConfig config = config_;
    config.prp_counts = {prps};
    config.coverage_targets_percent = {target_percent};
    config.fill_seeds = {fill_seed};
    ProfileGenerator generator(netlist_, config);
    return generator.GenerateOne(prps, target_percent, fill_seed);
  }

  RunRandomPhase();
  std::vector<StuckAtFault> undetected;
  std::size_t random_detected = 0;
  SurvivorsAt(prps, &undetected, &random_detected);

  const std::size_t width = netlist_.CoreInputs().size();
  ReseedingEncoder encoder(static_cast<std::uint32_t>(width));
  ParallelFaultSimulator fsim(netlist_, config_.threads);

  GeneratedProfile out;
  out.profile =
      GenerateVariant(prps, target_percent, fill_seed, 1, undetected,
                      random_detected, fsim, encoder, &out.encoded_patterns);
  return out;
}

std::vector<BistProfile> ProfileGenerator::GenerateAll() {
  RunRandomPhase();

  const std::size_t width = netlist_.CoreInputs().size();
  ReseedingEncoder encoder(static_cast<std::uint32_t>(width));
  ParallelFaultSimulator fsim(netlist_, config_.threads);

  std::vector<BistProfile> profiles;
  std::uint32_t number = 1;

  for (std::uint64_t prps : config_.prp_counts) {
    // Faults surviving the random phase of length `prps`.
    std::vector<StuckAtFault> undetected;
    std::size_t random_detected = 0;
    SurvivorsAt(prps, &undetected, &random_detected);

    for (std::size_t v = 0; v < config_.coverage_targets_percent.size(); ++v) {
      profiles.push_back(GenerateVariant(
          prps, config_.coverage_targets_percent[v], config_.fill_seeds[v],
          number++, undetected, random_detected, fsim, encoder, nullptr));
    }
  }
  return profiles;
}

BistProfile ProfileGenerator::GenerateVariant(
    std::uint64_t prps, double target_percent, std::uint64_t fill_seed,
    std::uint32_t number, const std::vector<StuckAtFault>& undetected,
    std::size_t random_detected, ParallelFaultSimulator& fsim,
    ReseedingEncoder& encoder, std::vector<EncodedPattern>* encoded_sink) {
  const std::size_t total = faults_.size();
  const std::size_t width = netlist_.CoreInputs().size();
  const bool already_met = 100.0 * static_cast<double>(random_detected) /
                               static_cast<double>(total) >=
                           target_percent;

  atpg::DeterministicTpgResult tpg;
  if (!already_met) {
    DeterministicTpgOptions opts;
    opts.seed = fill_seed * 1000003 + prps;
    opts.backtrack_limit = config_.podem_backtrack_limit;
    opts.reverse_compaction = true;
    tpg = GenerateDeterministicPatterns(netlist_, undetected, opts);
    stats_.untestable = std::max(stats_.untestable, tpg.untestable);
    stats_.aborted = std::max(stats_.aborted, tpg.aborted);
  }

  // Order of `tpg.patterns` is generation order; walk it with fault
  // dropping to find the shortest prefix reaching the target coverage.
  std::vector<StuckAtFault> rem = undetected;
  std::size_t covered = random_detected;
  std::size_t prefix = 0;
  std::vector<std::size_t> gain_per_pattern(tpg.patterns.size(), 0);
  std::vector<PatternWord> detect;
  for (std::size_t p = 0; !already_met && p < tpg.patterns.size(); ++p) {
    std::vector<PatternWord> words(width);
    for (std::size_t k = 0; k < width; ++k)
      words[k] = tpg.patterns[p][k] ? ~PatternWord{0} : PatternWord{0};
    fsim.SetPatternBlock(words);
    detect.assign(rem.size(), 0);
    fsim.DetectWords(rem, detect);
    std::vector<StuckAtFault> still;
    still.reserve(rem.size());
    for (std::size_t i = 0; i < rem.size(); ++i) {
      if (detect[i] != 0) {
        ++gain_per_pattern[p];
      } else {
        still.push_back(rem[i]);
      }
    }
    covered += gain_per_pattern[p];
    rem = std::move(still);
    prefix = p + 1;
    if (100.0 * static_cast<double>(covered) / static_cast<double>(total) >=
        target_percent) {
      break;
    }
  }

  // Recompute achieved coverage for the chosen prefix.
  std::size_t achieved = random_detected;
  for (std::size_t p = 0; p < prefix; ++p) achieved += gain_per_pattern[p];

  BistProfile prof;
  prof.profile_number = number;
  prof.num_random_patterns = prps;
  prof.num_deterministic_patterns = prefix;
  prof.fault_coverage_percent =
      100.0 * static_cast<double>(achieved) / static_cast<double>(total);
  prof.runtime_ms =
      config_.stumps.PatternTimeMs(prps + prefix) + config_.state_restore_ms;

  std::uint64_t encoded_bytes = 0;
  std::uint64_t care = 0;
  for (std::size_t p = 0; p < prefix; ++p) {
    care += tpg.cubes[p].CareBitCount();
    if (auto enc = encoder.Encode(tpg.cubes[p])) {
      encoded_bytes += enc->StorageBytes();
      if (encoded_sink) encoded_sink->push_back(std::move(*enc));
    } else {
      // Unencodable cube (practically unreachable): store it verbatim.
      encoded_bytes += (width + 7) / 8;
    }
  }
  prof.care_bits = care;
  if (config_.measure_transition_coverage) {
    // Assemble the session's applied patterns (random prefix capped,
    // then the deterministic top-up) and measure LOC TDF coverage.
    std::vector<BitPattern> applied;
    const std::uint64_t random_take =
        std::min<std::uint64_t>(prps, config_.transition_pairs_cap);
    PatternSource source(config_.stumps, width);
    for (std::uint64_t i = 0; i < random_take; ++i) {
      applied.push_back(source.Next());
    }
    for (std::size_t p = 0; p < prefix; ++p) {
      applied.push_back(tpg.patterns[p]);
    }
    prof.transition_coverage_percent =
        100.0 * sim::MeasureLocTransitionCoverage(netlist_, applied);
  }
  const std::uint64_t response_bytes =
      StumpsSession(netlist_, config_.stumps)
          .ResponseDataBytes(prps + prefix);
  prof.data_bytes = static_cast<std::uint64_t>(
      static_cast<double>(encoded_bytes + response_bytes) *
      config_.byte_scale);
  return prof;
}

}  // namespace bistdse::bist
