// Multiple-Input Signature Register: the response compactor (TRE) of the
// STUMPS architecture.
#pragma once

#include <cstdint>
#include <span>

namespace bistdse::bist {

/// Serial-absorption MISR model. Hardware MISRs absorb one word per scan
/// cycle; for signature computation the absorption order only has to be
/// deterministic and identical between golden and observed runs, so the
/// session engine feeds response bits in a fixed order.
class Misr {
 public:
  /// `poly` is the feedback polynomial as a bitmask over x^1..x^width
  /// (bit i-1 represents x^i); `width` <= 64.
  explicit Misr(std::uint32_t width = 32, std::uint64_t poly = 0xC0000401u)
      : width_(width), poly_(poly) {}

  void Reset() { state_ = 0; }

  void AbsorbBit(bool bit) {
    const std::uint64_t msb = (state_ >> (width_ - 1)) & 1;
    state_ = (state_ << 1) & MaskBits();
    if (msb) state_ ^= poly_ & MaskBits();
    state_ ^= static_cast<std::uint64_t>(bit);
  }

  /// Absorbs the low `n` bits of `word`, LSB first.
  void AbsorbWord(std::uint64_t word, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) AbsorbBit((word >> i) & 1);
  }

  void AbsorbBits(std::span<const std::uint8_t> bits) {
    for (std::uint8_t b : bits) AbsorbBit(b & 1);
  }

  std::uint64_t Signature() const { return state_; }
  std::uint32_t Width() const { return width_; }

 private:
  std::uint64_t MaskBits() const {
    return width_ >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width_) - 1);
  }

  std::uint32_t width_;
  std::uint64_t poly_;
  std::uint64_t state_ = 0;
};

}  // namespace bistdse::bist
