// BIST profile: the per-session characterization used by the DSE (paper
// Table I). Each CUT offers a set of profiles trading fault coverage c(b),
// session runtime l(b) and encoded data size s(b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bistdse::bist {

struct BistProfile {
  std::uint32_t profile_number = 0;    ///< 1-based, as in Table I.
  std::uint64_t num_random_patterns = 0;
  double fault_coverage_percent = 0.0;   ///< c(b) [%] — stuck-at coverage.
  /// Optional extension metric: launch-on-capture transition coverage of the
  /// same session (0 when not measured). The paper's diagnosis flow "is not
  /// limited to" stuck-at; this quantifies the session under a second model.
  double transition_coverage_percent = 0.0;
  double runtime_ms = 0.0;               ///< l(b) [ms] — incl. state restore.
  std::uint64_t data_bytes = 0;          ///< s(b) [Bytes] — encoded det. + response data.

  // Provenance fields (zero for externally supplied tables).
  std::uint64_t num_deterministic_patterns = 0;
  std::uint64_t care_bits = 0;
};

/// The fail-data transfer is fixed per session (paper: ~638 bytes).
inline constexpr std::uint64_t kFailDataBytes = 638;

std::string ToString(const BistProfile& p);

/// Renders a profile set as an aligned text table with Table I's columns.
std::string FormatProfileTable(const std::vector<BistProfile>& profiles);

}  // namespace bistdse::bist
