#include "bist/scan_sim.hpp"

#include <stdexcept>

#include <span>

#include "sim/logic_sim.hpp"

namespace bistdse::bist {

using netlist::Netlist;
using sim::BitPattern;

ScanChainSimulator::ScanChainSimulator(const Netlist& netlist,
                                       std::uint32_t num_chains)
    : netlist_(netlist) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
  if (num_chains == 0) throw std::invalid_argument("need at least one chain");
  const std::size_t flops = netlist.Flops().size();
  if (flops == 0) throw std::invalid_argument("scan needs flops");
  num_chains = static_cast<std::uint32_t>(
      std::min<std::size_t>(num_chains, flops));

  // Round-robin partitioning: every chain is non-empty and lengths differ
  // by at most one.
  chains_.resize(num_chains);
  for (std::size_t f = 0; f < flops; ++f) {
    chains_[f % num_chains].push_back(static_cast<std::uint32_t>(f));
  }
  for (const auto& chain : chains_) {
    max_chain_length_ =
        std::max(max_chain_length_, static_cast<std::uint32_t>(chain.size()));
  }
  flop_state_.assign(flops, 0);
}

void ScanChainSimulator::ShiftOneCycle(
    const std::vector<std::uint8_t>& scan_in,
    std::vector<std::uint8_t>* scan_out) {
  // All chains move one position toward their scan-out end (last element);
  // the scan-in bit enters at position 0.
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    const auto& chain = chains_[c];
    if (scan_out) {
      (*scan_out)[c] = flop_state_[chain.back()];
    }
    for (std::size_t i = chain.size(); i-- > 1;) {
      flop_state_[chain[i]] = flop_state_[chain[i - 1]];
    }
    flop_state_[chain[0]] = scan_in[c];
  }
  ++cycles_;
}

BitPattern ScanChainSimulator::ApplyAndObserve(const BitPattern& pattern) {
  const auto core_inputs = netlist_.CoreInputs();
  const std::size_t num_pis = netlist_.PrimaryInputs().size();
  const std::size_t flops = netlist_.Flops().size();
  if (pattern.size() != core_inputs.size())
    throw std::invalid_argument("pattern width mismatch");

  // --- 1. shift-in: after L cycles, chain position i holds the load value
  // of flop chain[i]; so feed load[chain[L-1]], ..., load[chain[0]].
  for (std::size_t s = 0; s < max_chain_length_; ++s) {
    std::vector<std::uint8_t> scan_in(chains_.size(), 0);
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      const auto& chain = chains_[c];
      // Cycle s feeds the bit destined for position (L_c - 1 - s); shorter
      // chains pad with zeros in their leading cycles.
      const std::size_t len = chain.size();
      const std::size_t lead = max_chain_length_ - len;
      if (s < lead) continue;
      const std::size_t target = len - 1 - (s - lead);
      scan_in[c] = pattern[num_pis + chain[target]] & 1;
    }
    ShiftOneCycle(scan_in, nullptr);
  }

  // --- 2. capture: evaluate the combinational core with PIs + flop state.
  sim::LogicSimulator simulator(netlist_);
  std::vector<sim::PatternWord> words(core_inputs.size());
  for (std::size_t i = 0; i < num_pis; ++i) {
    words[i] = pattern[i] ? ~sim::PatternWord{0} : 0;
  }
  for (std::size_t f = 0; f < flops; ++f) {
    words[num_pis + f] = flop_state_[f] ? ~sim::PatternWord{0} : 0;
  }
  simulator.Simulate(words);

  BitPattern response(netlist_.CoreOutputs().size(), 0);
  const std::size_t num_pos = netlist_.PrimaryOutputs().size();
  for (std::size_t o = 0; o < num_pos; ++o) {
    response[o] =
        static_cast<std::uint8_t>(simulator.ValueOf(netlist_.CoreOutputs()[o]) & 1);
  }
  // Capture cycle: every flop loads its D input.
  for (std::size_t f = 0; f < flops; ++f) {
    const netlist::NodeId d = netlist_.FaninsOf(netlist_.Flops()[f])[0];
    flop_state_[f] = static_cast<std::uint8_t>(simulator.ValueOf(d) & 1);
  }
  ++cycles_;

  // --- 3. shift-out: drain the captured state (zeros shift in; a real
  // session would overlap the next pattern's shift-in here, which is why
  // CyclesPerPattern() does not count these cycles).
  std::vector<BitPattern> out_streams(chains_.size());
  const std::uint64_t cycles_before_drain = cycles_;
  for (std::size_t s = 0; s < max_chain_length_; ++s) {
    std::vector<std::uint8_t> zeros(chains_.size(), 0);
    std::vector<std::uint8_t> scan_out(chains_.size(), 0);
    ShiftOneCycle(zeros, &scan_out);
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      out_streams[c].push_back(scan_out[c]);
    }
  }
  cycles_ = cycles_before_drain;  // overlapped with the next shift-in

  // Scan-out order: chain position L-1 exits first.
  for (std::size_t c = 0; c < chains_.size(); ++c) {
    const auto& chain = chains_[c];
    for (std::size_t i = 0; i < chain.size(); ++i) {
      // Position i exits after (len - 1 - i) cycles.
      response[num_pos + chain[i]] = out_streams[c][chain.size() - 1 - i];
    }
  }
  return response;
}

void ScanChainSimulator::RestoreState(std::span<const std::uint8_t> state) {
  if (state.size() != flop_state_.size())
    throw std::invalid_argument("state width mismatch");
  for (std::size_t s = 0; s < max_chain_length_; ++s) {
    std::vector<std::uint8_t> scan_in(chains_.size(), 0);
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      const auto& chain = chains_[c];
      const std::size_t len = chain.size();
      const std::size_t lead = max_chain_length_ - len;
      if (s < lead) continue;
      const std::size_t target = len - 1 - (s - lead);
      scan_in[c] = state[chain[target]] & 1;
    }
    ShiftOneCycle(scan_in, nullptr);
  }
}

}  // namespace bistdse::bist
