// Diagnosis accuracy evaluation: injects sampled faults, runs the BIST
// session, diagnoses from the fail data, and scores how well the true
// defect is recovered — the quantitative backing for the paper's claim that
// the collected fail data suffices for chip-level diagnosis.
#pragma once

#include <cstdint>
#include <vector>

#include "bist/diagnosis.hpp"
#include "bist/stumps.hpp"

namespace bistdse::bist {

struct DiagnosisAccuracy {
  std::size_t injected = 0;    ///< Faults actually producing fail data.
  std::size_t escaped = 0;     ///< Sampled faults the session misses.
  std::size_t top1 = 0;        ///< True fault ranked first (incl. ties).
  std::size_t topk = 0;        ///< True fault within top k.
  double mean_rank = 0.0;      ///< Mean rank of the true fault (1-based).
  std::size_t k = 5;

  double Top1Rate() const {
    return injected ? static_cast<double>(top1) / injected : 0.0;
  }
  double TopkRate() const {
    return injected ? static_cast<double>(topk) / injected : 0.0;
  }
};

struct DiagnosisEvalOptions {
  std::uint64_t num_random_patterns = 512;
  std::size_t sample_stride = 37;  ///< Every stride-th collapsed fault.
  std::size_t top_k = 5;
  std::size_t max_samples = 200;
  /// Samples are independent inject->session->diagnose runs; they fan out
  /// over this many workers (1 = serial, 0 = full pool width) with results
  /// reduced in sample order, so the accuracy report is bit-identical.
  std::size_t threads = 0;
  /// Simulation block width W of each diagnosis (W in {1, 2, 4, 8, 16}): W*64
  /// patterns per fault-simulation sweep. Bit-identical for every width.
  std::size_t block_width = 4;
};

/// Runs the inject -> session -> diagnose loop over a sample of the
/// collapsed fault universe of `netlist`.
DiagnosisAccuracy EvaluateDiagnosisAccuracy(const netlist::Netlist& netlist,
                                            const StumpsConfig& config,
                                            const DiagnosisEvalOptions& options = {});

}  // namespace bistdse::bist
