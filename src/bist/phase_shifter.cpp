#include "bist/phase_shifter.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace bistdse::bist {

PhaseShifter::PhaseShifter(std::uint32_t num_chains, std::uint32_t degree,
                           std::uint64_t seed) {
  if (num_chains == 0) throw std::invalid_argument("need at least one chain");
  if (degree < 3) throw std::invalid_argument("LFSR too small for 3 taps");
  util::SplitMix64 rng(seed ^ (std::uint64_t{degree} << 32));
  taps_.reserve(num_chains);
  for (std::uint32_t c = 0; c < num_chains; ++c) {
    std::array<std::uint32_t, 3> taps{};
    taps[0] = static_cast<std::uint32_t>(rng.Below(degree));
    do {
      taps[1] = static_cast<std::uint32_t>(rng.Below(degree));
    } while (taps[1] == taps[0]);
    do {
      taps[2] = static_cast<std::uint32_t>(rng.Below(degree));
    } while (taps[2] == taps[0] || taps[2] == taps[1]);
    taps_.push_back(taps);
  }
}

std::vector<std::uint8_t> PhaseShifter::ShiftCycle(Lfsr& lfsr) const {
  const auto state = lfsr.State();
  std::vector<std::uint8_t> bits(taps_.size());
  for (std::size_t c = 0; c < taps_.size(); ++c) {
    bits[c] = static_cast<std::uint8_t>(state[taps_[c][0]] ^
                                        state[taps_[c][1]] ^
                                        state[taps_[c][2]]);
  }
  lfsr.Step();
  return bits;
}

sim::BitPattern PhaseShifter::EmitPattern(Lfsr& lfsr, std::size_t width) const {
  const std::size_t chains = taps_.size();
  const std::size_t chain_len = (width + chains - 1) / chains;
  sim::BitPattern pattern(width, 0);
  for (std::size_t s = 0; s < chain_len; ++s) {
    const auto bits = ShiftCycle(lfsr);
    for (std::size_t c = 0; c < chains; ++c) {
      const std::size_t pos = c * chain_len + s;
      if (pos < width) pattern[pos] = bits[c];
    }
  }
  return pattern;
}

}  // namespace bistdse::bist
