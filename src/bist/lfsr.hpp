// Linear-feedback shift registers: the pseudo-random TPG of the STUMPS
// architecture, and the expansion engine for reseeding-encoded deterministic
// patterns.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace bistdse::bist {

/// Fibonacci LFSR over GF(2) with an arbitrary characteristic polynomial.
///
/// State is held in a bit vector (degree up to a few thousand for reseeding).
/// Step() emits the bit shifted out and feeds back the XOR of the tap bits.
class Lfsr {
 public:
  /// `taps` are the exponents of the characteristic polynomial excluding the
  /// leading term; degree = max tap. Example: x^16 + x^5 + x^3 + x^2 + 1 ->
  /// taps {16, 5, 3, 2, 0}.
  Lfsr(std::vector<std::uint32_t> taps, std::uint64_t seed);

  /// Full-width seed (bit i of `seed_bits[i]`); size must equal Degree().
  Lfsr(std::vector<std::uint32_t> taps, const std::vector<std::uint8_t>& seed_bits);

  std::uint32_t Degree() const { return degree_; }

  /// Advances one clock; returns the output bit.
  std::uint8_t Step();

  /// Emits `n` successive output bits.
  std::vector<std::uint8_t> Emit(std::size_t n);

  /// Current state in logical order (index 0 = next output bit).
  std::vector<std::uint8_t> State() const {
    std::vector<std::uint8_t> s(degree_);
    for (std::uint32_t i = 0; i < degree_; ++i) {
      std::uint32_t phys = head_ + i;
      if (phys >= degree_) phys -= degree_;
      s[i] = state_[phys];
    }
    return s;
  }

  /// A primitive (or at least maximal-length in practice) polynomial of the
  /// requested degree from a built-in table; degrees 8..64 plus a generic
  /// trinomial fallback for larger degrees.
  static std::vector<std::uint32_t> DefaultPolynomial(std::uint32_t degree);

 private:
  std::vector<std::uint32_t> taps_;  // exponents, excluding degree itself
  std::uint32_t degree_ = 0;
  std::vector<std::uint8_t> state_;  // circular; head_ = next output bit
  std::uint32_t head_ = 0;
};

}  // namespace bistdse::bist
