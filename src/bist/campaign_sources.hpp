// sim::PatternSource adapters for the BIST pattern streams: the session's
// PRPG (LFSR, optionally through the STUMPS phase shifter) and the full
// session stream (pseudo-random phase followed by the expansion of the
// reseeding-encoded deterministic seeds). Every campaign that replays a
// session builds its source from the same StumpsConfig, so replays stay
// consistent by construction — same guarantee as bist::PatternSource, now
// at the campaign-kernel boundary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bist/misr.hpp"
#include "bist/pattern_source.hpp"
#include "bist/reseeding.hpp"
#include "sim/campaign.hpp"

namespace bistdse::bist {

/// Absorbs one simulated block's response (Lanes() contiguous words per
/// output — the FaultyResponse / GoodOutputLanes layout) into `misr` in
/// global pattern order (pattern, then output): lane-then-pattern iteration
/// is exactly the serial order, so MISR states are bit-identical to a
/// narrow walk for every block width.
inline void AbsorbBlockResponse(Misr& misr,
                                std::span<const sim::PatternWord> response,
                                std::size_t num_outputs,
                                const sim::CampaignBlock& block) {
  const std::size_t lanes = block.Lanes();
  for (std::size_t l = 0; l < lanes; ++l) {
    const std::size_t lane_count = block.LaneCount(l);
    for (std::size_t k = 0; k < lane_count; ++k) {
      for (std::size_t j = 0; j < num_outputs; ++j) {
        misr.AbsorbBit((response[j * lanes + l] >> k) & 1);
      }
    }
  }
}

/// Identity key of the PrpgSource stream for campaign memoization: the
/// fields bist::PatternSource actually reads (PRPG polynomial degree and
/// seed, phase-shifter wiring) plus the emitted width. Two configs with the
/// same key produce bit-identical pattern streams.
inline std::uint64_t PrpgStreamKey(const StumpsConfig& config,
                                   std::size_t width) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(width);
  mix(config.prpg_degree);
  mix(config.prpg_seed);
  mix(config.use_phase_shifter ? 1 : 0);
  if (config.use_phase_shifter) {
    mix(config.num_scan_chains);
    mix(config.phase_shifter_seed);
  }
  return h;
}

/// The endless pseudo-random phase: campaign length is bounded by
/// RunOptions::max_patterns (or a sink stopping the run), never by the
/// source.
class PrpgSource final : public sim::PatternSource {
 public:
  PrpgSource(const StumpsConfig& config, std::size_t width)
      : prpg_(config, width) {}

  std::size_t Fill(std::size_t max_patterns,
                   std::vector<sim::BitPattern>& out) override {
    for (std::size_t k = 0; k < max_patterns; ++k) out.push_back(prpg_.Next());
    return max_patterns;
  }

 private:
  bist::PatternSource prpg_;
};

/// The complete session stream: `num_random` PRPs, then the deterministic
/// top-up patterns expanded from their reseeding seeds, then exhaustion.
/// The expander and the seed span must outlive the source.
class SessionStreamSource final : public sim::PatternSource {
 public:
  SessionStreamSource(const StumpsConfig& config, std::size_t width,
                      const ReseedingEncoder& expander,
                      std::uint64_t num_random,
                      std::span<const EncodedPattern> deterministic)
      : prpg_(config, width),
        expander_(expander),
        num_random_(num_random),
        deterministic_(deterministic) {}

  std::size_t Fill(std::size_t max_patterns,
                   std::vector<sim::BitPattern>& out) override {
    std::size_t emitted = 0;
    while (emitted < max_patterns && next_ < num_random_) {
      out.push_back(prpg_.Next());
      ++next_;
      ++emitted;
    }
    while (emitted < max_patterns && next_ < TotalPatterns()) {
      out.push_back(expander_.Expand(
          deterministic_[static_cast<std::size_t>(next_ - num_random_)]));
      ++next_;
      ++emitted;
    }
    return emitted;
  }

  std::uint64_t TotalPatterns() const {
    return num_random_ + deterministic_.size();
  }

 private:
  bist::PatternSource prpg_;
  const ReseedingEncoder& expander_;
  std::uint64_t num_random_;
  std::span<const EncodedPattern> deterministic_;
  std::uint64_t next_ = 0;
};

}  // namespace bistdse::bist
