#include "bist/reseeding.hpp"

#include <algorithm>

namespace bistdse::bist {

using atpg::TestCube;
using atpg::Value3;
using sim::BitPattern;

ReseedingEncoder::ReseedingEncoder(std::uint32_t width, std::uint32_t margin)
    : width_(width), margin_(margin) {
  if (width == 0) throw std::invalid_argument("width must be > 0");
}

const std::vector<BitPattern>& ReseedingEncoder::BasisStreams(
    std::uint32_t degree) {
  for (const auto& entry : cache_) {
    if (entry.first == degree) return entry.second;
  }
  std::vector<BitPattern> streams(degree);
  const auto taps = Lfsr::DefaultPolynomial(degree);
  for (std::uint32_t i = 0; i < degree; ++i) {
    std::vector<std::uint8_t> seed(degree, 0);
    seed[i] = 1;
    Lfsr lfsr(taps, seed);
    streams[i] = lfsr.Emit(width_);
  }
  cache_.emplace_back(degree, std::move(streams));
  return cache_.back().second;
}

std::optional<EncodedPattern> ReseedingEncoder::Encode(const TestCube& cube) {
  if (cube.bits.size() != width_)
    throw std::invalid_argument("cube width mismatch");

  std::vector<std::uint32_t> care_pos;
  for (std::uint32_t i = 0; i < width_; ++i) {
    if (cube.bits[i] != Value3::X) care_pos.push_back(i);
  }
  const std::uint32_t s = static_cast<std::uint32_t>(care_pos.size());

  std::uint32_t degree = std::max<std::uint32_t>(8, s + margin_);
  while (degree <= width_ + margin_ + 64) {
    const auto& basis = BasisStreams(degree);

    // Build the system: for each care position p,
    //   XOR_{i: seed_i = 1} basis[i][p] = cube bit at p.
    // Row-reduce with rows = equations, columns = seed bits (packed 64/word).
    const std::uint32_t words = (degree + 63) / 64;
    std::vector<std::vector<std::uint64_t>> rows(s);
    std::vector<std::uint8_t> rhs(s);
    for (std::uint32_t e = 0; e < s; ++e) {
      rows[e].assign(words, 0);
      const std::uint32_t p = care_pos[e];
      for (std::uint32_t i = 0; i < degree; ++i) {
        if (basis[i][p]) rows[e][i / 64] ^= std::uint64_t{1} << (i % 64);
      }
      rhs[e] = cube.bits[p] == Value3::One ? 1 : 0;
    }

    // Gaussian elimination.
    std::vector<std::int32_t> pivot_of_row(s, -1);
    std::uint32_t rank = 0;
    bool inconsistent = false;
    for (std::uint32_t col = 0; col < degree && rank < s; ++col) {
      std::uint32_t r = rank;
      while (r < s && !((rows[r][col / 64] >> (col % 64)) & 1)) ++r;
      if (r == s) continue;
      std::swap(rows[r], rows[rank]);
      std::swap(rhs[r], rhs[rank]);
      for (std::uint32_t k = 0; k < s; ++k) {
        if (k == rank) continue;
        if ((rows[k][col / 64] >> (col % 64)) & 1) {
          for (std::uint32_t w = 0; w < words; ++w) rows[k][w] ^= rows[rank][w];
          rhs[k] = static_cast<std::uint8_t>(rhs[k] ^ rhs[rank]);
        }
      }
      pivot_of_row[rank] = static_cast<std::int32_t>(col);
      ++rank;
    }
    for (std::uint32_t k = rank; k < s; ++k) {
      if (rhs[k]) {
        inconsistent = true;
        break;
      }
    }

    if (!inconsistent) {
      EncodedPattern enc;
      enc.lfsr_degree = degree;
      enc.seed_bits.assign(degree, 0);
      for (std::uint32_t r = 0; r < rank; ++r) {
        if (rhs[r]) enc.seed_bits[pivot_of_row[r]] = 1;
      }
      return enc;
    }
    degree += 16;  // rank deficiency: retry with more stages
  }
  return std::nullopt;
}

BitPattern ReseedingEncoder::Expand(const EncodedPattern& encoded) const {
  Lfsr lfsr(Lfsr::DefaultPolynomial(encoded.lfsr_degree), encoded.seed_bits);
  return lfsr.Emit(width_);
}

std::uint64_t HashEncodedPatterns(std::span<const EncodedPattern> patterns) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(patterns.size());
  for (const EncodedPattern& enc : patterns) {
    mix(enc.lfsr_degree);
    for (std::uint8_t b : enc.seed_bits) mix(b);
  }
  return h;
}

}  // namespace bistdse::bist
