// Fleet-scale dictionary serving: one process holds the fault dictionaries
// of many (ECU variant, BIST profile) shards — typically Map()ed from their
// artifacts — and answers batches of field-return diagnosis queries by
// fanning the pure per-query Diagnose() over the shared thread pool.
//
// Results are written per query index, so a batch is bit-identical to
// serial per-query diagnosis for every thread count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bist/fault_dictionary.hpp"

namespace bistdse::bist {

/// Shard identity inside one serving process: which ECU variant and which
/// BIST session profile produced the fail data.
struct DictShardKey {
  std::string ecu;
  std::string profile;

  bool operator==(const DictShardKey&) const = default;
};

struct DictShardKeyHash {
  std::size_t operator()(const DictShardKey& k) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : k.ecu) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    h = (h ^ 0xff) * 0x100000001b3ULL;  // separator: ("ab","c") != ("a","bc")
    for (char c : k.profile)
      h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return static_cast<std::size_t>(h);
  }
};

/// One field-return diagnosis request: the shard it belongs to plus the
/// fail data its BIST session uploaded.
struct DictQuery {
  DictShardKey shard;
  std::vector<FailDatum> fail_data;
};

class DictionaryStore {
 public:
  /// Registers `dict` under `key`, replacing any previous shard.
  void Add(DictShardKey key, FaultDictionary dict);

  /// Opens a Save()d artifact (mmap-backed when `mapped`) and registers it.
  /// Propagates FaultDictionary::Map()/Load() errors.
  void AddFromFile(DictShardKey key, const std::string& path,
                   bool mapped = true);

  std::size_t ShardCount() const { return shards_.size(); }

  /// Every registered shard key, sorted (ecu, profile) for determinism —
  /// what the serving layer's hot-reload validation iterates.
  std::vector<DictShardKey> Keys() const;

  /// The shard registered under `key`, or nullptr.
  const FaultDictionary* Find(const DictShardKey& key) const;

  /// Diagnoses every query against its shard, fanned out over the shared
  /// pool (`threads`: 1 = serial, 0 = full pool width). Result i is query
  /// i's ranking — bit-identical to calling Find(...)->Diagnose(...) per
  /// query in order, for every thread count. A query naming an unknown
  /// shard yields an empty ranking.
  std::vector<std::vector<DiagnosisCandidate>> DiagnoseBatch(
      std::span<const DictQuery> queries, std::size_t top_k,
      std::size_t threads = 0) const;

 private:
  std::unordered_map<DictShardKey, FaultDictionary, DictShardKeyHash> shards_;
};

}  // namespace bistdse::bist
