// STUMPS session engine (Self-Testing Unit using MISR and Parallel Sequence
// generator) with the diagnostic extension of the paper's Fig. 1: the test
// response is compacted into *intermediate* signatures every
// `signature_window` patterns; signatures that differ from the golden
// response data are recorded as fail data (window index + observed
// signature), which is what the BIST collection task b^R gathers at the
// gateway.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bist/lfsr.hpp"
#include "bist/misr.hpp"
#include "bist/reseeding.hpp"
#include "netlist/netlist.hpp"
#include "sim/campaign.hpp"
#include "sim/fault.hpp"

namespace bistdse::bist {

struct StumpsConfig {
  std::uint32_t num_scan_chains = 100;
  std::uint32_t max_chain_length = 77;
  double test_frequency_hz = 40e6;
  std::uint32_t signature_window = 32;  ///< Patterns per intermediate signature.
  /// The response/fail memory is a fixed-size resource: long sessions widen
  /// their windows so that at most this many intermediate signatures exist
  /// (160 windows x 4 B = 640 B, matching the paper's ~638 B fail data).
  std::uint32_t max_windows_per_session = 160;

  /// Patterns per window for a session of `total` patterns: the nominal
  /// signature_window, widened to respect max_windows_per_session.
  std::uint64_t EffectiveWindow(std::uint64_t total) const {
    const std::uint64_t nominal = signature_window;
    if (max_windows_per_session == 0) return nominal;
    const std::uint64_t widened =
        (total + max_windows_per_session - 1) / max_windows_per_session;
    return std::max(nominal, widened);
  }
  std::uint32_t prpg_degree = 32;       ///< Pseudo-random TPG LFSR size.
  std::uint64_t prpg_seed = 0xB157D5Eu;
  /// Feed the scan chains through the STUMPS phase shifter (per-chain XOR
  /// taps on the PRPG) instead of serially unrolling the LFSR stream.
  bool use_phase_shifter = false;
  std::uint64_t phase_shifter_seed = 0xF5;
  std::uint32_t misr_width = 32;
  /// "Strong windows" (Cook et al., ETS'12): reset the MISR at every window
  /// boundary so windows fail independently — this is what makes the fail
  /// data diagnosable instead of merely pass/fail.
  bool reset_misr_per_window = true;

  /// Fault-simulation parallelism of the session engine: RunBatch() fans its
  /// injected faults across the shared pool (1 = serial, 0 = full pool
  /// width). Single-fault Run() has no fault-level parallelism to exploit.
  /// Signatures are bit-identical for every value.
  std::size_t sim_threads = 1;
  /// Simulation block width W of the session engine: W*64 patterns per
  /// circuit sweep (W in {1, 2, 4, 8, 16}). Signatures are bit-identical
  /// for every width.
  std::size_t sim_block_width = 4;
  /// FFR-collapse + dominator-cut detection shortcuts in the fault
  /// simulators (bit-identical signatures; off = ablation/validation).
  bool structural_shortcuts = true;

  /// Scan cycles needed to apply one pattern: shift in (longest chain) plus
  /// one capture cycle. Shift-out overlaps the next shift-in.
  std::uint32_t CyclesPerPattern() const { return max_chain_length + 1; }

  /// Test application time for `n` patterns in milliseconds.
  double PatternTimeMs(std::uint64_t n) const {
    return static_cast<double>(n) * CyclesPerPattern() /
           test_frequency_hz * 1e3;
  }
};

/// One entry of the fail memory: which signature window failed and what the
/// MISR actually held. A few such entries suffice for logic diagnosis [10].
struct FailDatum {
  std::uint32_t window_index = 0;
  std::uint64_t observed_signature = 0;
  std::uint64_t expected_signature = 0;
};

struct SessionResult {
  std::vector<std::uint64_t> window_signatures;  ///< All intermediate signatures.
  std::vector<FailDatum> fail_data;  ///< Non-empty iff the CUT is faulty.
  std::uint64_t total_patterns = 0;
  bool pass = true;
};

/// Executes BIST sessions on a full-scan CUT.
class StumpsSession {
 public:
  StumpsSession(const netlist::Netlist& netlist, StumpsConfig config);

  /// Runs `num_random` pseudo-random patterns followed by the expansion of
  /// `deterministic` seeds. If `injected_fault` is set the CUT behaves
  /// faulty; fail data is produced by comparing against the golden run
  /// (computed on demand and cached).
  SessionResult Run(std::uint64_t num_random,
                    std::span<const EncodedPattern> deterministic,
                    const std::optional<sim::StuckAtFault>& injected_fault);

  /// Runs one faulty session per entry of `faults` in a single streaming
  /// pass over the pattern stream: every block is simulated once and the
  /// per-fault MISRs advance fault-partitioned across the pool
  /// (StumpsConfig::sim_threads). Result i is bit-identical to
  /// Run(num_random, deterministic, faults[i]) for every thread count and
  /// block width.
  std::vector<SessionResult> RunBatch(
      std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
      std::span<const sim::StuckAtFault> faults);

  /// The golden (fault-free) intermediate signatures — the "response data"
  /// stored by the BIST data task b^D.
  const std::vector<std::uint64_t>& GoldenSignatures(
      std::uint64_t num_random,
      std::span<const EncodedPattern> deterministic);

  const StumpsConfig& Config() const { return config_; }

  /// Bytes of response data for a session of `n` patterns: one MISR
  /// signature per (effective) window.
  std::uint64_t ResponseDataBytes(std::uint64_t n) const {
    const std::uint64_t window = config_.EffectiveWindow(n);
    const std::uint64_t windows = (n + window - 1) / window;
    return windows * ((config_.misr_width + 7) / 8);
  }

 private:
  std::vector<std::uint64_t> ComputeSignatures(
      std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
      const std::optional<sim::StuckAtFault>& injected_fault);

  const netlist::Netlist& netlist_;
  StumpsConfig config_;
  ReseedingEncoder expander_;
  /// The session's campaign kernel; simulator state is reused across the
  /// golden run, every injected-fault replay, and RunBatch passes.
  sim::CampaignRunner runner_;
  std::vector<std::uint64_t> golden_cache_;
  std::uint64_t golden_cache_random_ = 0;
  std::uint64_t golden_cache_det_hash_ = 0;
  bool golden_cache_valid_ = false;
};

}  // namespace bistdse::bist
