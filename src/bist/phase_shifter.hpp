// Phase shifter: the STUMPS block between the PRPG LFSR and the parallel
// scan chains (paper Fig. 1). Adjacent LFSR stages are heavily correlated;
// the phase shifter XORs a few stages per chain so each chain receives a
// decorrelated (but still linear) pseudo-random stream — which keeps
// reseeding encoding solvable over the same GF(2) machinery.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "bist/lfsr.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::bist {

class PhaseShifter {
 public:
  /// `num_chains` output taps over an LFSR of `degree` stages; tap positions
  /// are drawn deterministically from `seed` (3 XOR taps per chain).
  PhaseShifter(std::uint32_t num_chains, std::uint32_t degree,
               std::uint64_t seed = 0xF5);

  std::uint32_t ChainCount() const {
    return static_cast<std::uint32_t>(taps_.size());
  }

  /// Scan-in bits of all chains for the LFSR's current state (one shift
  /// cycle), then advances the LFSR by one step.
  std::vector<std::uint8_t> ShiftCycle(Lfsr& lfsr) const;

  /// Emits one full test pattern of `width` bits. Chains cover contiguous
  /// input blocks: chain c holds positions [c*L, min((c+1)*L, width)) with
  /// L = ceil(width / num_chains); bit (c, s) comes from shift cycle s.
  sim::BitPattern EmitPattern(Lfsr& lfsr, std::size_t width) const;

 private:
  std::vector<std::array<std::uint32_t, 3>> taps_;
};

}  // namespace bistdse::bist
