#include "bist/lfsr.hpp"

#include <algorithm>

namespace bistdse::bist {

Lfsr::Lfsr(std::vector<std::uint32_t> taps, std::uint64_t seed)
    : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("LFSR needs taps");
  degree_ = *std::max_element(taps_.begin(), taps_.end());
  if (degree_ == 0) throw std::invalid_argument("LFSR degree must be > 0");
  taps_.erase(std::remove(taps_.begin(), taps_.end(), degree_), taps_.end());
  state_.assign(degree_, 0);
  for (std::uint32_t i = 0; i < degree_; ++i) {
    state_[i] = static_cast<std::uint8_t>((seed >> (i % 64)) & 1);
  }
  // An all-zero state would lock the LFSR; force a one.
  if (std::all_of(state_.begin(), state_.end(),
                  [](std::uint8_t b) { return b == 0; })) {
    state_[0] = 1;
  }
}

Lfsr::Lfsr(std::vector<std::uint32_t> taps,
           const std::vector<std::uint8_t>& seed_bits)
    : taps_(std::move(taps)) {
  if (taps_.empty()) throw std::invalid_argument("LFSR needs taps");
  degree_ = *std::max_element(taps_.begin(), taps_.end());
  if (degree_ == 0) throw std::invalid_argument("LFSR degree must be > 0");
  taps_.erase(std::remove(taps_.begin(), taps_.end(), degree_), taps_.end());
  if (seed_bits.size() != degree_)
    throw std::invalid_argument("seed width must equal LFSR degree");
  state_ = seed_bits;
  for (auto& b : state_) b &= 1;
}

std::uint8_t Lfsr::Step() {
  // Circular buffer: logical index i lives at physical (head_ + i) % degree_.
  const std::uint8_t out = state_[head_];
  std::uint8_t fb = out;  // constant term: the outgoing bit always feeds back
  for (std::uint32_t t : taps_) {
    if (t == 0) continue;
    const std::uint32_t logical = degree_ - t;
    std::uint32_t phys = head_ + logical;
    if (phys >= degree_) phys -= degree_;
    fb = static_cast<std::uint8_t>(fb ^ state_[phys]);
  }
  state_[head_] = fb;  // incoming bit takes the vacated slot
  ++head_;
  if (head_ == degree_) head_ = 0;
  return out;
}

std::vector<std::uint8_t> Lfsr::Emit(std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = Step();
  return bits;
}

std::vector<std::uint32_t> Lfsr::DefaultPolynomial(std::uint32_t degree) {
  // Primitive polynomials (Xilinx app-note / Alfke table excerpts).
  switch (degree) {
    case 8: return {8, 6, 5, 4, 0};
    case 16: return {16, 15, 13, 4, 0};
    case 24: return {24, 23, 22, 17, 0};
    case 32: return {32, 22, 2, 1, 0};
    case 48: return {48, 47, 21, 20, 0};
    case 64: return {64, 63, 61, 60, 0};
    default:
      if (degree == 0) throw std::invalid_argument("degree must be > 0");
      // Generic dense fallback; period is not guaranteed maximal but the
      // stream quality suffices for reseeding expansion.
      return {degree, degree > 2 ? degree - 1 : 1, 1, 0};
  }
}

}  // namespace bistdse::bist
