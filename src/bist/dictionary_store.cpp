#include "bist/dictionary_store.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace bistdse::bist {

void DictionaryStore::Add(DictShardKey key, FaultDictionary dict) {
  shards_.insert_or_assign(std::move(key), std::move(dict));
}

void DictionaryStore::AddFromFile(DictShardKey key, const std::string& path,
                                  bool mapped) {
  Add(std::move(key),
      mapped ? FaultDictionary::Map(path) : FaultDictionary::Load(path));
}

std::vector<DictShardKey> DictionaryStore::Keys() const {
  std::vector<DictShardKey> keys;
  keys.reserve(shards_.size());
  for (const auto& [key, dict] : shards_) keys.push_back(key);
  std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
    return a.ecu != b.ecu ? a.ecu < b.ecu : a.profile < b.profile;
  });
  return keys;
}

const FaultDictionary* DictionaryStore::Find(const DictShardKey& key) const {
  const auto it = shards_.find(key);
  return it == shards_.end() ? nullptr : &it->second;
}

std::vector<std::vector<DiagnosisCandidate>> DictionaryStore::DiagnoseBatch(
    std::span<const DictQuery> queries, std::size_t top_k,
    std::size_t threads) const {
  std::vector<std::vector<DiagnosisCandidate>> results(queries.size());
  const std::size_t max_chunks = threads == 1 ? 1 : threads;
  util::ThreadPool::Global().ParallelFor(
      0, queries.size(), max_chunks,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) {
          const FaultDictionary* dict = Find(queries[i].shard);
          if (dict != nullptr) {
            results[i] = dict->Diagnose(queries[i].fail_data, top_k);
          }
        }
      });
  return results;
}

}  // namespace bistdse::bist
