#include "bist/stumps.hpp"

#include <stdexcept>

#include "bist/campaign_sources.hpp"

namespace bistdse::bist {

using netlist::Netlist;
using sim::BitPattern;
using sim::PatternWord;

namespace {

/// Advances one session's MISR and window signatures over simulated blocks,
/// absorbing response bits in global pattern order (pattern, then output) —
/// the fixed order the golden and observed runs share.
class SignatureAbsorber {
 public:
  SignatureAbsorber(std::uint32_t misr_width, std::uint64_t window,
                    bool reset_per_window)
      : misr_(misr_width), window_(window), reset_per_window_(reset_per_window) {}

  /// `response` holds Lanes() contiguous words (lane 0 first) per output —
  /// the FaultyResponse / GoodOutputLanes layout.
  void AbsorbBlock(std::span<const PatternWord> response,
                   std::size_t num_outputs, const sim::CampaignBlock& block) {
    const std::size_t lanes = block.Lanes();
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t in_lane = block.LaneCount(l);
      for (std::size_t k = 0; k < in_lane; ++k) {
        for (std::size_t j = 0; j < num_outputs; ++j) {
          misr_.AbsorbBit((response[j * lanes + l] >> k) & 1);
        }
        ++pattern_index_;
        if (pattern_index_ % window_ == 0) {
          signatures_.push_back(misr_.Signature());
          if (reset_per_window_) misr_.Reset();
        }
      }
    }
  }

  /// Closes the final (partial) window so every applied pattern is covered
  /// by some signature.
  void Close() {
    if (pattern_index_ % window_ != 0) {
      signatures_.push_back(misr_.Signature());
    }
  }

  std::vector<std::uint64_t>& Signatures() { return signatures_; }

 private:
  Misr misr_;
  std::uint64_t window_;
  bool reset_per_window_;
  std::uint64_t pattern_index_ = 0;
  std::vector<std::uint64_t> signatures_;
};

/// Single-session sink: absorbs the fault-free response, or the injected
/// fault's response, block by block.
class SessionSignatureSink final : public sim::CampaignSink {
 public:
  SessionSignatureSink(std::size_t num_outputs, SignatureAbsorber& absorber,
                       const std::optional<sim::StuckAtFault>& injected)
      : num_outputs_(num_outputs), absorber_(absorber), injected_(injected) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    if (injected_) {
      block.ParallelFor(1, [&](std::size_t, sim::FaultView& view) {
        response_ = view.FaultyResponse(*injected_);
      });
      absorber_.AbsorbBlock(response_, num_outputs_, block);
    } else {
      absorber_.AbsorbBlock(block.GoodOutputLanes(), num_outputs_, block);
    }
    return true;
  }

 private:
  std::size_t num_outputs_;
  SignatureAbsorber& absorber_;
  const std::optional<sim::StuckAtFault>& injected_;
  std::vector<PatternWord> response_;
};

/// Batched sink: each injected fault owns one absorber; every simulated
/// block fans the per-fault response computation and MISR advance across
/// the pool. Absorber i only ever runs on the worker holding index i, so
/// the per-fault signature stream is identical to a solo session's.
class BatchSignatureSink final : public sim::CampaignSink {
 public:
  BatchSignatureSink(std::span<const sim::StuckAtFault> faults,
                     std::vector<SignatureAbsorber>& absorbers,
                     std::size_t num_outputs)
      : faults_(faults), absorbers_(absorbers), num_outputs_(num_outputs) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    block.ParallelFor(faults_.size(),
                      [&](std::size_t i, sim::FaultView& view) {
                        const std::vector<PatternWord> response =
                            view.FaultyResponse(faults_[i]);
                        absorbers_[i].AbsorbBlock(response, num_outputs_,
                                                  block);
                      });
    return true;
  }

 private:
  std::span<const sim::StuckAtFault> faults_;
  std::vector<SignatureAbsorber>& absorbers_;
  std::size_t num_outputs_;
};

}  // namespace

StumpsSession::StumpsSession(const Netlist& netlist, StumpsConfig config)
    : netlist_(netlist),
      config_(config),
      expander_(static_cast<std::uint32_t>(netlist.CoreInputs().size())),
      runner_(netlist,
              sim::CampaignConfig{
                  .block_width = config.sim_block_width,
                  .threads = config.sim_threads,
                  .structural_shortcuts = config.structural_shortcuts}) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
}

std::vector<std::uint64_t> StumpsSession::ComputeSignatures(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    const std::optional<sim::StuckAtFault>& injected_fault) {
  const std::size_t num_outputs = netlist_.CoreOutputs().size();
  const std::uint64_t window =
      config_.EffectiveWindow(num_random + deterministic.size());

  SessionStreamSource source(config_, netlist_.CoreInputs().size(), expander_,
                             num_random, deterministic);
  SignatureAbsorber absorber(config_.misr_width, window,
                             config_.reset_misr_per_window);
  SessionSignatureSink sink(num_outputs, absorber, injected_fault);
  runner_.Run(source, sink);
  absorber.Close();
  return std::move(absorber.Signatures());
}

const std::vector<std::uint64_t>& StumpsSession::GoldenSignatures(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic) {
  const std::uint64_t det_hash = HashEncodedPatterns(deterministic);
  if (!golden_cache_valid_ || golden_cache_random_ != num_random ||
      golden_cache_det_hash_ != det_hash) {
    golden_cache_ = ComputeSignatures(num_random, deterministic, std::nullopt);
    golden_cache_random_ = num_random;
    golden_cache_det_hash_ = det_hash;
    golden_cache_valid_ = true;
  }
  return golden_cache_;
}

SessionResult StumpsSession::Run(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    const std::optional<sim::StuckAtFault>& injected_fault) {
  SessionResult result;
  result.total_patterns = num_random + deterministic.size();
  const auto& golden = GoldenSignatures(num_random, deterministic);

  if (!injected_fault) {
    result.window_signatures = golden;
    return result;
  }

  result.window_signatures =
      ComputeSignatures(num_random, deterministic, injected_fault);
  for (std::size_t w = 0; w < result.window_signatures.size(); ++w) {
    if (result.window_signatures[w] != golden[w]) {
      result.fail_data.push_back(
          {static_cast<std::uint32_t>(w), result.window_signatures[w],
           golden[w]});
      result.pass = false;
    }
  }
  return result;
}

std::vector<SessionResult> StumpsSession::RunBatch(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    std::span<const sim::StuckAtFault> faults) {
  const auto& golden = GoldenSignatures(num_random, deterministic);
  const std::size_t num_outputs = netlist_.CoreOutputs().size();
  const std::uint64_t total = num_random + deterministic.size();
  const std::uint64_t window = config_.EffectiveWindow(total);

  std::vector<SignatureAbsorber> absorbers(
      faults.size(), SignatureAbsorber(config_.misr_width, window,
                                       config_.reset_misr_per_window));
  SessionStreamSource source(config_, netlist_.CoreInputs().size(), expander_,
                             num_random, deterministic);
  BatchSignatureSink sink(faults, absorbers, num_outputs);
  runner_.Run(source, sink);

  std::vector<SessionResult> results(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    absorbers[i].Close();
    SessionResult& r = results[i];
    r.total_patterns = total;
    r.window_signatures = std::move(absorbers[i].Signatures());
    for (std::size_t w = 0; w < r.window_signatures.size(); ++w) {
      if (r.window_signatures[w] != golden[w]) {
        r.fail_data.push_back({static_cast<std::uint32_t>(w),
                               r.window_signatures[w], golden[w]});
        r.pass = false;
      }
    }
  }
  return results;
}

}  // namespace bistdse::bist
