#include "bist/stumps.hpp"

#include <stdexcept>

#include "bist/pattern_source.hpp"
#include "sim/fault_sim.hpp"
#include "sim/pattern_set.hpp"

namespace bistdse::bist {

using netlist::Netlist;
using sim::BitPattern;
using sim::FaultSimulator;
using sim::PatternWord;

StumpsSession::StumpsSession(const Netlist& netlist, StumpsConfig config)
    : netlist_(netlist),
      config_(config),
      expander_(static_cast<std::uint32_t>(netlist.CoreInputs().size())) {
  if (!netlist.IsFinalized())
    throw std::invalid_argument("netlist must be finalized");
}

std::vector<std::uint64_t> StumpsSession::ComputeSignatures(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    const std::optional<sim::StuckAtFault>& injected_fault) {
  const std::size_t width = netlist_.CoreInputs().size();
  const std::size_t num_outputs = netlist_.CoreOutputs().size();
  const std::uint64_t window =
      config_.EffectiveWindow(num_random + deterministic.size());
  FaultSimulator fsim(netlist_);
  PatternSource prpg(config_, width);
  Misr misr(config_.misr_width);

  std::vector<std::uint64_t> signatures;
  std::uint64_t pattern_index = 0;

  auto process_block = [&](std::span<const BitPattern> block) {
    const auto words =
        sim::PackPatternBlock(block, 0, block.size(), width);
    std::vector<PatternWord> response;
    if (injected_fault) {
      fsim.SetPatternBlock(words);
      response = fsim.FaultyResponse(*injected_fault);
    } else {
      fsim.SetPatternBlock(words);
      response.reserve(num_outputs);
      for (netlist::NodeId id : netlist_.CoreOutputs())
        response.push_back(fsim.Good().ValueOf(id));
    }
    for (std::size_t k = 0; k < block.size(); ++k) {
      for (std::size_t j = 0; j < num_outputs; ++j) {
        misr.AbsorbBit((response[j] >> k) & 1);
      }
      ++pattern_index;
      if (pattern_index % window == 0) {
        signatures.push_back(misr.Signature());
        if (config_.reset_misr_per_window) misr.Reset();
      }
    }
  };

  std::vector<BitPattern> block;
  block.reserve(64);
  for (std::uint64_t i = 0; i < num_random; ++i) {
    block.push_back(prpg.Next());
    if (block.size() == 64) {
      process_block(block);
      block.clear();
    }
  }
  for (const EncodedPattern& enc : deterministic) {
    block.push_back(expander_.Expand(enc));
    if (block.size() == 64) {
      process_block(block);
      block.clear();
    }
  }
  if (!block.empty()) process_block(block);

  // Close the final (partial) window so every applied pattern is covered by
  // some signature.
  if (pattern_index % window != 0) {
    signatures.push_back(misr.Signature());
  }
  return signatures;
}

namespace {

/// FNV-1a over the deterministic seed bits: the golden cache must key on
/// pattern *content*, not just count.
std::uint64_t HashDeterministic(std::span<const EncodedPattern> deterministic) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(deterministic.size());
  for (const EncodedPattern& enc : deterministic) {
    mix(enc.lfsr_degree);
    for (std::uint8_t b : enc.seed_bits) mix(b);
  }
  return h;
}

}  // namespace

const std::vector<std::uint64_t>& StumpsSession::GoldenSignatures(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic) {
  const std::uint64_t det_hash = HashDeterministic(deterministic);
  if (!golden_cache_valid_ || golden_cache_random_ != num_random ||
      golden_cache_det_hash_ != det_hash) {
    golden_cache_ = ComputeSignatures(num_random, deterministic, std::nullopt);
    golden_cache_random_ = num_random;
    golden_cache_det_hash_ = det_hash;
    golden_cache_valid_ = true;
  }
  return golden_cache_;
}

SessionResult StumpsSession::Run(
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    const std::optional<sim::StuckAtFault>& injected_fault) {
  SessionResult result;
  result.total_patterns = num_random + deterministic.size();
  const auto& golden = GoldenSignatures(num_random, deterministic);

  if (!injected_fault) {
    result.window_signatures = golden;
    return result;
  }

  result.window_signatures =
      ComputeSignatures(num_random, deterministic, injected_fault);
  for (std::size_t w = 0; w < result.window_signatures.size(); ++w) {
    if (result.window_signatures[w] != golden[w]) {
      result.fail_data.push_back(
          {static_cast<std::uint32_t>(w), result.window_signatures[w],
           golden[w]});
      result.pass = false;
    }
  }
  return result;
}

}  // namespace bistdse::bist
