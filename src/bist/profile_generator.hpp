// Mixed-mode BIST profile generation — the pipeline that produced the
// paper's Table I, rebuilt: pseudo-random fault simulation with dropping,
// PODEM top-up for random-resistant faults, reseeding encoding, and the
// runtime/storage cost model.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/tpg.hpp"
#include "bist/profile.hpp"
#include "bist/stumps.hpp"
#include "netlist/netlist.hpp"
#include "sim/campaign.hpp"
#include "sim/campaign_memo.hpp"

namespace bistdse::bist {

struct ProfileGeneratorConfig {
  /// Pseudo-random pattern counts to profile (Table I column 2).
  std::vector<std::uint64_t> prp_counts = {500,   1000,  5000,   10000, 20000,
                                           50000, 100000, 200000, 500000};
  /// Coverage targets per PRP count. Values > achievable coverage mean
  /// "maximum": all generated deterministic patterns are kept. Table I has
  /// four variants per PRP count: two maximum-coverage runs (different fill
  /// seeds) and 98 % / 95 % targets.
  std::vector<double> coverage_targets_percent = {100.0, 100.0, 98.0, 95.0};
  /// Distinct random-fill seeds per variant (same length as targets).
  std::vector<std::uint64_t> fill_seeds = {11, 23, 11, 11};

  StumpsConfig stumps;
  double state_restore_ms = 0.05;       ///< Flush + functional state restore.
  std::uint32_t podem_backtrack_limit = 100;
  /// Multiplies reported data bytes; used to present numbers at the paper's
  /// CUT magnitude (371,900 collapsed faults) when profiling a scaled-down
  /// synthetic CUT. 1.0 = raw measurement.
  double byte_scale = 1.0;
  /// Also measure launch-on-capture transition coverage per profile
  /// (extension; adds TDF fault simulation time). Measurement is capped at
  /// `transition_pairs_cap` pattern pairs — LOC coverage saturates early, so
  /// the cap biases long sessions only marginally.
  bool measure_transition_coverage = false;
  std::uint64_t transition_pairs_cap = 4096;
  /// Fault-simulation parallelism for the random phase and the deterministic
  /// top-up sweeps: 1 = serial, 0 = full width of the shared thread pool.
  /// Results are bit-identical for every value (see docs/PERF.md).
  std::size_t threads = 0;
  /// Simulation block width W of the random phase: W*64 patterns per sweep
  /// (W in {1, 2, 4, 8, 16}). Composes multiplicatively with `threads`;
  /// results are bit-identical for every width (see docs/PERF.md).
  std::size_t block_width = 4;
  /// FFR-collapse + dominator-cut detection shortcuts in the fault
  /// simulators (bit-identical results; off = ablation/validation).
  bool structural_shortcuts = true;
  /// Leading patterns of the random phase simulated at W = 1 regardless of
  /// `block_width`. The head of the phase drops faults so fast that wide
  /// blocks do more union-cone work than the drops they save; the sparse
  /// survivor tail is then swept W times fewer. 0 = wide from pattern 0.
  std::uint64_t narrow_warmup_patterns = 512;
  /// Shared first-detect campaign memo (nullptr = no memoization). With a
  /// memo, generators over the same (netlist, PRPG stream, fault list) reuse
  /// each other's random phase — including the fresh generator GenerateOne
  /// spawns for a session longer than the configured maximum. Not owned.
  sim::CampaignMemo* memo = nullptr;
};

struct ProfileGenerationStats {
  std::size_t total_collapsed_faults = 0;
  std::size_t random_detected_at_max_prps = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
};

/// A profile together with its deployable artifacts: the reseeding-encoded
/// deterministic patterns (the b^D payload) — what a session actually runs.
struct GeneratedProfile {
  BistProfile profile;
  std::vector<EncodedPattern> encoded_patterns;
};

class ProfileGenerator {
 public:
  ProfileGenerator(const netlist::Netlist& netlist,
                   ProfileGeneratorConfig config);

  /// Generates |prp_counts| x |coverage_targets| profiles, numbered 1..N in
  /// Table I order (all variants of a PRP count before the next count).
  std::vector<BistProfile> GenerateAll();

  /// Generates one profile and keeps its encoded deterministic patterns,
  /// ready to run in a StumpsSession. Reuses the generator's cached random
  /// phase (first_detect_) whenever `prps` does not exceed the configured
  /// maximum, so repeated calls only pay for the deterministic top-up.
  GeneratedProfile GenerateOne(std::uint64_t prps, double target_percent,
                               std::uint64_t fill_seed);

  const ProfileGenerationStats& Stats() const { return stats_; }

 private:
  /// First-detecting pattern index per fault (UINT64_MAX = never), under the
  /// PRPG stream of config_.stumps: a drop campaign over the PRPG source
  /// with the runner's narrow warm-up and a FirstDetectSink.
  void RunRandomPhase();

  /// Faults surviving a random phase of length `prps` plus the count the
  /// phase already detected. Requires RunRandomPhase().
  void SurvivorsAt(std::uint64_t prps,
                   std::vector<sim::StuckAtFault>* undetected,
                   std::size_t* random_detected) const;

  /// One Table-I variant: PODEM top-up of `undetected`, shortest prefix to
  /// `target_percent`, reseeding encoding, and the cost model. Encoded
  /// patterns of the chosen prefix go to `encoded_sink` when non-null.
  BistProfile GenerateVariant(std::uint64_t prps, double target_percent,
                              std::uint64_t fill_seed, std::uint32_t number,
                              const std::vector<sim::StuckAtFault>& undetected,
                              std::size_t random_detected,
                              ReseedingEncoder& encoder,
                              std::vector<EncodedPattern>* encoded_sink);

  const netlist::Netlist& netlist_;
  ProfileGeneratorConfig config_;
  std::vector<sim::StuckAtFault> faults_;
  std::vector<std::uint64_t> first_detect_;  // aligned with faults_
  ProfileGenerationStats stats_;
  bool random_phase_done_ = false;
  /// The generator's campaign kernel: simulator state is cached per width
  /// and reused across the random phase and every top-up sweep.
  sim::CampaignRunner runner_;
};

}  // namespace bistdse::bist
