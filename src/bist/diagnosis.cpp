#include "bist/diagnosis.hpp"

#include <algorithm>
#include <bit>
#include <map>

#include "bist/campaign_sources.hpp"
#include "bist/misr.hpp"

namespace bistdse::bist {

using sim::BitPattern;
using sim::PatternWord;
using sim::StuckAtFault;

SignatureDiagnosis::SignatureDiagnosis(
    const netlist::Netlist& netlist, StumpsConfig config,
    std::uint64_t num_random, std::span<const EncodedPattern> deterministic,
    std::size_t block_width, std::size_t threads)
    : netlist_(netlist),
      config_(config),
      num_random_(num_random),
      deterministic_(deterministic.begin(), deterministic.end()),
      // The runner constructor validates the width, so a bad width fails at
      // construction, not per query.
      runner_(netlist,
              sim::CampaignConfig{.block_width = block_width,
                                  .threads = threads}) {
  const std::uint64_t total = num_random_ + deterministic_.size();
  window_ = config_.EffectiveWindow(total);
  window_count_ = static_cast<std::uint32_t>((total + window_ - 1) / window_);
}

namespace {

/// Stage 1 sink: per tracked candidate, marks the windows containing at
/// least one detecting pattern. Detection lanes arrive already reduced per
/// candidate, so the window scatter is a cheap serial loop.
class WindowPredictSink final : public sim::CampaignSink {
 public:
  WindowPredictSink(std::vector<std::vector<std::uint64_t>>& predicted,
                    std::uint64_t window)
      : predicted_(predicted), window_(window) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    const std::uint64_t base = block.BaseIndex();
    for (std::size_t c = 0; c < block.TrackedCount(); ++c) {
      const std::span<const PatternWord> det = block.TrackedDetect(c);
      std::vector<std::uint64_t>& rows = predicted_[block.TrackedIndex(c)];
      for (std::size_t l = 0; l < det.size(); ++l) {
        PatternWord dl = det[l];
        while (dl != 0) {
          const int k = std::countr_zero(dl);
          dl &= dl - 1;
          const std::uint64_t w =
              (base + l * 64 + static_cast<std::uint64_t>(k)) / window_;
          rows[w / 64] |= std::uint64_t{1} << (w % 64);
        }
      }
    }
    return true;
  }

 private:
  std::vector<std::vector<std::uint64_t>>& predicted_;
  std::uint64_t window_;
};

/// Stage 2 sink: advances one MISR per shortlist candidate over the current
/// window's patterns, candidate-partitioned across the pool. Each MISR is
/// only ever touched by the worker owning its index and blocks arrive
/// serially, so per-candidate absorb order equals the serial pattern order.
class ShortlistMisrSink final : public sim::CampaignSink {
 public:
  ShortlistMisrSink(std::span<const DiagnosisCandidate> shortlist,
                    std::vector<Misr>& misrs, std::size_t num_outputs)
      : shortlist_(shortlist), misrs_(misrs), num_outputs_(num_outputs) {}

  bool OnBlock(sim::CampaignBlock& block) override {
    block.ParallelFor(shortlist_.size(),
                      [&](std::size_t r, sim::FaultView& view) {
                        const std::vector<PatternWord> response =
                            view.FaultyResponse(shortlist_[r].fault);
                        AbsorbBlockResponse(misrs_[r], response, num_outputs_,
                                            block);
                      });
    return true;
  }

 private:
  std::span<const DiagnosisCandidate> shortlist_;
  std::vector<Misr>& misrs_;
  std::size_t num_outputs_;
};

}  // namespace

std::vector<DiagnosisCandidate> SignatureDiagnosis::Diagnose(
    std::span<const FailDatum> fail_data,
    std::span<const StuckAtFault> candidates, std::size_t top_k) const {
  const std::size_t width = netlist_.CoreInputs().size();
  const std::size_t num_outputs = netlist_.CoreOutputs().size();
  ReseedingEncoder expander(static_cast<std::uint32_t>(width));

  // ---- Stage 1: failing-window set match ---------------------------------
  const std::size_t wwords = (window_count_ + 63) / 64;
  std::vector<std::vector<std::uint64_t>> predicted(
      candidates.size(), std::vector<std::uint64_t>(wwords, 0));
  {
    SessionStreamSource source(config_, width, expander, num_random_,
                               deterministic_);
    WindowPredictSink sink(predicted, window_);
    runner_.Run(source, sink, {.track = candidates});
  }

  std::vector<std::uint64_t> observed(wwords, 0);
  for (const FailDatum& f : fail_data) {
    observed[f.window_index / 64] |= std::uint64_t{1} << (f.window_index % 64);
  }

  std::vector<DiagnosisCandidate> ranked;
  ranked.reserve(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    std::uint64_t inter = 0, uni = 0;
    for (std::size_t w = 0; w < wwords; ++w) {
      inter += std::popcount(predicted[c][w] & observed[w]);
      uni += std::popcount(predicted[c][w] | observed[w]);
    }
    const double score =
        uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
    ranked.push_back({candidates[c], score});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
                     return a.score > b.score;
                   });

  // ---- Stage 2: signature match on failing windows -----------------------
  // Window sets alone cannot separate faults failing (nearly) every window;
  // the observed MISR signatures can. Re-rank the short list by reproducing
  // the signatures of a few failing windows per candidate. Requires strong
  // windows (per-window MISR reset) so windows are independent.
  if (!fail_data.empty() && config_.reset_misr_per_window && !ranked.empty()) {
    // Tie-aware shortlist: extend past the nominal cut while stage-1 scores
    // tie, so equal-scoring candidates all get the signature test.
    std::size_t shortlist =
        std::min(ranked.size(), std::max<std::size_t>(top_k * 8, 32));
    while (shortlist < ranked.size() &&
           ranked[shortlist].score == ranked[shortlist - 1].score) {
      ++shortlist;
    }
    constexpr std::size_t kMaxWindows = 8;
    std::vector<const FailDatum*> selected;
    for (const FailDatum& f : fail_data) {
      selected.push_back(&f);
      if (selected.size() >= kMaxWindows) break;
    }

    // Collect the patterns of the selected windows by replaying the session
    // stream (no simulation needed).
    std::map<std::uint32_t, std::vector<BitPattern>> window_patterns;
    for (const FailDatum* f : selected) window_patterns[f->window_index] = {};
    {
      SessionStreamSource stream(config_, width, expander, num_random_,
                                 deterministic_);
      std::vector<BitPattern> buf;
      std::uint64_t base = 0;
      for (;;) {
        buf.clear();
        const std::size_t got = stream.Fill(256, buf);
        if (got == 0) break;
        for (std::size_t k = 0; k < got; ++k) {
          const auto w = static_cast<std::uint32_t>((base + k) / window_);
          auto it = window_patterns.find(w);
          if (it != window_patterns.end()) it->second.push_back(buf[k]);
        }
        base += got;
      }
    }

    // Per selected window, one mini-campaign over the window's patterns
    // reproduces the signature of every shortlist candidate at once; the
    // per-candidate MISR advance fans across the pool.
    const std::span<const DiagnosisCandidate> shortlist_span(ranked.data(),
                                                             shortlist);
    std::vector<std::vector<Misr>> misrs(
        selected.size(), std::vector<Misr>(shortlist, Misr(config_.misr_width)));
    for (std::size_t wi = 0; wi < selected.size(); ++wi) {
      const auto& pats = window_patterns.at(selected[wi]->window_index);
      sim::StoredPatternSource source(pats);
      ShortlistMisrSink sink(shortlist_span, misrs[wi], num_outputs);
      runner_.Run(source, sink);
    }
    for (std::size_t r = 0; r < shortlist; ++r) {
      std::size_t matches = 0;
      for (std::size_t wi = 0; wi < selected.size(); ++wi) {
        if (misrs[wi][r].Signature() == selected[wi]->observed_signature)
          ++matches;
      }
      // Signature evidence dominates ties: exact reproduction of the
      // observed failing signatures is the strongest possible match.
      ranked[r].score +=
          static_cast<double>(matches) / static_cast<double>(selected.size());
    }
    std::stable_sort(
        ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(shortlist),
        [](const DiagnosisCandidate& a, const DiagnosisCandidate& b) {
          return a.score > b.score;
        });
  }

  if (ranked.size() > top_k) ranked.resize(top_k);
  return ranked;
}

}  // namespace bistdse::bist
